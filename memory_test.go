package plsh

import (
	"testing"
)

// The tests in this file pin the memory behavior of the search hot path:
// the opt-in-only trace, the allocation ceilings the pooled path must stay
// under, and the recall contract of the SLASH-style bucket reservoir.

// TestTraceOptInOnly pins the default: a Search/SearchBatch without
// WithTrace records no per-replica attempts — the trace costs nothing
// unless asked for — while WithTrace materializes it on the same call
// shape, on both implementations of Index.
func TestTraceOptInOnly(t *testing.T) {
	docs := SyntheticTweets(200, 2000, 31)
	queries := docs[:8]

	s, err := NewStore(Config{Dim: 2000, K: 4, M: 16, Radius: 0.9, Capacity: len(docs) + 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl, err := NewCluster(4, 0, Config{Dim: 2000, K: 4, M: 16, Radius: 0.9, Capacity: 100, Replicas: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, idx := range []Index{s, cl} {
		if _, err := idx.Insert(bg, docs); err != nil {
			t.Fatal(err)
		}
	}

	for name, idx := range map[string]Index{"store": s, "cluster": cl} {
		_, plain, err := idx.SearchBatch(bg, queries)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plain.Attempts != nil {
			t.Errorf("%s: untraced search recorded %d attempts; the trace must be opt-in",
				name, len(plain.Attempts))
		}
		_, traced, err := idx.SearchBatch(bg, queries, WithTrace())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(traced.Attempts) == 0 {
			t.Errorf("%s: WithTrace recorded no attempts", name)
		}
	}
}

// allocStore builds a merged store over n synthetic tweets for the
// allocation-ceiling guards.
func allocStore(t *testing.T, n int, reservoir int) (*Store, []Vector) {
	t.Helper()
	docs := SyntheticTweets(n, 2000, 11)
	s, err := NewStore(Config{
		Dim: 2000, K: 4, M: 16, Radius: 0.9,
		Capacity: n + 1, Seed: 42, BucketReservoir: reservoir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge(bg); err != nil {
		t.Fatal(err)
	}
	return s, docs
}

// TestStoreSearchAllocationCeiling is the regression guard for the
// single-query hot path: once the pools are warm, Store.Search must stay
// within a small fixed allocation budget (the Result conversion plus pool
// bookkeeping — not per-call workspaces, merge buffers, or traces).
func TestStoreSearchAllocationCeiling(t *testing.T) {
	s, docs := allocStore(t, 1000, 0)
	defer s.Close()
	opts := []SearchOption{WithK(10)}
	q := docs[17]
	for i := 0; i < 32; i++ { // warm every pool to steady state
		if _, err := s.Search(bg, q, opts...); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.Search(bg, q, opts...); err != nil {
			t.Fatal(err)
		}
	})
	// Ceiling with headroom over the steady state observed when this
	// guard was introduced (~4: the []Match arena, the Result, and the
	// pooled-buffer round trip). A jump past it means per-call allocation
	// crept back into the hot path.
	const ceiling = 8
	if allocs > ceiling {
		t.Errorf("Store.Search allocates %.1f/op warm; ceiling %d", allocs, ceiling)
	}
}

// TestClusterSearchAllocationCeiling guards the broadcast path end to
// end on an in-process replicated cluster: fan-out, per-group failover
// machinery, k-way merge, and Result conversion together must hold a
// fixed budget once warm.
func TestClusterSearchAllocationCeiling(t *testing.T) {
	docs := SyntheticTweets(1000, 2000, 11)
	cl, err := NewCluster(4, 0, Config{
		Dim: 2000, K: 4, M: 16, Radius: 0.9,
		Capacity: 600, Replicas: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	if err := cl.Merge(bg); err != nil {
		t.Fatal(err)
	}
	opts := []SearchOption{WithK(10)}
	q := docs[17]
	for i := 0; i < 32; i++ {
		if _, err := cl.Search(bg, q, opts...); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := cl.Search(bg, q, opts...); err != nil {
			t.Fatal(err)
		}
	})
	// The broadcast spawns one goroutine per replica group, so its floor
	// is higher than the Store's; the ceiling still excludes any per-call
	// result materialization beyond the flat arena.
	const ceiling = 64
	if allocs > ceiling {
		t.Errorf("Cluster.Search allocates %.1f/op warm; ceiling %d", allocs, ceiling)
	}
}

// TestBucketReservoirRecall pins the reservoir's recall contract on the
// public surface. A reservoir at least as large as the biggest bucket is
// provably a no-op: answers equal the exhaustive-scan oracle exactly, on
// the delta path (pre-merge), the static path (post-merge), and across a
// replicated cluster. A tight reservoir may drop in-radius documents but
// must never invent or misprice one: answers are a subset of the oracle
// with exact distances.
func TestBucketReservoirRecall(t *testing.T) {
	docs := SyntheticTweets(240, 2000, 67)
	var queries []Vector
	for i := 0; i < len(docs); i += 29 {
		queries = append(queries, docs[i])
	}
	radii := []float64{0.8, 0.9, 1.1}

	t.Run("roomy reservoir is exact", func(t *testing.T) {
		s, err := NewStore(Config{
			Dim: 2000, K: 4, M: 16, Radius: 0.9,
			Capacity: len(docs) + 1, Seed: 42, BucketReservoir: len(docs),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ids, err := s.Insert(bg, docs)
		if err != nil {
			t.Fatal(err)
		}
		for _, phase := range []string{"delta", "static"} {
			if phase == "static" {
				if err := s.Merge(bg); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range radii {
				for qi, q := range queries {
					res, err := s.Search(bg, q, WithRadius(r))
					if err != nil {
						t.Fatal(err)
					}
					requireMatchesEqual(t, phase, res.Matches, oracleMatches(docs, ids, q, r, 0))
					_ = qi
				}
			}
		}
	})

	t.Run("roomy reservoir is exact replicated", func(t *testing.T) {
		cl, err := NewCluster(6, 0, Config{
			Dim: 2000, K: 4, M: 16, Radius: 0.9,
			Capacity: 200, Replicas: 2, Seed: 42, BucketReservoir: len(docs),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ids, err := cl.Insert(bg, docs)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Merge(bg); err != nil {
			t.Fatal(err)
		}
		for _, r := range radii {
			res, report, err := cl.SearchBatch(bg, queries, WithRadius(r))
			if err != nil || !report.Complete() {
				t.Fatalf("radius %v: err=%v complete=%v", r, err, report.Complete())
			}
			for qi, q := range queries {
				requireMatchesEqual(t, "replicated", res[qi].Matches, oracleMatches(docs, ids, q, r, 0))
			}
		}
	})

	t.Run("tight reservoir answers subset of oracle", func(t *testing.T) {
		s, err := NewStore(Config{
			Dim: 2000, K: 4, M: 16, Radius: 0.9,
			Capacity: len(docs) + 1, Seed: 42, BucketReservoir: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ids, err := s.Insert(bg, docs)
		if err != nil {
			t.Fatal(err)
		}
		for _, phase := range []string{"delta", "static"} {
			if phase == "static" {
				if err := s.Merge(bg); err != nil {
					t.Fatal(err)
				}
			}
			for _, r := range radii {
				for _, q := range queries {
					res, err := s.Search(bg, q, WithRadius(r))
					if err != nil {
						t.Fatal(err)
					}
					want := map[uint64]float64{}
					for _, m := range oracleMatches(docs, ids, q, r, 0) {
						want[m.ID] = m.Dist
					}
					for _, m := range res.Matches {
						d, ok := want[m.ID]
						if !ok {
							t.Fatalf("%s radius %v: reservoir invented match %d", phase, r, m.ID)
						}
						if diff := m.Dist - d; diff > 1e-9 || diff < -1e-9 {
							t.Fatalf("%s radius %v: match %d dist %v, oracle %v", phase, r, m.ID, m.Dist, d)
						}
					}
				}
			}
		}
	})
}
