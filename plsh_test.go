package plsh

import (
	"errors"
	"testing"
)

func smallConfig() Config {
	return Config{Dim: 2000, K: 8, M: 6, Capacity: 2000}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(300, 2000, 7)
	ids, err := s.Insert(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 || s.Len() != 300 {
		t.Fatalf("ids=%d Len=%d", len(ids), s.Len())
	}
	for i := 0; i < 300; i += 29 {
		found := false
		for _, nb := range s.Query(docs[i]) {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d not found", i)
		}
	}
}

func TestStoreDefaults(t *testing.T) {
	s, err := NewStore(Config{Dim: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.K != 16 || cfg.M != 16 || cfg.Radius != 0.9 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Fatal("missing Dim accepted")
	}
	if _, err := NewStore(Config{Dim: 100, K: 7}); err == nil {
		t.Fatal("odd K accepted")
	}
}

func TestStoreRejectsEmptyDoc(t *testing.T) {
	s, _ := NewStore(smallConfig())
	if _, err := s.Insert([]Vector{{}}); err == nil {
		t.Fatal("empty doc accepted")
	}
}

func TestStoreCapacity(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 100
	s, _ := NewStore(cfg)
	docs := SyntheticTweets(150, 2000, 9)
	if _, err := s.Insert(docs[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(docs[100:]); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestStoreDeleteMergeReset(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(200, 2000, 11)
	ids, _ := s.Insert(docs)
	s.Delete(ids[5])
	for _, nb := range s.Query(docs[5]) {
		if nb.ID == ids[5] {
			t.Fatal("deleted doc returned")
		}
	}
	s.Merge()
	if st := s.Stats(); st.DeltaLen != 0 || st.StaticLen != 200 {
		t.Fatalf("merge state: %+v", st)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not empty store")
	}
}

func TestStoreQueryBatch(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(300, 2000, 13)
	s.Insert(docs)
	res := s.QueryBatch(docs[:10])
	if len(res) != 10 {
		t.Fatalf("batch size %d", len(res))
	}
	for i := range res {
		found := false
		for _, nb := range res[i] {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("batch query %d missing self", i)
		}
	}
}

func TestNewVector(t *testing.T) {
	v, err := NewVector([]uint32{5, 1}, []float32{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Idx[0] != 1 {
		t.Fatalf("NewVector = %+v", v)
	}
}

func TestClusterPublicAPI(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 200
	cl, err := NewCluster(4, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", cl.NumNodes())
	}
	docs := SyntheticTweets(500, 2000, 15)
	ids, err := cl.Insert(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 500 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, err := cl.Query(docs[499])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, nb := range res {
		if GlobalID(nb.Node, nb.ID) == ids[499] {
			found = true
		}
	}
	if !found {
		t.Fatal("newest doc not found in cluster")
	}
	if err := cl.Delete(ids[499]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Merge(); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats()
	if err != nil || len(stats) != 4 {
		t.Fatalf("stats: %v %v", stats, err)
	}
}

func TestGlobalIDHelpers(t *testing.T) {
	g := GlobalID(3, 77)
	n, l := SplitGlobalID(g)
	if n != 3 || l != 77 {
		t.Fatalf("split = (%d,%d)", n, l)
	}
}

func TestTuneSelectsFeasibleParams(t *testing.T) {
	docs := SyntheticTweets(1500, 5000, 17)
	tn, err := Tune(docs, TuneOptions{Radius: 0.9, Delta: 0.1, TargetN: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if tn.K%2 != 0 || tn.K < 2 || tn.M < 2 {
		t.Fatalf("bad tuning %+v", tn)
	}
	if tn.L != tn.M*(tn.M-1)/2 {
		t.Fatalf("L inconsistent: %+v", tn)
	}
	if tn.PredictedQueryNS <= 0 || tn.MemoryBytes <= 0 {
		t.Fatalf("predictions missing: %+v", tn)
	}
	// The tuned parameters must construct a working store.
	cfg := Config{Dim: 5000, K: tn.K, M: tn.M, Capacity: 2000}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(docs[:100]); err != nil {
		t.Fatal(err)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(nil, TuneOptions{}); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Tune([]Vector{{}, {}}, TuneOptions{}); err == nil {
		t.Fatal("all-empty sample accepted")
	}
}

func TestEncoderPipeline(t *testing.T) {
	e := NewEncoder(1 << 16)
	corpus := []string{
		"breaking news earthquake hits the city",
		"earthquake damage reported downtown",
		"cat videos are the best videos",
		"new cat cafe opens downtown",
		"sports team wins the championship game",
	}
	for _, doc := range corpus {
		e.Observe(doc)
	}
	if e.VocabSize() == 0 || e.Dim() != 1<<16 {
		t.Fatalf("vocab=%d dim=%d", e.VocabSize(), e.Dim())
	}
	v, ok := e.Encode("earthquake downtown")
	if !ok || v.NNZ() != 2 {
		t.Fatalf("encode: ok=%v nnz=%d", ok, v.NNZ())
	}
	if _, ok := e.Encode("zzz qqq www"); ok {
		t.Fatal("unknown-word doc encoded")
	}
	v2, ok := e.ObserveAndEncode("totally fresh words appearing")
	if !ok || v2.NNZ() == 0 {
		t.Fatal("ObserveAndEncode failed on new words")
	}
}

// End-to-end: text in, neighbors out, via the full public pipeline.
func TestTextToNeighborsEndToEnd(t *testing.T) {
	e := NewEncoder(1 << 14)
	docsText := []string{
		"the quick brown fox jumps over the lazy dog",
		"quick brown fox jumps over a lazy dog today",
		"stock market rallies on earnings news",
		"earnings news pushes stock market higher",
		"completely unrelated gardening tips for spring",
	}
	for _, d := range docsText {
		e.Observe(d)
	}
	var vecs []Vector
	for _, d := range docsText {
		v, ok := e.Encode(d)
		if !ok {
			t.Fatalf("encode failed for %q", d)
		}
		vecs = append(vecs, v)
	}
	s, err := NewStore(Config{Dim: 1 << 14, K: 8, M: 8, Capacity: 100, Radius: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(vecs); err != nil {
		t.Fatal(err)
	}
	q, _ := e.Encode("quick brown fox and a lazy dog")
	res := s.Query(q)
	ids := map[uint32]bool{}
	for _, nb := range res {
		ids[nb.ID] = true
	}
	if !ids[0] && !ids[1] {
		t.Fatalf("fox/dog documents not retrieved: %v", res)
	}
	if ids[4] {
		t.Fatal("gardening doc retrieved for fox query")
	}
}

func TestSyntheticTweetsDeterministic(t *testing.T) {
	a := SyntheticTweets(50, 1000, 3)
	b := SyntheticTweets(50, 1000, 3)
	for i := range a {
		if a[i].NNZ() != b[i].NNZ() {
			t.Fatal("SyntheticTweets not deterministic")
		}
	}
}
