package plsh

import (
	"context"
	"errors"
	"testing"

	"plsh/internal/sparse"
)

var bg = context.Background()

func smallConfig() Config {
	return Config{Dim: 2000, K: 8, M: 6, Capacity: 2000}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(300, 2000, 7)
	ids, err := s.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 || s.Len() != 300 {
		t.Fatalf("ids=%d Len=%d", len(ids), s.Len())
	}
	for i := 0; i < 300; i += 29 {
		res, err := s.Query(bg, docs[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range res {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d not found", i)
		}
	}
}

func TestStoreDefaults(t *testing.T) {
	s, err := NewStore(Config{Dim: 5000})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.K != 16 || cfg.M != 16 || cfg.Radius != 0.9 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestStoreConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{}); err == nil {
		t.Fatal("missing Dim accepted")
	}
	if _, err := NewStore(Config{Dim: 100, K: 7}); err == nil {
		t.Fatal("odd K accepted")
	}
}

func TestStoreRejectsEmptyDoc(t *testing.T) {
	s, _ := NewStore(smallConfig())
	if _, err := s.Insert(bg, []Vector{{}}); err == nil {
		t.Fatal("empty doc accepted")
	}
}

func TestStoreCapacity(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 100
	s, _ := NewStore(cfg)
	docs := SyntheticTweets(150, 2000, 9)
	if _, err := s.Insert(bg, docs[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(bg, docs[100:]); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestStoreHonorsContext(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(50, 2000, 9)
	if _, err := s.Insert(bg, docs[:25]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := s.Insert(ctx, docs[25:]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := s.Query(ctx, docs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query: %v", err)
	}
	if _, err := s.QueryBatch(ctx, docs[:5]); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatch: %v", err)
	}
	if _, err := s.QueryTopK(ctx, docs[0], 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryTopK: %v", err)
	}
	if err := s.Delete(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Merge(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Merge: %v", err)
	}
	if s.Len() != 25 {
		t.Fatalf("canceled calls mutated the store: Len = %d", s.Len())
	}
}

func TestStoreDeleteMergeReset(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(200, 2000, 11)
	ids, _ := s.Insert(bg, docs)
	if err := s.Delete(bg, ids[5]); err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(bg, docs[5])
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.ID == ids[5] {
			t.Fatal("deleted doc returned")
		}
	}
	if err := s.Merge(bg); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.DeltaLen != 0 || st.StaticLen != 200 {
		t.Fatalf("merge state: %+v", st)
	}
	s.Reset(bg)
	if s.Len() != 0 {
		t.Fatal("Reset did not empty store")
	}
	// Reset takes a context like every other mutating call: a canceled one
	// rejects the erasure outright.
	if _, err := s.Insert(bg, docs[:10]); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(bg)
	cancel()
	if err := s.Reset(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("Reset with canceled ctx: %v", err)
	}
	if s.Len() != 10 {
		t.Fatalf("canceled Reset mutated the store: Len = %d", s.Len())
	}
}

func TestStoreQueryBatch(t *testing.T) {
	s, _ := NewStore(smallConfig())
	docs := SyntheticTweets(300, 2000, 13)
	s.Insert(bg, docs)
	res, err := s.QueryBatch(bg, docs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("batch size %d", len(res))
	}
	for i := range res {
		found := false
		for _, nb := range res[i] {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("batch query %d missing self", i)
		}
	}
}

// oracleTopK is the exhaustive-scan reference: the exact k nearest among
// the documents within radius, ordered ascending by (distance, ID).
func oracleTopK(docs []Vector, q Vector, radius float64, k int) []Neighbor {
	thr := sparse.CosThreshold(radius)
	var in []Neighbor
	for i, d := range docs {
		if dot := sparse.Dot(q, d); dot >= thr {
			in = append(in, Neighbor{ID: uint32(i), Dist: sparse.AngularDistance(dot)})
		}
	}
	sortByDistThenID(in)
	if k < len(in) {
		in = in[:k]
	}
	return in
}

func sortByDistThenID(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0; j-- {
			a, b := ns[j], ns[j-1]
			if a.Dist < b.Dist || (a.Dist == b.Dist && a.ID < b.ID) {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			} else {
				break
			}
		}
	}
}

// Store.QueryTopK must equal the exhaustive-scan oracle: the exact top-k
// among in-radius documents. K=4 bits over M=16 → L=120 tables drives
// per-neighbor retrieval probability to ~1 even at the radius boundary,
// and hashing is seeded, so the comparison is deterministic.
func TestStoreQueryTopKMatchesOracle(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 4, M: 16, Radius: 1.1, Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(250, 2000, 31)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 25} {
		for qi := 0; qi < len(docs); qi += 17 {
			q := docs[qi]
			want := oracleTopK(docs, q, 1.1, k)
			got, err := s.QueryTopK(bg, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: %d results, oracle has %d", k, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID {
					t.Fatalf("k=%d query %d entry %d: doc %d, oracle says %d",
						k, qi, i, got[i].ID, want[i].ID)
				}
				if d := got[i].Dist - want[i].Dist; d > 1e-6 || d < -1e-6 {
					t.Fatalf("k=%d query %d entry %d: dist %v, oracle %v",
						k, qi, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

// Cluster.QueryTopK must equal the same oracle computed over the global
// ID space — the coordinator's bounded-heap merge of per-node partial
// lists must reconstruct the exact cluster-wide top k.
func TestClusterQueryTopKMatchesOracle(t *testing.T) {
	cl, err := NewCluster(4, 2, Config{Dim: 2000, K: 4, M: 16, Radius: 1.1, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(250, 2000, 33)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle over (global ID, distance), ordered by (dist, gid) — gid order
	// coincides with the coordinator's (dist, node, local ID) merge order.
	thr := sparse.CosThreshold(1.1)
	oracle := func(q Vector, k int) []uint64 {
		type cand struct {
			gid  uint64
			dist float64
		}
		var in []cand
		for i, d := range docs {
			if dot := sparse.Dot(q, d); dot >= thr {
				in = append(in, cand{ids[i], sparse.AngularDistance(dot)})
			}
		}
		for i := 1; i < len(in); i++ {
			for j := i; j > 0; j-- {
				a, b := in[j], in[j-1]
				if a.dist < b.dist || (a.dist == b.dist && a.gid < b.gid) {
					in[j], in[j-1] = in[j-1], in[j]
				} else {
					break
				}
			}
		}
		if k < len(in) {
			in = in[:k]
		}
		out := make([]uint64, len(in))
		for i, c := range in {
			out[i] = c.gid
		}
		return out
	}

	for _, k := range []int{1, 7, 30} {
		for qi := 0; qi < len(docs); qi += 19 {
			q := docs[qi]
			want := oracle(q, k)
			got, err := cl.QueryTopK(bg, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: %d results, oracle has %d", k, qi, len(got), len(want))
			}
			for i, nb := range got {
				if GlobalID(nb.Node, nb.ID) != want[i] {
					t.Fatalf("k=%d query %d entry %d: gid %d, oracle says %d",
						k, qi, i, GlobalID(nb.Node, nb.ID), want[i])
				}
			}
		}
	}
}

func TestNewVector(t *testing.T) {
	v, err := NewVector([]uint32{5, 1}, []float32{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Idx[0] != 1 {
		t.Fatalf("NewVector = %+v", v)
	}
}

func TestClusterPublicAPI(t *testing.T) {
	cfg := smallConfig()
	cfg.Capacity = 200
	cl, err := NewCluster(4, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", cl.NumNodes())
	}
	docs := SyntheticTweets(500, 2000, 15)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 500 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, err := cl.Query(bg, docs[499])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, nb := range res {
		if GlobalID(nb.Node, nb.ID) == ids[499] {
			found = true
		}
	}
	if !found {
		t.Fatal("newest doc not found in cluster")
	}
	if err := cl.Delete(bg, ids[499]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Merge(bg); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats(bg)
	if err != nil || len(stats) != 4 {
		t.Fatalf("stats: %v %v", stats, err)
	}
}

func TestGlobalIDHelpers(t *testing.T) {
	g := GlobalID(3, 77)
	n, l := SplitGlobalID(g)
	if n != 3 || l != 77 {
		t.Fatalf("split = (%d,%d)", n, l)
	}
}

func TestTuneSelectsFeasibleParams(t *testing.T) {
	docs := SyntheticTweets(1500, 5000, 17)
	tn, err := Tune(docs, TuneOptions{Radius: 0.9, Delta: 0.1, TargetN: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if tn.K%2 != 0 || tn.K < 2 || tn.M < 2 {
		t.Fatalf("bad tuning %+v", tn)
	}
	if tn.L != tn.M*(tn.M-1)/2 {
		t.Fatalf("L inconsistent: %+v", tn)
	}
	if tn.PredictedQueryNS <= 0 || tn.MemoryBytes <= 0 {
		t.Fatalf("predictions missing: %+v", tn)
	}
	// The tuned parameters must construct a working store.
	cfg := Config{Dim: 5000, K: tn.K, M: tn.M, Capacity: 2000}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(bg, docs[:100]); err != nil {
		t.Fatal(err)
	}
}

func TestTuneValidation(t *testing.T) {
	if _, err := Tune(nil, TuneOptions{}); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := Tune([]Vector{{}, {}}, TuneOptions{}); err == nil {
		t.Fatal("all-empty sample accepted")
	}
}

func TestEncoderPipeline(t *testing.T) {
	e := NewEncoder(1 << 16)
	corpus := []string{
		"breaking news earthquake hits the city",
		"earthquake damage reported downtown",
		"cat videos are the best videos",
		"new cat cafe opens downtown",
		"sports team wins the championship game",
	}
	for _, doc := range corpus {
		e.Observe(doc)
	}
	if e.VocabSize() == 0 || e.Dim() != 1<<16 {
		t.Fatalf("vocab=%d dim=%d", e.VocabSize(), e.Dim())
	}
	v, ok := e.Encode("earthquake downtown")
	if !ok || v.NNZ() != 2 {
		t.Fatalf("encode: ok=%v nnz=%d", ok, v.NNZ())
	}
	if _, ok := e.Encode("zzz qqq www"); ok {
		t.Fatal("unknown-word doc encoded")
	}
	v2, ok := e.ObserveAndEncode("totally fresh words appearing")
	if !ok || v2.NNZ() == 0 {
		t.Fatal("ObserveAndEncode failed on new words")
	}
}

// End-to-end: text in, neighbors out, via the full public pipeline.
func TestTextToNeighborsEndToEnd(t *testing.T) {
	e := NewEncoder(1 << 14)
	docsText := []string{
		"the quick brown fox jumps over the lazy dog",
		"quick brown fox jumps over a lazy dog today",
		"stock market rallies on earnings news",
		"earnings news pushes stock market higher",
		"completely unrelated gardening tips for spring",
	}
	for _, d := range docsText {
		e.Observe(d)
	}
	var vecs []Vector
	for _, d := range docsText {
		v, ok := e.Encode(d)
		if !ok {
			t.Fatalf("encode failed for %q", d)
		}
		vecs = append(vecs, v)
	}
	s, err := NewStore(Config{Dim: 1 << 14, K: 8, M: 8, Capacity: 100, Radius: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(bg, vecs); err != nil {
		t.Fatal(err)
	}
	q, _ := e.Encode("quick brown fox and a lazy dog")
	res, err := s.Query(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint32]bool{}
	for _, nb := range res {
		ids[nb.ID] = true
	}
	if !ids[0] && !ids[1] {
		t.Fatalf("fox/dog documents not retrieved: %v", res)
	}
	if ids[4] {
		t.Fatal("gardening doc retrieved for fox query")
	}
}

func TestSyntheticTweetsDeterministic(t *testing.T) {
	a := SyntheticTweets(50, 1000, 3)
	b := SyntheticTweets(50, 1000, 3)
	for i := range a {
		if a[i].NNZ() != b[i].NNZ() {
			t.Fatal("SyntheticTweets not deterministic")
		}
	}
}

// Flush is a pure barrier: it waits out background merges without forcing
// one, and a flushed store that crossed η·C repeatedly has merged.
func TestStoreFlushSettlesBackgroundMerges(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 8, M: 6, Capacity: 2000, DeltaFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Flush on an idle store is a no-op.
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.Merges != 0 || st.MergeInFlight {
		t.Fatalf("idle flush changed state: %+v", st)
	}
	docs := SyntheticTweets(800, 2000, 21)
	for off := 0; off < len(docs); off += 80 {
		if _, err := s.Insert(bg, docs[off:off+80]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := s.StatsNow()
	if st.Merges == 0 {
		t.Fatal("no background merges despite crossing η·C repeatedly")
	}
	if st.MergeInFlight || st.MergePendingRows != 0 {
		t.Fatalf("Flush returned with a merge still in flight: %+v", st)
	}
	// Flush does not force a rotation: rows under η·C may stay in the delta.
	if st.StaticLen+st.DeltaLen != 800 {
		t.Fatalf("rows after flush: %+v", st)
	}
}

// Queries issued while Merge runs must complete and stay correct — the
// Store-level face of the non-blocking merge pipeline. (The deterministic
// held-open-merge variant lives in internal/node; this exercises the real
// end-to-end path.)
func TestStoreQueriesConcurrentWithMerge(t *testing.T) {
	s, err := NewStore(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(1500, 2000, 23)
	if _, err := s.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	mergeErr := make(chan error, 1)
	go func() { mergeErr <- s.Merge(bg) }()
	for i := 0; i < 1500; i += 97 {
		res, err := s.Query(bg, docs[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range res {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d missing while merge in flight", i)
		}
	}
	if err := <-mergeErr; err != nil {
		t.Fatal(err)
	}
	if st := s.StatsNow(); st.DeltaLen != 0 || st.StaticLen != 1500 {
		t.Fatalf("post-merge state: %+v", st)
	}
}
