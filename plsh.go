package plsh

import (
	"context"
	"errors"
	"fmt"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// Vector is a sparse unit vector: parallel slices of strictly increasing
// column indexes and float32 values. Use NewVector to build one from
// unordered pairs, or an Encoder for text.
type Vector = sparse.Vector

// NewVector builds a Vector from unordered (index, value) pairs, sorting
// by index and summing duplicates.
func NewVector(idx []uint32, val []float32) (Vector, error) { return sparse.NewVector(idx, val) }

// Neighbor is one query answer: the document ID and its angular distance
// in radians.
type Neighbor = core.Neighbor

// Stats is a snapshot of a Store's state (sizes, merge/insert overheads,
// memory use).
type Stats = node.Stats

// ErrFull is returned by Store.Insert when the configured capacity would
// be exceeded.
var ErrFull = node.ErrFull

// ErrNotFound is returned (possibly wrapped) by Store.Delete and
// Cluster.Delete for a document ID that was never inserted, so callers
// can distinguish a no-op from a real tombstone.
var ErrNotFound = node.ErrNotFound

// Config parameterizes a Store.
type Config struct {
	// Dim is the dimensionality of the vector space (vocabulary size).
	// Required.
	Dim int
	// K is the bits per hash table (even; default 16, the paper's value).
	K int
	// M is the number of half-width hash functions; L = M(M−1)/2 tables
	// (default 16 → 120 tables; the paper's 10.5M-document nodes use 40).
	// Use Tune to pick K and M from data for a target recall.
	M int
	// Radius is the R-near-neighbor radius in radians (default 0.9, the
	// paper's Twitter setting).
	Radius float64
	// Capacity is the maximum document count (default 1<<20).
	Capacity int
	// DeltaFraction is η: the streaming delta table is merged into the
	// static structure when it exceeds η·Capacity (default 0.1).
	DeltaFraction float64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Seed makes hashing deterministic (default 1).
	Seed uint64
	// Dir, when non-empty, makes the Store durable: state is recovered
	// from Dir on open (snapshot + journal replay), every acknowledged
	// Insert/Delete is journaled there before the call returns, and
	// background merges checkpoint snapshots. Open is the idiomatic way
	// to set it. Empty (the default) keeps everything in memory.
	Dir string
	// SyncWrites fsyncs every journal append before the write is
	// acknowledged. Off, acknowledged writes survive process death
	// (kill -9); on, they also survive machine crash, at a large
	// per-write cost.
	SyncWrites bool
}

// normalize validates cfg and fills defaults. Every field is either
// rejected or reflected: a value that passes normalize is the value in
// effect, so Store.Config never reports a setting the node silently
// rewrote.
func (c Config) normalize() (Config, error) {
	if c.Dim <= 0 {
		return c, errors.New("plsh: Config.Dim is required")
	}
	if c.Radius < 0 {
		return c, fmt.Errorf("plsh: Config.Radius = %v must not be negative", c.Radius)
	}
	if c.Capacity < 0 {
		return c, fmt.Errorf("plsh: Config.Capacity = %d must not be negative", c.Capacity)
	}
	if c.DeltaFraction < 0 || c.DeltaFraction > 1 {
		return c, fmt.Errorf("plsh: Config.DeltaFraction = %v outside [0, 1]", c.DeltaFraction)
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.M == 0 {
		c.M = 16
	}
	if c.Radius == 0 {
		c.Radius = 0.9
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.DeltaFraction == 0 {
		c.DeltaFraction = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	p := lshhash.Params{Dim: c.Dim, K: c.K, M: c.M, Seed: c.Seed}
	if err := p.Validate(); err != nil {
		return c, fmt.Errorf("plsh: %w", err)
	}
	return c, nil
}

func (c Config) nodeConfig() node.Config {
	build := core.Defaults()
	build.Workers = c.Workers
	query := core.QueryDefaults()
	query.Radius = c.Radius
	query.Workers = c.Workers
	return node.Config{
		Params:        lshhash.Params{Dim: c.Dim, K: c.K, M: c.M, Seed: c.Seed},
		Capacity:      c.Capacity,
		DeltaFraction: c.DeltaFraction,
		AutoMerge:     true,
		Build:         build,
		Query:         query,
		Dir:           c.Dir,
		SyncWrites:    c.SyncWrites,
	}
}

// Store is a single-node streaming similarity-search index. All methods
// are safe for concurrent use. Queries run lock-free against immutable
// copy-on-write snapshots, so they proceed concurrently with each other,
// with inserts, and with merges: when the delta table exceeds
// DeltaFraction·Capacity the rebuild happens on a background goroutine and
// is published with an atomic pointer swap — queries are never buffered
// behind it. Use Merge to force and await a fully merged state, Flush to
// just await any background merge already in flight, and
// Stats().MergeInFlight to observe one.
//
// Every operation takes a context.Context, mirroring the cluster API: a
// canceled or expired context makes the call return ctx.Err() (batch
// queries abandon their remaining work cooperatively; writes are checked
// before any state changes).
//
// A Store opened with a data directory (Open, or Config.Dir) is durable:
// acknowledged writes are journaled before they are acknowledged, merges
// checkpoint snapshots, and reopening the directory recovers every
// acknowledged write — see Open, Save, and DESIGN.md for the on-disk
// format and recovery semantics.
type Store struct {
	cfg Config
	n   *node.Node
}

// NewStore creates a Store: empty when cfg.Dir is unset, recovered from
// cfg.Dir when it is (see Open, the ctx-aware form).
func NewStore(cfg Config) (*Store, error) {
	return Open(context.Background(), cfg.Dir, cfg)
}

// Open opens a durable Store rooted at dir (overriding cfg.Dir): the
// latest snapshot is loaded — checksum and hash-parameter mismatches are
// rejected, never loaded as garbage — and the write-ahead journal's tail
// is replayed on top, so every write acknowledged before a crash is
// queryable again, without rehashing the snapshotted documents. A fresh
// or empty dir opens an empty durable Store. ctx bounds the recovery.
//
// With dir (and cfg.Dir) empty, Open returns a plain in-memory Store.
func Open(ctx context.Context, dir string, cfg Config) (*Store, error) {
	cfg.Dir = dir
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	n, err := node.Open(ctx, cfg.nodeConfig())
	if err != nil {
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Store{cfg: cfg, n: n}, nil
}

// Insert appends documents, returning their IDs (dense, in arrival order).
// Documents should be unit-normalized; Insert rejects empty vectors.
// Returns ErrFull when capacity would be exceeded.
func (s *Store) Insert(ctx context.Context, docs []Vector) ([]uint32, error) {
	for i, d := range docs {
		if d.NNZ() == 0 {
			return nil, fmt.Errorf("plsh: document %d is empty", i)
		}
	}
	return s.n.Insert(ctx, docs)
}

// Query returns the R-near neighbors of q: every stored document within
// the configured angular radius is reported with probability ≥ 1−δ for the
// tuned parameters (see Tune), and every reported document is truly within
// the radius.
func (s *Store) Query(ctx context.Context, q Vector) ([]Neighbor, error) {
	return s.n.Query(ctx, q)
}

// QueryBatch answers many queries in one parallel batch — the high-
// throughput path (the paper processes queries in batches of ≥30,
// trading ~45 ms of latency for maximal throughput).
func (s *Store) QueryBatch(ctx context.Context, qs []Vector) ([][]Neighbor, error) {
	return s.n.QueryBatch(ctx, qs)
}

// QueryTopK returns the k nearest of q's R-near neighbors, sorted
// ascending by distance — the bounded production query shape next to the
// raw R-near broadcast. The radius still applies: fewer than k answers
// come back when fewer than k documents are within it.
func (s *Store) QueryTopK(ctx context.Context, q Vector, k int) ([]Neighbor, error) {
	return s.n.QueryTopK(ctx, q, k)
}

// Delete marks a document ID deleted; it will no longer be returned.
// Deleting an ID that was never inserted returns ErrNotFound. On a
// durable Store the tombstone is journaled before Delete returns.
func (s *Store) Delete(ctx context.Context, id uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.n.Delete(id)
}

// Merge forces every document present at the time of the call into the
// static structure and returns once that fully merged state is reached.
// The rebuild itself runs on a background goroutine — concurrent queries
// and inserts are never blocked by it; only the Merge caller waits.
// Inserts trigger the same background merge automatically at the
// configured DeltaFraction.
func (s *Store) Merge(ctx context.Context) error { return s.n.MergeNow(ctx) }

// Flush waits for any in-flight background merge (automatic or forced) to
// finish without starting one — the barrier to call before reading settled
// Stats after a burst of inserts. It returns nil immediately when no merge
// is running.
func (s *Store) Flush(ctx context.Context) error { return s.n.Flush(ctx) }

// Reset erases all content, keeping configuration and hash functions. Any
// in-flight background merge is drained first, so Reset returns with the
// store settled and empty. On a durable Store the erasure is journaled;
// a journal failure leaves the store untouched and is returned.
func (s *Store) Reset() error { return s.n.Retire(context.Background()) }

// Len returns the number of stored documents (including deleted ones,
// which still occupy capacity until Reset).
func (s *Store) Len() int { return s.n.Len() }

// Doc returns the stored vector for id (shared storage; do not modify)
// and whether the id has ever been inserted; ids never inserted report
// (zero Vector, false) instead of panicking.
func (s *Store) Doc(id uint32) (Vector, bool) {
	v := s.n.Doc(id)
	return v, v.NNZ() > 0
}

// Save writes a quiesced snapshot of the Store into dir: every document
// is driven into the static structure (like Merge), then the arena,
// static buckets, tombstones, and hash parameters are serialized behind a
// versioned, checksummed header. Open on that dir reproduces the Store
// bit-identically, without rehashing. When dir is the Store's own
// Config.Dir this is a checkpoint: the write-ahead journal is truncated
// once the snapshot is durable. Any other dir is an export/backup and
// leaves the journal alone.
func (s *Store) Save(ctx context.Context, dir string) error {
	return s.n.SaveTo(ctx, dir)
}

// Close releases a durable Store's journal after waiting out any
// background merge (so its checkpoint lands). Queries keep working;
// further writes fail. A no-op for in-memory Stores.
func (s *Store) Close() error { return s.n.Close() }

// Stats returns a state snapshot.
func (s *Store) Stats() Stats { return s.n.Stats() }

// Config returns the (normalized) configuration the Store runs with.
func (s *Store) Config() Config { return s.cfg }
