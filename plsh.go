package plsh

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// Vector is a sparse unit vector: parallel slices of strictly increasing
// column indexes and float32 values. Use NewVector to build one from
// unordered pairs, or an Encoder for text.
type Vector = sparse.Vector

// NewVector builds a Vector from unordered (index, value) pairs, sorting
// by index and summing duplicates.
func NewVector(idx []uint32, val []float32) (Vector, error) { return sparse.NewVector(idx, val) }

// Neighbor is one legacy query answer: the node-local document ID and its
// angular distance in radians.
//
// Deprecated: the unified Search surface answers with Match, which
// carries the uint64 global ID used everywhere else. Neighbor remains for
// the deprecated Query/QueryBatch/QueryTopK wrappers.
type Neighbor = core.Neighbor

// Stats is a snapshot of a Store's state (sizes, merge/insert overheads,
// memory use).
type Stats = node.Stats

// ErrFull is returned by Store.Insert when the configured capacity would
// be exceeded.
var ErrFull = node.ErrFull

// ErrNotFound is returned (possibly wrapped) by Store.Delete and
// Cluster.Delete for a document ID that was never inserted, so callers
// can distinguish a no-op from a real tombstone.
var ErrNotFound = node.ErrNotFound

// ErrNotDurable is returned (possibly wrapped) by Save on an index
// configured without a data directory.
var ErrNotDurable = node.ErrNotDurable

// Config parameterizes a Store.
type Config struct {
	// Dim is the dimensionality of the vector space (vocabulary size).
	// Required.
	Dim int
	// K is the bits per hash table (even; default 16, the paper's value).
	K int
	// M is the number of half-width hash functions; L = M(M−1)/2 tables
	// (default 16 → 120 tables; the paper's 10.5M-document nodes use 40).
	// Use Tune to pick K and M from data for a target recall.
	M int
	// Radius is the R-near-neighbor radius in radians (default 0.9, the
	// paper's Twitter setting).
	Radius float64
	// Capacity is the maximum document count (default 1<<20).
	Capacity int
	// DeltaFraction is η: the streaming delta table is merged into the
	// static structure when it exceeds η·Capacity (default 0.1).
	DeltaFraction float64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// BucketReservoir, when > 0, bounds every hash bucket (static and
	// streaming delta) to at most this many entries, keeping a uniform
	// reservoir sample of the bucket's documents — the SLASH-style cap
	// that makes insert and bucket-scan cost independent of stream skew.
	// A document evicted from a bucket in one table usually survives in
	// others (there are L = M(M−1)/2 of them), so modest caps cost little
	// recall; exact-recall guarantees hold only at the default 0
	// (unbounded, the paper's layout). Sampling is deterministic in Seed.
	BucketReservoir int
	// Seed makes hashing deterministic (default 1). In a replicated
	// cluster every node must share the seed: mirrored members answer
	// replica-agnostically only when they draw identical hyperplanes.
	Seed uint64
	// Replicas is R, the mirrored members per replica group of a Cluster
	// (default 1, the paper's single-copy layout — bit-stable with
	// clusters built before replication existed). OpenCluster arranges
	// its nodes into nodes/R groups of R mirrors each: inserts are
	// written to every member of the target group, searches pick one
	// member and fail over to its siblings on error (see WithHedge for
	// the latency hedge), so any single member can die without losing
	// answers. Ignored by a Store.
	Replicas int
	// Placement selects how a Cluster places documents onto replica
	// groups and which groups a search contacts. The default,
	// PlacementScatter, is the paper's layout: inserts round-robin over
	// the rolling window, searches broadcast to every group — bit-stable
	// with clusters built before placement existed. PlacementPartitioned
	// places each document on the group chosen from its LSH bucket
	// signature and routes each search to the recall-bounded set of
	// groups that can hold its in-radius neighbors (falling back to the
	// full broadcast per query when the probe set degenerates), trading
	// RoutingRecall for per-query cost proportional to the probe count
	// instead of the fleet size. Partitioned placement gives up the
	// rolling insert window: documents live where their signature says,
	// nothing is retired, and a full target group fails the insert with
	// an *InsertError wrapping ErrFull naming the group. Ignored by a
	// Store (one node holds everything).
	Placement Placement
	// RoutingRecall is the partitioned-placement probe-mass target in
	// (0, 1] (default 0.9): every document within the search radius is
	// probed-for with at least this probability. Higher values probe
	// more groups per query. Ignored unless Placement is
	// PlacementPartitioned.
	RoutingRecall float64
	// Dir, when non-empty, makes the Store durable: state is recovered
	// from Dir on open (snapshot + journal replay), every acknowledged
	// Insert/Delete is journaled there before the call returns, and
	// background merges checkpoint snapshots. Open is the idiomatic way
	// to set it. Empty (the default) keeps everything in memory.
	Dir string
	// SyncWrites fsyncs every journal append before the write is
	// acknowledged. Off, acknowledged writes survive process death
	// (kill -9); on, they also survive machine crash, at a large
	// per-write cost.
	SyncWrites bool
}

// validateDocs is the one insert-side document check, shared by Store
// and Cluster so the Index implementations cannot drift: documents must
// be non-empty (the delta table and Doc's known/unknown answer both
// assume content-bearing rows at this layer).
func validateDocs(docs []Vector) error {
	for i, d := range docs {
		if d.NNZ() == 0 {
			return fmt.Errorf("plsh: document %d is empty", i)
		}
	}
	return nil
}

// normalize validates cfg and fills defaults. Every field is either
// rejected or reflected: a value that passes normalize is the value in
// effect, so Store.Config never reports a setting the node silently
// rewrote.
func (c Config) normalize() (Config, error) {
	if c.Dim <= 0 {
		return c, errors.New("plsh: Config.Dim is required")
	}
	if c.Radius < 0 {
		return c, fmt.Errorf("plsh: Config.Radius = %v must not be negative", c.Radius)
	}
	if c.Capacity < 0 {
		return c, fmt.Errorf("plsh: Config.Capacity = %d must not be negative", c.Capacity)
	}
	if c.DeltaFraction < 0 || c.DeltaFraction > 1 {
		return c, fmt.Errorf("plsh: Config.DeltaFraction = %v outside [0, 1]", c.DeltaFraction)
	}
	if c.Replicas < 0 {
		return c, fmt.Errorf("plsh: Config.Replicas = %d must not be negative", c.Replicas)
	}
	if c.BucketReservoir < 0 {
		return c, fmt.Errorf("plsh: Config.BucketReservoir = %d must not be negative", c.BucketReservoir)
	}
	if c.Placement != PlacementScatter && c.Placement != PlacementPartitioned {
		return c, fmt.Errorf("plsh: unknown Config.Placement %d", c.Placement)
	}
	if c.RoutingRecall < 0 || c.RoutingRecall > 1 {
		return c, fmt.Errorf("plsh: Config.RoutingRecall = %v outside (0, 1]", c.RoutingRecall)
	}
	if c.RoutingRecall == 0 {
		c.RoutingRecall = 0.9
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.M == 0 {
		c.M = 16
	}
	if c.Radius == 0 {
		c.Radius = 0.9
	}
	if c.Capacity == 0 {
		c.Capacity = 1 << 20
	}
	if c.DeltaFraction == 0 {
		c.DeltaFraction = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	p := lshhash.Params{Dim: c.Dim, K: c.K, M: c.M, Seed: c.Seed}
	if err := p.Validate(); err != nil {
		return c, fmt.Errorf("plsh: %w", err)
	}
	return c, nil
}

func (c Config) nodeConfig() node.Config {
	build := core.Defaults()
	build.Workers = c.Workers
	query := core.QueryDefaults()
	query.Radius = c.Radius
	query.Workers = c.Workers
	return node.Config{
		Params:          lshhash.Params{Dim: c.Dim, K: c.K, M: c.M, Seed: c.Seed},
		Capacity:        c.Capacity,
		DeltaFraction:   c.DeltaFraction,
		AutoMerge:       true,
		Build:           build,
		Query:           query,
		BucketReservoir: c.BucketReservoir,
		Dir:             c.Dir,
		SyncWrites:      c.SyncWrites,
	}
}

// Store is a single-node streaming similarity-search index — the
// one-node implementation of Index (it is node 0, so its global IDs are
// the node-local IDs zero-extended). All methods are safe for concurrent
// use. Queries run lock-free against immutable copy-on-write snapshots,
// so they proceed concurrently with each other, with inserts, and with
// merges: when the delta table exceeds DeltaFraction·Capacity the rebuild
// happens on a background goroutine and is published with an atomic
// pointer swap — queries are never buffered behind it. Use Merge to force
// and await a fully merged state, Flush to just await any background
// merge already in flight, and Stats' MergeInFlight to observe one.
//
// Every operation takes a context.Context, mirroring the cluster API: a
// canceled or expired context makes the call return ctx.Err() (batch
// queries abandon their remaining work cooperatively; writes are checked
// before any state changes).
//
// A Store opened with a data directory (Open, or Config.Dir) is durable:
// acknowledged writes are journaled before they are acknowledged, merges
// checkpoint snapshots, and reopening the directory recovers every
// acknowledged write — see Open, Save, and DESIGN.md for the on-disk
// format and recovery semantics.
type Store struct {
	cfg Config
	n   *node.Node
	// resPool recycles the single-query Search scratch buffer (the raw
	// []core.Neighbor the node appends into); the only per-call result
	// allocation left is the []Match handed to the caller.
	resPool sync.Pool
}

// NewStore creates a Store: empty when cfg.Dir is unset, recovered from
// cfg.Dir when it is. It is the context-less convenience shim over Open
// and runs recovery under context.Background() — unbounded, uncancelable.
// Callers that need to bound or abort recovery of a large data directory
// must use Open, the ctx-aware form, instead.
func NewStore(cfg Config) (*Store, error) {
	//plshvet:ignore ctxcheck ctx-less compatibility shim; Open is the ctx-aware form
	return Open(context.Background(), cfg.Dir, cfg)
}

// Open opens a durable Store rooted at dir (overriding cfg.Dir): the
// latest snapshot is loaded — checksum and hash-parameter mismatches are
// rejected, never loaded as garbage — and the write-ahead journal's tail
// is replayed on top, so every write acknowledged before a crash is
// queryable again, without rehashing the snapshotted documents. A fresh
// or empty dir opens an empty durable Store. ctx bounds the recovery.
//
// With dir (and cfg.Dir) empty, Open returns a plain in-memory Store.
func Open(ctx context.Context, dir string, cfg Config) (*Store, error) {
	cfg.Dir = dir
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	n, err := node.Open(ctx, cfg.nodeConfig())
	if err != nil {
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Store{cfg: cfg, n: n}, nil
}

// Insert appends documents, returning their global IDs (dense, in arrival
// order; a Store is node 0, so the IDs are the node-local IDs
// zero-extended). Documents should be unit-normalized; Insert rejects
// empty vectors. Returns ErrFull when capacity would be exceeded.
func (s *Store) Insert(ctx context.Context, docs []Vector) ([]uint64, error) {
	if err := validateDocs(docs); err != nil {
		return nil, err
	}
	local, err := s.n.Insert(ctx, docs)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, len(local))
	for i, l := range local {
		ids[i] = GlobalID(0, l)
	}
	return ids, nil
}

// Search answers one query under request-scoped options: every stored
// document within the effective radius (WithRadius, or the construction
// Config.Radius) is reported with probability ≥ 1−δ for the tuned
// parameters (see Tune), every reported document is truly within that
// radius, and matches come back ascending by (distance, ID) — bounded to
// the k nearest with WithK.
func (s *Store) Search(ctx context.Context, q Vector, opts ...SearchOption) (Result, error) {
	spec, err := resolveSearch(opts)
	if err != nil {
		return Result{}, err
	}
	// Single-query fast path: no batch wrapper, no Report machinery —
	// the node appends into a recycled scratch buffer and the only result
	// allocation is the caller's []Match.
	nctx := ctx
	if spec.policy.PerNodeTimeout > 0 {
		var cancel context.CancelFunc
		nctx, cancel = context.WithTimeout(ctx, spec.policy.PerNodeTimeout)
		defer cancel()
	}
	var buf []core.Neighbor
	if p, _ := s.resPool.Get().(*[]core.Neighbor); p != nil {
		buf = (*p)[:0]
	}
	ns, err := s.n.SearchAppend(nctx, buf, q, spec.params)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		return Result{}, err
	}
	matches := matchesFromLocal(0, ns)
	s.resPool.Put(&ns)
	return Result{Matches: matches}, nil
}

// SearchBatch answers many queries in one parallel batch under one set of
// request-scoped options — the high-throughput path (the paper processes
// queries in batches of ≥30, trading ~45 ms of latency for maximal
// throughput). The Report covers the Store as the single node 0.
func (s *Store) SearchBatch(ctx context.Context, qs []Vector, opts ...SearchOption) ([]Result, Report, error) {
	spec, err := resolveSearch(opts)
	if err != nil {
		return nil, Report{}, err
	}
	return s.searchBatch(ctx, qs, spec)
}

// searchBatch runs a resolved spec against the node, mirroring the
// coordinator's per-node policy on the Store's one node: WithNodeTimeout
// bounds the call, and with a single node a failure fails the call even
// under AllowPartial (no other node can answer).
func (s *Store) searchBatch(ctx context.Context, qs []Vector, spec searchSpec) ([]Result, Report, error) {
	report := Report{Times: make([]time.Duration, 1), Errs: make([]error, 1)}
	nctx := ctx
	if spec.policy.PerNodeTimeout > 0 {
		var cancel context.CancelFunc
		nctx, cancel = context.WithTimeout(ctx, spec.policy.PerNodeTimeout)
		defer cancel()
	}
	t0 := time.Now()
	res, err := s.n.SearchBatch(nctx, qs, spec.params)
	report.Times[0] = time.Since(t0)
	if spec.policy.Trace {
		report.Attempts = []Attempt{{Time: report.Times[0], Won: err == nil, Err: err}}
	}
	if err != nil {
		report.Errs[0] = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, report, cerr
		}
		return nil, report, err
	}
	out := resultsFromLocal(0, res)
	s.n.ReleaseResults(res)
	return out, report, nil
}

// Query returns the R-near neighbors of q at the construction radius.
//
// Deprecated: use Search, which takes request-scoped options and answers
// with global-ID Matches in canonical order.
func (s *Store) Query(ctx context.Context, q Vector) ([]Neighbor, error) {
	res, err := s.Search(ctx, q)
	if err != nil {
		return nil, err
	}
	return neighborsFromMatches(res.Matches), nil
}

// QueryBatch answers many queries in one parallel batch.
//
// Deprecated: use SearchBatch.
func (s *Store) QueryBatch(ctx context.Context, qs []Vector) ([][]Neighbor, error) {
	res, _, err := s.SearchBatch(ctx, qs)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(res))
	for i, r := range res {
		out[i] = neighborsFromMatches(r.Matches)
	}
	return out, nil
}

// QueryTopK returns the k nearest of q's R-near neighbors, sorted
// ascending by distance.
//
// Deprecated: use Search with WithK.
func (s *Store) QueryTopK(ctx context.Context, q Vector, k int) ([]Neighbor, error) {
	if k <= 0 {
		// Keep the pre-Search contract on this fast path too: a canceled
		// call reports cancellation, never silent success.
		return nil, ctx.Err()
	}
	res, err := s.Search(ctx, q, WithK(k))
	if err != nil {
		return nil, err
	}
	return neighborsFromMatches(res.Matches), nil
}

// neighborsFromMatches converts unified Matches back to the legacy
// node-local Neighbor shape for the deprecated Query wrappers.
func neighborsFromMatches(ms []Match) []Neighbor {
	if len(ms) == 0 {
		return nil
	}
	out := make([]Neighbor, len(ms))
	for i, m := range ms {
		out[i] = Neighbor{ID: m.Local(), Dist: m.Dist}
	}
	return out
}

// Delete marks a document ID deleted; it will no longer be returned.
// Deleting an ID that was never inserted — including any ID naming a
// node other than 0, which a Store cannot hold — returns ErrNotFound. On
// a durable Store the tombstone is journaled before Delete returns.
func (s *Store) Delete(ctx context.Context, id uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if nodeIdx, _ := SplitGlobalID(id); nodeIdx != 0 {
		return fmt.Errorf("plsh: store is node 0, id names node %d: %w", nodeIdx, ErrNotFound)
	}
	return s.n.Delete(uint32(id))
}

// Merge forces every document present at the time of the call into the
// static structure and returns once that fully merged state is reached.
// The rebuild itself runs on a background goroutine — concurrent queries
// and inserts are never blocked by it; only the Merge caller waits.
// Inserts trigger the same background merge automatically at the
// configured DeltaFraction.
func (s *Store) Merge(ctx context.Context) error { return s.n.MergeNow(ctx) }

// Flush waits for any in-flight background merge (automatic or forced) to
// finish without starting one — the barrier to call before reading settled
// Stats after a burst of inserts. It returns nil immediately when no merge
// is running.
func (s *Store) Flush(ctx context.Context) error { return s.n.Flush(ctx) }

// Reset erases all content, keeping configuration and hash functions. Any
// in-flight background merge is drained first — honoring ctx while
// waiting, like every other mutating call on the unified surface; a
// canceled drain returns ctx.Err() with the store untouched — so a nil
// return means the store is settled and empty. On a durable Store the
// erasure is journaled; a journal failure leaves the store untouched and
// is returned.
func (s *Store) Reset(ctx context.Context) error { return s.n.Retire(ctx) }

// Len returns the number of stored documents (including deleted ones,
// which still occupy capacity until Reset).
func (s *Store) Len() int { return s.n.Len() }

// Doc returns the stored vector for a global ID (shared storage; do not
// modify) and the node's authoritative answer to whether the ID was ever
// inserted — an inserted-but-empty document still reports true, and IDs
// never inserted (including any naming a node other than 0) report
// (zero Vector, false) instead of panicking.
func (s *Store) Doc(ctx context.Context, id uint64) (Vector, bool, error) {
	if err := ctx.Err(); err != nil {
		return Vector{}, false, err
	}
	if nodeIdx, _ := SplitGlobalID(id); nodeIdx != 0 {
		return Vector{}, false, nil
	}
	v, known := s.n.Doc(uint32(id))
	return v, known, nil
}

// Save forces a durable checkpoint of the Store's own data directory:
// every document is driven into the static structure (like Merge), the
// snapshot is written, and the write-ahead journal is truncated. Returns
// ErrNotDurable on a Store opened without a data directory; use SaveTo to
// export an in-memory Store.
func (s *Store) Save(ctx context.Context) error {
	return s.n.Save(ctx)
}

// SaveTo writes a quiesced snapshot of the Store into dir: every document
// is driven into the static structure (like Merge), then the arena,
// static buckets, tombstones, and hash parameters are serialized behind a
// versioned, checksummed header. Open on that dir reproduces the Store
// bit-identically, without rehashing. When dir is the Store's own
// Config.Dir this is exactly Save, journal truncation included; any other
// dir is an export/backup and leaves the journal alone.
func (s *Store) SaveTo(ctx context.Context, dir string) error {
	return s.n.SaveTo(ctx, dir)
}

// Close releases a durable Store's journal after waiting out any
// background merge (so its checkpoint lands). Queries keep working;
// further writes fail. A no-op for in-memory Stores.
func (s *Store) Close() error { return s.n.Close() }

// Stats returns one state snapshot per node — for a Store, exactly one,
// the uniform Index shape. Use StatsNow for the local convenience form.
func (s *Store) Stats(ctx context.Context) ([]Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return []Stats{s.n.Stats()}, nil
}

// StatsNow returns the Store's state snapshot without the ceremony of the
// Index-shaped Stats — the common local-observability call.
func (s *Store) StatsNow() Stats { return s.n.Stats() }

// Config returns the (normalized) configuration the Store runs with.
func (s *Store) Config() Config { return s.cfg }
