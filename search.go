package plsh

import (
	"fmt"
	"time"

	"context"

	"plsh/internal/cluster"
	"plsh/internal/core"
	"plsh/internal/node"
)

// Index is the one logical similarity-search surface of this package:
// a single node (*Store) and a coordinated fleet (*Cluster) implement it
// identically, so callers write against the abstraction and scale from
// one process to a hundred machines without changing a call site — the
// transparency the paper's deployment model (and SLASH after it) argues
// for. Document identifiers are uint64 global IDs everywhere: a Store is
// simply node 0, so its IDs are the node-local IDs zero-extended, and
// GlobalID/SplitGlobalID convert at the boundary when node placement
// matters.
//
// Request-scoped behavior — radius, top-k bound, per-node time budget,
// partial-result policy, candidate budget — travels with each Search call
// as SearchOptions rather than being frozen at construction, so one index
// serves heterogeneous traffic.
type Index interface {
	// Insert appends documents, returning their global IDs (parallel to
	// docs). Documents should be unit-normalized and non-empty.
	Insert(ctx context.Context, docs []Vector) ([]uint64, error)
	// Search answers one query under the given request-scoped options.
	Search(ctx context.Context, q Vector, opts ...SearchOption) (Result, error)
	// SearchBatch answers a batch under one set of options and reports
	// how the distributed execution went.
	SearchBatch(ctx context.Context, qs []Vector, opts ...SearchOption) ([]Result, Report, error)
	// Delete tombstones a document by global ID; never-inserted IDs
	// return ErrNotFound (possibly wrapped).
	Delete(ctx context.Context, id uint64) error
	// Doc fetches the stored vector for a global ID (shared storage; do
	// not modify) and whether that ID was ever inserted.
	Doc(ctx context.Context, id uint64) (Vector, bool, error)
	// Merge drives every document present at call time into the static
	// structure(s) and returns once that state is reached.
	Merge(ctx context.Context) error
	// Flush waits out any in-flight background merge without forcing one.
	Flush(ctx context.Context) error
	// Save checkpoints every durable node's data directory; nodes without
	// one fail the call with ErrNotDurable (possibly wrapped).
	Save(ctx context.Context) error
	// Stats returns one state snapshot per node (a Store returns one).
	Stats(ctx context.Context) ([]Stats, error)
	// Close releases node connections and journals.
	Close() error
}

// Compile-time proof that both implementations present the one surface.
var (
	_ Index = (*Store)(nil)
	_ Index = (*Cluster)(nil)
)

// Match is one Search answer: the document's global ID and its angular
// distance from the query in radians. On a Store the ID is the node-local
// ID zero-extended; on a Cluster it packs (node, local ID) — use Node and
// Local (or SplitGlobalID) when placement matters.
type Match struct {
	ID   uint64
	Dist float64
}

// Node returns the index of the node holding the document.
func (m Match) Node() int { n, _ := SplitGlobalID(m.ID); return n }

// Local returns the document's node-local ID.
func (m Match) Local() uint32 { _, l := SplitGlobalID(m.ID); return l }

// Result is the answer to one query: every reported document is truly
// within the effective radius, sorted ascending by (distance, ID) — and
// with WithK, bounded to the k nearest.
type Result struct {
	Matches []Match
}

// Report describes how a Search/SearchBatch broadcast went: per-group
// wall times and errors plus — when the request opted in with WithTrace —
// the per-replica attempt trace, with Complete/Stragglers/Failovers/
// HedgesWon helpers. A Store reports itself as the single group 0 (with
// one attempt when traced).
type Report = BatchReport

// searchSpec is the resolved form of a SearchOption list: the per-query
// parameter struct that flows to every node, plus the broadcast policy
// the coordinator applies around it.
type searchSpec struct {
	params node.SearchParams
	policy cluster.BatchOptions
	err    error
}

// SearchOption is a request-scoped knob for Search/SearchBatch. Options
// compose left to right; an invalid value surfaces as an error from the
// Search call itself rather than panicking or being silently clamped.
type SearchOption func(*searchSpec)

func (s *searchSpec) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithRadius overrides the construction-time Config.Radius for this query
// (radians, > 0). The hash tables are radius-agnostic — only candidate
// filtering consults it — so any radius is answerable by any index;
// recall guarantees still assume the tuned (K, M) geometry suits it.
func WithRadius(r float64) SearchOption {
	return func(s *searchSpec) {
		if r <= 0 {
			s.fail(fmt.Errorf("plsh: WithRadius(%v): radius must be positive", r))
			return
		}
		s.params.Radius = r
	}
}

// WithK bounds the answer to the k nearest in-radius documents (k > 0).
// Each node prunes to its local k best, so the coordinator merges bounded
// partial lists instead of full answer sets.
func WithK(k int) SearchOption {
	return func(s *searchSpec) {
		if k <= 0 {
			s.fail(fmt.Errorf("plsh: WithK(%d): k must be positive", k))
			return
		}
		s.params.K = k
	}
}

// WithMaxCandidates bounds how many unique candidates each node evaluates
// distances for on this query (n > 0) — the latency/recall trade for
// callers that prefer a bounded answer over an exhaustive one.
func WithMaxCandidates(n int) SearchOption {
	return func(s *searchSpec) {
		if n <= 0 {
			s.fail(fmt.Errorf("plsh: WithMaxCandidates(%d): bound must be positive", n))
			return
		}
		s.params.MaxCandidates = n
	}
}

// WithNodeTimeout bounds each replica attempt of the broadcast (d > 0),
// in addition to the call's context deadline. On a replicated cluster a
// timed-out attempt fails over to the group's next replica; combine with
// AllowPartial to trade completeness for bounded latency when a whole
// group times out — without it, one group timing out fails the call.
func WithNodeTimeout(d time.Duration) SearchOption {
	return func(s *searchSpec) {
		if d <= 0 {
			s.fail(fmt.Errorf("plsh: WithNodeTimeout(%v): timeout must be positive", d))
			return
		}
		s.policy.PerNodeTimeout = d
	}
}

// WithHedge arms the tail-latency hedge on a replicated cluster (d > 0):
// if a group's preferred replica has not answered within d, the next
// replica is raced against it and the first complete answer wins — Dean &
// Barroso's hedged request, hiding a slow replica without waiting for it
// to fail. Pick d around the expected p99 so hedges fire only on genuine
// stragglers. A no-op on a Store or a Replicas=1 cluster (there is no
// second copy to race); the Report's HedgesWon counts the searches the
// hedge rescued.
func WithHedge(d time.Duration) SearchOption {
	return func(s *searchSpec) {
		if d <= 0 {
			s.fail(fmt.Errorf("plsh: WithHedge(%v): delay must be positive", d))
			return
		}
		s.policy.Hedge = d
	}
}

// WithTrace materializes the Report's per-replica Attempts trace for this
// call — which member answered each group, which attempts failed over,
// which hedges won (the inputs of Failovers and HedgesWon). Off by
// default: an untraced broadcast records nothing per attempt, so the hot
// path carries no bookkeeping allocations for a trace nobody reads.
// Failover and hedging behave identically either way.
func WithTrace() SearchOption {
	return func(s *searchSpec) { s.policy.Trace = true }
}

// AllowPartial makes a Search succeed with the merged answers from the
// replica groups that responded instead of failing when some did not
// (a group fails only once every member has been tried); stragglers are
// visible in the Report. Without it the first group failure fails the
// call (all-or-nothing). A search no group answered still fails.
func AllowPartial() SearchOption {
	return func(s *searchSpec) { s.policy.Partial = true }
}

// resolveSearch folds an option list into a spec, surfacing the first
// invalid option as an error.
func resolveSearch(opts []SearchOption) (searchSpec, error) {
	var s searchSpec
	for _, o := range opts {
		o(&s)
	}
	return s, s.err
}

// matchesFromLocal converts node-local answers to Matches of nodeIdx.
func matchesFromLocal(nodeIdx int, ns []core.Neighbor) []Match {
	if len(ns) == 0 {
		return nil
	}
	out := make([]Match, len(ns))
	for i, nb := range ns {
		out[i] = Match{ID: GlobalID(nodeIdx, nb.ID), Dist: nb.Dist}
	}
	return out
}

// resultsFromLocal converts a node's batch answers to Results, carving
// every query's Matches from one flat arena sized by a counting pass — a
// 200-query batch costs two allocations of result storage, not 200.
func resultsFromLocal(nodeIdx int, res [][]core.Neighbor) []Result {
	out := make([]Result, len(res))
	total := 0
	for _, ns := range res {
		total += len(ns)
	}
	if total == 0 {
		return out
	}
	arena := make([]Match, 0, total)
	for i, ns := range res {
		if len(ns) == 0 {
			continue
		}
		base := len(arena)
		for _, nb := range ns {
			arena = append(arena, Match{ID: GlobalID(nodeIdx, nb.ID), Dist: nb.Dist})
		}
		out[i] = Result{Matches: arena[base:len(arena):len(arena)]}
	}
	return out
}

// resultsFromCluster converts coordinator batch answers to Results with
// the same flat-arena carving as resultsFromLocal.
func resultsFromCluster(res [][]cluster.Neighbor) []Result {
	out := make([]Result, len(res))
	total := 0
	for _, ns := range res {
		total += len(ns)
	}
	if total == 0 {
		return out
	}
	arena := make([]Match, 0, total)
	for i, ns := range res {
		if len(ns) == 0 {
			continue
		}
		base := len(arena)
		for _, nb := range ns {
			arena = append(arena, Match{ID: GlobalID(nb.Node, nb.ID), Dist: nb.Dist})
		}
		out[i] = Result{Matches: arena[base:len(arena):len(arena)]}
	}
	return out
}
