// Package plsh is a streaming similarity-search library: a Go
// implementation of Parallel Locality-Sensitive Hashing (PLSH) from
// "Streaming Similarity Search over one Billion Tweets using Parallel
// Locality-Sensitive Hashing" (Sundaram et al., VLDB 2013).
//
// PLSH answers R-near-neighbor queries over sparse high-dimensional unit
// vectors (e.g. IDF-weighted bag-of-words documents) under angular
// distance. It combines:
//
//   - an all-pairs LSH scheme: m half-width hash functions composed into
//     L = m(m−1)/2 tables, cutting hashing cost to O(NNZ·k·√L);
//   - cache-conscious static tables built by two-level parallel
//     partitioning with shared first-level partitions;
//   - a batched query engine with bitvector duplicate elimination, sorted
//     candidate extraction, and masked sparse dot products;
//   - streaming inserts through an insert-optimized delta table that is
//     periodically merged into the static structure by a background merge
//     pipeline: queries run lock-free against immutable copy-on-write
//     snapshots and are never buffered behind a rebuild (Merge waits for a
//     quiesced merge; Flush awaits an in-flight one; Stats surfaces
//     MergeInFlight), with atomic-tombstone deletions that are compacted
//     out of rebuilds, and well-defined expiration;
//   - an analytical performance model that selects the (k, m) parameters
//     for a target recall and memory budget;
//   - a multi-node coordinator (in-process or TCP) with a rolling insert
//     window for cluster-scale corpora, a request-ID-multiplexed wire
//     protocol, and per-node timeout / partial-results broadcast policies;
//   - optional durability: a Store opened with a data directory (Open)
//     journals every acknowledged write ahead of acknowledging it and
//     checkpoints snapshots on merge, so restarts — graceful or kill -9 —
//     recover every acknowledged document (Save/SaveAll checkpoint on
//     demand; see DESIGN.md for the on-disk format).
//
// Every operation takes a context.Context end to end — public API,
// coordinator, transport, node — so deadlines and cancellation abort a
// broadcast early instead of waiting on the slowest node.
//
// # Quick start
//
//	store, err := plsh.NewStore(plsh.Config{Dim: 1 << 18})
//	if err != nil { ... }
//	ctx := context.Background()
//	ids, err := store.Insert(ctx, docs)        // docs are unit plsh.Vectors
//	hits, err := store.Query(ctx, q)           // R-near neighbors of q
//	best, err := store.QueryTopK(ctx, q, 10)   // 10 nearest of them
//
// See the examples directory for streaming, first-story detection, and
// multi-node usage, and DESIGN.md for the paper-to-package map.
package plsh
