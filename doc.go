// Package plsh is a streaming similarity-search library: a Go
// implementation of Parallel Locality-Sensitive Hashing (PLSH) from
// "Streaming Similarity Search over one Billion Tweets using Parallel
// Locality-Sensitive Hashing" (Sundaram et al., VLDB 2013).
//
// PLSH answers R-near-neighbor queries over sparse high-dimensional unit
// vectors (e.g. IDF-weighted bag-of-words documents) under angular
// distance.
//
// # One Index, one Search
//
// The public API is one logical surface, the Index interface, implemented
// identically by a single-node *Store and a multi-node *Cluster
// (in-process via NewCluster/OpenCluster, or over TCP via DialCluster):
//
//	Insert(ctx, docs)           → []uint64 global IDs
//	Search(ctx, q, opts...)     → Result{Matches}
//	SearchBatch(ctx, qs, opts...) → []Result, Report
//	Delete / Doc / Merge / Flush / Save / Stats / Close
//
// Documents are identified by uint64 global IDs everywhere: a Cluster
// packs (group, local ID) via GlobalID — the replica group is the node
// when Config.Replicas is 1 — and a Store is simply node 0, so code
// written against Index scales from one process to a fleet without
// changing a call site.
//
// Query behavior is request-scoped, not frozen at construction: Search
// takes functional options so one index serves heterogeneous traffic —
//
//	res, _ := idx.Search(ctx, q)                       // R-near at the configured radius
//	res, _ = idx.Search(ctx, q, plsh.WithK(10))        // the 10 nearest of them
//	res, _ = idx.Search(ctx, q, plsh.WithRadius(1.1))  // a per-request radius
//	res, _, _ = idx.SearchBatch(ctx, qs,               // bounded latency, partial ok
//		plsh.WithNodeTimeout(50*time.Millisecond), plsh.AllowPartial())
//	res, _ = idx.Search(ctx, q,                        // race a slow replica
//		plsh.WithHedge(20*time.Millisecond))
//
// WithMaxCandidates bounds per-node distance computations for callers
// that prefer a bounded answer over an exhaustive one. The legacy
// Query/QueryBatch/QueryTopK/QueryBatchTimed methods remain as thin
// deprecated wrappers over Search and answer identically.
//
// # The engine underneath
//
// The implementation combines:
//
//   - an all-pairs LSH scheme: m half-width hash functions composed into
//     L = m(m−1)/2 tables, cutting hashing cost to O(NNZ·k·√L);
//   - cache-conscious static tables built by two-level parallel
//     partitioning with shared first-level partitions;
//   - a batched query engine with bitvector duplicate elimination, sorted
//     candidate extraction, and masked sparse dot products;
//   - streaming inserts through an insert-optimized delta table that is
//     periodically merged into the static structure by a background merge
//     pipeline: queries run lock-free against immutable copy-on-write
//     snapshots and are never buffered behind a rebuild (Merge waits for a
//     quiesced merge; Flush awaits an in-flight one; Stats surfaces
//     MergeInFlight), with atomic-tombstone deletions that are compacted
//     out of rebuilds, and well-defined expiration;
//   - an analytical performance model that selects the (k, m) parameters
//     for a target recall and memory budget (see Tune);
//   - a multi-node coordinator (in-process or TCP) with a rolling insert
//     window for cluster-scale corpora and a request-ID-multiplexed,
//     versioned wire protocol that carries the request-scoped search
//     parameters to every node;
//   - R-way replication (Config.Replicas) beyond the paper's single-copy
//     fleet: endpoints form mirrored replica groups — inserts write to
//     every member (journal-before-ack), searches pick one member and
//     fail over to its siblings on error, WithHedge races a slow replica
//     — so any single member can be SIGKILLed without losing answers,
//     and a restarted member rejoins from its journal (the Report traces
//     every attempt: failovers, hedges won, who answered);
//   - data-aware placement (Config.Placement = PlacementPartitioned):
//     instead of broadcasting every search to every replica group,
//     documents are placed by a short LSH routing signature and each
//     query probes only the groups that can hold its in-radius
//     neighbors, to a configurable recall target (RoutingRecall) —
//     falling back to the exact broadcast per query when routing cannot
//     help (WithTrace reports RoutedGroups/PrunedGroups per batch; the
//     default PlacementScatter stays bit-identical to the paper's
//     layout);
//   - optional durability: a Store opened with a data directory (Open)
//     journals every acknowledged write ahead of acknowledging it and
//     checkpoints snapshots on merge, so restarts — graceful or kill -9 —
//     recover every acknowledged document (Save checkpoints on demand;
//     see DESIGN.md for the on-disk format);
//   - runtime observability for long-running deployments: Stats carries
//     each node's served-operation counters (SearchesServed,
//     InsertsServed, DeletesServed) and its WAL write/fsync latency
//     quantiles, and Cluster.CoordStats counts the coordinator's
//     failovers, hedges launched/won, and group failures — the numbers
//     the SLO-gated soak harness (cmd/plsh-soak, scripts/soak.sh)
//     checks against injected faults.
//
// Every operation takes a context.Context end to end — public API,
// coordinator, transport, node — so deadlines and cancellation abort a
// broadcast early instead of waiting on the slowest node.
//
// # Quick start
//
//	store, err := plsh.NewStore(plsh.Config{Dim: 1 << 18})
//	if err != nil { ... }
//	ctx := context.Background()
//	ids, err := store.Insert(ctx, docs)              // docs are unit plsh.Vectors
//	res, err := store.Search(ctx, q)                 // R-near neighbors of q
//	best, err := store.Search(ctx, q, plsh.WithK(10)) // 10 nearest of them
//
// See the examples directory for streaming, first-story detection, and
// multi-node usage, and DESIGN.md for the paper-to-package map.
package plsh
