package node

import (
	"context"
	"slices"
	"sync"
	"testing"
	"time"
)

// holdMerge installs test hooks that block n's background merge at the
// given phase until the returned release func is called. entered is closed
// once the merge reaches the phase. Cleanup releases the hold, drains the
// node, and only then clears the hook — the hooks are plain globals, so no
// merge goroutine may be left running when they are written.
func holdMerge(t *testing.T, n *Node, phase *func()) (entered chan struct{}, release func()) {
	t.Helper()
	entered = make(chan struct{})
	releaseCh := make(chan struct{})
	*phase = func() {
		close(entered)
		<-releaseCh
	}
	var once sync.Once
	release = func() { once.Do(func() { close(releaseCh) }) }
	t.Cleanup(func() {
		release()
		if err := n.Flush(bg); err != nil {
			t.Error(err)
		}
		*phase = nil
	})
	return entered, release
}

// The acceptance property of the snapshot refactor: with a merge provably
// in flight (held open by a test hook), queries, inserts, and deletes all
// complete and stay correct instead of buffering behind the rebuild.
func TestQueriesCompleteDuringMerge(t *testing.T) {
	cfg := testConfig(2000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(600, 31)
	if _, err := n.Insert(bg, vs[:300]); err != nil {
		t.Fatal(err)
	}
	mustMerge(t, n)
	if _, err := n.Insert(bg, vs[300:500]); err != nil {
		t.Fatal(err)
	}

	entered, release := holdMerge(t, n, &testHookMergeStart)
	defer release()
	mergeErr := make(chan error, 1)
	go func() { mergeErr <- n.MergeNow(bg) }()
	<-entered

	st := n.Stats()
	if !st.MergeInFlight || st.MergePendingRows != 200 {
		t.Fatalf("merge state not surfaced: %+v", st)
	}
	// Queries over both static and delta rows answer while the rebuild is
	// blocked. Under the old lock-everything model these would hang.
	for i := 0; i < 500; i += 37 {
		if got := neighborIDs(mustQuery(t, n, vs[i])); !got[uint32(i)] {
			t.Fatalf("doc %d unavailable during merge", i)
		}
	}
	// Inserts land in the active delta and are immediately visible.
	if _, err := n.Insert(bg, vs[500:550]); err != nil {
		t.Fatal(err)
	}
	if got := neighborIDs(mustQuery(t, n, vs[520])); !got[520] {
		t.Fatal("doc inserted during merge not found")
	}
	// Deletes take effect immediately, without the write lock.
	n.Delete(10)
	if got := neighborIDs(mustQuery(t, n, vs[10])); got[10] {
		t.Fatal("doc deleted during merge still returned")
	}

	release()
	if err := <-mergeErr; err != nil {
		t.Fatal(err)
	}
	// MergeNow's target was the 500 rows present at the call; the 50 rows
	// inserted mid-merge stay in the delta.
	if n.StaticLen() != 500 || n.DeltaLen() != 50 {
		t.Fatalf("post-merge split: %d/%d", n.StaticLen(), n.DeltaLen())
	}
	for i := 0; i < 550; i += 41 {
		want := i != 10
		if got := neighborIDs(mustQuery(t, n, vs[i])); got[uint32(i)] != want {
			t.Fatalf("doc %d visibility after merge: got %v want %v", i, got[uint32(i)], want)
		}
	}
}

// Tombstones set while a merge is running must stick, whichever side of
// the rebuild they land on: before it → compacted out of the new buckets;
// after it (but before publication) → filtered on every query.
func TestDeleteMidMergeNotResurrected(t *testing.T) {
	cfg := testConfig(2000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(400, 33)
	if _, err := n.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	started, releaseStart := holdMerge(t, n, &testHookMergeStart)
	built, releaseBuilt := holdMerge(t, n, &testHookMergeBuilt)
	defer releaseStart()
	defer releaseBuilt()
	done := make(chan error, 1)
	go func() { done <- n.MergeNow(bg) }()

	<-started
	n.Delete(7) // lands before the rebuild reads tombstones
	releaseStart()
	<-built
	n.Delete(11) // lands after the rebuild, before the snapshot swap
	releaseBuilt()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	for _, id := range []uint32{7, 11} {
		if got := neighborIDs(mustQuery(t, n, vs[id])); got[id] {
			t.Fatalf("deleted doc %d resurrected by merge", id)
		}
	}
	// White-box: the pre-rebuild tombstone was compacted out of every
	// static bucket, not merely filtered.
	for l := 0; l < n.static.NumTables(); l++ {
		if slices.Contains(n.static.Table(l).Items, 7) {
			t.Fatal("compaction left tombstoned row in a static bucket")
		}
	}
	if n.Stats().Deleted != 2 {
		t.Fatalf("Deleted = %d", n.Stats().Deleted)
	}
}

// Retire must drain an in-flight merge before erasing state, and the node
// must come back empty and usable.
func TestRetireDrainsInFlightMerge(t *testing.T) {
	cfg := testConfig(2000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(300, 35)
	if _, err := n.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	entered, release := holdMerge(t, n, &testHookMergeStart)
	defer release()
	mergeRet := make(chan error, 1)
	go func() { mergeRet <- n.MergeNow(bg) }()
	<-entered

	retired := make(chan struct{})
	go func() { n.Retire(bg); close(retired) }()
	// The merge is held open, so Retire cannot have finished; it must be
	// parked draining the merge, while queries still answer.
	select {
	case <-retired:
		t.Fatal("Retire completed while a merge was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	if got := neighborIDs(mustQuery(t, n, vs[3])); !got[3] {
		t.Fatal("query failed while Retire drained the merge")
	}
	// A deadline-bound Retire must give up instead of waiting out the held
	// merge, leaving the node unretired.
	dctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	if err := n.Retire(dctx); err != context.DeadlineExceeded {
		t.Fatalf("deadline-bound Retire during merge: %v", err)
	}
	if n.Len() != 300 {
		t.Fatalf("canceled Retire erased state: Len = %d", n.Len())
	}
	release()
	<-retired
	// Join the forced-merge waiter before touching the node further: once
	// Retire erases its target rows it returns promptly (clamped target),
	// but left unjoined it could restart a merge over post-retire inserts
	// and race the test cleanup.
	if err := <-mergeRet; err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.StaticLen != 0 || st.DeltaLen != 0 || st.Deleted != 0 || st.MergeInFlight {
		t.Fatalf("retire left state: %+v", st)
	}
	if _, err := n.Insert(bg, vs[:50]); err != nil {
		t.Fatal(err)
	}
	if got := neighborIDs(mustQuery(t, n, vs[20])); !got[20] {
		t.Fatal("node unusable after draining retire")
	}
}

// Retire concurrent with a storm of snapshot queries: in-flight queries
// keep reading the retired (immutable) structures, nothing races, and the
// node is empty afterwards.
func TestRetireRacesInFlightQueries(t *testing.T) {
	cfg := testConfig(3000) // η·C = 300: inserts below also trigger merges
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(900, 37)
	queries := testDocs(16, 39)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := n.Query(bg, queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	for round := 0; round < 3; round++ {
		if _, err := n.Insert(bg, vs); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		n.Retire(bg)
	}
	close(stop)
	wg.Wait()
	if n.Len() != 0 {
		t.Fatalf("Len = %d after final retire", n.Len())
	}
}

// A MergeNow waiter whose target rows get erased by a concurrent Retire
// must still return (its quiescence target clamps to the shrunken row
// count) rather than spinning on a stale merge generation.
func TestMergeNowReturnsDespiteConcurrentRetire(t *testing.T) {
	cfg := testConfig(2000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(200, 47)
	for round := 0; round < 10; round++ {
		if _, err := n.Insert(bg, vs); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		mergeRet := make(chan error, 1)
		go func() { mergeRet <- n.MergeNow(bg) }()
		n.Retire(bg)
		select {
		case err := <-mergeRet:
			if err != nil {
				t.Fatalf("round %d merge: %v", round, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: MergeNow hung after concurrent Retire", round)
		}
		if n.Len() != 0 {
			// MergeNow may finish before or after the retire erases the
			// rows; either way the node must settle empty here.
			t.Fatalf("round %d: Len = %d after retire", round, n.Len())
		}
	}
}

// Single-document inserts must not degrade queries to a per-batch segment
// walk: trailing segments coalesce so the chain stays logarithmic, and the
// segments tile the delta rows exactly.
func TestSegmentCoalescing(t *testing.T) {
	cfg := testConfig(5000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(256, 41)
	for i := range vs {
		if _, err := n.Insert(bg, vs[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	s := n.snap.Load()
	if len(s.segs) > 10 {
		t.Fatalf("%d segments after 256 single-doc inserts; coalescing not logarithmic", len(s.segs))
	}
	next := s.nStatic
	for _, sg := range s.segs {
		if sg.base != next {
			t.Fatalf("segment base %d, want %d (segments must tile the delta)", sg.base, next)
		}
		if !sg.t.IsFrozen() {
			t.Fatal("published segment not frozen")
		}
		next += sg.t.Len()
	}
	if next != s.rows {
		t.Fatalf("segments cover up to row %d, want %d", next, s.rows)
	}
	for i := 0; i < len(vs); i += 17 {
		if got := neighborIDs(mustQuery(t, n, vs[i])); !got[uint32(i)] {
			t.Fatalf("doc %d lost in coalescing", i)
		}
	}
}

// A sustained mixed workload — concurrent inserts, queries, deletes,
// forced merges, flushes — exercised for the race detector, with a full
// consistency sweep at the end.
func TestConcurrentMixedWorkload(t *testing.T) {
	cfg := testConfig(4000) // η·C = 400 → background merges fire mid-run
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(2000, 43)
	if _, err := n.Insert(bg, vs[:200]); err != nil {
		t.Fatal(err)
	}
	queries := testDocs(12, 45)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := n.Query(bg, queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // deleter: tombstones racing queries and the merge
		defer wg.Done()
		for id := uint32(0); id < 100; id += 5 {
			n.Delete(id)
		}
	}()
	wg.Add(1)
	go func() { // merger/flusher racing the inserter's auto-merges
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := n.MergeNow(bg); err != nil {
				t.Errorf("merge: %v", err)
				return
			}
			if err := n.Flush(bg); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()
	for off := 200; off+100 <= 2000; off += 100 {
		if _, err := n.Insert(bg, vs[off:off+100]); err != nil {
			t.Fatalf("insert at %d: %v", off, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := n.Flush(bg); err != nil {
		t.Fatal(err)
	}
	if n.Len() != 2000 {
		t.Fatalf("Len = %d", n.Len())
	}
	for i := 0; i < 2000; i += 101 {
		deleted := i < 100 && i%5 == 0
		if got := neighborIDs(mustQuery(t, n, vs[i])); got[uint32(i)] == deleted {
			t.Fatalf("doc %d: deleted=%v but found=%v", i, deleted, got[uint32(i)])
		}
	}
}
