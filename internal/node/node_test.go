package node

import (
	"context"
	"errors"
	"sync"
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

var bg = context.Background()

func testConfig(capacity int) Config {
	return Config{
		Params:        lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity:      capacity,
		DeltaFraction: 0.1,
		AutoMerge:     true,
		Build:         core.Defaults(),
		Query:         core.QueryDefaults(),
	}
}

func testDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 2000, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

func mustQuery(t *testing.T, n *Node, q sparse.Vector) []core.Neighbor {
	t.Helper()
	res, err := n.Query(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustMerge(t *testing.T, n *Node) {
	t.Helper()
	if err := n.MergeNow(bg); err != nil {
		t.Fatal(err)
	}
}

func neighborIDs(ns []core.Neighbor) map[uint32]bool {
	m := map[uint32]bool{}
	for _, nb := range ns {
		m[nb.ID] = true
	}
	return m
}

func TestInsertQueryRoundTrip(t *testing.T) {
	n, err := New(testConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(200, 1)
	ids, err := n.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 200 || ids[0] != 0 || ids[199] != 199 {
		t.Fatalf("bad IDs: %v...%v", ids[0], ids[199])
	}
	// Every inserted doc must find itself.
	for i := 0; i < 200; i += 11 {
		got := neighborIDs(mustQuery(t, n, vs[i]))
		if !got[uint32(i)] {
			t.Fatalf("doc %d not found after insert", i)
		}
	}
	// Quiesce the auto-merge the inserts triggered so no background
	// goroutine outlives the test.
	if err := n.Flush(bg); err != nil {
		t.Fatal(err)
	}
}

// The central streaming invariant: a node with any static/delta split
// answers exactly like a fully static node over the same data.
func TestStaticDeltaSplitEquivalence(t *testing.T) {
	vs := testDocs(400, 3)
	queries := testDocs(30, 9)

	// Reference: everything static.
	ref, _ := New(testConfig(1000))
	if _, err := ref.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	mustMerge(t, ref)
	if ref.DeltaLen() != 0 || ref.StaticLen() != 400 {
		t.Fatalf("reference not fully static: %d/%d", ref.StaticLen(), ref.DeltaLen())
	}

	// Subject: half static, half delta (AutoMerge off to hold the split).
	cfg := testConfig(1000)
	cfg.AutoMerge = false
	sub, _ := New(cfg)
	if _, err := sub.Insert(bg, vs[:200]); err != nil {
		t.Fatal(err)
	}
	mustMerge(t, sub)
	if _, err := sub.Insert(bg, vs[200:]); err != nil {
		t.Fatal(err)
	}
	if sub.StaticLen() != 200 || sub.DeltaLen() != 200 {
		t.Fatalf("split not held: %d/%d", sub.StaticLen(), sub.DeltaLen())
	}

	for qi, q := range queries {
		a := mustQuery(t, ref, q)
		b := mustQuery(t, sub, q)
		core.SortNeighbors(a)
		core.SortNeighbors(b)
		if len(a) != len(b) {
			t.Fatalf("query %d: static-only %d results, split %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d result %d: %d vs %d", qi, i, a[i].ID, b[i].ID)
			}
		}
	}
}

func TestAutoMergeTriggers(t *testing.T) {
	cfg := testConfig(1000) // η·C = 100
	n, _ := New(cfg)
	vs := testDocs(250, 5)
	if _, err := n.Insert(bg, vs[:90]); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Merges != 0 {
		t.Fatal("merge before threshold")
	}
	if _, err := n.Insert(bg, vs[90:150]); err != nil { // delta 150 > 100 → merge
		t.Fatal(err)
	}
	// The trigger starts a background merge; Flush waits it out without
	// forcing another.
	if err := n.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Merges != 1 {
		t.Fatalf("Merges = %d, want 1", st.Merges)
	}
	if st.StaticLen != 150 || st.DeltaLen != 0 {
		t.Fatalf("post-merge state: %d/%d", st.StaticLen, st.DeltaLen)
	}
	// Data still queryable after merge.
	got := neighborIDs(mustQuery(t, n, vs[120]))
	if !got[120] {
		t.Fatal("doc lost in merge")
	}
}

func TestCapacityEnforced(t *testing.T) {
	n, _ := New(testConfig(100))
	vs := testDocs(150, 7)
	if _, err := n.Insert(bg, vs[:100]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, vs[100:]); !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if n.Len() != 100 {
		t.Fatalf("failed insert mutated node: Len = %d", n.Len())
	}
	if err := n.Flush(bg); err != nil { // quiesce the triggered auto-merge
		t.Fatal(err)
	}
}

func TestCanceledContextRejected(t *testing.T) {
	n, _ := New(testConfig(100))
	vs := testDocs(10, 7)
	if _, err := n.Insert(bg, vs[:5]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := n.Insert(ctx, vs[5:]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Insert on canceled ctx: %v", err)
	}
	if n.Len() != 5 {
		t.Fatalf("canceled insert mutated node: Len = %d", n.Len())
	}
	if _, err := n.Query(ctx, vs[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query on canceled ctx: %v", err)
	}
	if _, err := n.QueryBatch(ctx, vs[:3]); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatch on canceled ctx: %v", err)
	}
	if _, err := n.QueryTopK(ctx, vs[0], 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryTopK on canceled ctx: %v", err)
	}
	if err := n.MergeNow(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("MergeNow on canceled ctx: %v", err)
	}
	if err := n.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flush on canceled ctx: %v", err)
	}
	if err := n.Retire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Retire on canceled ctx: %v", err)
	}
	if n.Len() != 5 {
		t.Fatalf("canceled Retire mutated node: Len = %d", n.Len())
	}
}

func TestDeleteExcludesFromBothStructures(t *testing.T) {
	cfg := testConfig(1000)
	cfg.AutoMerge = false
	n, _ := New(cfg)
	vs := testDocs(100, 11)
	n.Insert(bg, vs[:50])
	mustMerge(t, n) // ids 0..49 static
	n.Insert(bg, vs[50:])
	// Delete one static and one delta doc.
	n.Delete(10)
	n.Delete(75)
	if got := neighborIDs(mustQuery(t, n, vs[10])); got[10] {
		t.Fatal("deleted static doc returned")
	}
	if got := neighborIDs(mustQuery(t, n, vs[75])); got[75] {
		t.Fatal("deleted delta doc returned")
	}
	if n.Stats().Deleted != 2 {
		t.Fatalf("Deleted = %d", n.Stats().Deleted)
	}
	// Deletion survives a merge (the bitvector is positional and rows are
	// preserved in order).
	mustMerge(t, n)
	if got := neighborIDs(mustQuery(t, n, vs[75])); got[75] {
		t.Fatal("deleted doc resurfaced after merge")
	}
}

func TestRetire(t *testing.T) {
	n, _ := New(testConfig(500))
	vs := testDocs(200, 13)
	n.Insert(bg, vs)
	n.Delete(5)
	n.Retire(bg)
	st := n.Stats()
	if st.StaticLen != 0 || st.DeltaLen != 0 || st.Deleted != 0 || st.Merges != 0 {
		t.Fatalf("retire left state: %+v", st)
	}
	if res := mustQuery(t, n, vs[0]); len(res) != 0 {
		t.Fatal("retired node still answers")
	}
	// Node is reusable after retirement.
	if _, err := n.Insert(bg, vs[:50]); err != nil {
		t.Fatal(err)
	}
	if got := neighborIDs(mustQuery(t, n, vs[20])); !got[20] {
		t.Fatal("node unusable after retire")
	}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	cfg := testConfig(1000)
	cfg.AutoMerge = false
	n, _ := New(cfg)
	vs := testDocs(300, 15)
	n.Insert(bg, vs[:150])
	mustMerge(t, n)
	n.Insert(bg, vs[150:])
	queries := testDocs(25, 17)
	batch, err := n.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single := mustQuery(t, n, q)
		core.SortNeighbors(single)
		got := append([]core.Neighbor(nil), batch[i]...)
		core.SortNeighbors(got)
		if len(single) != len(got) {
			t.Fatalf("query %d: %d vs %d", i, len(single), len(got))
		}
		for j := range single {
			if single[j].ID != got[j].ID {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

// QueryTopK must equal the full R-near answer sorted by distance and
// truncated to k — same candidates, bounded selection.
func TestQueryTopKMatchesTruncatedQuery(t *testing.T) {
	n, _ := New(testConfig(1000))
	t.Cleanup(func() { n.Flush(bg) }) // quiesce triggered auto-merges
	vs := testDocs(400, 27)
	if _, err := n.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	queries := testDocs(20, 29)
	for _, k := range []int{1, 3, 10} {
		for qi, q := range queries {
			full := mustQuery(t, n, q)
			core.SortNeighbors(full)
			want := full
			if k < len(want) {
				want = want[:k]
			}
			got, err := n.QueryTopK(bg, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d query %d entry %d: %+v, want %+v", k, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestConcurrentQueriesAndInserts(t *testing.T) {
	cfg := testConfig(5000)
	n, _ := New(cfg)
	t.Cleanup(func() { n.Flush(bg) }) // quiesce triggered auto-merges
	vs := testDocs(2000, 19)
	n.Insert(bg, vs[:500])
	queries := testDocs(20, 21)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				q := queries[(g*20+rep)%len(queries)]
				n.Query(bg, q)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 500; i+50 <= 2000; i += 50 {
			if _, err := n.Insert(bg, vs[i:i+50]); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if n.Len() != 2000 {
		t.Fatalf("Len = %d after concurrent run", n.Len())
	}
	// All docs findable afterwards.
	for i := 0; i < 2000; i += 199 {
		if got := neighborIDs(mustQuery(t, n, vs[i])); !got[uint32(i)] {
			t.Fatalf("doc %d lost", i)
		}
	}
}

func TestStatsTrackMaintenance(t *testing.T) {
	n, _ := New(testConfig(1000))
	vs := testDocs(300, 23)
	n.Insert(bg, vs) // triggers ≥1 background auto-merge (η·C = 100)
	if err := n.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Merges < 1 {
		t.Fatalf("Merges = %d", st.Merges)
	}
	if st.TotalMergeNS <= 0 || st.InsertNS <= 0 {
		t.Fatalf("maintenance times not tracked: %+v", st)
	}
	if st.MemoryBytes <= 0 {
		t.Fatal("MemoryBytes not reported")
	}
}

func TestDocReturnsStoredVector(t *testing.T) {
	n, _ := New(testConfig(100))
	vs := testDocs(10, 25)
	ids, _ := n.Insert(bg, vs)
	for i, id := range ids {
		got, known := n.Doc(id)
		if !known || got.NNZ() != vs[i].NNZ() {
			t.Fatalf("doc %d NNZ mismatch", i)
		}
		for j := range got.Idx {
			if got.Idx[j] != vs[i].Idx[j] || got.Val[j] != vs[i].Val[j] {
				t.Fatalf("doc %d content mismatch", i)
			}
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := testConfig(100)
	cfg.Params.K = 7 // odd
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestEmptyInsertNoop(t *testing.T) {
	n, _ := New(testConfig(100))
	ids, err := n.Insert(bg, nil)
	if err != nil || ids != nil {
		t.Fatalf("empty insert: ids=%v err=%v", ids, err)
	}
}

// TestDocKnownForEmptyDocument: Doc's known bool is the node's
// authoritative insertion record, not an inference from content — an
// inserted document that happens to be empty (possible through the raw
// node API, unlike the public Store which rejects empties) still reports
// known, and a never-inserted id reports unknown even though both have
// zero NNZ.
func TestDocKnownForEmptyDocument(t *testing.T) {
	n, err := New(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(3, 91)
	docs[1] = sparse.Vector{} // empty-adjacent: no terms at all
	ids, err := n.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	v, known := n.Doc(ids[1])
	if !known {
		t.Fatal("inserted empty document reported unknown")
	}
	if v.NNZ() != 0 {
		t.Fatal("empty document came back with terms")
	}
	if _, known := n.Doc(3); known {
		t.Fatal("never-inserted id reported known")
	}
}

// TestNodeSearchParams: the request-scoped parameters reach both halves
// of the snapshot — static engine and delta segments — without a merge.
func TestNodeSearchParams(t *testing.T) {
	cfg := testConfig(2000)
	cfg.AutoMerge = false // hold a static/delta split open
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(600, 93)
	if _, err := n.Insert(bg, docs[:300]); err != nil {
		t.Fatal(err)
	}
	if err := n.MergeNow(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, docs[300:]); err != nil {
		t.Fatal(err)
	}
	if n.StaticLen() == 0 || n.DeltaLen() == 0 {
		t.Fatalf("split not held: static=%d delta=%d", n.StaticLen(), n.DeltaLen())
	}
	oracle := func(q sparse.Vector, radius float64) map[uint32]bool {
		thr := sparse.CosThreshold(radius)
		out := map[uint32]bool{}
		for i, d := range docs {
			if sparse.Dot(q, d) >= thr {
				out[uint32(i)] = true
			}
		}
		return out
	}
	for qi := 0; qi < len(docs); qi += 53 {
		q := docs[qi]
		for _, radius := range []float64{0.9, 1.2} {
			res, err := n.Search(bg, q, SearchParams{Radius: radius})
			if err != nil {
				t.Fatal(err)
			}
			want := oracle(q, radius)
			for _, nb := range res {
				if !want[nb.ID] {
					t.Fatalf("radius %v: doc %d outside radius returned", radius, nb.ID)
				}
			}
			// The self-match (distance 0) always collides with itself.
			found := false
			for _, nb := range res {
				if nb.ID == uint32(qi) {
					found = true
				}
			}
			if !found {
				t.Fatalf("radius %v: query %d did not find itself", radius, qi)
			}
			// Sorted canonical order.
			for i := 1; i < len(res); i++ {
				a, b := res[i-1], res[i]
				if a.Dist > b.Dist || (a.Dist == b.Dist && a.ID >= b.ID) {
					t.Fatalf("radius %v: answers not in canonical order at %d", radius, i)
				}
			}
		}
		// K bounds and orders; MaxCandidates never invents answers.
		topk, err := n.Search(bg, q, SearchParams{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(topk) > 3 {
			t.Fatalf("K=3 answered %d", len(topk))
		}
		full, err := n.Search(bg, q, SearchParams{})
		if err != nil {
			t.Fatal(err)
		}
		inFull := map[uint32]bool{}
		for _, nb := range full {
			inFull[nb.ID] = true
		}
		bounded, err := n.Search(bg, q, SearchParams{MaxCandidates: 5})
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range bounded {
			if !inFull[nb.ID] {
				t.Fatalf("budgeted search invented doc %d", nb.ID)
			}
		}
	}
}

// TestQueryTopKNonPositiveK: the deprecated wrapper keeps its original
// contract — k <= 0 answers empty — even though SearchParams.K treats 0
// as unbounded (the opQueryTopK wire handler forwards K unguarded, so an
// old client sending k=0 must not suddenly receive the full answer set).
func TestQueryTopKNonPositiveK(t *testing.T) {
	n, err := New(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(20, 95)
	if _, err := n.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -1} {
		res, err := n.QueryTopK(bg, docs[0], k)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 0 {
			t.Fatalf("k=%d returned %d answers, want 0", k, len(res))
		}
	}
}
