package node

import (
	"os"
	"testing"

	"plsh/internal/persist"
)

// BenchmarkSave measures snapshot serialization: a quiesced 20k-document
// node is checkpointed to disk repeatedly, reporting throughput in
// snapshot megabytes per second (surfaced in benchmarks/latest.json as
// snapshot_save_mb_per_s).
func BenchmarkSave(b *testing.B) {
	n, err := New(testConfig(30000))
	if err != nil {
		b.Fatal(err)
	}
	docs := testDocs(20000, 3)
	if _, err := n.Insert(bg, docs); err != nil {
		b.Fatal(err)
	}
	if err := n.MergeNow(bg); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	for b.Loop() {
		if err := n.SaveTo(bg, dir); err != nil {
			b.Fatal(err)
		}
	}
	fi, err := os.Stat(persist.SnapshotPath(dir))
	if err != nil {
		b.Fatal(err)
	}
	mb := float64(fi.Size()) / (1 << 20)
	b.ReportMetric(mb*float64(b.N)/b.Elapsed().Seconds(), "snapshot-MB/s")
}

// BenchmarkRecover measures crash recovery when everything lives in the
// journal (the worst case: no snapshot to load, every document replayed
// and rehashed into delta segments), reporting replayed documents per
// second (surfaced in benchmarks/latest.json as wal_replay_docs_per_s).
func BenchmarkRecover(b *testing.B) {
	const nDocs = 10000
	dir := b.TempDir()
	cfg := testConfig(2 * nDocs)
	cfg.Dir = dir
	cfg.AutoMerge = false // keep every write in the journal
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	docs := testDocs(nDocs, 5)
	for off := 0; off < nDocs; off += 500 {
		if _, err := n.Insert(bg, docs[off:off+500]); err != nil {
			b.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		b.Fatal(err)
	}
	for b.Loop() {
		re, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if re.Len() != nDocs {
			b.Fatalf("recovered %d docs", re.Len())
		}
		if err := re.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nDocs)*float64(b.N)/b.Elapsed().Seconds(), "replay-docs/s")
}
