// Package node combines a static PLSH index with a streaming delta table
// into one single-node store — the per-node architecture of §4 and §6,
// reworked around copy-on-write snapshots so maintenance never blocks
// reads.
//
// A node owns one contiguous document arena. Rows [0, staticLen) are
// covered by the optimized static index; rows [staticLen, total) live in a
// chain of frozen, insert-optimized delta segments. The paper buffers
// queries during a merge ("queries received during the merge are buffered
// until the merge completes", §6.2–§6.3); this implementation does not.
// Instead:
//
//   - Queries atomically load an immutable snapshot{static engine, delta
//     segments, arena prefix, tombstones} and run entirely lock-free
//     against it — they never wait on inserts, merges, or each other.
//   - Inserts append rows to the arena and publish a new snapshot under a
//     short mutex; each batch becomes a frozen delta segment, and trailing
//     segments are coalesced (Bentley–Saxe style) so the segment count
//     stays logarithmic even under single-document inserts.
//   - When the delta exceeds η·C, the segments are rotated out and a single
//     background goroutine rebuilds the static structure over static+frozen
//     rows — rebuild is within 2.67× of any possible merge scheme (§6.2) —
//     then publishes the new snapshot with an atomic pointer swap. A fresh
//     active delta accepts inserts for the whole duration.
//
// Deletions set a tombstone bit with an atomic OR — safe concurrently with
// lock-free readers — and merges compact tombstoned rows out of the rebuilt
// buckets so they are dropped, not resurrected. Retirement (the rolling
// window of §6) drains any in-flight merge, then replaces the arena and
// tombstones wholesale; in-flight snapshot queries keep reading the old,
// now-immutable structures.
//
// A node becomes durable by setting Config.Dir: every acknowledged
// Insert/Delete is journaled to a write-ahead log before it is
// acknowledged, each background merge checkpoints the merged state as a
// snapshot (truncating the journal), and Open recovers the node —
// snapshot load plus journal-tail replay — so every acknowledged write
// survives a crash. See internal/persist and DESIGN.md for the format
// and the recovery invariants.
package node

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"plsh/internal/bitvec"
	"plsh/internal/core"
	"plsh/internal/delta"
	"plsh/internal/lshhash"
	"plsh/internal/persist"
	"plsh/internal/sparse"
)

// ErrFull is returned by Insert when accepting the batch would exceed the
// node's capacity; the caller (the cluster's insert window) must advance to
// the next node.
var ErrFull = errors.New("node: capacity reached")

// ErrNotFound is returned by Delete for a document ID that was never
// inserted, so callers can distinguish a no-op from a real tombstone.
var ErrNotFound = errors.New("node: document not found")

// ErrNotDurable is returned by Save on a node configured without a data
// directory.
var ErrNotDurable = errors.New("node: no data directory configured")

// testHookMergeStart and testHookMergeBuilt, when non-nil, run inside the
// background merge goroutine: Start before the rebuild begins, Built after
// the rebuild completes but before the new snapshot is published. Tests use
// them to hold a merge open deterministically; they must be set while the
// node is quiescent.
var testHookMergeStart, testHookMergeBuilt func()

// Config parameterizes a node.
type Config struct {
	// Params is the LSH family configuration shared by static and delta.
	Params lshhash.Params
	// Capacity is C, the maximum number of documents the node holds.
	Capacity int
	// DeltaFraction is η: a background merge of the delta into the static
	// structure starts once the delta exceeds η·C (paper: 0.1, chosen so
	// worst-case query time stays within 1.5× of static, §6.3).
	DeltaFraction float64
	// AutoMerge, when false, disables the η trigger so experiments can
	// hold a chosen static/delta split (Fig. 11). MergeNow still works.
	AutoMerge bool
	// Build configures static (re)construction.
	Build core.BuildOptions
	// Query configures the static query path; Radius also applies to the
	// delta path.
	Query core.QueryOptions
	// Seed feeds the hash family if Params.Seed is zero.
	Seed uint64
	// BucketReservoir, when > 0, bounds every hash bucket (static and
	// delta) to at most this many entries, keeping the survivors by
	// reservoir sampling — the SLASH-style cap that makes per-insert and
	// per-bucket-scan cost independent of stream skew. Sampling is
	// deterministic in the node's seed. 0 (the default) keeps buckets
	// exact and unbounded.
	BucketReservoir int
	// Dir, when non-empty, makes the node durable: Open recovers its state
	// from Dir (latest snapshot + journal-tail replay), acknowledged
	// writes are journaled there first, and background merges checkpoint
	// snapshots that truncate the journal.
	Dir string
	// SyncWrites fsyncs every journal append before the write is
	// acknowledged. Off, acknowledged writes survive process death
	// (kill -9); on, they also survive machine crash, at a large
	// per-write cost.
	SyncWrites bool
}

// withDefaults normalizes cfg.
func (cfg Config) withDefaults() Config {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 20
	}
	if cfg.DeltaFraction <= 0 || cfg.DeltaFraction > 1 {
		cfg.DeltaFraction = 0.1
	}
	if cfg.Params.Seed == 0 {
		cfg.Params.Seed = cfg.Seed
	}
	if cfg.Query.Radius <= 0 {
		cfg.Query.Radius = 0.9
	}
	return cfg
}

// SearchParams are the request-scoped knobs of one search — the
// parameter struct that flows from the public Search options through the
// coordinator and the wire protocol down to this entry point. The zero
// value means "the node's configured defaults, unbounded".
type SearchParams struct {
	// Radius overrides the configured query radius (radians) when > 0.
	// The hash tables are radius-agnostic, so any radius is answerable;
	// recall guarantees still assume the (k, m) geometry suits it.
	Radius float64
	// K, when > 0, bounds the answer to the k nearest in-radius documents,
	// sorted ascending by (distance, id).
	K int
	// MaxCandidates, when > 0, bounds how many unique candidates (static
	// engine plus delta segments combined) this query evaluates distances
	// for — a per-request latency/recall trade.
	MaxCandidates int
	// Routing, when nonzero, tags the batch as a routed sub-batch from a
	// partitioned-placement coordinator (RoutingPartitioned). Nodes answer
	// identically either way today — the hint versions the wire protocol,
	// so a pre-routing server rejects routed traffic loudly instead of
	// silently mis-serving it, and reserves room for node-side routing
	// awareness later.
	Routing uint8
}

// Routing hint values for SearchParams.Routing.
const (
	// RoutingNone marks an ordinary (scatter/broadcast or single-node)
	// search. The zero value, and byte-stable on the wire with peers that
	// predate routing.
	RoutingNone uint8 = 0
	// RoutingPartitioned marks a routed sub-batch: the coordinator sent
	// this node only the queries whose probe sets include its group.
	RoutingPartitioned uint8 = 1
)

// Stats summarizes a node's state and accumulated maintenance costs.
type Stats struct {
	StaticLen int
	// DeltaLen counts every row not yet covered by the static index,
	// including rows an in-flight background merge is currently absorbing.
	DeltaLen int
	Capacity int
	Deleted  int
	Merges   int
	// MergeInFlight reports whether a background merge is running right
	// now; MergePendingRows is how many delta rows it will absorb.
	MergeInFlight    bool
	MergePendingRows int
	LastMergeDur     time.Duration
	TotalMergeNS     int64
	InsertNS         int64
	MemoryBytes      int64
	// PersistErr is the most recent background persistence failure
	// (checkpoint or journal rotation) on a durable node; empty when
	// healthy. Failed checkpoints leave the journal untruncated, so
	// recovery still sees every acknowledged write.
	PersistErr string

	// Operation counters, accumulated since construction (gob-appended
	// after PersistErr — the wire response carries Stats whole, and a
	// peer that predates these fields reads/serves zeros). Searches
	// counts queries answered by SearchBatch, Inserts documents
	// accepted, Deletes tombstones acknowledged.
	SearchesServed uint64
	InsertsServed  uint64
	DeletesServed  uint64
	// WAL latency quantiles in nanoseconds over the node's lifetime:
	// per-record segment write and (with SyncWrites) per-record fsync —
	// the server-side cause a soak report correlates acknowledged-write
	// tails against. Zero on in-memory nodes.
	WALAppendP50NS int64
	WALAppendP99NS int64
	WALFsyncP50NS  int64
	WALFsyncP99NS  int64
}

// segment is one frozen delta table covering arena rows
// [base, base+t.Len()).
type segment struct {
	base int
	t    *delta.Table
}

// snapshot is the immutable state a query runs against. Every field is
// either immutable after publication (engine, static, segments, arena
// prefix) or safe for concurrent atomic access (tombstones), so readers
// touch no locks at all.
type snapshot struct {
	eng     *core.Engine // over arena rows [0, nStatic)
	nStatic int
	segs    []segment      // ascending base, covering [nStatic, rows)
	store   *sparse.Matrix // read-only arena prefix covering [0, rows)
	rows    int
	deleted *bitvec.Vector // shared tombstones; atomic access only
}

// Node is a single-node PLSH store. All exported methods are safe for
// concurrent use: queries load the current snapshot atomically and run
// lock-free; inserts, merges and retirement serialize behind a short
// mutex that is never held across a rebuild, so a multi-second merge
// stalls nobody.
type Node struct {
	cfg Config
	fam *lshhash.Family

	snap atomic.Pointer[snapshot]

	mu      sync.Mutex     // guards everything below
	store   *sparse.Matrix // master arena; append-only until Retire
	deleted *bitvec.Vector // capacity-sized; replaced wholesale on Retire
	segs    []segment      // unmerged delta segments, ascending base
	static  *core.Static   // current published static index
	eng     *core.Engine
	nStatic int

	merging    bool
	mergeUpTo  int           // arena rows the in-flight merge covers
	mergeDone  chan struct{} // closed when the in-flight merge completes
	coalescing bool          // a coalescer is rebuilding segments off-lock

	merges       int
	lastMergeDur time.Duration
	totalMergeNS int64
	insertNS     int64

	// wal is the write-ahead journal of a durable node; nil otherwise.
	// Set once at construction, never replaced.
	wal        *persist.WAL
	persistErr atomic.Pointer[string]

	// dwsPool recycles delta-side query workspaces, mirroring the static
	// engine's private-bitvector-per-query design.
	dwsPool sync.Pool
	// batchPool recycles SearchBatch answer buffers (the [][]Neighbor and
	// each per-query entry's backing array) between batches; see
	// ReleaseResults for the ownership contract.
	batchPool sync.Pool
	// outstanding counts batch answer buffers checked out of batchPool and
	// not yet released. Tests use it to prove the release-exactly-once
	// contract (a strand leaves it positive, a double release drives it
	// negative); it costs one atomic add per batch on each side.
	outstanding atomic.Int64

	// Operation counters behind Stats (one atomic add per op; survive
	// Retire, unlike the maintenance counters, because they describe
	// served traffic, not current contents).
	searchesServed atomic.Uint64
	insertsServed  atomic.Uint64
	deletesServed  atomic.Uint64
}

// deltaWorkspace is one search's private delta-merge state.
//
//plshvet:scratch owned per-search workspace (bitvec, candidate and score buffers); results are copied out before it returns to the pool
type deltaWorkspace struct {
	seen   *bitvec.Vector
	cand   []uint32
	mask   *sparse.QueryMask
	scores []float32
	sketch []uint32
}

// newArena allocates a document arena for cfg: capacity rows with room
// for ~8 non-zeros per document before the value arenas first grow.
func newArena(cfg Config) *sparse.Matrix {
	return sparse.NewMatrix(cfg.Params.Dim, cfg.Capacity, cfg.Capacity*8)
}

// New builds an empty node — or, when cfg.Dir is set, recovers one from
// its data directory (see Open).
//
//plshvet:ignore ctxcheck ctx-less compatibility shim; Open is the ctx-aware form
func New(cfg Config) (*Node, error) { return Open(context.Background(), cfg) }

// Open builds a node. With cfg.Dir set it is the durable boot path: load
// the latest snapshot (rejecting checksum and parameter mismatches),
// replay the journal tail on top of it — every acknowledged write lands,
// a torn tail record does not — and open the journal for new appends.
// ctx bounds the replay. Without cfg.Dir it returns an empty in-memory
// node.
func Open(ctx context.Context, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	fam, err := lshhash.NewFamily(cfg.Params)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		fam:     fam,
		store:   newArena(cfg),
		deleted: bitvec.New(cfg.Capacity),
	}
	n.dwsPool.New = func() any {
		return &deltaWorkspace{
			seen:   bitvec.New(1024),
			scores: make([]float32, cfg.Params.NumFuncs()),
			sketch: make([]uint32, cfg.Params.M),
			mask:   sparse.NewQueryMask(cfg.Params.Dim),
		}
	}
	if cfg.Dir == "" {
		n.initStaticLocked() // no readers yet; mu formality only
		n.publishLocked()
		return n, nil
	}
	if err := n.recover(ctx); err != nil {
		return nil, err
	}
	return n, nil
}

// recover rebuilds the node from its data directory: install the latest
// snapshot (if any), replay the journal tail, then open the journal for
// appending. Runs before the node is shared, so plain state writes are
// safe; the locked helpers are used for their invariants, not exclusion.
func (n *Node) recover(ctx context.Context) error {
	cfg := n.cfg
	snap, err := persist.ReadSnapshot(cfg.Dir)
	switch {
	case errors.Is(err, persist.ErrNoSnapshot):
		n.initStaticLocked()
	case err != nil:
		return err
	default:
		if snap.Params != cfg.Params {
			return fmt.Errorf("node: snapshot in %s was written with params %+v, node configured with %+v",
				cfg.Dir, snap.Params, cfg.Params)
		}
		if snap.Rows > cfg.Capacity {
			return fmt.Errorf("node: snapshot in %s holds %d rows, over capacity %d",
				cfg.Dir, snap.Rows, cfg.Capacity)
		}
		n.store.AppendMatrix(snap.Arena)
		// The snapshot's tombstone words are trimmed to its rows; the live
		// vector is capacity-sized.
		words := n.deleted.Words()
		copy(words[:len(snap.Deleted)], snap.Deleted)
		n.nStatic = snap.Rows
		if snap.Rows == 0 {
			n.initStaticLocked()
		} else {
			// The serialized buckets go straight back into a Static — no
			// rehashing; this is what makes recovery O(bytes), not O(build).
			st, err := core.StaticFromTables(n.fam, snap.Rows, snap.Tables)
			if err != nil {
				return fmt.Errorf("node: %w", err)
			}
			prefix := n.store.Prefix(snap.Rows)
			eng := core.NewEngine(st, prefix, cfg.Query)
			eng.SetDeleted(n.deleted)
			n.static, n.eng = st, eng
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	err = persist.ReplayWAL(cfg.Dir, func(rec *persist.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return n.applyRecordLocked(rec)
	})
	if err != nil {
		return err
	}
	n.publishLocked()
	wal, err := persist.OpenWAL(cfg.Dir, cfg.SyncWrites)
	if err != nil {
		return err
	}
	n.wal = wal
	// A fat recovered delta merges in the background like any other.
	if cfg.AutoMerge &&
		float64(n.store.Rows()-n.nStatic) > cfg.DeltaFraction*float64(cfg.Capacity) {
		n.startMergeLocked(n.store.Rows())
	}
	return nil
}

// applyRecordLocked replays one journal record. Inserts wholly covered by
// the snapshot are skipped; anything else must land exactly at the arena
// tail — journal bases are assigned under the writer mutex, so a gap or
// overlap means the directory's snapshot and journal disagree.
func (n *Node) applyRecordLocked(rec *persist.Record) error {
	switch rec.Kind {
	case persist.RecordInsert:
		if rec.Base+len(rec.Docs) <= n.nStatic {
			return nil // covered by the snapshot
		}
		if rec.Base != n.store.Rows() {
			return fmt.Errorf("node: journal replay: insert at row %d, expected %d", rec.Base, n.store.Rows())
		}
		if rec.Base+len(rec.Docs) > n.cfg.Capacity {
			return fmt.Errorf("node: journal replay: %d rows exceed capacity %d",
				rec.Base+len(rec.Docs), n.cfg.Capacity)
		}
		for _, v := range rec.Docs {
			for _, c := range v.Idx {
				if int(c) >= n.cfg.Params.Dim {
					return fmt.Errorf("node: journal replay: column %d out of dimension %d", c, n.cfg.Params.Dim)
				}
			}
		}
		t := n.newDelta()
		t.Insert(rec.Docs)
		t.Freeze()
		for _, v := range rec.Docs {
			n.store.AppendRow(v)
		}
		n.segs = append(n.segs, segment{base: rec.Base, t: t})
		n.coalesceLoopLocked()
	case persist.RecordDelete:
		if int(rec.ID) >= n.store.Rows() {
			return fmt.Errorf("node: journal replay: delete of unknown row %d", rec.ID)
		}
		n.deleted.SetAtomic(int(rec.ID))
	case persist.RecordRetire:
		n.resetLocked()
	default:
		return fmt.Errorf("node: journal replay: unknown record kind %d", rec.Kind)
	}
	return nil
}

// newDelta builds an empty delta segment under the node's configuration,
// bucket-reservoir bound included. Segments share one sampling seed: the
// stream each segment's reservoir sees is its own insert order, so the
// bound stays deterministic for a given insert sequence.
func (n *Node) newDelta() *delta.Table {
	t := delta.New(n.fam, n.cfg.Build.Workers)
	if n.cfg.BucketReservoir > 0 {
		t.SetReservoir(n.cfg.BucketReservoir, n.cfg.Params.Seed^0xd6e8feb86659fd93)
	}
	return t
}

// initStaticLocked (re)builds the static index and engine over the current
// arena's first nStatic rows — used at construction and retirement, when
// the delta is empty. Callers hold mu (or are in New).
func (n *Node) initStaticLocked() {
	st, eng := n.buildStatic(n.store.Prefix(n.nStatic), n.deleted)
	n.static, n.eng = st, eng
}

// buildStatic constructs a static index plus query engine over an immutable
// arena prefix. It takes no locks and touches no mutable node state, so the
// background merge calls it while inserts and queries proceed.
func (n *Node) buildStatic(prefix *sparse.Matrix, del *bitvec.Vector) (*core.Static, *core.Engine) {
	st, err := core.Build(n.fam, prefix, n.cfg.Build)
	if err != nil {
		// The store and family share Dim by construction; this is
		// unreachable absent memory corruption.
		panic(fmt.Sprintf("node: rebuild failed: %v", err))
	}
	if del.CountAtomic() > 0 {
		// Tombstone compaction: rows deleted before this point never become
		// candidates again. Later deletions are caught by the engine's
		// per-query tombstone filter.
		st.Compact(func(id uint32) bool { return del.TestAtomic(int(id)) }, n.cfg.Build.Workers)
	}
	if n.cfg.BucketReservoir > 0 {
		// Cap after compaction so tombstoned rows never consume reservoir
		// slots that live rows could have kept.
		st.CapBuckets(n.cfg.BucketReservoir, n.cfg.Params.Seed^0xa5a3564e06f8e3c1, n.cfg.Build.Workers)
	}
	eng := core.NewEngine(st, prefix, n.cfg.Query)
	eng.SetDeleted(del)
	return st, eng
}

// publishLocked installs a fresh immutable snapshot of the current state.
// Callers hold mu. The segment slice is cloned so later in-place edits
// (coalescing, merge completion) cannot reach already-published snapshots.
func (n *Node) publishLocked() {
	rows := n.store.Rows()
	n.snap.Store(&snapshot{
		eng:     n.eng,
		nStatic: n.nStatic,
		segs:    slices.Clone(n.segs),
		store:   n.store.Prefix(rows),
		rows:    rows,
		deleted: n.deleted,
	})
}

// Len returns the number of live rows (including deleted-but-present ones).
func (n *Node) Len() int { return n.snap.Load().rows }

// StaticLen returns the number of rows covered by the static index.
func (n *Node) StaticLen() int { return n.snap.Load().nStatic }

// DeltaLen returns the number of rows not yet covered by the static index
// (frozen segments awaiting or undergoing a merge, plus the active delta).
func (n *Node) DeltaLen() int {
	s := n.snap.Load()
	return s.rows - s.nStatic
}

// Capacity returns C.
func (n *Node) Capacity() int { return n.cfg.Capacity }

// Family exposes the node's hash family (shared with tests and the model).
func (n *Node) Family() *lshhash.Family { return n.fam }

// Insert appends a batch of documents, returning their node-local IDs.
// The batch must fit the remaining capacity, else ErrFull and nothing is
// inserted. When the delta exceeds η·C a background merge is kicked off;
// Insert does not wait for it.
//
// Cancellation is checked before any state changes; once the batch starts
// it runs to completion so the index never holds a partially applied batch.
func (n *Node) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	if len(vs) == 0 {
		//plshvet:ignore walorder an empty batch mutates nothing, so there is nothing to journal before acknowledging it
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	// Hash the batch and build its frozen segment before taking the mutex:
	// the table depends only on the documents, not on where in the arena
	// they land, so the expensive per-batch work never blocks concurrent
	// Stats/Flush/MergeNow or other inserts. (A batch that then fails the
	// capacity check wastes this work — rare and terminal for the node.)
	t := n.newDelta()
	t.Insert(vs)
	t.Freeze()
	n.mu.Lock()
	if n.store.Rows()+len(vs) > n.cfg.Capacity {
		n.mu.Unlock()
		return nil, ErrFull
	}
	base := n.store.Rows()
	if n.wal != nil {
		// Write-ahead: the batch is journaled — at the base the mutex just
		// assigned, keeping journal order equal to arena order — before any
		// in-memory state changes, and acknowledged only after the journal
		// accepts it. A journal failure leaves the node untouched.
		//plshvet:ignore lockorder journal-before-ack: the append must commit under the insert mutex so journal order equals arena order; queries never take n.mu
		if err := n.wal.AppendInsert(base, vs); err != nil {
			n.mu.Unlock()
			return nil, err
		}
	}
	ids := make([]uint32, len(vs))
	for i, v := range vs {
		ids[i] = uint32(n.store.AppendRow(v))
	}
	n.segs = append(n.segs, segment{base: base, t: t})
	n.coalesceLoopLocked()
	n.insertNS += int64(time.Since(t0))
	n.publishLocked()
	if n.cfg.AutoMerge && !n.merging &&
		float64(n.store.Rows()-n.nStatic) > n.cfg.DeltaFraction*float64(n.cfg.Capacity) {
		n.startMergeLocked(n.store.Rows())
	}
	n.mu.Unlock()
	n.insertsServed.Add(uint64(len(vs)))
	return ids, nil
}

// coalesceLoopLocked merges trailing delta segments while the next-older
// one is within 2× of the newest (the Bentley–Saxe logarithmic scheme), so
// the per-query segment walk stays O(log deltaLen) even under single-
// document inserts, at amortized O(log) rebucketing per row.
//
// Rebucketing depends only on the pair's immutable sketches and the
// tombstones, so each step releases mu for the build and revalidates
// before splicing — the mutex is never held across the expensive work. At
// most one coalescer runs at a time; concurrent inserts skip and leave the
// tail for the next round (a mid-list pair missed that way is absorbed no
// later than the next merge). Entered and exited with mu held.
func (n *Node) coalesceLoopLocked() {
	if n.coalescing {
		return
	}
	n.coalescing = true
	defer func() { n.coalescing = false }()
	for {
		a, b, ok := n.coalesceCandidateLocked()
		if !ok {
			return
		}
		del := n.deleted
		n.mu.Unlock()
		merged := delta.Coalesce(n.fam, a.t, b.t, n.cfg.Build.Workers, func(i int) bool {
			return del.TestAtomic(a.base + i)
		})
		n.mu.Lock()
		// Revalidate: a completed background merge may have absorbed and
		// dropped the pair while we rebuilt it. Segments never reorder, so
		// the pair is identifiable by adjacency; splice in place (published
		// snapshots hold clones and are unaffected), else discard.
		for i := 0; i+1 < len(n.segs); i++ {
			if n.segs[i].t == a.t && n.segs[i+1].t == b.t {
				n.segs[i] = segment{base: a.base, t: merged}
				n.segs = append(n.segs[:i+1], n.segs[i+2:]...)
				break
			}
		}
	}
}

// coalesceCandidateLocked returns the top two segments when they should
// coalesce: both outside any in-flight merge's frozen range, with the
// older within 2× of the newer. Callers hold mu.
func (n *Node) coalesceCandidateLocked() (a, b segment, ok bool) {
	if len(n.segs) < 2 {
		return segment{}, segment{}, false
	}
	a = n.segs[len(n.segs)-2]
	b = n.segs[len(n.segs)-1]
	floor := n.nStatic
	if n.merging {
		floor = n.mergeUpTo
	}
	if a.base < floor || a.t.Len() > 2*b.t.Len() {
		return segment{}, segment{}, false
	}
	return a, b, true
}

// startMergeLocked freezes every segment below upTo and starts the single
// background merge goroutine over arena rows [0, upTo). Callers hold mu,
// have checked that no merge is in flight, and pass upTo equal to the
// current row count — the rotation invariant below depends on it.
func (n *Node) startMergeLocked(upTo int) {
	if upTo <= n.nStatic {
		return // nothing to absorb
	}
	token := 0
	if n.wal != nil {
		// Rotate the journal at the merge boundary. Every journaled record
		// was both appended and applied under mu with upTo the current row
		// count, so everything in the sealed segments is covered by the
		// snapshot this merge's checkpoint will write — the invariant that
		// makes truncating them safe. If rotation fails, the merge still
		// runs; only the checkpoint is skipped, so no journal data is lost.
		t, err := n.wal.Rotate()
		if err != nil {
			n.notePersistErr(err)
		} else {
			token = t
		}
	}
	n.merging = true
	n.mergeUpTo = upTo
	n.mergeDone = make(chan struct{})
	go n.runMerge(n.store.Prefix(upTo), n.deleted, upTo, token, n.mergeDone)
}

// runMerge is the background merge pipeline: rebuild the static structure
// over the frozen prefix without holding any lock, then publish the result
// with a brief critical section and an atomic snapshot swap. Queries and
// inserts proceed throughout. On a durable node the merged state is then
// checkpointed — snapshot written, sealed journal segments truncated —
// still off-lock, before done closes (so Flush/MergeNow return with the
// merge durable).
func (n *Node) runMerge(prefix *sparse.Matrix, del *bitvec.Vector, upTo, token int, done chan struct{}) {
	if h := testHookMergeStart; h != nil {
		h()
	}
	t0 := time.Now()
	st, eng := n.buildStatic(prefix, del)
	dur := time.Since(t0)
	if h := testHookMergeBuilt; h != nil {
		h()
	}

	n.mu.Lock()
	n.static, n.eng, n.nStatic = st, eng, upTo
	// Drop the segments the new static index now covers. Build a fresh
	// slice: published snapshots still reference the old segments.
	var keep []segment
	for _, sg := range n.segs {
		if sg.base >= upTo {
			keep = append(keep, sg)
		}
	}
	n.segs = keep
	n.merges++
	n.lastMergeDur = dur
	n.totalMergeNS += int64(dur)
	n.merging = false
	n.publishLocked()
	// Sustained-ingest chaining: if the active delta outgrew η·C while this
	// merge ran, immediately start the next one.
	if n.cfg.AutoMerge &&
		float64(n.store.Rows()-n.nStatic) > n.cfg.DeltaFraction*float64(n.cfg.Capacity) {
		n.startMergeLocked(n.store.Rows())
	}
	n.mu.Unlock()
	if token > 0 {
		// st, prefix and the tombstones are immutable/atomic, so the
		// checkpoint serializes them without any lock. WAL.Checkpoint
		// discards this write if a chained merge's newer checkpoint
		// already landed, so the on-disk snapshot never regresses.
		if err := n.wal.Checkpoint(makeSnapshot(n.cfg, prefix, st, del, upTo), token); err != nil {
			n.notePersistErr(err)
		}
	}
	close(done)
}

// makeSnapshot assembles the durable image of a merged state: rows
// documents, their static buckets, and the tombstone words trimmed and
// masked to exactly rows bits (stale bits past the row count would
// otherwise pre-delete future inserts on recovery).
func makeSnapshot(cfg Config, prefix *sparse.Matrix, st *core.Static, del *bitvec.Vector, rows int) *persist.Snapshot {
	words := del.Words()
	nw := (rows + 63) / 64
	dw := make([]uint64, nw)
	for i := range dw {
		dw[i] = atomic.LoadUint64(&words[i])
	}
	if rows%64 != 0 {
		dw[nw-1] &= 1<<(rows%64) - 1
	}
	var tables []core.Table
	if rows > 0 {
		// An empty index's tables are all offsets and no items; rebuilding
		// them on load is cheaper than serializing L·2^k zeros.
		tables = st.Tables()
	}
	return &persist.Snapshot{
		Params:   cfg.Params,
		Capacity: cfg.Capacity,
		Rows:     rows,
		Arena:    prefix,
		Tables:   tables,
		Deleted:  dw,
	}
}

func (n *Node) notePersistErr(err error) {
	s := err.Error()
	n.persistErr.Store(&s)
}

// awaitMergeLocked waits out one completion of the in-flight merge,
// honoring ctx. Callers hold mu with n.merging true; on nil return the
// lock is held again, on error (canceled ctx) it is released.
func (n *Node) awaitMergeLocked(ctx context.Context) error {
	done := n.mergeDone
	n.mu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	n.mu.Lock()
	return nil
}

// MergeNow forces every row present at the time of the call into the static
// structure and returns once that state is reached (a quiesced merge): it
// rotates the active delta, waits out or chains onto any in-flight merge,
// and honors ctx while waiting. Queries and inserts are never blocked by
// the work it triggers.
func (n *Node) MergeNow(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	target := n.store.Rows()
	for {
		// A concurrent Retire can erase the rows this call set out to
		// merge; clamping the target to the current row count keeps the
		// quiescence condition reachable (and trivially satisfied on an
		// emptied node).
		if r := n.store.Rows(); r < target {
			target = r
		}
		if n.nStatic >= target {
			n.mu.Unlock()
			return nil
		}
		if !n.merging {
			n.startMergeLocked(n.store.Rows())
		}
		if err := n.awaitMergeLocked(ctx); err != nil {
			return err
		}
	}
}

// Flush waits for any in-flight background merge (including auto-merge
// chains) to finish without forcing one, honoring ctx. It returns nil
// immediately when no merge is running.
func (n *Node) Flush(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	for n.merging {
		if err := n.awaitMergeLocked(ctx); err != nil {
			return err
		}
	}
	n.mu.Unlock()
	return nil
}

// Delete marks a node-local ID as deleted; it will not be returned by
// queries, including queries running right now against older snapshots
// (tombstones are shared and read atomically). Safe to call concurrently
// with queries, inserts, and an in-flight merge: rows deleted before the
// merge's rebuild are compacted out of the new buckets, rows deleted after
// are filtered per query. Deleting an ID that was never inserted returns
// ErrNotFound; on a durable node the tombstone is journaled before the
// call returns.
func (n *Node) Delete(id uint32) error {
	if n.wal == nil {
		s := n.snap.Load()
		if int(id) >= s.rows {
			return ErrNotFound
		}
		s.deleted.SetAtomic(int(id))
		n.deletesServed.Add(1)
		return nil
	}
	// Durable path: journal, then apply, both under the writer mutex.
	// Journal rotation also runs under mu, so a tombstone journaled into a
	// sealed (about-to-be-truncated) segment is always applied before the
	// sealing merge's checkpoint copies the tombstone words — it can never
	// fall between the truncated journal and the snapshot.
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) >= n.store.Rows() {
		return ErrNotFound
	}
	//plshvet:ignore lockorder journal-before-ack: the tombstone is journaled under n.mu so recovery replays deletes in mutation order
	if err := n.wal.AppendDelete(id); err != nil {
		return err
	}
	n.deleted.SetAtomic(int(id))
	n.deletesServed.Add(1)
	return nil
}

// Retire erases the node's contents (the rolling-window expiration of §6:
// "the contents of the these nodes are erased"), retaining the hash family
// and capacity. It drains any in-flight merge first — honoring ctx while
// waiting, like MergeNow and Flush; a canceled drain returns ctx.Err()
// with the node unretired — then replaces the arena and tombstones
// wholesale, so queries holding older snapshots keep reading the retired
// (immutable) structures and simply age out. On a durable node the
// erasure is journaled before it happens and checkpointed after, so a
// crash at any point recovers to either the full or the empty state —
// never a resurrection of expired documents.
func (n *Node) Retire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	for n.merging {
		if err := n.awaitMergeLocked(ctx); err != nil {
			return err
		}
	}
	if n.wal != nil {
		//plshvet:ignore lockorder journal-before-ack: retirement is journaled under n.mu so recovery cannot resurrect retired rows
		if err := n.wal.AppendRetire(); err != nil {
			n.mu.Unlock()
			return err
		}
	}
	n.resetLocked()
	n.publishLocked()
	token := 0
	var snap *persist.Snapshot
	if n.wal != nil {
		// Checkpoint the empty state so the pre-retirement snapshot and
		// journal are dropped rather than replayed-and-discarded on every
		// future boot. The retire record above already made the erasure
		// durable; a rotation failure here only costs disk space.
		if t, err := n.wal.Rotate(); err != nil {
			n.notePersistErr(err)
		} else {
			token = t
			snap = makeSnapshot(n.cfg, n.store.Prefix(0), n.static, n.deleted, 0)
		}
	}
	n.mu.Unlock()
	if token > 0 {
		if err := n.wal.Checkpoint(snap, token); err != nil {
			n.notePersistErr(err)
		}
	}
	return nil
}

// resetLocked erases the node's contents in place: fresh arena and
// tombstones (published snapshots keep the old ones), empty static.
// Callers hold mu.
func (n *Node) resetLocked() {
	n.store = newArena(n.cfg)
	n.deleted = bitvec.New(n.cfg.Capacity)
	n.segs = nil
	n.nStatic = 0
	n.initStaticLocked()
	n.merges = 0
	n.lastMergeDur = 0
	n.totalMergeNS = 0
	n.insertNS = 0
}

// Save forces a durable checkpoint of the node's own data directory: it
// drives the node to a fully merged state (like MergeNow, chasing
// concurrent ingest until a quiesced point is observed under the lock),
// writes the snapshot, and truncates the journal. Returns ErrNotDurable
// when no Config.Dir was set.
func (n *Node) Save(ctx context.Context) error {
	if n.wal == nil {
		return ErrNotDurable
	}
	return n.save(ctx, "", true)
}

// SaveTo writes a quiesced snapshot of the node into dir — a
// backup/export that any node configured with identical Params can Open.
// When dir is the node's own data directory this is exactly Save, journal
// truncation included.
func (n *Node) SaveTo(ctx context.Context, dir string) error {
	if n.wal != nil && sameDir(dir, n.cfg.Dir) {
		return n.save(ctx, "", true)
	}
	return n.save(ctx, dir, false)
}

func (n *Node) save(ctx context.Context, dir string, checkpoint bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	for n.merging || n.nStatic < n.store.Rows() {
		if !n.merging {
			n.startMergeLocked(n.store.Rows())
		}
		if err := n.awaitMergeLocked(ctx); err != nil {
			return err
		}
	}
	// Quiesced under the lock: every row is static and no merge is in
	// flight, so the captured state is the whole node — the condition the
	// checkpoint's journal truncation needs (no journaled record may
	// outlive the segments the rotation seals without being in the
	// snapshot).
	if checkpoint {
		token, err := n.wal.Rotate()
		if err != nil {
			n.mu.Unlock()
			return err
		}
		snap := makeSnapshot(n.cfg, n.store.Prefix(n.nStatic), n.static, n.deleted, n.nStatic)
		n.mu.Unlock()
		return n.wal.Checkpoint(snap, token)
	}
	snap := makeSnapshot(n.cfg, n.store.Prefix(n.nStatic), n.static, n.deleted, n.nStatic)
	n.mu.Unlock()
	return persist.WriteSnapshot(dir, snap)
}

func sameDir(a, b string) bool {
	if a == b {
		return true
	}
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	return errA == nil && errB == nil && aa == bb
}

// Close releases a durable node's journal after draining any in-flight
// merge (so its checkpoint lands). Published snapshots keep answering
// queries; further journaled writes fail. No-op on an in-memory node.
func (n *Node) Close() error {
	if n.wal == nil {
		return nil
	}
	//plshvet:ignore ctxcheck Close implements io.Closer and cannot take a ctx; the final flush must run to completion
	if err := n.Flush(context.Background()); err != nil {
		return err
	}
	return n.wal.Close()
}

// Stats returns a snapshot of the node's state.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	rows := n.store.Rows()
	mem := n.static.MemoryBytes() + n.store.MemoryBytes()
	for _, sg := range n.segs {
		mem += sg.t.MemoryBytes()
	}
	st := Stats{
		StaticLen:     n.nStatic,
		DeltaLen:      rows - n.nStatic,
		Capacity:      n.cfg.Capacity,
		Deleted:       n.deleted.CountAtomic(),
		Merges:        n.merges,
		MergeInFlight: n.merging,
		LastMergeDur:  n.lastMergeDur,
		TotalMergeNS:  n.totalMergeNS,
		InsertNS:      n.insertNS,
		MemoryBytes:   mem,
	}
	if n.merging {
		st.MergePendingRows = n.mergeUpTo - n.nStatic
	}
	if p := n.persistErr.Load(); p != nil {
		st.PersistErr = *p
	}
	st.SearchesServed = n.searchesServed.Load()
	st.InsertsServed = n.insertsServed.Load()
	st.DeletesServed = n.deletesServed.Load()
	if n.wal != nil {
		st.WALAppendP50NS = int64(n.wal.WriteQuantile(0.50))
		st.WALAppendP99NS = int64(n.wal.WriteQuantile(0.99))
		st.WALFsyncP50NS = int64(n.wal.SyncQuantile(0.50))
		st.WALFsyncP99NS = int64(n.wal.SyncQuantile(0.99))
	}
	return st
}

// Search answers one query under request-scoped parameters. Answers come
// back in the canonical presentation order — ascending (distance, id) —
// bounded to the k nearest when p.K is set. This is the entry point the
// unified public Search path (Store, coordinator, wire protocol) lands on.
func (n *Node) Search(ctx context.Context, q sparse.Vector, p SearchParams) ([]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := n.SearchAppend(ctx, nil, q, p)
	return res, err
}

// SearchAppend is Search with the append contract of
// core.Engine.SearchAppend: answers are appended to dst (finished — top-k
// bounded and canonically ordered — over the appended suffix only) and
// the extended slice is returned. A caller that reuses dst across calls
// makes the whole node-level search allocation-free in steady state; the
// caller owns dst and everything returned.
func (n *Node) SearchAppend(ctx context.Context, dst []core.Neighbor, q sparse.Vector, p SearchParams) ([]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return finishSearch(n.searchOn(dst, n.snap.Load(), q, p), len(dst), p), nil
}

// SearchBatch answers a batch under one set of request-scoped parameters,
// in parallel (work stealing over queries, as in §5.2), every worker
// running against one consistent snapshot. Cancellation is cooperative:
// workers check ctx between queries, so an expired deadline abandons the
// remainder of the batch promptly and the whole call reports ctx.Err().
func (n *Node) SearchBatch(ctx context.Context, qs []sparse.Vector, p SearchParams) ([][]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := n.snap.Load()
	out := n.getBatchOut(len(qs))
	s.eng.Pool().Run(len(qs), func(task, _ int) {
		if ctx.Err() != nil {
			return
		}
		out[task] = finishSearch(n.searchOn(out[task][:0], s, qs[task], p), 0, p)
	})
	if err := ctx.Err(); err != nil {
		n.ReleaseResults(out)
		return nil, err
	}
	n.searchesServed.Add(uint64(len(qs)))
	return out, nil
}

// getBatchOut fetches a recycled batch answer buffer of exactly nq
// entries. Entries keep the backing-array capacity they grew to in
// earlier batches (truncated to length 0), so a warmed node answers
// batches without allocating result storage.
func (n *Node) getBatchOut(nq int) [][]core.Neighbor {
	n.outstanding.Add(1)
	var out [][]core.Neighbor
	if p, _ := n.batchPool.Get().(*[][]core.Neighbor); p != nil {
		out = *p
	}
	for cap(out) < nq {
		out = append(out[:cap(out)], nil)
	}
	out = out[:nq]
	for i := range out {
		out[i] = out[i][:0]
	}
	return out
}

// ReleaseResults recycles a batch answer returned by SearchBatch (and by
// transport.Local.Search over it). It is optional — an un-released batch
// is simply garbage collected — but a caller on the hot path that calls
// it once per batch, after it has finished reading every entry, lets the
// node reuse the buffers for the next batch. The caller must not touch
// the slices afterwards, and must not release a batch twice. Neighbors
// hold no pointers, so recycling retains no document memory.
func (n *Node) ReleaseResults(out [][]core.Neighbor) {
	if out == nil {
		return
	}
	n.outstanding.Add(-1)
	n.batchPool.Put(&out)
}

// OutstandingBatches reports how many SearchBatch answer buffers are
// currently checked out (returned to a caller and not yet released). It
// is a test hook for the release-exactly-once contract: after every
// in-flight search has resolved and released, it must read 0 — positive
// means a strand, negative a double release.
func (n *Node) OutstandingBatches() int64 { return n.outstanding.Load() }

// finishSearch imposes the answer contract of Search on the raw
// candidates appended past res[:base]: top-k selection when bounded,
// canonical (distance, id) order either way. Entries before base are the
// caller's and are left untouched.
func finishSearch(res []core.Neighbor, base int, p SearchParams) []core.Neighbor {
	if p.K > 0 {
		return res[:base+len(core.TopK(res[base:], p.K))]
	}
	core.SortNeighbors(res[base:])
	return res
}

// Query answers one R-near-neighbor query over static + delta contents
// with the node's configured defaults (answer order unspecified).
//
// Deprecated: use Search, which takes request-scoped parameters and
// returns canonically ordered answers.
func (n *Node) Query(ctx context.Context, q sparse.Vector) ([]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return n.searchOn(nil, n.snap.Load(), q, SearchParams{}), nil
}

// QueryBatch answers a batch in parallel with the node's configured
// defaults (answer order unspecified).
//
// Deprecated: use SearchBatch.
func (n *Node) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := n.snap.Load()
	out := make([][]core.Neighbor, len(qs))
	s.eng.Pool().Run(len(qs), func(task, _ int) {
		if ctx.Err() != nil {
			return
		}
		out[task] = n.searchOn(nil, s, qs[task], SearchParams{})
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopK answers one query with at most k answers: the k nearest of the
// R-near neighbors, sorted ascending by distance; k <= 0 answers empty
// (SearchParams.K treats 0 as unbounded instead).
//
// Deprecated: use Search with SearchParams.K.
func (n *Node) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	if k <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	return n.Search(ctx, q, SearchParams{K: k})
}

// searchOn runs the combined static+delta query against one immutable
// snapshot under request-scoped parameters, appending raw answers to dst.
// It takes no locks: the engine, segments and arena prefix are frozen,
// and tombstones are read atomically. p.MaxCandidates bounds the total
// distance computations across the static engine and the delta segments
// combined; p.K is left to the caller (finishSearch) so the R-near set
// stays intact for reuse.
func (n *Node) searchOn(dst []core.Neighbor, s *snapshot, q sparse.Vector, p SearchParams) []core.Neighbor {
	if q.NNZ() == 0 {
		return dst
	}
	res, stats := s.eng.SearchAppend(dst, q, core.SearchParams{Radius: p.Radius, MaxCandidates: p.MaxCandidates})
	if len(s.segs) == 0 {
		return res
	}
	budget := 0
	if p.MaxCandidates > 0 {
		budget = p.MaxCandidates - stats.Unique
		if budget <= 0 {
			return res
		}
	}
	radius := n.cfg.Query.Radius
	if p.Radius > 0 {
		radius = p.Radius
	}
	ws := n.dwsPool.Get().(*deltaWorkspace)
	defer n.dwsPool.Put(ws)
	n.fam.SketchInto(q, ws.scores, ws.sketch)
	thr := sparse.CosThreshold(radius)
	useMask := n.cfg.Query.OptimizedDP
	if useMask {
		ws.mask.Scatter(q)
	}
segments:
	for _, sg := range s.segs {
		ws.seen = ws.seen.Grow(sg.t.Len())
		ws.cand, _ = sg.t.Candidates(ws.sketch, ws.seen, ws.cand[:0])
		ws.seen.ResetList(ws.cand)
		for _, localID := range ws.cand {
			globalID := uint32(sg.base) + localID
			if s.deleted.TestAtomic(int(globalID)) {
				continue
			}
			idx, val := s.store.Doc(int(globalID))
			var dot float64
			if useMask {
				dot = ws.mask.Dot(idx, val)
			} else {
				dot = sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
			}
			if dot >= thr {
				res = append(res, core.Neighbor{ID: globalID, Dist: sparse.AngularDistance(dot)})
			}
			if p.MaxCandidates > 0 {
				if budget--; budget == 0 {
					break segments
				}
			}
		}
	}
	if useMask {
		ws.mask.Unscatter()
	}
	return res
}

// Doc returns document id's vector (shared storage; do not modify) and
// whether the id has ever been inserted — the node is the authority on
// that, so an inserted-but-empty document still reports true. An id never
// inserted returns (zero Vector, false) instead of panicking.
func (n *Node) Doc(id uint32) (sparse.Vector, bool) {
	s := n.snap.Load()
	if int(id) >= s.rows {
		return sparse.Vector{}, false
	}
	return s.store.Row(int(id)), true
}
