// Package node combines a static PLSH index with a streaming delta table
// into one single-node store — the per-node architecture of §4 and §6.
//
// A node owns one contiguous document arena. Rows [0, staticLen) are
// covered by the optimized static index; rows [staticLen, total) live in
// the insert-optimized delta table. Queries consult both and concatenate
// the answers (the two structures hold disjoint documents, so no cross-
// structure deduplication is needed). When the delta reaches η·C the node
// merges: the static structure is rebuilt over all rows — the paper shows
// rebuild is within 2.67× of any possible merge scheme (§6.2) — and the
// delta is emptied. Queries arriving during a merge block until it
// completes ("queries received during the merge are buffered until the
// merge completes").
//
// Deletions set a bit in a capacity-sized bitvector consulted before the
// final distance filter (§6.2); retirement erases the node wholesale when
// the cluster's rolling insert window moves past it.
package node

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"plsh/internal/bitvec"
	"plsh/internal/core"
	"plsh/internal/delta"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// ErrFull is returned by Insert when accepting the batch would exceed the
// node's capacity; the caller (the cluster's insert window) must advance to
// the next node.
var ErrFull = errors.New("node: capacity reached")

// Config parameterizes a node.
type Config struct {
	// Params is the LSH family configuration shared by static and delta.
	Params lshhash.Params
	// Capacity is C, the maximum number of documents the node holds.
	Capacity int
	// DeltaFraction is η: the delta is merged into the static structure
	// once it exceeds η·C (paper: 0.1, chosen so worst-case query time
	// stays within 1.5× of static, §6.3).
	DeltaFraction float64
	// AutoMerge, when false, disables the η trigger so experiments can
	// hold a chosen static/delta split (Fig. 11). MergeNow still works.
	AutoMerge bool
	// Build configures static (re)construction.
	Build core.BuildOptions
	// Query configures the static query path; Radius also applies to the
	// delta path.
	Query core.QueryOptions
	// Seed feeds the hash family if Params.Seed is zero.
	Seed uint64
}

// withDefaults normalizes cfg.
func (cfg Config) withDefaults() Config {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1 << 20
	}
	if cfg.DeltaFraction <= 0 || cfg.DeltaFraction > 1 {
		cfg.DeltaFraction = 0.1
	}
	if cfg.Params.Seed == 0 {
		cfg.Params.Seed = cfg.Seed
	}
	if cfg.Query.Radius <= 0 {
		cfg.Query.Radius = 0.9
	}
	return cfg
}

// Stats summarizes a node's state and accumulated maintenance costs.
type Stats struct {
	StaticLen    int
	DeltaLen     int
	Capacity     int
	Deleted      int
	Merges       int
	LastMergeDur time.Duration
	TotalMergeNS int64
	InsertNS     int64
	MemoryBytes  int64
}

// Node is a single-node PLSH store. All exported methods are safe for
// concurrent use: queries share a read lock; inserts, merges, deletions and
// retirement serialize behind the write lock (which is what buffers queries
// during merges).
type Node struct {
	mu  sync.RWMutex
	cfg Config
	fam *lshhash.Family

	store   *sparse.Matrix // all documents, arena layout
	static  *core.Static   // over rows [0, staticLen)
	eng     *core.Engine
	dt      *delta.Table // rows [staticLen, store.Rows())
	deleted *bitvec.Vector
	nStatic int

	// dwsPool recycles delta-side query workspaces, mirroring the static
	// engine's private-bitvector-per-query design.
	dwsPool sync.Pool

	merges       int
	lastMergeDur time.Duration
	totalMergeNS int64
	insertNS     int64
}

type deltaWorkspace struct {
	seen   *bitvec.Vector
	cand   []uint32
	mask   *sparse.QueryMask
	scores []float32
	sketch []uint32
}

// New builds an empty node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	fam, err := lshhash.NewFamily(cfg.Params)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		fam:     fam,
		store:   sparse.NewMatrix(cfg.Params.Dim, cfg.Capacity, int(float64(cfg.Capacity)*8)),
		dt:      delta.New(fam, cfg.Build.Workers),
		deleted: bitvec.New(cfg.Capacity),
	}
	n.dwsPool.New = func() any {
		return &deltaWorkspace{
			seen:   bitvec.New(1024),
			scores: make([]float32, cfg.Params.NumFuncs()),
			sketch: make([]uint32, cfg.Params.M),
			mask:   sparse.NewQueryMask(cfg.Params.Dim),
		}
	}
	n.rebuild()
	return n, nil
}

// rebuild reconstructs the static index over every stored row. Callers hold
// the write lock (or are in New).
func (n *Node) rebuild() {
	st, err := core.Build(n.fam, n.store, n.cfg.Build)
	if err != nil {
		// The store and family share Dim by construction; this is
		// unreachable absent memory corruption.
		panic(fmt.Sprintf("node: rebuild failed: %v", err))
	}
	n.static = st
	n.nStatic = n.store.Rows()
	eng := core.NewEngine(st, n.store, n.cfg.Query)
	eng.SetDeleted(n.deleted)
	n.eng = eng
	n.dt.Reset()
}

// Len returns the number of live rows (including deleted-but-present ones).
func (n *Node) Len() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.store.Rows()
}

// StaticLen returns the number of rows covered by the static index.
func (n *Node) StaticLen() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.nStatic
}

// DeltaLen returns the number of rows in the delta table.
func (n *Node) DeltaLen() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.dt.Len()
}

// Capacity returns C.
func (n *Node) Capacity() int { return n.cfg.Capacity }

// Family exposes the node's hash family (shared with tests and the model).
func (n *Node) Family() *lshhash.Family { return n.fam }

// Insert appends a batch of documents, returning their node-local IDs.
// The batch must fit the remaining capacity, else ErrFull and nothing is
// inserted. An automatic merge runs if the delta exceeds η·C.
//
// Cancellation is checked before any state changes; once the batch starts
// it runs to completion (including a triggered merge) so the index never
// holds a partially applied batch.
func (n *Node) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store.Rows()+len(vs) > n.cfg.Capacity {
		return nil, ErrFull
	}
	t0 := time.Now()
	ids := make([]uint32, len(vs))
	for i, v := range vs {
		ids[i] = uint32(n.store.AppendRow(v))
	}
	n.dt.Insert(vs)
	n.insertNS += int64(time.Since(t0))
	if n.cfg.AutoMerge && float64(n.dt.Len()) > n.cfg.DeltaFraction*float64(n.cfg.Capacity) {
		n.mergeLocked()
	}
	return ids, nil
}

// MergeNow forces a merge of the delta into the static structure.
// Cancellation is checked before the (non-abortable) rebuild starts.
func (n *Node) MergeNow(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.mergeLocked()
	return nil
}

func (n *Node) mergeLocked() {
	if n.dt.Len() == 0 {
		return
	}
	t0 := time.Now()
	n.rebuild()
	n.lastMergeDur = time.Since(t0)
	n.totalMergeNS += int64(n.lastMergeDur)
	n.merges++
}

// Delete marks a node-local ID as deleted; it will not be returned by
// queries. Deleting an out-of-range ID is a no-op.
func (n *Node) Delete(id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(id) < n.store.Rows() {
		n.deleted.Set(int(id))
	}
}

// Retire erases the node's contents (the rolling-window expiration of §6:
// "the contents of the these nodes are erased"), retaining the hash family
// and capacity.
func (n *Node) Retire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.store.Reset()
	n.deleted.Reset()
	n.rebuild()
	n.merges = 0
	n.lastMergeDur = 0
	n.totalMergeNS = 0
	n.insertNS = 0
}

// Stats returns a snapshot of the node's state.
func (n *Node) Stats() Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return Stats{
		StaticLen:    n.nStatic,
		DeltaLen:     n.dt.Len(),
		Capacity:     n.cfg.Capacity,
		Deleted:      n.deleted.Count(),
		Merges:       n.merges,
		LastMergeDur: n.lastMergeDur,
		TotalMergeNS: n.totalMergeNS,
		InsertNS:     n.insertNS,
		MemoryBytes:  n.static.MemoryBytes() + n.dt.MemoryBytes() + n.store.MemoryBytes(),
	}
}

// Query answers one R-near-neighbor query over static + delta contents.
func (n *Node) Query(ctx context.Context, q sparse.Vector) ([]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.queryLocked(q), nil
}

// QueryBatch answers a batch in parallel (work stealing over queries, as in
// §5.2), each worker consulting both the static and delta structures.
// Cancellation is cooperative: workers check ctx between queries, so an
// expired deadline abandons the remainder of the batch promptly and the
// whole call reports ctx.Err().
func (n *Node) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([][]core.Neighbor, len(qs))
	n.eng.Pool().Run(len(qs), func(task, _ int) {
		if ctx.Err() != nil {
			return
		}
		out[task] = n.queryLocked(qs[task])
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryTopK answers one query with at most k answers: the k nearest of the
// R-near neighbors, sorted ascending by distance. This is the node half of
// the cluster's Top-K path — each node prunes to k locally so the
// coordinator merges bounded partial lists instead of full answer sets.
func (n *Node) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return core.TopK(n.queryLocked(q), k), nil
}

// queryLocked runs the combined static+delta query. Callers hold at least
// the read lock.
func (n *Node) queryLocked(q sparse.Vector) []core.Neighbor {
	if q.NNZ() == 0 {
		return nil
	}
	res := n.eng.Query(q)
	if n.dt.Len() == 0 {
		return res
	}
	ws := n.dwsPool.Get().(*deltaWorkspace)
	defer n.dwsPool.Put(ws)
	n.fam.SketchInto(q, ws.scores, ws.sketch)
	ws.seen = ws.seen.Grow(n.dt.Len())
	ws.cand, _ = n.dt.Candidates(ws.sketch, ws.seen, ws.cand[:0])
	ws.seen.ResetList(ws.cand)
	thr := sparse.CosThreshold(n.cfg.Query.Radius)
	useMask := n.cfg.Query.OptimizedDP
	if useMask {
		ws.mask.Scatter(q)
	}
	for _, localID := range ws.cand {
		globalID := uint32(n.nStatic) + localID
		if n.deleted.Test(int(globalID)) {
			continue
		}
		idx, val := n.store.Doc(int(globalID))
		var dot float64
		if useMask {
			dot = ws.mask.Dot(idx, val)
		} else {
			dot = sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
		}
		if dot >= thr {
			res = append(res, core.Neighbor{ID: globalID, Dist: sparse.AngularDistance(dot)})
		}
	}
	if useMask {
		ws.mask.Unscatter()
	}
	return res
}

// Doc returns document id's vector (shared storage; do not modify).
func (n *Node) Doc(id uint32) sparse.Vector {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.store.Row(int(id))
}
