package node

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"plsh/internal/core"
	"plsh/internal/persist"
	"plsh/internal/sparse"
)

// durableConfig is testConfig plus a data directory.
func durableConfig(dir string, capacity int) Config {
	cfg := testConfig(capacity)
	cfg.Dir = dir
	return cfg
}

// sameNeighbors asserts two answer sets are identical (ID and distance,
// order-insensitive).
func sameNeighbors(t *testing.T, what string, a, b []core.Neighbor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d neighbors", what, len(a), len(b))
	}
	am := map[uint32]float64{}
	for _, nb := range a {
		am[nb.ID] = nb.Dist
	}
	for _, nb := range b {
		d, ok := am[nb.ID]
		if !ok {
			t.Fatalf("%s: neighbor %d only on one side", what, nb.ID)
		}
		if d != nb.Dist {
			t.Fatalf("%s: neighbor %d distance %v vs %v", what, nb.ID, d, nb.Dist)
		}
	}
}

// TestDurableJournalOnlyRecovery: with merges disabled, everything lives
// in the journal; reopening must replay it to a node answering exactly
// like one that never restarted.
func TestDurableJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 1000)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := New(testConfig(1000)) // same params, in-memory
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(300, 5)
	for off := 0; off < len(docs); off += 50 {
		for _, tgt := range []*Node{n, oracle} {
			if _, err := tgt.Insert(bg, docs[off:off+50]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range []uint32{3, 77, 250} {
		if err := n.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 300 {
		t.Fatalf("recovered %d rows, want 300", re.Len())
	}
	for i := 0; i < len(docs); i += 7 {
		sameNeighbors(t, "journal-only recovery",
			mustQuery(t, oracle, docs[i]), mustQuery(t, re, docs[i]))
	}
}

// TestDurableSnapshotPlusTailRecovery: merges checkpoint snapshots and
// truncate the journal; recovery is snapshot + tail replay, and answers
// stay identical to an in-memory twin.
func TestDurableSnapshotPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 2000)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := New(testConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(1000, 9)
	// Enough volume to trigger background merges (η·C = 200).
	for off := 0; off < 800; off += 80 {
		for _, tgt := range []*Node{n, oracle} {
			if _, err := tgt.Insert(bg, docs[off:off+80]); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustMerge(t, n)
	mustMerge(t, oracle)
	if _, err := os.Stat(persist.SnapshotPath(dir)); err != nil {
		t.Fatalf("merge did not checkpoint a snapshot: %v", err)
	}
	// A journal tail past the checkpoint, plus deletes on both sides of
	// the static boundary.
	for _, tgt := range []*Node{n, oracle} {
		if _, err := tgt.Insert(bg, docs[800:900]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint32{10, 799, 850} {
		if err := n.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 900 {
		t.Fatalf("recovered %d rows, want 900", re.Len())
	}
	if re.StaticLen() < 800 {
		t.Fatalf("snapshot not used: static len %d", re.StaticLen())
	}
	for i := 0; i < 900; i += 11 {
		sameNeighbors(t, "snapshot+tail recovery",
			mustQuery(t, oracle, docs[i]), mustQuery(t, re, docs[i]))
	}
}

// walOp is one acknowledged operation in the truncation property test.
type walOp struct {
	docs []sparse.Vector // insert batch (nil for delete)
	del  uint32
}

// TestWALTruncationProperty is the crash-recovery property test: the
// journal is truncated at every record boundary and at points inside every
// record, and each truncation must recover exactly the acknowledged
// prefix — every fully journaled insert queryable, no torn record loaded,
// never an error.
func TestWALTruncationProperty(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 500)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(80, 13)
	var ops []walOp
	base := 0
	for i := 0; i < 8; i++ {
		batch := docs[base : base+5+i]
		if _, err := n.Insert(bg, batch); err != nil {
			t.Fatal(err)
		}
		ops = append(ops, walOp{docs: batch})
		base += len(batch)
		if i%3 == 1 {
			id := uint32(base - 2)
			if err := n.Delete(id); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, walOp{del: id})
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want one journal segment, got %v (%v)", segs, err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, by walking the length prefixes.
	bounds := []int{0}
	for off := 0; off < len(raw); {
		off += 8 + int(binary.LittleEndian.Uint32(raw[off:]))
		bounds = append(bounds, off)
	}
	if len(bounds)-1 != len(ops) {
		t.Fatalf("%d frames for %d ops", len(bounds)-1, len(ops))
	}

	check := func(cut, nComplete int) {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segs[0])), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		subCfg := cfg
		subCfg.Dir = sub
		re, err := New(subCfg)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		defer re.Close()
		// Model the acknowledged prefix.
		rows := 0
		deleted := map[uint32]bool{}
		for _, op := range ops[:nComplete] {
			if op.docs != nil {
				rows += len(op.docs)
			} else {
				deleted[op.del] = true
			}
		}
		if re.Len() != rows {
			t.Fatalf("cut %d: recovered %d rows, want %d", cut, re.Len(), rows)
		}
		for id := 0; id < rows; id++ {
			got := neighborIDs(mustQuery(t, re, docs[id]))
			if deleted[uint32(id)] {
				if got[uint32(id)] {
					t.Fatalf("cut %d: deleted doc %d resurrected", cut, id)
				}
			} else if !got[uint32(id)] {
				t.Fatalf("cut %d: acknowledged doc %d not queryable", cut, id)
			}
		}
		// Nothing torn may load.
		for id := rows; id < len(docs); id++ {
			if _, known := re.Doc(uint32(id)); known {
				t.Fatalf("cut %d: torn doc %d loaded", cut, id)
			}
		}
	}

	for i := 1; i < len(bounds); i++ {
		check(bounds[i], i) // exactly i complete records
		// Mid-record cuts: inside the header, just after it, and one byte
		// short of complete — all must load i-1 records and drop the tear.
		for _, cut := range []int{bounds[i-1] + 1, bounds[i-1] + 8, bounds[i] - 1} {
			if cut > bounds[i-1] && cut < bounds[i] {
				check(cut, i-1)
			}
		}
	}
	check(0, 0)
}

// TestSaveCheckpointTruncatesJournal: an explicit Save must leave a
// snapshot covering everything and drop the sealed journal segments.
func TestSaveCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 500)
	cfg.AutoMerge = false
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(120, 21)
	for off := 0; off < len(docs); off += 40 {
		if _, err := n.Insert(bg, docs[off:off+40]); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := n.Save(bg); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.PersistErr != "" {
		t.Fatalf("persist error: %s", st.PersistErr)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("journal not truncated: %v", segs)
	}
	if fi, err := os.Stat(segs[0]); err != nil || fi.Size() != 0 {
		t.Fatalf("live segment not empty after Save: %v (%v)", fi, err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 120 || re.StaticLen() != 120 {
		t.Fatalf("recovered %d/%d rows", re.StaticLen(), re.Len())
	}
	if got := neighborIDs(mustQuery(t, re, docs[7])); got[7] {
		t.Fatal("tombstone lost across Save")
	}
}

// TestDurableRetireNoResurrection: retirement is durable — a reopened
// node holds only post-retirement documents.
func TestDurableRetireNoResurrection(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 500)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(80, 31)
	if _, err := n.Insert(bg, docs[:50]); err != nil {
		t.Fatal(err)
	}
	if err := n.Retire(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, docs[50:]); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 30 {
		t.Fatalf("recovered %d rows, want 30 post-retire docs", re.Len())
	}
	got := neighborIDs(mustQuery(t, re, docs[50]))
	if !got[0] {
		t.Fatal("post-retire doc 0 not found")
	}
	for _, nb := range mustQuery(t, re, docs[0]) {
		if v, known := re.Doc(nb.ID); !known || v.NNZ() == 0 {
			t.Fatalf("neighbor %d has no document", nb.ID)
		}
	}
}

// TestSaveToExportRoundTrip: SaveTo writes a portable snapshot a fresh
// node opens with bit-identical query behavior.
func TestSaveToExportRoundTrip(t *testing.T) {
	n, err := New(testConfig(500)) // in-memory node
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(200, 41)
	if _, err := n.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(13); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := n.SaveTo(bg, dir); err != nil {
		t.Fatal(err)
	}
	re, err := New(durableConfig(dir, 500))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < len(docs); i += 5 {
		sameNeighbors(t, "export round-trip",
			mustQuery(t, n, docs[i]), mustQuery(t, re, docs[i]))
	}
}

// TestOpenRejectsParamMismatch: a snapshot written under different hash
// parameters must be refused, not loaded as garbage.
func TestOpenRejectsParamMismatch(t *testing.T) {
	dir := t.TempDir()
	n, err := New(durableConfig(dir, 500))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, testDocs(50, 51)); err != nil {
		t.Fatal(err)
	}
	if err := n.Save(bg); err != nil {
		t.Fatal(err)
	}
	n.Close()
	bad := durableConfig(dir, 500)
	bad.Params.Seed = 999
	if _, err := New(bad); err == nil {
		t.Fatal("param mismatch accepted")
	}
}

// TestOpenRejectsCorruptSnapshot: any bit flip in the snapshot fails the
// checksum and the open.
func TestOpenRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, 500)
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, testDocs(50, 61)); err != nil {
		t.Fatal(err)
	}
	if err := n.Save(bg); err != nil {
		t.Fatal(err)
	}
	n.Close()
	path := persist.SnapshotPath(dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("corrupt snapshot: want ErrCorrupt, got %v", err)
	}
}

// TestDeleteNeverInserted: the ErrNotFound satellite at the node layer.
func TestDeleteNeverInserted(t *testing.T) {
	n, err := New(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, testDocs(10, 71)); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(5); err != nil {
		t.Fatalf("valid delete: %v", err)
	}
	if err := n.Delete(10); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-range delete: want ErrNotFound, got %v", err)
	}
	if err := n.Delete(math.MaxUint32); !errors.Is(err, ErrNotFound) {
		t.Fatalf("huge delete: want ErrNotFound, got %v", err)
	}
	// Durable path agrees.
	d, err := New(durableConfig(t.TempDir(), 100))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Delete(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("durable out-of-range delete: want ErrNotFound, got %v", err)
	}
}

// TestDocOutOfRange: the Doc-panic satellite at the node layer.
func TestDocOutOfRange(t *testing.T) {
	n, err := New(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Insert(bg, testDocs(10, 81)); err != nil {
		t.Fatal(err)
	}
	if v, known := n.Doc(9); !known || v.NNZ() == 0 {
		t.Fatal("valid doc came back empty")
	}
	if v, known := n.Doc(10); known || v.NNZ() != 0 {
		t.Fatal("out-of-range doc not zero")
	}
	if v, known := n.Doc(math.MaxUint32); known || v.NNZ() != 0 {
		t.Fatal("huge id doc not zero")
	}
	if err := n.Save(bg); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Save on in-memory node: want ErrNotDurable, got %v", err)
	}
}
