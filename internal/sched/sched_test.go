package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEachTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			p := NewPool(workers)
			counts := make([]int32, n)
			p.Run(n, func(task, worker int) {
				atomic.AddInt32(&counts[task], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestRunWorkerIDsInRange(t *testing.T) {
	p := NewPool(4)
	var bad int32
	p.Run(200, func(task, worker int) {
		if worker < 0 || worker >= 4 {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d tasks saw out-of-range worker IDs", bad)
	}
}

func TestRunStealsSkewedWork(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥2 CPUs")
	}
	// All the expensive tasks land in worker 0's initial range; stealing
	// must spread them out. With 4 workers and 8 slow tasks of 10ms, a
	// no-stealing schedule takes ≥80ms; stealing should cut that roughly
	// in half or better.
	p := NewPool(4)
	const n = 64
	start := time.Now()
	p.Run(n, func(task, worker int) {
		if task < 8 { // first 8 tasks are slow and initially all worker 0's
			time.Sleep(10 * time.Millisecond)
		}
	})
	elapsed := time.Since(start)
	if elapsed > 70*time.Millisecond {
		t.Errorf("skewed batch took %v; stealing appears ineffective", elapsed)
	}
}

func TestStaticCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 8} {
		for _, n := range []int{0, 1, 5, 64, 1001} {
			p := NewPool(workers)
			covered := make([]int32, n)
			p.Static(n, func(lo, hi, worker int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("bad range [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("NewPool(0) did not default to GOMAXPROCS")
	}
	if NewPool(-3).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("NewPool(-3) did not default to GOMAXPROCS")
	}
	if NewPool(5).Workers() != 5 {
		t.Fatal("explicit worker count not honored")
	}
}

func TestRunConcurrentUse(t *testing.T) {
	// A single Pool value must support concurrent Run calls.
	p := NewPool(4)
	done := make(chan bool, 2)
	for g := 0; g < 2; g++ {
		go func() {
			counts := make([]int32, 500)
			p.Run(500, func(task, worker int) { atomic.AddInt32(&counts[task], 1) })
			ok := true
			for _, c := range counts {
				if c != 1 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 2; g++ {
		if !<-done {
			t.Fatal("concurrent Run corrupted task execution")
		}
	}
}
