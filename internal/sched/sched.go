// Package sched provides the parallel execution substrate PLSH runs on: a
// work-stealing task pool and a static parallel-for.
//
// The paper parallelizes second-level partition construction and query
// batches with "work-stealing task queues" (§5.1.2, §5.2) because both
// workloads are irregular — one hash bucket or one query can cost far more
// than another. Hashing and histogram phases, by contrast, are uniform per
// item and use a static contiguous split (§5.1.1, "parallelized over the
// data items").
//
// Workers own contiguous index ranges and steal half the remaining range of
// a victim when they run dry, which keeps owner-side synchronization to one
// mutex acquisition per pop while bounding imbalance.
package sched

import (
	"runtime"
	"sync"
)

// Pool executes batches of indexed tasks across a fixed number of workers.
// A Pool is stateless between calls and safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a Pool with the given worker count; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// queue is one worker's remaining range [lo, hi).
type queue struct {
	mu sync.Mutex
	lo int
	hi int
	_  [5]uint64 // pad to a cache line to avoid false sharing between queues
}

// pop takes the next task from the owner's end, returning ok=false when the
// queue is empty.
func (q *queue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lo >= q.hi {
		return 0, false
	}
	t := q.lo
	q.lo++
	return t, true
}

// stealHalf transfers the upper half of q's remaining range to the caller.
func (q *queue) stealHalf() (lo, hi int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.hi - q.lo
	if n <= 0 {
		return 0, 0, false
	}
	take := (n + 1) / 2
	hi = q.hi
	lo = q.hi - take
	q.hi = lo
	return lo, hi, true
}

// push installs a freshly stolen range as the worker's own queue.
func (q *queue) push(lo, hi int) {
	q.mu.Lock()
	q.lo, q.hi = lo, hi
	q.mu.Unlock()
}

// Run executes fn(task, worker) for every task in [0, n), distributing tasks
// over the pool's workers with range stealing. fn invocations for distinct
// tasks may run concurrently; Run returns after all complete.
func (p *Pool) Run(n int, fn func(task, worker int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for t := 0; t < n; t++ {
			fn(t, 0)
		}
		return
	}
	queues := make([]queue, w)
	for i := range queues {
		queues[i].lo = i * n / w
		queues[i].hi = (i + 1) * n / w
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(self int) {
			defer wg.Done()
			// Per-worker deterministic victim cursor; contention, not
			// randomness quality, is what matters here.
			victim := self
			for {
				if t, ok := queues[self].pop(); ok {
					fn(t, self)
					continue
				}
				// Empty: try to steal half of someone's remaining range.
				stolen := false
				for tries := 0; tries < w-1; tries++ {
					victim++
					if victim >= w {
						victim = 0
					}
					if victim == self {
						continue
					}
					if lo, hi, ok := queues[victim].stealHalf(); ok {
						// Run the first stolen task immediately; queue the rest.
						queues[self].push(lo+1, hi)
						fn(lo, self)
						stolen = true
						break
					}
				}
				if !stolen {
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// Static executes fn(lo, hi, worker) over an even contiguous split of
// [0, n) — the barrier-style parallel-for used for uniform per-item phases.
func (p *Pool) Static(n int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(self int) {
			defer wg.Done()
			fn(self*n/w, (self+1)*n/w, self)
		}(i)
	}
	wg.Wait()
}
