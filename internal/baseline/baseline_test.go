package baseline

import (
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

const testRadius = 0.9

func fixture(t *testing.T, nDocs int) (*sparse.Matrix, []sparse.Vector) {
	t.Helper()
	cfg := corpus.Twitter(nDocs, 2000, 7)
	cfg.NearDupRate = 0.25
	c := corpus.Generate(cfg)
	return c.Mat, c.SampleQueries(15, 99)
}

func sortIDs(ns []core.Neighbor) []core.Neighbor {
	out := append([]core.Neighbor(nil), ns...)
	core.SortNeighbors(out)
	return out
}

func TestExhaustiveMatchesExactNeighbors(t *testing.T) {
	mat, queries := fixture(t, 300)
	ex := NewExhaustive(mat, testRadius, 2)
	for qi, q := range queries {
		res := ex.Query(q)
		want := core.ExactNeighbors(mat, q, testRadius)
		if res.DistComps != mat.Rows() {
			t.Fatalf("query %d: DistComps = %d, want %d", qi, res.DistComps, mat.Rows())
		}
		got := sortIDs(res.Neighbors)
		exp := sortIDs(want)
		if len(got) != len(exp) {
			t.Fatalf("query %d: %d vs %d neighbors", qi, len(got), len(exp))
		}
		for i := range exp {
			if got[i].ID != exp[i].ID {
				t.Fatalf("query %d neighbor %d differs", qi, i)
			}
		}
	}
}

// The inverted index is deterministic and must return exactly the
// exhaustive answer: any document within R = 0.9 < π/2 shares at least one
// word with the query (orthogonal vectors are at π/2).
func TestInvertedMatchesExhaustive(t *testing.T) {
	mat, queries := fixture(t, 400)
	ex := NewExhaustive(mat, testRadius, 2)
	inv := NewInverted(mat, testRadius, 2)
	for qi, q := range queries {
		got := sortIDs(inv.Query(q).Neighbors)
		want := sortIDs(ex.Query(q).Neighbors)
		if len(got) != len(want) {
			t.Fatalf("query %d: inverted %d vs exhaustive %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("query %d neighbor %d differs", qi, i)
			}
		}
	}
}

func TestInvertedCandidateCounts(t *testing.T) {
	mat, queries := fixture(t, 400)
	inv := NewInverted(mat, testRadius, 1)
	for qi, q := range queries {
		res := inv.Query(q)
		// Brute-force candidate count: docs sharing ≥1 word.
		want := 0
		for i := 0; i < mat.Rows(); i++ {
			row := mat.Row(i)
			if sharesWord(q, row) {
				want++
			}
		}
		if res.DistComps != want {
			t.Fatalf("query %d: DistComps = %d, want %d", qi, res.DistComps, want)
		}
		// Inverted candidates must be far fewer than exhaustive scans yet
		// at least the result count.
		if res.DistComps > mat.Rows() || res.DistComps < len(res.Neighbors) {
			t.Fatalf("query %d: implausible DistComps %d", qi, res.DistComps)
		}
	}
}

func sharesWord(a, b sparse.Vector) bool {
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			return true
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	return false
}

func TestPostingsComplete(t *testing.T) {
	mat, _ := fixture(t, 200)
	inv := NewInverted(mat, testRadius, 1)
	// Every document must appear in the postings of each of its words.
	for i := 0; i < mat.Rows(); i++ {
		row := mat.Row(i)
		for _, w := range row.Idx {
			found := false
			for _, id := range inv.PostingsFor(w) {
				if id == uint32(i) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %d missing from postings of word %d", i, w)
			}
		}
	}
	if inv.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not reported")
	}
}

// Chained LSH must return exactly the same answers as optimized PLSH built
// with the same family: both consider precisely the candidates sharing ≥1
// table bucket.
func TestChainedMatchesOptimizedPLSH(t *testing.T) {
	mat, queries := fixture(t, 400)
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChained(fam, mat, testRadius, 2)
	st, err := core.Build(fam, mat, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(st, mat, core.QueryDefaults())
	for qi, q := range queries {
		res := ch.Query(q)
		got := sortIDs(res.Neighbors)
		want := sortIDs(eng.Query(q))
		if len(got) != len(want) {
			t.Fatalf("query %d: chained %d vs plsh %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d neighbor %d differs", qi, i)
			}
		}
		// Work accounting: distance computations equal PLSH's unique count.
		_, stats := eng.QueryWithStats(q)
		if res.DistComps != stats.Unique {
			t.Fatalf("query %d: chained comps %d vs plsh unique %d", qi, res.DistComps, stats.Unique)
		}
	}
}

func TestBatchVariantsMatchSingles(t *testing.T) {
	mat, queries := fixture(t, 250)
	fam, _ := lshhash.NewFamily(lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42})
	type batcher interface {
		QueryBatch([]sparse.Vector) []Result
		Query(sparse.Vector) Result
	}
	for name, b := range map[string]batcher{
		"exhaustive": NewExhaustive(mat, testRadius, 4),
		"inverted":   NewInverted(mat, testRadius, 4),
		"chained":    NewChained(fam, mat, testRadius, 4),
	} {
		batch := b.QueryBatch(queries)
		for i, q := range queries {
			single := b.Query(q)
			if single.DistComps != batch[i].DistComps {
				t.Fatalf("%s query %d: comps %d vs %d", name, i, single.DistComps, batch[i].DistComps)
			}
			got := sortIDs(batch[i].Neighbors)
			want := sortIDs(single.Neighbors)
			if len(got) != len(want) {
				t.Fatalf("%s query %d: %d vs %d", name, i, len(got), len(want))
			}
			for j := range want {
				if got[j].ID != want[j].ID {
					t.Fatalf("%s query %d neighbor %d differs", name, i, j)
				}
			}
		}
	}
}

// The Table 2 ordering: distance computations must rank
// exhaustive > inverted > LSH for typical short-document corpora.
func TestTable2WorkOrdering(t *testing.T) {
	mat, queries := fixture(t, 1000)
	fam, _ := lshhash.NewFamily(lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42})
	ex := NewExhaustive(mat, testRadius, 2)
	inv := NewInverted(mat, testRadius, 2)
	ch := NewChained(fam, mat, testRadius, 2)
	var exC, invC, lshC int
	for _, q := range queries {
		exC += ex.Query(q).DistComps
		invC += inv.Query(q).DistComps
		lshC += ch.Query(q).DistComps
	}
	if !(exC > invC && invC > lshC) {
		t.Fatalf("work ordering violated: exhaustive=%d inverted=%d lsh=%d", exC, invC, lshC)
	}
}
