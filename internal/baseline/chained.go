package baseline

import (
	"sync"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Chained is the "basic implementation" of LSH the paper measures its
// speedups against: each of the L tables is a hash map of dynamically
// grown buckets (the pointer-chasing layout of Fig. 3b), every table's
// k-bit key is computed independently during construction, duplicate
// elimination uses a set container, and dot products use merge
// intersection. Everything PLSH's §5 optimizations replace, in one type.
type Chained struct {
	fam    *lshhash.Family
	store  sparse.Store
	radius float64
	pool   *sched.Pool
	tables []map[uint32][]uint32
	wsPool sync.Pool
}

// chainedWorkspace is one query's private chained-hash probe state.
//
//plshvet:scratch owned per-query candidate buffers; answers are copied out before reuse
type chainedWorkspace struct {
	set    map[uint32]struct{}
	scores []float32
	sketch []uint32
}

// NewChained builds the naive structure over every document in store.
// Construction is parallelized over tables (one goroutine per table subset)
// but performs the per-table k-bit hashing and per-item map appends a basic
// implementation would.
func NewChained(fam *lshhash.Family, store sparse.Store, radius float64, workers int) *Chained {
	p := fam.Params()
	c := &Chained{
		fam:    fam,
		store:  store,
		radius: radius,
		pool:   sched.NewPool(workers),
		tables: make([]map[uint32][]uint32, p.L()),
	}
	n := store.Rows()
	half := uint(p.K / 2)
	// A basic implementation computes sketches once (even naive codes hash
	// each point once per function) but inserts with per-bucket appends.
	sketches := make([]uint32, n*p.M)
	c.pool.Static(n, func(lo, hi, _ int) {
		scores := make([]float32, p.NumFuncs())
		for i := lo; i < hi; i++ {
			idx, val := store.Doc(i)
			c.fam.SketchScalarInto(sparse.Vector{Idx: idx, Val: val}, scores, sketches[i*p.M:(i+1)*p.M])
		}
	})
	c.pool.Run(p.L(), func(l, _ int) {
		a, b := lshhash.PairForTable(l, p.M)
		m := make(map[uint32][]uint32)
		for i := 0; i < n; i++ {
			key := sketches[i*p.M+a]<<half | sketches[i*p.M+b]
			m[key] = append(m[key], uint32(i))
		}
		c.tables[l] = m
	})
	c.wsPool.New = func() any {
		return &chainedWorkspace{
			set:    make(map[uint32]struct{}, 1024),
			scores: make([]float32, p.NumFuncs()),
			sketch: make([]uint32, p.M),
		}
	}
	return c
}

// Query answers with set-based dedup and merge-intersection dot products.
func (c *Chained) Query(q sparse.Vector) Result {
	if q.NNZ() == 0 {
		return Result{}
	}
	p := c.fam.Params()
	half := uint(p.K / 2)
	ws := c.wsPool.Get().(*chainedWorkspace)
	defer c.wsPool.Put(ws)
	c.fam.SketchInto(q, ws.scores, ws.sketch)
	for l := range c.tables {
		a, b := lshhash.PairForTable(l, p.M)
		key := ws.sketch[a]<<half | ws.sketch[b]
		for _, id := range c.tables[l][key] {
			ws.set[id] = struct{}{}
		}
	}
	thr := sparse.CosThreshold(c.radius)
	var out []core.Neighbor
	comps := 0
	for id := range ws.set {
		delete(ws.set, id)
		comps++
		idx, val := c.store.Doc(int(id))
		dot := sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
		if dot >= thr {
			out = append(out, core.Neighbor{ID: id, Dist: sparse.AngularDistance(dot)})
		}
	}
	return Result{Neighbors: out, DistComps: comps}
}

// QueryBatch answers the batch in parallel over queries.
func (c *Chained) QueryBatch(qs []sparse.Vector) []Result {
	out := make([]Result, len(qs))
	c.pool.Run(len(qs), func(task, _ int) { out[task] = c.Query(qs[task]) })
	return out
}
