// Package baseline implements the comparison algorithms of the paper's
// evaluation (§8.1, Table 2): exhaustive search, an inverted index, and a
// naive chained-bucket LSH.
//
// Exhaustive search and the inverted index are the deterministic
// comparators: both return the exact R-near-neighbor set, at the cost of
// one distance computation per document (exhaustive) or per candidate
// containing at least one query word (inverted index). The chained LSH is
// the "basic implementation" PLSH's 3.7×/8.3× speedups are measured
// against: dynamically grown buckets, per-table key computation, set-based
// duplicate elimination, and merge-intersection dot products.
//
// All three are parallelized over queries, as the paper notes ("all
// algorithms have been parallelized to use multiple cores").
package baseline

import (
	"sync"

	"plsh/internal/bitvec"
	"plsh/internal/core"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Result pairs a query's neighbors with the number of distance
// computations performed — the work measure of Table 2.
type Result struct {
	Neighbors []core.Neighbor
	DistComps int
}

// Exhaustive scans every document for every query.
type Exhaustive struct {
	store  sparse.Store
	radius float64
	pool   *sched.Pool
}

// NewExhaustive returns an exhaustive-search baseline.
func NewExhaustive(store sparse.Store, radius float64, workers int) *Exhaustive {
	return &Exhaustive{store: store, radius: radius, pool: sched.NewPool(workers)}
}

// Query scans all documents.
func (e *Exhaustive) Query(q sparse.Vector) Result {
	thr := sparse.CosThreshold(e.radius)
	var out []core.Neighbor
	n := e.store.Rows()
	for i := 0; i < n; i++ {
		idx, val := e.store.Doc(i)
		dot := sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
		if dot >= thr {
			out = append(out, core.Neighbor{ID: uint32(i), Dist: sparse.AngularDistance(dot)})
		}
	}
	return Result{Neighbors: out, DistComps: n}
}

// QueryBatch answers the batch in parallel over queries.
func (e *Exhaustive) QueryBatch(qs []sparse.Vector) []Result {
	out := make([]Result, len(qs))
	e.pool.Run(len(qs), func(task, _ int) { out[task] = e.Query(qs[task]) })
	return out
}

// Inverted is a word→documents index: a query's candidates are every
// document sharing at least one vocabulary term with it, filtered by the
// distance criterion (§8.1).
type Inverted struct {
	store    sparse.Store
	postings [][]uint32 // per word: sorted doc IDs
	radius   float64
	pool     *sched.Pool
	wsPool   sync.Pool
}

// invWorkspace is one query's private inverted-index probe state.
//
//plshvet:scratch owned per-query accumulator buffers; answers are copied out before reuse
type invWorkspace struct {
	seen *bitvec.Vector
	cand []uint32
	mask *sparse.QueryMask
}

// NewInverted builds the postings lists over every document in store.
func NewInverted(store sparse.Store, radius float64, workers int) *Inverted {
	inv := &Inverted{
		store:    store,
		postings: make([][]uint32, store.Dimension()),
		radius:   radius,
		pool:     sched.NewPool(workers),
	}
	for i := 0; i < store.Rows(); i++ {
		idx, _ := store.Doc(i)
		for _, w := range idx {
			inv.postings[w] = append(inv.postings[w], uint32(i))
		}
	}
	inv.wsPool.New = func() any {
		return &invWorkspace{
			seen: bitvec.New(store.Rows()),
			mask: sparse.NewQueryMask(store.Dimension()),
		}
	}
	return inv
}

// PostingsFor returns the documents containing word w (shared storage).
func (inv *Inverted) PostingsFor(w uint32) []uint32 { return inv.postings[w] }

// Query gathers candidates from the query words' postings lists,
// deduplicates, and filters by distance. DistComps counts the unique
// candidates — the quantity Table 2 reports (the paper deliberately
// excludes candidate-generation time for the inverted index, so the
// distance-filter phase is also what our harness times).
func (inv *Inverted) Query(q sparse.Vector) Result {
	ws := inv.wsPool.Get().(*invWorkspace)
	defer inv.wsPool.Put(ws)
	ws.cand = ws.cand[:0]
	for _, w := range q.Idx {
		for _, id := range inv.postings[w] {
			if ws.seen.TestAndSet(int(id)) {
				ws.cand = append(ws.cand, id)
			}
		}
	}
	ws.seen.ResetList(ws.cand)

	thr := sparse.CosThreshold(inv.radius)
	ws.mask.Scatter(q)
	var out []core.Neighbor
	for _, id := range ws.cand {
		idx, val := inv.store.Doc(int(id))
		dot := ws.mask.Dot(idx, val)
		if dot >= thr {
			out = append(out, core.Neighbor{ID: id, Dist: sparse.AngularDistance(dot)})
		}
	}
	ws.mask.Unscatter()
	return Result{Neighbors: out, DistComps: len(ws.cand)}
}

// QueryBatch answers the batch in parallel over queries.
func (inv *Inverted) QueryBatch(qs []sparse.Vector) []Result {
	out := make([]Result, len(qs))
	inv.pool.Run(len(qs), func(task, _ int) { out[task] = inv.Query(qs[task]) })
	return out
}

// MemoryBytes reports the postings footprint.
func (inv *Inverted) MemoryBytes() int64 {
	var b int64
	for _, p := range inv.postings {
		b += int64(cap(p)) * 4
	}
	return b
}
