package bitvec

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	v := New(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if v.Test(i) != want {
			t.Fatalf("Test(%d) = %v, want %v", i, v.Test(i), want)
		}
	}
	for i := 0; i < 200; i += 3 {
		v.Clear(i)
	}
	if v.Count() != 0 {
		t.Fatalf("Count after clearing = %d, want 0", v.Count())
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(100)
	if !v.TestAndSet(37) {
		t.Fatal("first TestAndSet returned false")
	}
	if v.TestAndSet(37) {
		t.Fatal("second TestAndSet returned true")
	}
	if !v.Test(37) {
		t.Fatal("bit not set after TestAndSet")
	}
}

func TestWordBoundaries(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 63, 64, 127, 128, 129} {
		if v.Test(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.Count() != 6 {
		t.Fatalf("Count = %d, want 6", v.Count())
	}
}

func TestReset(t *testing.T) {
	v := New(500)
	for i := 0; i < 500; i += 7 {
		v.Set(i)
	}
	v.Reset()
	if v.Count() != 0 {
		t.Fatalf("Count after Reset = %d", v.Count())
	}
}

func TestResetList(t *testing.T) {
	v := New(1000)
	marked := []uint32{3, 64, 65, 999, 128}
	for _, i := range marked {
		v.Set(int(i))
	}
	v.Set(500) // not in the list; must survive
	v.ResetList(marked)
	if v.Count() != 1 || !v.Test(500) {
		t.Fatalf("ResetList cleared wrong bits; count=%d", v.Count())
	}
}

func TestAppendSetSortedUnique(t *testing.T) {
	v := New(300)
	input := []int{299, 0, 64, 63, 65, 128, 5, 5, 64}
	for _, i := range input {
		v.Set(i)
	}
	got := v.AppendSet(nil)
	want := []uint32{0, 5, 63, 64, 65, 128, 299}
	if len(got) != len(want) {
		t.Fatalf("AppendSet returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSet[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAppendSetExtendsDst(t *testing.T) {
	v := New(64)
	v.Set(7)
	dst := []uint32{42}
	got := v.AppendSet(dst)
	if len(got) != 2 || got[0] != 42 || got[1] != 7 {
		t.Fatalf("AppendSet did not extend dst: %v", got)
	}
}

func TestGrowPreserves(t *testing.T) {
	v := New(10)
	v.Set(3)
	v.Set(9)
	v = v.Grow(1000)
	if v.Len() != 1000 {
		t.Fatalf("Len after Grow = %d", v.Len())
	}
	if !v.Test(3) || !v.Test(9) {
		t.Fatal("Grow lost bits")
	}
	if v.Count() != 2 {
		t.Fatalf("Count after Grow = %d, want 2", v.Count())
	}
	v.Set(999)
	if !v.Test(999) {
		t.Fatal("cannot set bit in grown region")
	}
	// Growing smaller is a no-op.
	if v.Grow(5).Len() != 1000 {
		t.Fatal("Grow shrank the vector")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 11 {
		v.Set(i)
	}
	snap := append([]uint64(nil), v.Words()...)
	v2 := New(200)
	v2.LoadWords(snap)
	for i := 0; i < 200; i++ {
		if v.Test(i) != v2.Test(i) {
			t.Fatalf("bit %d differs after snapshot round trip", i)
		}
	}
}

func TestLoadWordsSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadWords with wrong size did not panic")
		}
	}()
	New(200).LoadWords(make([]uint64, 1))
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

// Property: for any set of indexes, AppendSet returns exactly the distinct
// indexes in sorted order, and Count matches.
func TestQuickAppendSetMatchesMap(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		v := New(n)
		set := map[uint32]bool{}
		for _, r := range raw {
			v.Set(int(r))
			set[uint32(r)] = true
		}
		got := v.AppendSet(nil)
		if len(got) != len(set) || v.Count() != len(set) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for _, g := range got {
			if !set[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: TestAndSet returns true exactly once per index.
func TestQuickTestAndSetOnce(t *testing.T) {
	f := func(raw []uint16) bool {
		v := New(1 << 16)
		firsts := map[uint16]bool{}
		for _, r := range raw {
			first := v.TestAndSet(int(r))
			if first && firsts[r] {
				return false // claimed first twice
			}
			if !first && !firsts[r] {
				return false // never claimed first
			}
			firsts[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Atomic accessors must agree with the plain ones and survive concurrent
// setters — the deletion-tombstone contract of the node's snapshot model.
func TestAtomicOps(t *testing.T) {
	v := New(256)
	v.SetAtomic(0)
	v.SetAtomic(63)
	v.SetAtomic(64)
	v.SetAtomic(255)
	for _, i := range []int{0, 63, 64, 255} {
		if !v.TestAtomic(i) || !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.TestAtomic(1) || v.TestAtomic(128) {
		t.Fatal("unset bit reads set")
	}
	if v.CountAtomic() != 4 || v.Count() != 4 {
		t.Fatalf("count = %d/%d, want 4", v.CountAtomic(), v.Count())
	}
}

func TestAtomicConcurrentSetters(t *testing.T) {
	const n = 1 << 12
	v := New(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				v.SetAtomic(i)
				if !v.TestAtomic(i) {
					t.Errorf("bit %d lost", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := v.CountAtomic(); got != n {
		t.Fatalf("count = %d, want %d (concurrent ORs dropped bits)", got, n)
	}
}
