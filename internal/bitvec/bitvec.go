// Package bitvec implements the dense bitvectors at the heart of PLSH's
// query path.
//
// The paper (§5.2.1) eliminates duplicate candidates across the L hash-table
// bucket lists with a histogram over data indexes 0..N−1, stored as a
// bitvector: marking and testing a candidate is O(1) with a small constant,
// beating both sorting (O(Q log Q)) and tree sets. The same representation
// serves three more roles: the scan-and-extract pass that produces a sorted
// unique candidate array for prefetch-friendly access (§5.2.2), the deletion
// set consulted before final filtering (§6.2), and the query-side vocabulary
// mask used for O(1) membership checks in the sparse dot product (§5.2.3).
package bitvec

import (
	"math/bits"
	"sync/atomic"
)

// Vector is a fixed-capacity dense bitvector over [0, Len()).
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed Vector with capacity for n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bit capacity.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) { v.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (v *Vector) Clear(i int) { v.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (v *Vector) Test(i int) bool { return v.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// TestAndSet sets bit i and reports whether it was previously clear.
// This is the single-pass "check histogram, write if zero" step of §5.2.1.
func (v *Vector) TestAndSet(i int) bool {
	w := i >> 6
	mask := uint64(1) << (uint(i) & 63)
	old := v.words[w]
	v.words[w] = old | mask
	return old&mask == 0
}

// SetAtomic sets bit i with a release-ordered atomic OR, so it is safe to
// call concurrently with TestAtomic on any bit — including bits in the same
// word. This is the deletion-tombstone write path under the node's snapshot
// concurrency model: queries read tombstones lock-free while deletions land.
//
// A vector must be accessed either entirely atomically or entirely plainly;
// mixing Set with TestAtomic on the same vector is a data race.
func (v *Vector) SetAtomic(i int) {
	atomic.OrUint64(&v.words[i>>6], 1<<(uint(i)&63))
}

// TestAtomic reports whether bit i is set, using an atomic load so it can
// run concurrently with SetAtomic.
func (v *Vector) TestAtomic(i int) bool {
	return atomic.LoadUint64(&v.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// CountAtomic returns the number of set bits using atomic word loads. With
// concurrent SetAtomic calls in flight the result is a lower bound on the
// final population (bits are only ever set, never cleared, between resets).
func (v *Vector) CountAtomic() int {
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(atomic.LoadUint64(&v.words[i]))
	}
	return c
}

// Reset zeroes the whole vector. For vectors sized to N this is the paper's
// between-query wipe; cost is O(N/64) but the vector stays cache-resident.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// ResetList clears exactly the given bits. When the set population is far
// below N this is much cheaper than Reset; PLSH uses it to recycle a
// worker's candidate bitvector using the extracted candidate array.
func (v *Vector) ResetList(idx []uint32) {
	for _, i := range idx {
		v.words[i>>6] &^= 1 << (uint64(i) & 63)
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendSet appends the indexes of all set bits, in increasing order, to dst
// and returns the extended slice. This is the §5.2.2 scan that converts the
// unpredictable bitvector into a sorted dense array whose sequential access
// pattern the hardware prefetcher (or, portably, the cache) can exploit.
func (v *Vector) AppendSet(dst []uint32) []uint32 {
	for wi, w := range v.words {
		base := uint32(wi << 6)
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Words exposes the backing words (read-only use intended); needed by
// snapshot/restore and by tests asserting layout properties.
func (v *Vector) Words() []uint64 { return v.words }

// LoadWords overwrites the vector content from a snapshot produced by Words.
// The snapshot must describe a vector of identical capacity.
func (v *Vector) LoadWords(words []uint64) {
	if len(words) != len(v.words) {
		panic("bitvec: snapshot size mismatch")
	}
	copy(v.words, words)
}

// Grow returns a vector with capacity at least n bits, preserving contents.
// If the receiver already suffices it is returned unchanged. Delta tables
// grow as streaming inserts arrive, and their deletion vectors grow with
// them.
func (v *Vector) Grow(n int) *Vector {
	if n <= v.n {
		return v
	}
	need := (n + 63) / 64
	if need <= cap(v.words) {
		v.words = v.words[:need]
	} else {
		w := make([]uint64, need, need+need/2)
		copy(w, v.words)
		v.words = w
	}
	v.n = n
	return v
}
