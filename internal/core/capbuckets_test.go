package core

import (
	"reflect"
	"testing"
)

// TestCapBucketsBoundsAndDeterminism: after CapBuckets(r) every bucket
// holds min(r, original) items, each a subset of the original bucket;
// under-capacity buckets are untouched; and the per-table seeding makes
// the result identical across worker counts.
func TestCapBucketsBoundsAndDeterminism(t *testing.T) {
	fam, mat := testSetup(t, 500)
	build := func() *Static {
		st, err := Build(fam, mat, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	const R = 2
	ref := build()
	st := build()
	st.CapBuckets(R, 99, 2)

	p := fam.Params()
	for l := 0; l < st.NumTables(); l++ {
		tbl, rtbl := st.Table(l), ref.Table(l)
		for key := 0; key < p.Buckets(); key++ {
			b, rb := tbl.Bucket(uint32(key)), rtbl.Bucket(uint32(key))
			if len(rb) <= R {
				if !reflect.DeepEqual(b, rb) {
					t.Fatalf("table %d bucket %d: under-capacity bucket perturbed", l, key)
				}
				continue
			}
			if len(b) != R {
				t.Fatalf("table %d bucket %d: %d items after capping to %d", l, key, len(b), R)
			}
			orig := map[uint32]bool{}
			for _, id := range rb {
				orig[id] = true
			}
			for _, id := range b {
				if !orig[id] {
					t.Fatalf("table %d bucket %d: survivor %d not in the original bucket", l, key, id)
				}
			}
		}
	}

	again := build()
	again.CapBuckets(R, 99, 7) // same seed, different workers
	for l := 0; l < st.NumTables(); l++ {
		a, b := st.Table(l), again.Table(l)
		if !reflect.DeepEqual(a.Offsets, b.Offsets) || !reflect.DeepEqual(a.Items, b.Items) {
			t.Fatalf("table %d: capping differs across worker counts", l)
		}
	}

	// r <= 0 is a no-op, not a wipe.
	noop := build()
	noop.CapBuckets(0, 99, 2)
	for l := 0; l < noop.NumTables(); l++ {
		a, b := noop.Table(l), ref.Table(l)
		if !reflect.DeepEqual(a.Offsets, b.Offsets) || !reflect.DeepEqual(a.Items, b.Items) {
			t.Fatalf("table %d: CapBuckets(0) changed the table", l)
		}
	}
}
