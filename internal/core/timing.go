package core

import "time"

// epoch anchors monotonic phase timing.
var epoch = time.Now()

// now returns monotonic nanoseconds since package init.
func now() int64 { return int64(time.Since(epoch)) }
