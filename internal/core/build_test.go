package core

import (
	"testing"

	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

func testSetup(t *testing.T, nDocs int) (*lshhash.Family, *sparse.Matrix) {
	t.Helper()
	p := lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42}
	fam, err := lshhash.NewFamily(p)
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.Generate(corpus.Twitter(nDocs, p.Dim, 7))
	return fam, c.Mat
}

// checkTableInvariants asserts that every table is a valid partition: the
// offsets are monotone, cover [0, N], and the items are a permutation of
// 0..N-1 whose bucket assignment matches the brute-force key computation.
func checkTableInvariants(t *testing.T, st *Static, sk *lshhash.Sketches) {
	t.Helper()
	p := st.fam.Params()
	n := st.Len()
	for l := 0; l < st.NumTables(); l++ {
		tbl := st.Table(l)
		a, b := lshhash.PairForTable(l, p.M)
		if len(tbl.Items) != n || len(tbl.Offsets) != p.Buckets()+1 {
			t.Fatalf("table %d: bad shape items=%d offsets=%d", l, len(tbl.Items), len(tbl.Offsets))
		}
		if tbl.Offsets[0] != 0 || tbl.Offsets[p.Buckets()] != uint32(n) {
			t.Fatalf("table %d: offsets do not cover [0,%d]", l, n)
		}
		seen := make([]bool, n)
		for key := 0; key < p.Buckets(); key++ {
			if tbl.Offsets[key] > tbl.Offsets[key+1] {
				t.Fatalf("table %d: offsets not monotone at key %d", l, key)
			}
			for _, item := range tbl.Bucket(uint32(key)) {
				if seen[item] {
					t.Fatalf("table %d: item %d appears twice", l, item)
				}
				seen[item] = true
				want := sk.TableKey(int(item), a, b, p.K)
				if want != uint32(key) {
					t.Fatalf("table %d: item %d in bucket %d, key says %d", l, item, key, want)
				}
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("table %d: item %d missing", l, i)
			}
		}
	}
}

func TestBuildStrategiesProduceValidTables(t *testing.T) {
	fam, mat := testSetup(t, 500)
	sk := fam.SketchAll(mat, sched.NewPool(1), true)
	for _, opts := range []BuildOptions{
		{},
		{TwoLevel: true},
		{TwoLevel: true, ShareFirstLevel: true},
		{TwoLevel: true, ShareFirstLevel: true, Vectorized: true},
		{Vectorized: true},
	} {
		st, err := Build(fam, mat, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if st.Len() != 500 {
			t.Fatalf("%+v: Len = %d", opts, st.Len())
		}
		checkTableInvariants(t, st, sk)
	}
}

// The load-bearing equivalence: all construction strategies place exactly
// the same items in the same buckets (order within a bucket may differ).
func TestBuildStrategiesEquivalentBuckets(t *testing.T) {
	fam, mat := testSetup(t, 400)
	ref, err := Build(fam, mat, BuildOptions{Vectorized: true}) // 1-level
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []BuildOptions{
		{TwoLevel: true, Vectorized: true},
		{TwoLevel: true, ShareFirstLevel: true, Vectorized: true},
	} {
		st, err := Build(fam, mat, opts)
		if err != nil {
			t.Fatal(err)
		}
		p := fam.Params()
		for l := 0; l < st.NumTables(); l++ {
			for key := 0; key < p.Buckets(); key++ {
				a := bucketSet(ref.Table(l), uint32(key))
				b := bucketSet(st.Table(l), uint32(key))
				if len(a) != len(b) {
					t.Fatalf("opts %+v table %d key %d: sizes %d vs %d", opts, l, key, len(a), len(b))
				}
				for id := range a {
					if !b[id] {
						t.Fatalf("opts %+v table %d key %d: item %d missing", opts, l, key, id)
					}
				}
			}
		}
	}
}

func bucketSet(t *Table, key uint32) map[uint32]bool {
	m := make(map[uint32]bool)
	for _, id := range t.Bucket(key) {
		m[id] = true
	}
	return m
}

func TestBuildWorkerCountsAgree(t *testing.T) {
	fam, mat := testSetup(t, 300)
	sk := fam.SketchAll(mat, sched.NewPool(1), true)
	for _, workers := range []int{1, 2, 7} {
		opts := Defaults()
		opts.Workers = workers
		st, err := Build(fam, mat, opts)
		if err != nil {
			t.Fatal(err)
		}
		checkTableInvariants(t, st, sk)
	}
}

func TestBuildEmptyMatrix(t *testing.T) {
	fam, _ := testSetup(t, 10)
	empty := sparse.NewMatrix(fam.Params().Dim, 0, 0)
	st, err := Build(fam, empty, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d", st.Len())
	}
	// Queries against an empty index return nothing and do not panic.
	eng := NewEngine(st, empty, QueryDefaults())
	if res := eng.Query(sparse.Vector{Idx: []uint32{1}, Val: []float32{1}}); res != nil {
		t.Fatalf("query on empty index returned %v", res)
	}
}

func TestBuildDimensionMismatch(t *testing.T) {
	fam, _ := testSetup(t, 10)
	wrong := sparse.NewMatrix(fam.Params().Dim+1, 0, 0)
	if _, err := Build(fam, wrong, Defaults()); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestBuildFromSketchesMatchesBuild(t *testing.T) {
	fam, mat := testSetup(t, 250)
	sk := fam.SketchAll(mat, sched.NewPool(2), true)
	st1 := BuildFromSketches(fam, sk, 2)
	st2, err := Build(fam, mat, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	p := fam.Params()
	for l := 0; l < st1.NumTables(); l++ {
		for key := 0; key < p.Buckets(); key++ {
			a := bucketSet(st1.Table(l), uint32(key))
			b := bucketSet(st2.Table(l), uint32(key))
			if len(a) != len(b) {
				t.Fatalf("table %d key %d: %d vs %d", l, key, len(a), len(b))
			}
		}
	}
}

func TestShareImpliesTwoLevel(t *testing.T) {
	fam, mat := testSetup(t, 100)
	sk := fam.SketchAll(mat, sched.NewPool(1), true)
	st, err := Build(fam, mat, BuildOptions{ShareFirstLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTableInvariants(t, st, sk)
}

func TestBuildTimingsPopulated(t *testing.T) {
	fam, mat := testSetup(t, 300)
	_, tm, err := BuildTimed(fam, mat, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if tm.HashNS <= 0 || tm.I1NS <= 0 || tm.I3NS <= 0 {
		t.Fatalf("timings not populated: %+v", tm)
	}
}

func TestMemoryBytes(t *testing.T) {
	fam, mat := testSetup(t, 200)
	st, _ := Build(fam, mat, Defaults())
	p := fam.Params()
	want := int64(p.L()) * (int64(p.Buckets()+1)*4 + int64(200)*4)
	if got := st.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

func TestPartitionParallelMatchesSequential(t *testing.T) {
	keys := make([]uint32, 1000)
	for i := range keys {
		keys[i] = uint32((i * 2654435761) % 16)
	}
	permSeq := make([]uint32, len(keys))
	offsSeq := make([]uint32, 17)
	hist := make([]uint32, 17)
	partitionIdentity(keys, hist, permSeq, offsSeq)

	for _, workers := range []int{1, 3, 8} {
		pool := sched.NewPool(workers)
		perm, offs := partitionParallel(pool, len(keys), 16, func(i int) uint32 { return keys[i] })
		for b := 0; b <= 16; b++ {
			if offs[b] != offsSeq[b] {
				t.Fatalf("workers=%d: offs[%d] = %d, want %d", workers, b, offs[b], offsSeq[b])
			}
		}
		// Same bucket membership (order within bucket may differ).
		for b := 0; b < 16; b++ {
			want := map[uint32]bool{}
			for _, x := range permSeq[offsSeq[b]:offsSeq[b+1]] {
				want[x] = true
			}
			for _, x := range perm[offs[b]:offs[b+1]] {
				if !want[x] {
					t.Fatalf("workers=%d bucket %d: unexpected item %d", workers, b, x)
				}
			}
		}
	}
}

func TestPartitionParallelEmpty(t *testing.T) {
	pool := sched.NewPool(4)
	perm, offs := partitionParallel(pool, 0, 8, func(i int) uint32 { return 0 })
	if len(perm) != 0 || len(offs) != 9 {
		t.Fatalf("empty partition: perm=%d offs=%d", len(perm), len(offs))
	}
}
