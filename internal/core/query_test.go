package core

import (
	"testing"

	"plsh/internal/bitvec"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// queryFixture builds a small corpus, index, and ground truth.
type queryFixture struct {
	fam     *lshhash.Family
	mat     *sparse.Matrix
	st      *Static
	queries []sparse.Vector
}

func newQueryFixture(t *testing.T, nDocs, nQueries int) *queryFixture {
	t.Helper()
	// K=8, M=8 → L=28 tables; small enough for exhaustive verification,
	// selective enough to have structure.
	p := lshhash.Params{Dim: 2000, K: 8, M: 8, Seed: 42}
	fam, err := lshhash.NewFamily(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpus.Twitter(nDocs, p.Dim, 7)
	cfg.NearDupRate = 0.25 // plant plenty of true neighbors
	c := corpus.Generate(cfg)
	st, err := Build(fam, c.Mat, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return &queryFixture{fam: fam, mat: c.Mat, st: st, queries: c.SampleQueries(nQueries, 99)}
}

// candidateSet computes, by brute force, the documents sharing at least one
// bucket with q — the exact candidate set an LSH query must consider.
func (f *queryFixture) candidateSet(q sparse.Vector) map[uint32]bool {
	p := f.fam.Params()
	qsk := f.fam.Sketch(q)
	out := map[uint32]bool{}
	for i := 0; i < f.mat.Rows(); i++ {
		dsk := f.fam.Sketch(f.mat.Row(i))
		matches := 0
		for j := 0; j < p.M; j++ {
			if qsk[j] == dsk[j] {
				matches++
			}
		}
		// g_{a,b} collides iff both u_a and u_b collide; any pair of
		// matching functions yields a shared bucket.
		if matches >= 2 {
			out[uint32(i)] = true
		}
	}
	return out
}

// TestQueryMatchesBruteForceCandidates is the core correctness theorem: the
// engine returns exactly the candidates within radius R, for every
// combination of optimization toggles.
func TestQueryMatchesBruteForceCandidates(t *testing.T) {
	f := newQueryFixture(t, 300, 20)
	const R = 0.9
	for _, opts := range []QueryOptions{
		{Radius: R}, // fully unoptimized
		{Radius: R, UseBitvector: true},
		{Radius: R, UseBitvector: true, OptimizedDP: true},
		{Radius: R, UseBitvector: true, OptimizedDP: true, ExtractCandidates: true},
		{Radius: R, OptimizedDP: true},
	} {
		eng := NewEngine(f.st, f.mat, opts)
		for qi, q := range f.queries {
			want := map[uint32]bool{}
			for id := range f.candidateSet(q) {
				d := sparse.Dot(q, f.mat.Row(int(id)))
				if sparse.AngularDistance(d) <= R {
					want[id] = true
				}
			}
			got := eng.Query(q)
			if len(got) != len(want) {
				t.Fatalf("opts %+v query %d: got %d results, want %d", opts, qi, len(got), len(want))
			}
			for _, nb := range got {
				if !want[nb.ID] {
					t.Fatalf("opts %+v query %d: unexpected result %d", opts, qi, nb.ID)
				}
				d := sparse.Dot(q, f.mat.Row(int(nb.ID)))
				if diff := sparse.AngularDistance(d) - nb.Dist; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("opts %+v query %d: distance mismatch", opts, qi)
				}
			}
		}
	}
}

// All optimization combinations must agree with each other exactly.
func TestAllQueryOptionsAgree(t *testing.T) {
	f := newQueryFixture(t, 400, 30)
	base := NewEngine(f.st, f.mat, QueryOptions{Radius: 0.9})
	variants := []*Engine{
		NewEngine(f.st, f.mat, QueryOptions{Radius: 0.9, UseBitvector: true}),
		NewEngine(f.st, f.mat, QueryOptions{Radius: 0.9, UseBitvector: true, ExtractCandidates: true}),
		NewEngine(f.st, f.mat, QueryDefaults()),
		NewEngine(f.st, sparse.NewScatteredStore(f.mat), QueryDefaults()),
	}
	for qi, q := range f.queries {
		want := base.Query(q)
		SortNeighbors(want)
		for vi, eng := range variants {
			got := eng.Query(q)
			SortNeighbors(got)
			if len(got) != len(want) {
				t.Fatalf("variant %d query %d: %d vs %d results", vi, qi, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("variant %d query %d: result %d differs", vi, qi, i)
				}
			}
		}
	}
}

func TestQueryBatchMatchesSingles(t *testing.T) {
	f := newQueryFixture(t, 300, 40)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	batch := eng.QueryBatch(f.queries)
	for i, q := range f.queries {
		single := eng.Query(q)
		SortNeighbors(single)
		got := append([]Neighbor(nil), batch[i]...)
		SortNeighbors(got)
		if len(single) != len(got) {
			t.Fatalf("query %d: batch %d vs single %d", i, len(got), len(single))
		}
		for j := range single {
			if single[j].ID != got[j].ID {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

func TestSelfQueryFindsSelf(t *testing.T) {
	// A document queried against its own index must return itself at
	// distance 0 (it collides with itself in every table).
	f := newQueryFixture(t, 200, 0)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	for i := 0; i < 200; i += 13 {
		res := eng.Query(f.mat.Row(i))
		found := false
		for _, nb := range res {
			// acos is steep near dot=1, so float32 rounding inflates the
			// self-distance to ~1e-3; anything below 0.01 rad is "self".
			if nb.ID == uint32(i) && nb.Dist < 0.01 {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d does not find itself", i)
		}
	}
}

func TestDeletedExcluded(t *testing.T) {
	f := newQueryFixture(t, 200, 0)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	del := bitvec.New(200)
	del.Set(17)
	eng.SetDeleted(del)
	res := eng.Query(f.mat.Row(17))
	for _, nb := range res {
		if nb.ID == 17 {
			t.Fatal("deleted document returned")
		}
	}
	eng.SetDeleted(nil)
	res = eng.Query(f.mat.Row(17))
	found := false
	for _, nb := range res {
		if nb.ID == 17 {
			found = true
		}
	}
	if !found {
		t.Fatal("clearing deletion vector did not restore the document")
	}
}

func TestQueryStatsConsistent(t *testing.T) {
	f := newQueryFixture(t, 300, 10)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	for _, q := range f.queries {
		res, stats := eng.QueryWithStats(q)
		if stats.Results != len(res) {
			t.Fatalf("stats.Results = %d, len = %d", stats.Results, len(res))
		}
		if stats.Unique > stats.Collisions {
			t.Fatalf("unique %d > collisions %d", stats.Unique, stats.Collisions)
		}
		if stats.Results > stats.Unique {
			t.Fatalf("results %d > unique %d", stats.Results, stats.Unique)
		}
		want := len(f.candidateSet(q))
		if stats.Unique != want {
			t.Fatalf("unique = %d, brute force says %d", stats.Unique, want)
		}
	}
}

func TestWorkspaceReuseAcrossQueries(t *testing.T) {
	// Back-to-back queries must not leak state (bitvector bits, mask
	// values) between calls: two runs of the same query sandwiching a
	// different query must agree.
	f := newQueryFixture(t, 300, 2)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	r1 := eng.Query(f.queries[0])
	_ = eng.Query(f.queries[1])
	r2 := eng.Query(f.queries[0])
	SortNeighbors(r1)
	SortNeighbors(r2)
	if len(r1) != len(r2) {
		t.Fatalf("workspace leak: %d vs %d results", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("workspace leak: differing results")
		}
	}
}

func TestPhaseCollection(t *testing.T) {
	f := newQueryFixture(t, 300, 10)
	opts := QueryDefaults()
	opts.CollectPhases = true
	eng := NewEngine(f.st, f.mat, opts)
	eng.QueryBatch(f.queries)
	ph := eng.Phases()
	if ph.Q2NS <= 0 || ph.Q3NS <= 0 {
		t.Fatalf("phases not collected: %+v", ph)
	}
	eng.ResetPhases()
	if ph = eng.Phases(); ph.Q2NS != 0 || ph.Q3NS != 0 {
		t.Fatal("ResetPhases did not zero")
	}
}

func TestZeroQueryReturnsNothing(t *testing.T) {
	f := newQueryFixture(t, 100, 0)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	if res := eng.Query(sparse.Vector{}); res != nil {
		t.Fatalf("zero query returned %v", res)
	}
}

func TestExactNeighborsGroundTruth(t *testing.T) {
	f := newQueryFixture(t, 150, 5)
	for _, q := range f.queries {
		exact := ExactNeighbors(f.mat, q, 0.9)
		// Every exact neighbor must genuinely be within R; and the count
		// must match a naive recount.
		count := 0
		for i := 0; i < f.mat.Rows(); i++ {
			d := sparse.AngularDistance(sparse.Dot(q, f.mat.Row(i)))
			if d <= 0.9 {
				count++
			}
		}
		if len(exact) != count {
			t.Fatalf("ExactNeighbors = %d, recount %d", len(exact), count)
		}
	}
}

// Recall: with planted near-duplicates, the fraction of true R-near
// neighbors the index reports must respect the 1−δ guarantee (δ set by the
// parameter choice; here we check empirically against the analytic P').
func TestRecallMatchesRetrievalProb(t *testing.T) {
	f := newQueryFixture(t, 800, 60)
	eng := NewEngine(f.st, f.mat, QueryDefaults())
	p := f.fam.Params()
	var expected, got float64
	for _, q := range f.queries {
		exact := ExactNeighbors(f.mat, q, 0.9)
		res := eng.Query(q)
		found := map[uint32]bool{}
		for _, nb := range res {
			found[nb.ID] = true
		}
		for _, nb := range exact {
			expected += lshhash.RetrievalProb(nb.Dist, p.K, p.M)
			if found[nb.ID] {
				got++
			}
		}
	}
	if expected == 0 {
		t.Skip("no true neighbors in sample")
	}
	ratio := got / expected
	// Chernoff slack: empirical retrieval within 15% of the analytic sum.
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("retrieved %v true neighbors, model expects %v (ratio %v)", got, expected, ratio)
	}
}

// TestSearchBudgetIgnoresTombstones: the request-scoped candidate budget
// caps distance computations, so tombstoned candidates must be skipped
// for free — a deletion-heavy candidate set cannot eat the budget
// unevaluated — and QueryStats.Unique reports the true evaluation count.
func TestSearchBudgetIgnoresTombstones(t *testing.T) {
	f := newQueryFixture(t, 300, 0)
	eng := NewEngine(f.st, f.mat, QueryOptions{Radius: 1.2, UseBitvector: true, ExtractCandidates: true})
	// Tombstone every document except the last; its self-query still has
	// itself as a live candidate, possibly behind hundreds of deleted
	// ones in sorted candidate order.
	del := bitvec.New(f.mat.Rows())
	for i := 0; i < f.mat.Rows()-1; i++ {
		del.Set(i)
	}
	eng.SetDeleted(del)
	live := uint32(f.mat.Rows() - 1)
	q := f.mat.Row(int(live))
	res, stats := eng.SearchWithStats(q, SearchParams{MaxCandidates: 1})
	if stats.Unique != 1 {
		t.Fatalf("Unique = %d, want 1 evaluation (tombstones are free)", stats.Unique)
	}
	found := false
	for _, nb := range res {
		if nb.ID == live {
			found = true
		}
	}
	if !found {
		t.Fatalf("budget 1 starved by tombstoned candidates: live self-match missing from %v", res)
	}
	// Without deletions the budget caps evaluations exactly.
	eng.SetDeleted(nil)
	_, stats = eng.SearchWithStats(q, SearchParams{MaxCandidates: 3})
	if stats.Unique > 3 {
		t.Fatalf("Unique = %d exceeds the budget of 3", stats.Unique)
	}
}
