package core

// topk.go implements bounded top-k selection over neighbor lists — the
// coordinator-side primitive behind the QueryTopK path. A node answers a
// top-k query with its k best R-near candidates; the coordinator merges
// the per-node partial lists without materializing the full concatenated
// R-near answer set.

// neighborLess is the canonical result order: ascending distance, ties by
// ascending ID (matching SortNeighbors).
func neighborLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// TopK selects the k nearest entries of ns in O(n log k), returning them
// sorted ascending by (Dist, ID). It reorders ns in place and returns a
// prefix of it; k ≤ 0 yields nil, k ≥ len(ns) sorts and returns all of ns.
func TopK(ns []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	if k >= len(ns) {
		SortNeighbors(ns)
		return ns
	}
	// Bounded max-heap over ns[:k]: the root is the worst of the current
	// best k, so each remaining entry needs one comparison to reject.
	h := ns[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for _, nb := range ns[k:] {
		if neighborLess(nb, h[0]) {
			h[0] = nb
			siftDown(h, 0)
		}
	}
	SortNeighbors(h)
	return h
}

// siftDown restores the max-heap property (worst neighbor at the root)
// for the subtree rooted at i.
func siftDown(h []Neighbor, i int) {
	for {
		l, r, worst := 2*i+1, 2*i+2, i
		if l < len(h) && neighborLess(h[worst], h[l]) {
			worst = l
		}
		if r < len(h) && neighborLess(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
