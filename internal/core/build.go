package core

import (
	"plsh/internal/lshhash"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// BuildOptions selects a construction strategy. The zero value is the
// fully unoptimized baseline of Fig. 4; Defaults() enables everything.
type BuildOptions struct {
	// TwoLevel splits each table's k-bit partition into two k/2-bit passes
	// (§5.1.2), bounding the number of simultaneous partitions at 2^(k/2)
	// — the paper's remedy for TLB thrash at 2^16 buckets.
	TwoLevel bool
	// ShareFirstLevel reuses one first-level partition per hash function
	// u_a across all tables g_{a,·}, cutting partition passes from 2L to
	// L+m. Requires TwoLevel.
	ShareFirstLevel bool
	// Vectorized selects the unrolled slab hashing kernel over the naive
	// per-function kernel (the Fig. 4 "+vectorization" arm).
	Vectorized bool
	// Workers sets the pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// Defaults returns fully optimized build options.
func Defaults() BuildOptions {
	return BuildOptions{TwoLevel: true, ShareFirstLevel: true, Vectorized: true}
}

// BuildTimings reports wall time (ns) spent in each construction phase, for
// the Fig. 6 model-validation experiment.
type BuildTimings struct {
	HashNS int64 // sketch computation (§5.1.1)
	I1NS   int64 // first-level partitions (Step I1)
	I2NS   int64 // second-key gather (Step I2)
	I3NS   int64 // second-level partitions (Step I3)
}

// Build constructs a Static index over every row of mat.
func Build(fam *lshhash.Family, mat *sparse.Matrix, opts BuildOptions) (*Static, error) {
	st, _, err := BuildTimed(fam, mat, opts)
	return st, err
}

// BuildTimed is Build with per-phase timings.
func BuildTimed(fam *lshhash.Family, mat *sparse.Matrix, opts BuildOptions) (*Static, BuildTimings, error) {
	var tm BuildTimings
	if err := checkDims(fam, mat); err != nil {
		return nil, tm, err
	}
	if opts.ShareFirstLevel && !opts.TwoLevel {
		opts.TwoLevel = true // sharing implies the 2-level layout
	}
	pool := sched.NewPool(opts.Workers)
	p := fam.Params()
	n := mat.Rows()

	t0 := now()
	sk := fam.SketchAll(mat, pool, opts.Vectorized)
	tm.HashNS = now() - t0

	st := &Static{fam: fam, n: n, tables: make([]Table, p.L())}
	switch {
	case !opts.TwoLevel:
		t1 := now()
		buildOneLevel(st, sk, p, pool)
		tm.I3NS = now() - t1 // the single monolithic partition pass
	case !opts.ShareFirstLevel:
		buildTwoLevel(st, sk, p, pool, &tm)
	default:
		buildShared(st, sk, p, pool, &tm)
	}
	return st, tm, nil
}

// MustBuild is Build for callers whose dimensions are statically known to
// match; it panics on error.
func MustBuild(fam *lshhash.Family, mat *sparse.Matrix, opts BuildOptions) *Static {
	st, err := Build(fam, mat, opts)
	if err != nil {
		panic(err)
	}
	return st
}

// BuildFromSketches constructs a Static index from precomputed sketches,
// used by the streaming merge path where delta sketches already exist.
func BuildFromSketches(fam *lshhash.Family, sk *lshhash.Sketches, workers int) *Static {
	pool := sched.NewPool(workers)
	p := fam.Params()
	st := &Static{fam: fam, n: sk.N(), tables: make([]Table, p.L())}
	var tm BuildTimings
	buildShared(st, sk, p, pool, &tm)
	return st
}

// buildOneLevel is the unoptimized baseline: every table partitions all N
// items by its full k-bit key in one 2^k-way pass.
//
//plshvet:prepublish construction helper; fills the Static before Build returns it
func buildOneLevel(st *Static, sk *lshhash.Sketches, p lshhash.Params, pool *sched.Pool) {
	n := sk.N()
	buckets := p.Buckets()
	half := uint(p.K / 2)
	type scratch struct {
		keys []uint32
		hist []uint32
	}
	ws := make([]scratch, pool.Workers())
	pool.Run(p.L(), func(l, w int) {
		if ws[w].keys == nil {
			ws[w].keys = make([]uint32, n)
			ws[w].hist = make([]uint32, buckets+1)
		}
		a, b := lshhash.PairForTable(l, p.M)
		keys := ws[w].keys
		for i := 0; i < n; i++ {
			keys[i] = sk.At(i, a)<<half | sk.At(i, b)
		}
		t := &st.tables[l]
		t.Items = make([]uint32, n)
		t.Offsets = make([]uint32, buckets+1)
		partitionIdentity(keys, ws[w].hist, t.Items, t.Offsets)
	})
}

// buildTwoLevel partitions each table independently in two k/2-bit passes
// (no sharing): first by u_a — carrying each item's second-level key
// through the scatter so no random gather is needed — then each
// first-level segment by u_b. 2L partition passes, each over 2^(k/2)
// partitions only (the TLB/cache argument of §5.1.2).
func buildTwoLevel(st *Static, sk *lshhash.Sketches, p lshhash.Params, pool *sched.Pool, tm *BuildTimings) {
	n := sk.N()
	halfB := p.HalfBuckets()
	type scratch struct {
		keys1, keys2 []uint32
		perm1, kperm []uint32
		offs1        []uint32
		hist         []uint32
	}
	ws := make([]scratch, pool.Workers())
	t0 := now()
	pool.Run(p.L(), func(l, w int) {
		s := &ws[w]
		if s.keys1 == nil {
			s.keys1 = make([]uint32, n)
			s.keys2 = make([]uint32, n)
			s.perm1 = make([]uint32, n)
			s.kperm = make([]uint32, n)
			s.offs1 = make([]uint32, halfB+1)
			s.hist = make([]uint32, halfB+1)
		}
		a, b := lshhash.PairForTable(l, p.M)
		// Sequential sketch read: both keys come from one cache line.
		for i := 0; i < n; i++ {
			s.keys1[i] = sk.At(i, a)
			s.keys2[i] = sk.At(i, b)
		}
		// First-level pass moves (item, key2) pairs together.
		partitionPairs(s.keys1, s.keys2, s.hist, s.perm1, s.kperm, s.offs1)
		secondLevel(&st.tables[l], s.perm1, s.kperm, s.offs1, s.hist, p)
	})
	// First- and second-level passes are fused per table; attribute the
	// total evenly for reporting.
	total := now() - t0
	tm.I1NS = total / 2
	tm.I3NS = total - total/2
}

// buildShared is the paper's full algorithm (Steps I1–I3 of §5.1.2): one
// first-level partition per hash function u_a, shared by all tables (a, ·),
// then per-table second-level refinement — m−1 first-level passes + L
// second-level passes instead of 2L.
//
// Steps I1 and I2 are fused: the first-level scatter carries every
// remaining hash column u_{a+1..m} along with the data index, so the
// "rearrange the hash values according to the final scatter offsets" step
// costs no random gather — sketch rows are read sequentially exactly once
// per first-level function, and each table (a, b) then reads its
// second-level keys sequentially from the shared column buffer.
func buildShared(st *Static, sk *lshhash.Sketches, p lshhash.Params, pool *sched.Pool, tm *BuildTimings) {
	n := sk.N()
	halfB := p.HalfBuckets()
	m := p.M

	// Shared buffers, reused across first-level functions.
	perm := make([]uint32, n)
	offs := make([]uint32, halfB+1)
	cols := make([][]uint32, m)
	for j := 1; j < m; j++ {
		cols[j] = make([]uint32, n)
	}
	type scratch struct {
		hist []uint32
	}
	ws := make([]scratch, pool.Workers())

	w := pool.Workers()
	if w > n {
		w = n
	}
	hists := make([][]uint32, w)

	for a := 0; a < m-1; a++ {
		// Step I1: local histograms over u_a, then one prefix sum giving
		// per-worker scatter cursors (§5.1.2 "Parallelism").
		t0 := now()
		if n > 0 {
			pool.Static(n, func(lo, hi, self int) {
				h := hists[self]
				if h == nil {
					h = make([]uint32, halfB)
					hists[self] = h
				} else {
					for i := range h {
						h[i] = 0
					}
				}
				for i := lo; i < hi; i++ {
					h[sk.At(i, a)]++
				}
			})
			var cum uint32
			for b := 0; b < halfB; b++ {
				offs[b] = cum
				for t := 0; t < w; t++ {
					c := hists[t][b]
					hists[t][b] = cum
					cum += c
				}
			}
			offs[halfB] = cum
		}
		tm.I1NS += now() - t0

		// Step I2 (fused scatter): move each data index and its remaining
		// hash columns to the first-level position. Sketch rows are read
		// sequentially; writes go to 2^(k/2) partition streams.
		t1 := now()
		if n > 0 {
			aa := a
			pool.Static(n, func(lo, hi, self int) {
				h := hists[self]
				for i := lo; i < hi; i++ {
					row := sk.Row(i)
					dst := h[row[aa]]
					h[row[aa]]++
					perm[dst] = uint32(i)
					for j := aa + 1; j < m; j++ {
						cols[j][dst] = row[j]
					}
				}
			})
		}
		tm.I2NS += now() - t1

		// Step I3: second-level partitions of every table (a, b), in
		// parallel over tables (work stealing, as the paper's task-queue
		// model prescribes).
		t2 := now()
		pool.Run(m-1-a, func(i, wkr int) {
			b := a + 1 + i
			s := &ws[wkr]
			if s.hist == nil {
				s.hist = make([]uint32, halfB+1)
			}
			l := lshhash.TableForPair(a, b, m)
			secondLevel(&st.tables[l], perm, cols[b], offs, s.hist, p)
		})
		tm.I3NS += now() - t2
	}
}

// partitionPairs partitions the identity index sequence by keys1 into
// outPerm while carrying keys2 along into outKeys2 (so the second-level
// pass needs no random gather). hist is scratch of len nB+1.
func partitionPairs(keys1, keys2, hist, outPerm, outKeys2, outOffs []uint32) {
	for i := range hist {
		hist[i] = 0
	}
	for _, k := range keys1 {
		hist[k]++
	}
	nB := len(hist) - 1
	var cum uint32
	for b := 0; b < nB; b++ {
		outOffs[b] = cum
		c := hist[b]
		hist[b] = cum
		cum += c
	}
	outOffs[nB] = cum
	for i, k := range keys1 {
		dst := hist[k]
		hist[k]++
		outPerm[dst] = uint32(i)
		outKeys2[dst] = keys2[i]
	}
}

// secondLevel refines each first-level segment of perm1 by the second-level
// keys, writing the table's final Items and the full 2^k+1 Offsets.
//
//plshvet:prepublish construction helper; fills one table before Build returns the Static
func secondLevel(t *Table, perm1, keys2, offs1, hist []uint32, p lshhash.Params) {
	n := len(perm1)
	halfB := p.HalfBuckets()
	half := uint(p.K / 2)
	buckets := p.Buckets()
	t.Items = make([]uint32, n)
	t.Offsets = make([]uint32, buckets+1)
	for part := 0; part < halfB; part++ {
		segLo, segHi := offs1[part], offs1[part+1]
		seg := keys2[segLo:segHi]
		// Histogram of the segment's second-level keys.
		for i := range hist {
			hist[i] = 0
		}
		for _, k2 := range seg {
			hist[k2]++
		}
		// Prefix sum → absolute offsets for buckets (part, 0..halfB).
		cum := segLo
		base := uint32(part) << half
		for q := 0; q < halfB; q++ {
			t.Offsets[base+uint32(q)] = cum
			c := hist[q]
			hist[q] = cum // reuse as scatter cursor
			cum += c
		}
		// Scatter.
		for i, k2 := range seg {
			dst := hist[k2]
			hist[k2]++
			t.Items[dst] = perm1[segLo+uint32(i)]
		}
	}
	t.Offsets[buckets] = uint32(n)
}

// partitionIdentity partitions the identity index sequence 0..len(keys)-1
// by keys into outPerm with bucket boundaries in outOffs (len = nB+1,
// where nB+1 == len(hist)). hist is scratch.
func partitionIdentity(keys, hist, outPerm, outOffs []uint32) {
	for i := range hist {
		hist[i] = 0
	}
	for _, k := range keys {
		hist[k]++
	}
	nB := len(hist) - 1
	var cum uint32
	for b := 0; b < nB; b++ {
		outOffs[b] = cum
		c := hist[b]
		hist[b] = cum
		cum += c
	}
	outOffs[nB] = cum
	for i, k := range keys {
		dst := hist[k]
		hist[k]++
		outPerm[dst] = uint32(i)
	}
}

// partitionParallel is the 3-step parallel partition of §5.1.2: each worker
// histograms its chunk, one thread prefix-sums the per-worker histograms
// into global scatter offsets, then workers scatter their chunks. Returns
// the permuted index array and the nB+1 bucket offsets.
func partitionParallel(pool *sched.Pool, n, nB int, key func(int) uint32) ([]uint32, []uint32) {
	w := pool.Workers()
	if w > n {
		w = n
	}
	if n == 0 {
		return nil, make([]uint32, nB+1)
	}
	perm := make([]uint32, n)
	offs := make([]uint32, nB+1)
	hists := make([][]uint32, w)

	// Pass 1: local histograms.
	pool.Static(n, func(lo, hi, self int) {
		h := make([]uint32, nB)
		for i := lo; i < hi; i++ {
			h[key(i)]++
		}
		hists[self] = h
	})

	// Prefix sum in bucket-major, worker-minor order so each bucket's
	// output region is contiguous and workers write disjoint sub-ranges.
	var cum uint32
	for b := 0; b < nB; b++ {
		offs[b] = cum
		for t := 0; t < w; t++ {
			c := hists[t][b]
			hists[t][b] = cum
			cum += c
		}
	}
	offs[nB] = cum

	// Pass 2: scatter.
	pool.Static(n, func(lo, hi, self int) {
		h := hists[self]
		for i := lo; i < hi; i++ {
			b := key(i)
			perm[h[b]] = uint32(i)
			h[b]++
		}
	})
	return perm, offs
}
