package core

import (
	"math/rand"
	"testing"
)

func randNeighbors(n int, seed int64) []Neighbor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Neighbor, n)
	for i := range out {
		out[i] = Neighbor{ID: uint32(rng.Intn(n)), Dist: float64(rng.Intn(20)) / 10}
	}
	return out
}

func TestTopKMatchesSortTruncate(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, k := range []int{0, 1, 3, n / 2, n, n + 7} {
			ns := randNeighbors(n, int64(n*1000+k))
			want := append([]Neighbor(nil), ns...)
			SortNeighbors(want)
			if k < len(want) && k >= 0 {
				want = want[:k]
			}
			if k <= 0 {
				want = nil
			}
			got := TopK(ns, k)
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: entry %d = %+v, want %+v", n, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTopKSortedOutput(t *testing.T) {
	ns := randNeighbors(500, 99)
	got := TopK(ns, 50)
	for i := 1; i < len(got); i++ {
		if neighborLess(got[i], got[i-1]) {
			t.Fatalf("output not sorted at %d: %+v > %+v", i, got[i-1], got[i])
		}
	}
}
