package core

import (
	"slices"
	"sync"
	"sync/atomic"

	"plsh/internal/bitvec"
	"plsh/internal/lshhash"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Neighbor is one query answer: a document index and its angular distance.
type Neighbor struct {
	ID   uint32
	Dist float64
}

// QueryOptions selects the query-path optimizations of §5.2. The zero value
// is the fully unoptimized baseline of Fig. 5; QueryDefaults enables
// everything.
type QueryOptions struct {
	// Radius is the R-near-neighbor radius in radians (paper: 0.9).
	Radius float64
	// UseBitvector replaces set-based duplicate elimination with the
	// O(1)-per-index bitvector histogram (§5.2.1).
	UseBitvector bool
	// OptimizedDP replaces merge-intersection dot products with the dense
	// query vocabulary mask (§5.2.3).
	OptimizedDP bool
	// ExtractCandidates scans the bitvector into a sorted dense array
	// before Step Q3, making candidate access sequential — the portable
	// analogue of the paper's software prefetching (§5.2.2). Requires
	// UseBitvector.
	ExtractCandidates bool
	// Workers sets the pool size for batch queries; <= 0 means GOMAXPROCS.
	Workers int
	// CollectPhases accumulates per-phase wall time into Engine.Phases().
	CollectPhases bool
}

// QueryDefaults returns fully optimized query options with the paper's
// radius.
func QueryDefaults() QueryOptions {
	return QueryOptions{
		Radius:            0.9,
		UseBitvector:      true,
		OptimizedDP:       true,
		ExtractCandidates: true,
	}
}

// SearchParams are the request-scoped knobs of one query. The engine's
// QueryOptions fix the structural choices (dedup strategy, dot-product
// kernel, workers) at construction; SearchParams override the two values
// that heterogeneous traffic wants to vary per request without rebuilding
// anything. The zero value means "use the engine's configured defaults".
type SearchParams struct {
	// Radius overrides QueryOptions.Radius for this query when > 0. The
	// hash tables are radius-agnostic (only candidate filtering uses it),
	// so any radius is answerable by any engine; recall guarantees still
	// assume the (k, m) geometry was tuned for a radius near this one.
	Radius float64
	// MaxCandidates, when > 0, bounds how many unique candidates this
	// query evaluates distances for — the latency/recall trade for callers
	// that prefer a bounded answer over an exhaustive one. Candidates past
	// the bound are dropped unevaluated; QueryStats.Unique reports the
	// evaluated count.
	MaxCandidates int
}

// QueryStats counts the work a query performed, matching the quantities of
// the §7 model: Collisions is the total bucket-entry count over all L
// tables (duplicates included); Unique is the number of distance
// computations actually performed (deduplicated candidates, minus
// tombstoned ones and anything past the request's candidate budget);
// Results is the answer count.
type QueryStats struct {
	Collisions int
	Unique     int
	Results    int
}

// PhaseTimes accumulates wall time (ns) by query phase across an Engine's
// lifetime (only when CollectPhases is set). Workers run concurrently, so
// these are summed-across-workers phase times, suitable for the relative
// attribution of Fig. 6.
type PhaseTimes struct {
	Q2NS int64 // bucket reads + duplicate elimination (+ extraction scan)
	Q3NS int64 // candidate fetch + distance computation
}

// Engine answers R-near-neighbor queries against a Static index and a
// document store. Engines are safe for arbitrary concurrent use; query
// workspaces (candidate bitvector, vocabulary mask) are recycled through a
// sync.Pool, the Go analogue of the paper's per-thread private bitvectors.
type Engine struct {
	st      *Static
	store   sparse.Store
	opts    QueryOptions
	pool    *sched.Pool
	deleted *bitvec.Vector
	pairs   []tablePair // (a, b) per table, precomputed once
	wsPool  sync.Pool
	q2ns    atomic.Int64
	q3ns    atomic.Int64
}

// tablePair caches PairForTable so the hot Q2 loop composes each table's
// key with two array reads instead of an O(m) search.
type tablePair struct {
	a, b uint16
}

// workspace is one in-flight query's private state.
//
//plshvet:scratch owned per-query candidate/score buffers; nothing caller-visible is ever stored in them
type workspace struct {
	seen   *bitvec.Vector
	cand   []uint32
	set    map[uint32]struct{}
	mask   *sparse.QueryMask
	scores []float32
	sketch []uint32
}

// NewEngine builds a query engine. The store must hold exactly the
// documents the index was built over (store row i ↔ index item i).
func NewEngine(st *Static, store sparse.Store, opts QueryOptions) *Engine {
	if opts.Radius <= 0 {
		opts.Radius = 0.9
	}
	if opts.ExtractCandidates && !opts.UseBitvector {
		opts.ExtractCandidates = false
	}
	e := &Engine{
		st:    st,
		store: store,
		opts:  opts,
		pool:  sched.NewPool(opts.Workers),
		pairs: make([]tablePair, st.NumTables()),
	}
	for l := range e.pairs {
		a, b := lshhash.PairForTable(l, st.fam.Params().M)
		e.pairs[l] = tablePair{a: uint16(a), b: uint16(b)}
	}
	e.wsPool.New = func() any {
		ws := &workspace{
			seen:   bitvec.New(st.Len()),
			scores: make([]float32, st.fam.Params().NumFuncs()),
			sketch: make([]uint32, st.fam.Params().M),
		}
		if !opts.UseBitvector {
			ws.set = make(map[uint32]struct{}, 1024)
		}
		if opts.OptimizedDP {
			ws.mask = sparse.NewQueryMask(store.Dimension())
		}
		return ws
	}
	return e
}

// Pool exposes the engine's worker pool so callers (the node layer) can
// schedule combined static+delta batches on it.
func (e *Engine) Pool() *sched.Pool { return e.pool }

// Options returns the engine's query options.
func (e *Engine) Options() QueryOptions { return e.opts }

// SetDeleted installs the deletion bitvector consulted before distance
// computation (§6.2). Pass nil to clear. The vector is read, not copied,
// and is consulted with atomic loads, so callers may keep setting bits
// (via SetAtomic) concurrently with queries — the tombstone contract of
// the node's snapshot concurrency model. SetDeleted itself must still be
// called before the engine is shared with readers.
func (e *Engine) SetDeleted(del *bitvec.Vector) { e.deleted = del }

// Phases returns accumulated per-phase times.
func (e *Engine) Phases() PhaseTimes {
	return PhaseTimes{Q2NS: e.q2ns.Load(), Q3NS: e.q3ns.Load()}
}

// ResetPhases zeroes the phase accumulators.
func (e *Engine) ResetPhases() {
	e.q2ns.Store(0)
	e.q3ns.Store(0)
}

// Query answers a single query with the engine's configured defaults.
func (e *Engine) Query(q sparse.Vector) []Neighbor {
	res, _ := e.QueryWithStats(q)
	return res
}

// QueryWithStats answers a single query and reports work counts.
func (e *Engine) QueryWithStats(q sparse.Vector) ([]Neighbor, QueryStats) {
	return e.SearchWithStats(q, SearchParams{})
}

// Search answers a single query under request-scoped parameters.
func (e *Engine) Search(q sparse.Vector, p SearchParams) []Neighbor {
	res, _ := e.SearchWithStats(q, p)
	return res
}

// SearchWithStats answers a single query under request-scoped parameters
// and reports work counts.
func (e *Engine) SearchWithStats(q sparse.Vector, p SearchParams) ([]Neighbor, QueryStats) {
	return e.SearchAppend(nil, q, p)
}

// SearchAppend answers a single query under request-scoped parameters,
// appending the answers to dst and returning the extended slice (the
// append contract of strconv.AppendInt and friends). Passing a slice with
// spare capacity makes the call allocation-free once the engine's pooled
// workspace is warm; the caller owns dst and everything returned. Answers
// are in bucket-scan order — callers wanting the canonical order apply
// SortNeighbors or TopK to the appended suffix.
func (e *Engine) SearchAppend(dst []Neighbor, q sparse.Vector, p SearchParams) ([]Neighbor, QueryStats) {
	ws := e.wsPool.Get().(*workspace)
	res, stats := e.queryOn(dst, q, ws, p)
	e.wsPool.Put(ws)
	return res, stats
}

// QueryBatch answers a batch in parallel with work stealing over queries
// (§5.2 "Parallelism": queries are independent tasks; batching trades
// latency for throughput, Fig. 10).
func (e *Engine) QueryBatch(qs []sparse.Vector) [][]Neighbor {
	out := make([][]Neighbor, len(qs))
	e.pool.Run(len(qs), func(task, worker int) {
		out[task] = e.Query(qs[task])
	})
	return out
}

// QueryBatchStats answers a batch and reports per-query work counts.
func (e *Engine) QueryBatchStats(qs []sparse.Vector) ([][]Neighbor, []QueryStats) {
	out := make([][]Neighbor, len(qs))
	stats := make([]QueryStats, len(qs))
	e.pool.Run(len(qs), func(task, worker int) {
		out[task], stats[task] = e.QueryWithStats(qs[task])
	})
	return out, stats
}

// SearchBatchAppend answers a batch in parallel, reusing dst: entry i is
// rewritten in place as append(dst[i][:0], answers...), so a caller that
// holds one dst across batches reaches a zero-allocation steady state once
// every entry has grown to its working capacity. dst is extended with nil
// entries if shorter than qs; the returned slice (always len(qs)) and its
// entries are owned by the caller. Workers write disjoint entries, so the
// usual batch parallelism applies unchanged.
func (e *Engine) SearchBatchAppend(dst [][]Neighbor, qs []sparse.Vector, p SearchParams) [][]Neighbor {
	for len(dst) < len(qs) {
		dst = append(dst, nil)
	}
	dst = dst[:len(qs)]
	e.pool.Run(len(qs), func(task, worker int) {
		dst[task], _ = e.SearchAppend(dst[task][:0], qs[task], p)
	})
	return dst
}

// queryOn runs the full Q1–Q4 pipeline on a private workspace, appending
// answers to dst.
func (e *Engine) queryOn(dst []Neighbor, q sparse.Vector, ws *workspace, p SearchParams) ([]Neighbor, QueryStats) {
	var stats QueryStats
	if e.st.Len() == 0 || q.NNZ() == 0 {
		return dst, stats
	}
	hp := e.st.fam.Params()
	half := uint(hp.K / 2)

	// Step Q1: hash the query (cheap; the paper ignores its cost too).
	e.st.fam.SketchInto(q, ws.scores, ws.sketch)

	var t0 int64
	if e.opts.CollectPhases {
		t0 = now()
	}

	// Step Q2: read buckets from all L tables and deduplicate.
	ws.cand = ws.cand[:0]
	if e.opts.UseBitvector {
		seen := ws.seen
		if e.opts.ExtractCandidates {
			// Mark-only pass, then scan to a sorted array (§5.2.2).
			for l := range e.st.tables {
				pr := e.pairs[l]
				key := ws.sketch[pr.a]<<half | ws.sketch[pr.b]
				bucket := e.st.tables[l].Bucket(key)
				stats.Collisions += len(bucket)
				for _, id := range bucket {
					seen.Set(int(id))
				}
			}
			ws.cand = seen.AppendSet(ws.cand)
		} else {
			// Mark-and-append: dedup without the sorted extraction.
			for l := range e.st.tables {
				pr := e.pairs[l]
				key := ws.sketch[pr.a]<<half | ws.sketch[pr.b]
				bucket := e.st.tables[l].Bucket(key)
				stats.Collisions += len(bucket)
				for _, id := range bucket {
					if seen.TestAndSet(int(id)) {
						ws.cand = append(ws.cand, id)
					}
				}
			}
		}
		seen.ResetList(ws.cand)
	} else {
		// Unoptimized: a set container (the paper's "C++ STL set" arm).
		set := ws.set
		for l := range e.st.tables {
			pr := e.pairs[l]
			key := ws.sketch[pr.a]<<half | ws.sketch[pr.b]
			bucket := e.st.tables[l].Bucket(key)
			stats.Collisions += len(bucket)
			for _, id := range bucket {
				set[id] = struct{}{}
			}
		}
		for id := range set {
			ws.cand = append(ws.cand, id)
			delete(set, id)
		}
	}
	if e.opts.CollectPhases {
		t1 := now()
		e.q2ns.Add(t1 - t0)
		t0 = t1
	}

	// Steps Q3+Q4: distance computation and radius filter, under the
	// request's radius when one was given. The request-scoped candidate
	// budget bounds distance computations, the work it exists to cap:
	// tombstoned candidates are skipped for free, so a deletion-heavy
	// candidate set does not starve the budget unevaluated, and
	// stats.Unique is the true evaluation count either way.
	radius := e.opts.Radius
	if p.Radius > 0 {
		radius = p.Radius
	}
	thr := sparse.CosThreshold(radius)
	evaluated := 0
	base := len(dst)
	if e.opts.OptimizedDP {
		ws.mask.Scatter(q)
	}
	for _, id := range ws.cand {
		if e.deleted != nil && e.deleted.TestAtomic(int(id)) {
			continue
		}
		if p.MaxCandidates > 0 && evaluated == p.MaxCandidates {
			break
		}
		evaluated++
		idx, val := e.store.Doc(int(id))
		var dot float64
		if e.opts.OptimizedDP {
			dot = ws.mask.Dot(idx, val)
		} else {
			dot = sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
		}
		if dot >= thr {
			dst = append(dst, Neighbor{ID: id, Dist: sparse.AngularDistance(dot)})
		}
	}
	stats.Unique = evaluated
	if e.opts.OptimizedDP {
		ws.mask.Unscatter()
	}
	if e.opts.CollectPhases {
		e.q3ns.Add(now() - t0)
	}
	stats.Results = len(dst) - base
	return dst, stats
}

// SortNeighbors orders neighbors by ascending distance, breaking ties by ID
// — a stable presentation order for callers and tests. slices.SortFunc
// rather than sort.Slice: the generic path sorts in place with no
// per-call allocation, which matters on the hot path (one sort per query
// per node).
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, func(a, b Neighbor) int {
		if a.Dist != b.Dist {
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		}
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
}

// ExactNeighbors computes the ground-truth answer by exhaustive scan over
// the store — the reference used by recall tests. It ignores the index.
func ExactNeighbors(store sparse.Store, q sparse.Vector, radius float64) []Neighbor {
	thr := sparse.CosThreshold(radius)
	var out []Neighbor
	for i := 0; i < store.Rows(); i++ {
		idx, val := store.Doc(i)
		dot := sparse.Dot(q, sparse.Vector{Idx: idx, Val: val})
		if dot >= thr {
			out = append(out, Neighbor{ID: uint32(i), Dist: sparse.AngularDistance(dot)})
		}
	}
	return out
}
