// Package core implements the paper's primary contribution: the static PLSH
// structure — cache-conscious parallel construction of the L hash tables
// (§5.1) and the optimized batched query engine (§5.2).
//
// A static PLSH instance is an immutable index over N documents. Each of
// the L = m(m−1)/2 tables is a contiguous array of the N document indexes
// partitioned by the table's k-bit key, plus a 2^k+1 offsets array — no
// pointers, no per-bucket allocations, exactly enough space for every
// bucket (Fig. 3a of the paper). Construction options reproduce the Fig. 4
// ablation (1-level → 2-level → shared first level → vectorized hashing);
// query options reproduce the Fig. 5 ablation (set dedup → bitvector →
// optimized sparse dot product → candidate extraction → arena layout).
package core

import (
	"errors"

	"plsh/internal/lshhash"
	"plsh/internal/rng"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Table is one LSH hash table: Items holds the N document indexes grouped
// by bucket; bucket b occupies Items[Offsets[b]:Offsets[b+1]].
//
//plshvet:frozen tables are reached through a published snapshot; queries scan them lock-free
type Table struct {
	Offsets []uint32
	Items   []uint32
}

// Bucket returns the document indexes in bucket key.
func (t *Table) Bucket(key uint32) []uint32 {
	return t.Items[t.Offsets[key]:t.Offsets[key+1]]
}

// Static is an immutable PLSH index over n documents.
//
//plshvet:frozen published inside the node snapshot; queries scan it lock-free
type Static struct {
	fam    *lshhash.Family
	n      int
	tables []Table
}

// Family returns the hash family the index was built with.
func (s *Static) Family() *lshhash.Family { return s.fam }

// Len returns the number of indexed documents.
func (s *Static) Len() int { return s.n }

// NumTables returns L.
func (s *Static) NumTables() int { return len(s.tables) }

// Table returns table l.
func (s *Static) Table(l int) *Table { return &s.tables[l] }

// Tables exposes the full table slice for serialization. Callers must
// treat it as read-only.
func (s *Static) Tables() []Table { return s.tables }

// StaticFromTables reassembles a Static index from previously serialized
// tables (see internal/persist), taking ownership of the slice. The tables
// must describe n documents under fam's geometry: L = m(m−1)/2 tables,
// each with 2^k+1 offsets delimiting exactly its item count, and every
// item id below n — the shape checks that keep a corrupt snapshot from
// becoming an index that reads out of bounds.
func StaticFromTables(fam *lshhash.Family, n int, tables []Table) (*Static, error) {
	p := fam.Params()
	if len(tables) != p.L() {
		return nil, errors.New("core: StaticFromTables: table count does not match family")
	}
	for l := range tables {
		t := &tables[l]
		if len(t.Offsets) != p.Buckets()+1 {
			return nil, errors.New("core: StaticFromTables: bucket offset count does not match K")
		}
		if t.Offsets[0] != 0 || int(t.Offsets[len(t.Offsets)-1]) != len(t.Items) {
			return nil, errors.New("core: StaticFromTables: offsets do not delimit items")
		}
		for b := 1; b < len(t.Offsets); b++ {
			if t.Offsets[b] < t.Offsets[b-1] {
				return nil, errors.New("core: StaticFromTables: offsets decrease")
			}
		}
		for _, id := range t.Items {
			if int(id) >= n {
				return nil, errors.New("core: StaticFromTables: item id out of range")
			}
		}
	}
	return &Static{fam: fam, n: n, tables: tables}, nil
}

// Compact removes every item for which drop reports true from every
// bucket, in place, rewriting Offsets to stay consistent — the tombstone
// compaction step of a streaming merge: rows deleted before the rebuild
// never become candidates again, instead of being filtered on every query
// for the rest of the index's life. Len is unchanged (item IDs keep their
// meaning); only bucket membership shrinks.
//
// Compact must run before the index is published to readers; it mutates
// Items and Offsets. drop may be called concurrently from multiple
// goroutines (tables compact in parallel).
//
//plshvet:prepublish documented pre-publish build step of a streaming merge
func (s *Static) Compact(drop func(id uint32) bool, workers int) {
	pool := sched.NewPool(workers)
	pool.Run(len(s.tables), func(l, _ int) {
		t := &s.tables[l]
		var w uint32
		for b := 0; b < len(t.Offsets)-1; b++ {
			lo, hi := t.Offsets[b], t.Offsets[b+1]
			t.Offsets[b] = w
			// w never exceeds the read cursor, so the in-place copy is safe.
			for _, id := range t.Items[lo:hi] {
				if !drop(id) {
					t.Items[w] = id
					w++
				}
			}
		}
		t.Offsets[len(t.Offsets)-1] = w
		t.Items = t.Items[:w]
	})
}

// CapBuckets bounds every bucket to at most r items, in place, choosing
// the survivors of an oversized bucket by reservoir sampling over the
// bucket's insertion order — the SLASH-style bound that keeps the cost of
// scanning a skew-heavy bucket O(r) instead of O(bucket). Sampling is
// deterministic in (seed, table index), so two builds over the same rows
// cap identically. Like Compact, CapBuckets must run before the index is
// published to readers; r <= 0 is a no-op.
//
//plshvet:prepublish documented pre-publish build step; runs before the snapshot swap
func (s *Static) CapBuckets(r int, seed uint64, workers int) {
	if r <= 0 {
		return
	}
	pool := sched.NewPool(workers)
	pool.Run(len(s.tables), func(l, _ int) {
		t := &s.tables[l]
		src := rng.New(seed + uint64(l)*0x9e3779b97f4a7c15)
		var w uint32
		for b := 0; b < len(t.Offsets)-1; b++ {
			lo, hi := t.Offsets[b], t.Offsets[b+1]
			t.Offsets[b] = w
			bucket := t.Items[lo:hi]
			if len(bucket) > r {
				// Reservoir over the bucket: slot j of the first r is
				// replaced by item i with probability r/(i+1).
				res := bucket[:r]
				for i := r; i < len(bucket); i++ {
					if j := src.Intn(i + 1); j < r {
						res[j] = bucket[i]
					}
				}
				bucket = res
			}
			// w never exceeds the read cursor, so the in-place copy is safe.
			w += uint32(copy(t.Items[w:], bucket))
		}
		t.Offsets[len(t.Offsets)-1] = w
		t.Items = t.Items[:w]
	})
}

// MemoryBytes reports the index footprint: the L·N·4 item bytes that
// dominate Eq. 7.4's memory constraint plus the offset arrays' 2^k·L·4.
func (s *Static) MemoryBytes() int64 {
	var b int64
	for i := range s.tables {
		b += int64(len(s.tables[i].Offsets))*4 + int64(len(s.tables[i].Items))*4
	}
	return b
}

// errDimMismatch is returned when data dimensionality does not match the
// family's.
var errDimMismatch = errors.New("core: matrix dimensionality does not match hash family")

func checkDims(fam *lshhash.Family, mat *sparse.Matrix) error {
	if mat.Dim != fam.Params().Dim {
		return errDimMismatch
	}
	return nil
}
