package core

import (
	"testing"

	"plsh/internal/corpus"
	"plsh/internal/lshhash"
)

// Compact must drop exactly the requested rows from every bucket of every
// table, preserve intra-bucket order of the survivors, and leave Offsets
// consistent.
func TestStaticCompact(t *testing.T) {
	const n, dim = 500, 2000
	col := corpus.Generate(corpus.Twitter(n, dim, 7))
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: dim, K: 8, M: 6, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(fam, col.Mat, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	drop := func(id uint32) bool { return id%3 == 0 }

	// Expected bucket contents: the pre-compact buckets with dropped rows
	// filtered out.
	want := make([][][]uint32, st.NumTables())
	for l := range want {
		tab := st.Table(l)
		want[l] = make([][]uint32, len(tab.Offsets)-1)
		for b := 0; b < len(tab.Offsets)-1; b++ {
			for _, id := range tab.Items[tab.Offsets[b]:tab.Offsets[b+1]] {
				if !drop(id) {
					want[l][b] = append(want[l][b], id)
				}
			}
		}
	}

	st.Compact(drop, 4)

	if st.Len() != n {
		t.Fatalf("Compact changed Len: %d", st.Len())
	}
	for l := 0; l < st.NumTables(); l++ {
		tab := st.Table(l)
		if int(tab.Offsets[len(tab.Offsets)-1]) != len(tab.Items) {
			t.Fatalf("table %d: final offset %d != items %d",
				l, tab.Offsets[len(tab.Offsets)-1], len(tab.Items))
		}
		for b := 0; b < len(tab.Offsets)-1; b++ {
			if tab.Offsets[b] > tab.Offsets[b+1] {
				t.Fatalf("table %d bucket %d: offsets decreasing", l, b)
			}
			got := tab.Bucket(uint32(b))
			if len(got) != len(want[l][b]) {
				t.Fatalf("table %d bucket %d: %d items, want %d", l, b, len(got), len(want[l][b]))
			}
			for i := range got {
				if got[i] != want[l][b][i] {
					t.Fatalf("table %d bucket %d item %d: %d, want %d", l, b, i, got[i], want[l][b][i])
				}
			}
		}
	}
}

// A compacted index queried through an engine must behave exactly like
// filtering the dropped rows from the uncompacted answers.
func TestCompactMatchesFiltering(t *testing.T) {
	const n, dim = 400, 2000
	col := corpus.Generate(corpus.Twitter(n, dim, 11))
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: dim, K: 8, M: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	build := func() *Static {
		st, err := Build(fam, col.Mat, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	drop := func(id uint32) bool { return id%7 == 2 }

	plain := NewEngine(build(), col.Mat, QueryDefaults())
	compacted := build()
	compacted.Compact(drop, 0)
	ceng := NewEngine(compacted, col.Mat, QueryDefaults())

	for qi := 0; qi < n; qi += 29 {
		q := col.Mat.Row(qi)
		var want []Neighbor
		for _, nb := range plain.Query(q) {
			if !drop(nb.ID) {
				want = append(want, nb)
			}
		}
		got := ceng.Query(q)
		SortNeighbors(want)
		SortNeighbors(got)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d answers, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d answer %d: %d, want %d", qi, i, got[i].ID, want[i].ID)
			}
		}
	}
}
