package lshhash

import (
	"math"
	"testing"

	"plsh/internal/corpus"
	"plsh/internal/rng"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

func testParams() Params { return Params{Dim: 500, K: 8, M: 6, Seed: 42} }

func TestParamsDerived(t *testing.T) {
	p := Params{Dim: 10, K: 16, M: 40}
	if p.L() != 780 {
		t.Fatalf("L = %d, want 780 (paper's operating point)", p.L())
	}
	if p.NumFuncs() != 320 {
		t.Fatalf("NumFuncs = %d, want 320", p.NumFuncs())
	}
	if p.Buckets() != 65536 || p.HalfBuckets() != 256 {
		t.Fatalf("Buckets = %d HalfBuckets = %d", p.Buckets(), p.HalfBuckets())
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Dim: 0, K: 8, M: 4},
		{Dim: 10, K: 7, M: 4},  // odd K
		{Dim: 10, K: 0, M: 4},  // K too small
		{Dim: 10, K: 42, M: 4}, // K too large
		{Dim: 10, K: 8, M: 1},  // M too small
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
	if err := (Params{Dim: 10, K: 8, M: 4}).Validate(); err != nil {
		t.Errorf("Validate rejected good params: %v", err)
	}
}

func TestPairTableRoundTrip(t *testing.T) {
	for _, m := range []int{2, 3, 5, 16, 40} {
		l := 0
		for a := 0; a < m; a++ {
			for b := a + 1; b < m; b++ {
				if got := TableForPair(a, b, m); got != l {
					t.Fatalf("TableForPair(%d,%d,%d) = %d, want %d", a, b, m, got, l)
				}
				ga, gb := PairForTable(l, m)
				if ga != a || gb != b {
					t.Fatalf("PairForTable(%d,%d) = (%d,%d), want (%d,%d)", l, m, ga, gb, a, b)
				}
				l++
			}
		}
		if l != m*(m-1)/2 {
			t.Fatalf("enumerated %d pairs for m=%d", l, m)
		}
	}
}

func TestFamilyDeterministic(t *testing.T) {
	f1, err := NewFamily(testParams())
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := NewFamily(testParams())
	for i := range f1.planes {
		if f1.planes[i] != f2.planes[i] {
			t.Fatal("same-seed families differ")
		}
	}
	p3 := testParams()
	p3.Seed = 43
	f3, _ := NewFamily(p3)
	same := 0
	for i := range f1.planes {
		if f1.planes[i] == f3.planes[i] {
			same++
		}
	}
	if same > len(f1.planes)/100 {
		t.Fatalf("different seeds produced %d/%d equal entries", same, len(f1.planes))
	}
}

func TestSketchHalfRange(t *testing.T) {
	p := testParams()
	f, _ := NewFamily(p)
	src := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		v := randUnit(src, p.Dim, 8)
		sk := f.Sketch(v)
		if len(sk) != p.M {
			t.Fatalf("sketch length %d", len(sk))
		}
		for _, u := range sk {
			if u >= uint32(p.HalfBuckets()) {
				t.Fatalf("half-hash %d exceeds %d", u, p.HalfBuckets())
			}
		}
	}
}

func TestScalarAndVectorizedKernelsAgree(t *testing.T) {
	p := testParams()
	f, _ := NewFamily(p)
	src := rng.New(9)
	scores := make([]float32, p.NumFuncs())
	a := make([]uint32, p.M)
	b := make([]uint32, p.M)
	for trial := 0; trial < 100; trial++ {
		v := randUnit(src, p.Dim, 1+src.Intn(12))
		f.SketchInto(v, scores, a)
		f.SketchScalarInto(v, scores, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("kernels disagree on u_%d: %d vs %d", i, a[i], b[i])
			}
		}
	}
}

func TestSketchAllMatchesSingle(t *testing.T) {
	p := testParams()
	f, _ := NewFamily(p)
	c := corpus.Generate(corpus.Twitter(300, p.Dim, 5))
	pool := sched.NewPool(4)
	for _, vectorized := range []bool{true, false} {
		sks := f.SketchAll(c.Mat, pool, vectorized)
		if sks.N() != 300 {
			t.Fatalf("N = %d", sks.N())
		}
		for i := 0; i < 300; i += 17 {
			want := f.Sketch(c.Mat.Row(i))
			for j := range want {
				if sks.At(i, j) != want[j] {
					t.Fatalf("vectorized=%v: sketch %d fn %d = %d, want %d",
						vectorized, i, j, sks.At(i, j), want[j])
				}
			}
		}
	}
}

func TestAppendSketchesMatchesSketchAll(t *testing.T) {
	p := testParams()
	f, _ := NewFamily(p)
	c := corpus.Generate(corpus.Twitter(50, p.Dim, 6))
	var vs []sparse.Vector
	for i := 0; i < 50; i++ {
		vs = append(vs, c.Mat.Row(i))
	}
	inc := f.AppendSketches(nil, vs[:20])
	inc = f.AppendSketches(inc, vs[20:])
	all := f.SketchAll(c.Mat, sched.NewPool(1), true)
	if inc.N() != all.N() {
		t.Fatalf("N mismatch %d vs %d", inc.N(), all.N())
	}
	for i := 0; i < inc.N(); i++ {
		for j := 0; j < p.M; j++ {
			if inc.At(i, j) != all.At(i, j) {
				t.Fatalf("sketch %d fn %d differs", i, j)
			}
		}
	}
}

func TestTableKey(t *testing.T) {
	s := &Sketches{M: 3, Data: []uint32{0xA, 0xB, 0xC}}
	if got := s.TableKey(0, 0, 2, 8); got != 0xA<<4|0xC {
		t.Fatalf("TableKey = %#x", got)
	}
}

// Empirical check of the Charikar collision probability: for pairs at angle
// t, each hash bit collides with probability ≈ 1 − t/π.
func TestCollisionProbabilityEmpirical(t *testing.T) {
	p := Params{Dim: 200, K: 2, M: 64, Seed: 11} // 64 bits to average over
	f, _ := NewFamily(p)
	src := rng.New(3)
	var sumErr float64
	trials := 60
	for trial := 0; trial < trials; trial++ {
		a := randUnit(src, p.Dim, 30)
		b := perturb(src, a, 0.35, p.Dim)
		dot := sparse.Dot(a, b)
		angle := sparse.AngularDistance(dot)
		ska, skb := f.Sketch(a), f.Sketch(b)
		agree := 0
		for i := range ska {
			if ska[i] == skb[i] {
				agree++
			}
		}
		got := float64(agree) / float64(len(ska))
		sumErr += math.Abs(got - CollisionProb(angle))
	}
	if avg := sumErr / float64(trials); avg > 0.12 {
		t.Fatalf("mean |empirical − 1+t/π| = %v, too large", avg)
	}
}

func randUnit(src *rng.Source, dim, nnz int) sparse.Vector {
	idx := make([]uint32, nnz)
	val := make([]float32, nnz)
	for i := range idx {
		idx[i] = uint32(src.Intn(dim))
		val[i] = float32(src.Norm())
	}
	v, _ := sparse.NewVector(idx, val)
	if !v.Normalize() {
		return randUnit(src, dim, nnz)
	}
	return v
}

// perturb returns a unit vector at a moderate angle from a by mixing in
// random noise.
func perturb(src *rng.Source, a sparse.Vector, noise float64, dim int) sparse.Vector {
	out := a.Clone()
	for i := range out.Val {
		out.Val[i] += float32(noise * src.Norm() * 0.3)
	}
	extra := randUnit(src, dim, 3)
	idx := append(append([]uint32(nil), out.Idx...), extra.Idx...)
	val := append(append([]float32(nil), out.Val...), extra.Val...)
	for i := len(out.Val); i < len(val); i++ {
		val[i] *= float32(noise)
	}
	v, _ := sparse.NewVector(idx, val)
	v.Normalize()
	return v
}

func TestRetrievalProbProperties(t *testing.T) {
	// P' in [0,1]; monotone increasing in m; decreasing in k; decreasing in t.
	for _, k := range []int{8, 12, 16} {
		for _, tt := range []float64{0.3, 0.6, 0.9, 1.2} {
			prev := -1.0
			for m := 2; m <= 60; m++ {
				p := RetrievalProb(tt, k, m)
				if p < 0 || p > 1 {
					t.Fatalf("P'(%v,%d,%d) = %v out of range", tt, k, m, p)
				}
				if p+1e-12 < prev {
					t.Fatalf("P' not monotone in m at (%v,%d,%d)", tt, k, m)
				}
				prev = p
			}
		}
	}
	if RetrievalProb(0.9, 12, 30) <= RetrievalProb(0.9, 16, 30) {
		t.Fatal("P' should decrease with k")
	}
	if RetrievalProb(0.5, 16, 30) <= RetrievalProb(1.0, 16, 30) {
		t.Fatal("P' should decrease with distance")
	}
}

func TestCollisionProbEdges(t *testing.T) {
	if CollisionProb(0) != 1 {
		t.Fatal("p(0) != 1")
	}
	if got := CollisionProb(math.Pi); got != 0 {
		t.Fatalf("p(π) = %v", got)
	}
	if CollisionProb(math.Pi+1) != 0 || CollisionProb(-0.1) != 1 {
		t.Fatal("clamping failed")
	}
}

func TestMinMForRecall(t *testing.T) {
	// Paper's operating point: R=0.9, δ=0.1, k=16 → m=40 suffices.
	m, ok := MinMForRecall(0.9, 0.1, 16, 64)
	if !ok {
		t.Fatal("no m found")
	}
	if RetrievalProb(0.9, 16, m) < 0.9 {
		t.Fatal("returned m violates the recall constraint")
	}
	if m > 2 && RetrievalProb(0.9, 16, m-1) >= 0.9 {
		t.Fatal("returned m is not minimal")
	}
	// Note: the paper runs (k=16, m=40), for which P'(0.9) ≈ 0.76 by its
	// own Eq. — the guarantee at exactly t=R needs m=57. The paper's 92%
	// empirical recall holds because real neighbors sit well inside R,
	// where P' is much higher. We assert the strict-formula value here.
	if m != 57 {
		t.Errorf("strict m for (R=0.9, δ=0.1, k=16) = %d, want 57", m)
	}
	if _, ok := MinMForRecall(0.9, 0.0001, 16, 3); ok {
		t.Fatal("impossible recall satisfied")
	}
}
