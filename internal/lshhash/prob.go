package lshhash

import "math"

// CollisionProb returns p(t) = 1 − t/π, the probability that two unit
// vectors at angle t collide under one random-hyperplane hash bit (§3).
func CollisionProb(t float64) float64 {
	p := 1 - t/math.Pi
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// HalfCollisionProb returns p(t)^(k/2), the probability that a k/2-bit
// function u_i agrees on two points at angle t.
func HalfCollisionProb(t float64, k int) float64 {
	return math.Pow(CollisionProb(t), float64(k)/2)
}

// RetrievalProb returns P′(t, k, m): the probability that a point at angle
// t from the query is retrieved by the all-pairs scheme, i.e. that at least
// two of the m functions u_i collide (§7.2):
//
//	P′ = 1 − (1−q)^m − m·q·(1−q)^(m−1),  q = p(t)^(k/2).
func RetrievalProb(t float64, k, m int) float64 {
	q := HalfCollisionProb(t, k)
	miss := math.Pow(1-q, float64(m))
	one := float64(m) * q * math.Pow(1-q, float64(m-1))
	p := 1 - miss - one
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// TableCollisionProb returns p(t)^k, the probability that one specific
// table g_{a,b} places a point at angle t in the query's bucket. The
// expected total collision count across tables is L·p(t)^k (Eq. 7.1).
func TableCollisionProb(t float64, k int) float64 {
	return math.Pow(CollisionProb(t), float64(k))
}

// MinMForRecall returns the smallest m ≥ 2 such that
// RetrievalProb(R, k, m) ≥ 1−δ, or (0, false) if none exists below limit.
// This is the inner step of the §7.3 parameter enumeration.
func MinMForRecall(radius, delta float64, k, limit int) (int, bool) {
	for m := 2; m <= limit; m++ {
		if RetrievalProb(radius, k, m) >= 1-delta {
			return m, true
		}
	}
	return 0, false
}
