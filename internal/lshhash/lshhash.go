// Package lshhash implements the angular-distance LSH family and the
// all-pairs hashing scheme of the paper's §3.
//
// Each elementary hash h_a(v) = sign(a·v) for a random Gaussian hyperplane
// a collides for two unit vectors at angle t with probability
// p(t) = 1 − t/π (Charikar, STOC 2002). The all-pairs scheme draws m
// functions u_1..u_m of k/2 bits each and forms the L = m(m−1)/2 table
// hashes g_{a,b} = (u_a, u_b) for a < b, reducing query hashing cost from
// O(NNZ·k·L) to O(NNZ·k·√L + L) and — crucially for the 2-level table
// construction of §5.1.2 — making every table's k-bit key the concatenation
// of two reusable k/2-bit halves.
package lshhash

import (
	"errors"
	"fmt"

	"plsh/internal/rng"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Params identifies an LSH family instance. Two nodes constructed with the
// same Params produce identical hashes, which multi-node operation relies
// on only for reproducibility (each node hashes its own data independently).
type Params struct {
	// Dim is the dimensionality D of the vector space.
	Dim int
	// K is the number of bits indexing one hash table; must be even and in
	// [2, 40] (2^(K/2) first-level partitions must fit comfortably in
	// memory; the paper uses K = 16).
	K int
	// M is the number of K/2-bit functions u_i; L = M(M−1)/2 tables.
	M int
	// Seed determines the hyperplanes.
	Seed uint64
}

// L returns the number of hash tables m(m−1)/2.
func (p Params) L() int { return p.M * (p.M - 1) / 2 }

// NumFuncs returns the number of elementary hash bits M·K/2.
func (p Params) NumFuncs() int { return p.M * p.K / 2 }

// Buckets returns the number of buckets per table, 2^K.
func (p Params) Buckets() int { return 1 << uint(p.K) }

// HalfBuckets returns the number of first-level partitions, 2^(K/2).
func (p Params) HalfBuckets() int { return 1 << uint(p.K/2) }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Dim <= 0:
		return errors.New("lshhash: Dim must be positive")
	case p.K < 2 || p.K > 40:
		return fmt.Errorf("lshhash: K = %d out of range [2, 40]", p.K)
	case p.K%2 != 0:
		return fmt.Errorf("lshhash: K = %d must be even", p.K)
	case p.M < 2:
		return fmt.Errorf("lshhash: M = %d must be at least 2", p.M)
	}
	return nil
}

// TableForPair returns the table index l for the pair (a, b), a < b < m,
// enumerating pairs in lexicographic order.
func TableForPair(a, b, m int) int {
	return a*(2*m-a-1)/2 + (b - a - 1)
}

// PairForTable inverts TableForPair.
func PairForTable(l, m int) (a, b int) {
	for a = 0; ; a++ {
		rowLen := m - a - 1
		if l < rowLen {
			return a, a + 1 + l
		}
		l -= rowLen
	}
}

// Family holds the drawn hyperplanes. The dense plane matrix is stored
// row-major by vocabulary entry — planes[c*NumFuncs+j] is hyperplane j's
// coefficient for word c — so that hashing touches one contiguous slab per
// document non-zero (§5.1.1's access-pattern argument: the sparse matrix is
// read consecutively and at least one dense row is read consecutively).
type Family struct {
	p      Params
	planes []float32
}

// NewFamily draws a Family from p.Seed.
func NewFamily(p Params) (*Family, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nf := p.NumFuncs()
	f := &Family{p: p, planes: make([]float32, p.Dim*nf)}
	// Deterministic parallel fill: one split stream per vocabulary row.
	master := rng.New(p.Seed)
	rowSeeds := make([]uint64, p.Dim)
	for c := range rowSeeds {
		rowSeeds[c] = master.Uint64()
	}
	pool := sched.NewPool(0)
	pool.Static(p.Dim, func(lo, hi, _ int) {
		for c := lo; c < hi; c++ {
			src := rng.New(rowSeeds[c])
			row := f.planes[c*nf : (c+1)*nf]
			for j := range row {
				row[j] = float32(src.Norm())
			}
		}
	})
	return f, nil
}

// Params returns the family's parameters.
func (f *Family) Params() Params { return f.p }

// MemoryBytes reports the hyperplane storage footprint.
func (f *Family) MemoryBytes() int64 { return int64(len(f.planes)) * 4 }

// SketchInto computes the m half-hashes u_1..u_m of v into out (length ≥ M),
// using scores (length ≥ NumFuncs) as scratch. The vectorized kernel
// processes all hyperplane columns per non-zero with 4-way unrolling.
func (f *Family) SketchInto(v sparse.Vector, scores []float32, out []uint32) {
	nf := f.p.NumFuncs()
	scores = scores[:nf]
	for j := range scores {
		scores[j] = 0
	}
	sparse.DotSparseDenseStride(v.Idx, v.Val, f.planes, nf, nf, scores)
	packSigns(scores, f.p.K/2, out[:f.p.M])
}

// SketchScalarInto is the unoptimized hashing kernel: one strided pass over
// the plane matrix per elementary hash function, exactly how a naive
// implementation computes each dot product independently. It exists as the
// pre-"+vectorization" arm of the Fig. 4 ablation.
func (f *Family) SketchScalarInto(v sparse.Vector, scores []float32, out []uint32) {
	nf := f.p.NumFuncs()
	for j := 0; j < nf; j++ {
		var s float32
		for i, c := range v.Idx {
			s += v.Val[i] * f.planes[int(c)*nf+j]
		}
		scores[j] = s
	}
	packSigns(scores[:nf], f.p.K/2, out[:f.p.M])
}

// Sketch computes and returns the half-hashes of v.
func (f *Family) Sketch(v sparse.Vector) []uint32 {
	out := make([]uint32, f.p.M)
	scores := make([]float32, f.p.NumFuncs())
	f.SketchInto(v, scores, out)
	return out
}

// packSigns packs consecutive groups of half bits (sign(score) ≥ 0 → 1)
// into the output half-hashes, least significant bit first.
func packSigns(scores []float32, half int, out []uint32) {
	for i := range out {
		var u uint32
		base := i * half
		for j := 0; j < half; j++ {
			if scores[base+j] >= 0 {
				u |= 1 << uint(j)
			}
		}
		out[i] = u
	}
}

// Sketches stores the half-hashes of N items contiguously:
// Data[n*M+i] = u_i(item n).
type Sketches struct {
	M    int
	Data []uint32
}

// N returns the number of sketched items.
func (s *Sketches) N() int {
	if s.M == 0 {
		return 0
	}
	return len(s.Data) / s.M
}

// At returns u_i of item n.
func (s *Sketches) At(n, i int) uint32 { return s.Data[n*s.M+i] }

// Row returns the m half-hashes of item n.
func (s *Sketches) Row(n int) []uint32 { return s.Data[n*s.M : (n+1)*s.M] }

// TableKey composes the K-bit key of item n in the table for pair (a, b).
func (s *Sketches) TableKey(n, a, b, k int) uint32 {
	return s.At(n, a)<<uint(k/2) | s.At(n, b)
}

// SketchAll hashes every row of mat in parallel over the pool, with the
// vectorized or scalar kernel (the Fig. 4 "+vectorization" toggle). Rows
// are independent, so a static split suffices (§5.1.1: "easily parallelized
// over the data items N, yielding good thread scaling").
func (f *Family) SketchAll(mat *sparse.Matrix, pool *sched.Pool, vectorized bool) *Sketches {
	n := mat.Rows()
	out := &Sketches{M: f.p.M, Data: make([]uint32, n*f.p.M)}
	pool.Static(n, func(lo, hi, _ int) {
		scores := make([]float32, f.p.NumFuncs())
		for i := lo; i < hi; i++ {
			row := mat.Row(i)
			dst := out.Data[i*f.p.M : (i+1)*f.p.M]
			if vectorized {
				f.SketchInto(row, scores, dst)
			} else {
				f.SketchScalarInto(row, scores, dst)
			}
		}
	})
	return out
}

// AppendSketches extends dst with sketches for each vector in vs, returning
// the (possibly reallocated) sketch set. Used by delta tables as streaming
// inserts arrive.
func (f *Family) AppendSketches(dst *Sketches, vs []sparse.Vector) *Sketches {
	if dst == nil {
		dst = &Sketches{M: f.p.M}
	}
	scores := make([]float32, f.p.NumFuncs())
	buf := make([]uint32, f.p.M)
	for _, v := range vs {
		f.SketchInto(v, scores, buf)
		dst.Data = append(dst.Data, buf...)
	}
	return dst
}
