package transport

import (
	"context"
	"sync"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// Redial is a NodeClient over TCP that survives connection loss: it wraps
// a Client and, once the underlying connection dies terminally (send or
// receive failure — a crashed peer, a dropped link), the next call dials
// a fresh connection to the same address instead of failing forever.
//
// Redial never retries a call by itself: the call that observed the
// broken connection still fails, because retry policy belongs to the
// caller (the cluster's replica failover decides whether to try a
// sibling instead of hammering the same endpoint). What Redial repairs is
// the path for subsequent calls — which is exactly what lets a SIGKILLed
// node that restarted from its journal rejoin a running cluster without
// the coordinator being rebuilt.
//
// A re-dial happens lazily inside the failing caller's successor, bounded
// by that call's context. The dial is serialized under a mutex, so a dead
// endpoint costs one connection attempt at a time, not one per concurrent
// caller; calls that arrive during the dial wait for its outcome (they
// would only race to the same dead address otherwise).
type Redial struct {
	addr string

	mu     sync.Mutex
	cur    *Client
	closed bool
}

// NewRedial dials addr eagerly — construction fails fast on an
// unreachable node, like Dial — and returns the reconnecting client.
func NewRedial(ctx context.Context, addr string) (*Redial, error) {
	c, err := Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Redial{addr: addr, cur: c}, nil
}

// client returns the current healthy connection, dialing a new one under
// ctx if the previous connection died. After Close it fails without
// dialing.
func (r *Redial) client(ctx context.Context) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errClosed
	}
	if r.cur != nil && !r.cur.Broken() {
		return r.cur, nil
	}
	if r.cur != nil {
		//plshvet:ignore lockorder single-flight reconnect: r.mu serializes close+dial so exactly one goroutine repairs the link
		r.cur.Close()
		r.cur = nil
	}
	//plshvet:ignore lockorder single-flight reconnect: the dial stays under r.mu so concurrent callers wait for one new connection instead of racing dials
	c, err := Dial(ctx, r.addr)
	if err != nil {
		return nil, err
	}
	r.cur = c
	return c, nil
}

// Insert implements NodeClient.
func (r *Redial) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	c, err := r.client(ctx)
	if err != nil {
		return nil, err
	}
	return c.Insert(ctx, vs)
}

// Search implements NodeClient.
func (r *Redial) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	c, err := r.client(ctx)
	if err != nil {
		return nil, err
	}
	return c.Search(ctx, qs, p)
}

// QueryBatch implements NodeClient.
func (r *Redial) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	c, err := r.client(ctx)
	if err != nil {
		return nil, err
	}
	return c.QueryBatch(ctx, qs)
}

// QueryTopK implements NodeClient.
func (r *Redial) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	c, err := r.client(ctx)
	if err != nil {
		return nil, err
	}
	return c.QueryTopK(ctx, q, k)
}

// Doc implements NodeClient.
func (r *Redial) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	c, err := r.client(ctx)
	if err != nil {
		return sparse.Vector{}, false, err
	}
	return c.Doc(ctx, id)
}

// Delete implements NodeClient.
func (r *Redial) Delete(ctx context.Context, id uint32) error {
	c, err := r.client(ctx)
	if err != nil {
		return err
	}
	return c.Delete(ctx, id)
}

// MergeNow implements NodeClient.
func (r *Redial) MergeNow(ctx context.Context) error {
	c, err := r.client(ctx)
	if err != nil {
		return err
	}
	return c.MergeNow(ctx)
}

// Flush implements NodeClient.
func (r *Redial) Flush(ctx context.Context) error {
	c, err := r.client(ctx)
	if err != nil {
		return err
	}
	return c.Flush(ctx)
}

// Retire implements NodeClient.
func (r *Redial) Retire(ctx context.Context) error {
	c, err := r.client(ctx)
	if err != nil {
		return err
	}
	return c.Retire(ctx)
}

// Save implements NodeClient.
func (r *Redial) Save(ctx context.Context) error {
	c, err := r.client(ctx)
	if err != nil {
		return err
	}
	return c.Save(ctx)
}

// Stats implements NodeClient.
func (r *Redial) Stats(ctx context.Context) (node.Stats, error) {
	c, err := r.client(ctx)
	if err != nil {
		return node.Stats{}, err
	}
	return c.Stats(ctx)
}

// Close implements NodeClient: the current connection is torn down and no
// further dial is attempted. Idempotent.
func (r *Redial) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cur == nil {
		return nil
	}
	//plshvet:ignore lockorder close is terminal: holding r.mu here keeps a racing redial from resurrecting the connection
	err := r.cur.Close()
	r.cur = nil
	return err
}

var _ NodeClient = (*Redial)(nil)
