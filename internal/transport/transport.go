// Package transport abstracts how the PLSH coordinator reaches its nodes.
//
// The paper runs 100 nodes over MPI/Infiniband (§8) and shows query
// communication is under 1% of runtime. This package provides the same
// dataflow behind a small interface with two implementations:
//
//   - Local: direct in-process calls to a *node.Node — zero-copy, used by
//     the in-process cluster simulation and most experiments;
//   - Client/Serve: a gob-over-TCP wire protocol (cmd/plsh-node is the
//     server binary), exercising real serialization on localhost or a LAN.
//
// Both satisfy NodeClient, so cluster code is transport-agnostic.
package transport

import (
	"errors"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// NodeClient is the coordinator's view of one PLSH node.
type NodeClient interface {
	// Insert appends documents, returning node-local IDs. Returns
	// node.ErrFull (possibly wrapped) if capacity would be exceeded.
	Insert(vs []sparse.Vector) ([]uint32, error)
	// QueryBatch answers a batch of R-near-neighbor queries.
	QueryBatch(qs []sparse.Vector) ([][]core.Neighbor, error)
	// Delete marks a node-local ID deleted.
	Delete(id uint32) error
	// MergeNow forces a delta→static merge.
	MergeNow() error
	// Retire erases the node's contents.
	Retire() error
	// Stats returns the node's state snapshot.
	Stats() (node.Stats, error)
	// Close releases the connection (a no-op for Local).
	Close() error
}

// Local adapts a *node.Node to NodeClient with direct calls.
type Local struct {
	N *node.Node
}

// NewLocal wraps n.
func NewLocal(n *node.Node) *Local { return &Local{N: n} }

// Insert implements NodeClient.
func (l *Local) Insert(vs []sparse.Vector) ([]uint32, error) { return l.N.Insert(vs) }

// QueryBatch implements NodeClient.
func (l *Local) QueryBatch(qs []sparse.Vector) ([][]core.Neighbor, error) {
	return l.N.QueryBatch(qs), nil
}

// Delete implements NodeClient.
func (l *Local) Delete(id uint32) error {
	l.N.Delete(id)
	return nil
}

// MergeNow implements NodeClient.
func (l *Local) MergeNow() error {
	l.N.MergeNow()
	return nil
}

// Retire implements NodeClient.
func (l *Local) Retire() error {
	l.N.Retire()
	return nil
}

// Stats implements NodeClient.
func (l *Local) Stats() (node.Stats, error) { return l.N.Stats(), nil }

// Close implements NodeClient.
func (l *Local) Close() error { return nil }

var _ NodeClient = (*Local)(nil)

// errClosed is returned by remote clients after Close.
var errClosed = errors.New("transport: client closed")
