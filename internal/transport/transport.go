// Package transport abstracts how the PLSH coordinator reaches its nodes.
//
// The paper runs 100 nodes over MPI/Infiniband (§8) and shows query
// communication is under 1% of runtime. This package provides the same
// dataflow behind a small interface with two implementations:
//
//   - Local: direct in-process calls to a *node.Node — zero-copy, used by
//     the in-process cluster simulation and most experiments;
//   - Client/Serve: a request-ID-multiplexed gob-over-TCP wire protocol
//     (cmd/plsh-node is the server binary) that sustains many concurrent
//     RPCs per connection, exercising real serialization on localhost or
//     a LAN.
//
// Every RPC takes a context.Context: deadlines and cancellation are
// enforced at the caller (a canceled call stops waiting immediately; its
// response, if one later arrives, is discarded), so a slow or dead node
// never stalls the coordinator longer than the caller allows.
//
// Both implementations satisfy NodeClient, so cluster code is
// transport-agnostic — and Serve accepts any NodeClient as its backend,
// which also makes proxying and test fakes trivial.
package transport

import (
	"context"
	"errors"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// NodeClient is the coordinator's view of one PLSH node. Implementations
// must be safe for concurrent use; every call honors ctx cancellation and
// deadlines.
type NodeClient interface {
	// Insert appends documents, returning node-local IDs. Returns
	// node.ErrFull (possibly wrapped) if capacity would be exceeded.
	Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error)
	// Search answers a batch of queries under one set of request-scoped
	// parameters (per-query radius, top-k bound, candidate budget), each
	// answer list in canonical ascending (distance, id) order. A
	// successful reply always has exactly len(qs) entries. This is the
	// one query entry point the unified Search path uses; QueryBatch and
	// QueryTopK remain for the legacy surfaces.
	Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error)
	// QueryBatch answers a batch of R-near-neighbor queries. A successful
	// reply always has exactly len(qs) entries.
	QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error)
	// QueryTopK answers one query with the node's k nearest R-near
	// neighbors, sorted ascending by distance.
	QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error)
	// Doc fetches the stored vector for a node-local ID and the node's
	// authoritative answer to whether that id was ever inserted.
	Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error)
	// Delete marks a node-local ID deleted.
	Delete(ctx context.Context, id uint32) error
	// MergeNow forces every row present at call time into the static
	// structure and returns once that state is reached; queries keep
	// flowing against the node's snapshots while the merge runs.
	MergeNow(ctx context.Context) error
	// Flush waits for any in-flight background merge to finish without
	// forcing one.
	Flush(ctx context.Context) error
	// Retire erases the node's contents.
	Retire(ctx context.Context) error
	// Save forces a durable checkpoint of the node's data directory:
	// quiesce every document into the static structure, write the
	// snapshot, truncate the journal. Returns node.ErrNotDurable
	// (possibly wrapped) when the node has no data directory.
	Save(ctx context.Context) error
	// Stats returns the node's state snapshot.
	Stats(ctx context.Context) (node.Stats, error)
	// Close releases the connection (a no-op for Local).
	Close() error
}

// Releaser is the optional buffer-recycling extension of NodeClient: a
// transport whose Search answers come from a pool implements it, and a
// caller that has finished reading a Search result may hand the buffers
// back — exactly once, touching nothing afterwards. Callers must treat it
// as best-effort (type-assert and skip when absent): Local implements it
// by returning the node's pooled batch buffers; the TCP client does not,
// since its decoded results are ordinary garbage-collected memory.
type Releaser interface {
	ReleaseResults(res [][]core.Neighbor)
}

// Local adapts a *node.Node to NodeClient with direct calls. Context is
// checked on entry even for the constant-time operations so a canceled
// coordinator sees uniform behavior across transports.
type Local struct {
	N *node.Node
}

// NewLocal wraps n.
func NewLocal(n *node.Node) *Local { return &Local{N: n} }

// Insert implements NodeClient.
func (l *Local) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	return l.N.Insert(ctx, vs)
}

// Search implements NodeClient.
func (l *Local) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	return l.N.SearchBatch(ctx, qs, p)
}

// ReleaseResults implements Releaser: buffers go back to the node's
// batch pool for the next Search.
func (l *Local) ReleaseResults(res [][]core.Neighbor) { l.N.ReleaseResults(res) }

// QueryBatch implements NodeClient.
func (l *Local) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	return l.N.QueryBatch(ctx, qs)
}

// Doc implements NodeClient.
func (l *Local) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	if err := ctx.Err(); err != nil {
		return sparse.Vector{}, false, err
	}
	v, known := l.N.Doc(id)
	return v, known, nil
}

// QueryTopK implements NodeClient.
func (l *Local) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	return l.N.QueryTopK(ctx, q, k)
}

// Delete implements NodeClient.
func (l *Local) Delete(ctx context.Context, id uint32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.N.Delete(id)
}

// MergeNow implements NodeClient.
func (l *Local) MergeNow(ctx context.Context) error {
	return l.N.MergeNow(ctx)
}

// Flush implements NodeClient.
func (l *Local) Flush(ctx context.Context) error {
	return l.N.Flush(ctx)
}

// Retire implements NodeClient.
func (l *Local) Retire(ctx context.Context) error {
	return l.N.Retire(ctx)
}

// Save implements NodeClient.
func (l *Local) Save(ctx context.Context) error {
	return l.N.Save(ctx)
}

// Stats implements NodeClient.
func (l *Local) Stats(ctx context.Context) (node.Stats, error) {
	if err := ctx.Err(); err != nil {
		return node.Stats{}, err
	}
	return l.N.Stats(), nil
}

// Close implements NodeClient: a durable node's journal is released (its
// in-flight merge drained so the final checkpoint lands); in-memory nodes
// are untouched. Idempotent.
func (l *Local) Close() error { return l.N.Close() }

var (
	_ NodeClient = (*Local)(nil)
	_ Releaser   = (*Local)(nil)
)

// errClosed is returned by remote clients after Close.
var errClosed = errors.New("transport: client closed")
