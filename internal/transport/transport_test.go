package transport

import (
	"errors"
	"net"
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

func testNode(t *testing.T, capacity int) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 2000, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

// startServer serves n on an ephemeral port, returning its address and a
// shutdown func.
func startServer(t *testing.T, n *node.Node) (string, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go Serve(l, n, done)
	return l.Addr().String(), func() { close(done) }
}

func TestLocalRoundTrip(t *testing.T) {
	n := testNode(t, 500)
	var client NodeClient = NewLocal(n)
	vs := testDocs(100, 1)
	ids, err := client.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, err := client.QueryBatch(vs[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i := range res[:5] {
		found := false
		for _, nb := range res[i] {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d not found via Local client", i)
		}
	}
	st, err := client.Stats()
	if err != nil || st.StaticLen+st.DeltaLen != 100 {
		t.Fatalf("stats: %+v err=%v", st, err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPMatchesLocal runs the same operations against a Local client and
// a TCP client backed by identical nodes, asserting identical answers —
// the wire layer must be semantically invisible.
func TestTCPMatchesLocal(t *testing.T) {
	nLocal := testNode(t, 500)
	nRemote := testNode(t, 500)
	addr, shutdown := startServer(t, nRemote)
	defer shutdown()

	remote, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := NewLocal(nLocal)

	vs := testDocs(200, 3)
	queries := testDocs(15, 9)

	idsL, err := local.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	idsR, err := remote.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsL) != len(idsR) {
		t.Fatalf("id counts differ: %d vs %d", len(idsL), len(idsR))
	}
	for i := range idsL {
		if idsL[i] != idsR[i] {
			t.Fatalf("id %d differs: %d vs %d", i, idsL[i], idsR[i])
		}
	}

	resL, _ := local.QueryBatch(queries)
	resR, err := remote.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		a := append([]core.Neighbor(nil), resL[qi]...)
		b := append([]core.Neighbor(nil), resR[qi]...)
		core.SortNeighbors(a)
		core.SortNeighbors(b)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d result %d differs", qi, i)
			}
		}
	}

	// Delete + merge + retire propagate.
	if err := remote.Delete(idsR[0]); err != nil {
		t.Fatal(err)
	}
	if err := remote.MergeNow(); err != nil {
		t.Fatal(err)
	}
	st, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 || st.DeltaLen != 0 {
		t.Fatalf("remote stats after delete+merge: %+v", st)
	}
	if err := remote.Retire(); err != nil {
		t.Fatal(err)
	}
	st, _ = remote.Stats()
	if st.StaticLen != 0 {
		t.Fatalf("remote retire did not empty node: %+v", st)
	}
}

func TestTCPErrFullSentinel(t *testing.T) {
	n := testNode(t, 50)
	addr, shutdown := startServer(t, n)
	defer shutdown()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	vs := testDocs(80, 5)
	if _, err := client.Insert(vs[:50]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Insert(vs[50:]); !errors.Is(err, node.ErrFull) {
		t.Fatalf("want ErrFull across the wire, got %v", err)
	}
}

func TestClientClosedErrors(t *testing.T) {
	n := testNode(t, 50)
	addr, shutdown := startServer(t, n)
	defer shutdown()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Stats(); err == nil {
		t.Fatal("closed client accepted a call")
	}
	if err := client.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

func TestConcurrentClients(t *testing.T) {
	n := testNode(t, 1000)
	vs := testDocs(200, 7)
	if _, err := NewLocal(n).Insert(vs); err != nil {
		t.Fatal(err)
	}
	addr, shutdown := startServer(t, n)
	defer shutdown()

	const clients = 4
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for rep := 0; rep < 10; rep++ {
				if _, err := c.QueryBatch(vs[:3]); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	for g := 0; g < clients; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}
