package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/persist"
	"plsh/internal/sparse"
)

var bg = context.Background()

func testNode(t *testing.T, capacity int) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 2000, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

// startBackend serves backend on an ephemeral port, returning its address
// and a shutdown func that cancels the server context.
func startBackend(t *testing.T, backend NodeClient, onError func(error)) (string, context.CancelFunc) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	t.Cleanup(cancel)
	go Serve(ctx, l, backend, onError)
	return l.Addr().String(), cancel
}

func startServer(t *testing.T, n *node.Node) (string, context.CancelFunc) {
	t.Helper()
	return startBackend(t, NewLocal(n), nil)
}

// stubBackend implements NodeClient with overridable behavior per method;
// unset methods answer successfully with zero values.
type stubBackend struct {
	insert     func(ctx context.Context, vs []sparse.Vector) ([]uint32, error)
	queryBatch func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error)
	stats      func(ctx context.Context) (node.Stats, error)
}

func (s *stubBackend) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	if s.insert != nil {
		return s.insert(ctx, vs)
	}
	return make([]uint32, len(vs)), nil
}

func (s *stubBackend) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	if s.queryBatch != nil {
		return s.queryBatch(ctx, qs)
	}
	return make([][]core.Neighbor, len(qs)), nil
}

func (s *stubBackend) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	return nil, nil
}

func (s *stubBackend) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	return make([][]core.Neighbor, len(qs)), nil
}

func (s *stubBackend) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	return sparse.Vector{}, false, nil
}
func (s *stubBackend) Delete(ctx context.Context, id uint32) error { return nil }
func (s *stubBackend) MergeNow(ctx context.Context) error          { return nil }
func (s *stubBackend) Flush(ctx context.Context) error             { return nil }
func (s *stubBackend) Retire(ctx context.Context) error            { return nil }
func (s *stubBackend) Save(ctx context.Context) error              { return nil }
func (s *stubBackend) Stats(ctx context.Context) (node.Stats, error) {
	if s.stats != nil {
		return s.stats(ctx)
	}
	return node.Stats{}, nil
}
func (s *stubBackend) Close() error { return nil }

func TestLocalRoundTrip(t *testing.T) {
	n := testNode(t, 500)
	var client NodeClient = NewLocal(n)
	vs := testDocs(100, 1)
	ids, err := client.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, err := client.QueryBatch(bg, vs[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i := range res[:5] {
		found := false
		for _, nb := range res[i] {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d not found via Local client", i)
		}
	}
	st, err := client.Stats(bg)
	if err != nil || st.StaticLen+st.DeltaLen != 100 {
		t.Fatalf("stats: %+v err=%v", st, err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPMatchesLocal runs the same operations against a Local client and
// a TCP client backed by identical nodes, asserting identical answers —
// the wire layer must be semantically invisible.
func TestTCPMatchesLocal(t *testing.T) {
	nLocal := testNode(t, 500)
	nRemote := testNode(t, 500)
	addr, _ := startServer(t, nRemote)

	remote, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	local := NewLocal(nLocal)

	vs := testDocs(200, 3)
	queries := testDocs(15, 9)

	idsL, err := local.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	idsR, err := remote.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsL) != len(idsR) {
		t.Fatalf("id counts differ: %d vs %d", len(idsL), len(idsR))
	}
	for i := range idsL {
		if idsL[i] != idsR[i] {
			t.Fatalf("id %d differs: %d vs %d", i, idsL[i], idsR[i])
		}
	}

	resL, _ := local.QueryBatch(bg, queries)
	resR, err := remote.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		a := append([]core.Neighbor(nil), resL[qi]...)
		b := append([]core.Neighbor(nil), resR[qi]...)
		core.SortNeighbors(a)
		core.SortNeighbors(b)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("query %d result %d differs", qi, i)
			}
		}
	}

	// Top-K answers must match across transports too.
	for qi, q := range queries {
		a, err := local.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := remote.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("top-k query %d: %d vs %d results", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("top-k query %d result %d differs", qi, i)
			}
		}
	}

	// Delete + merge + retire propagate.
	if err := remote.Delete(bg, idsR[0]); err != nil {
		t.Fatal(err)
	}
	if err := remote.MergeNow(bg); err != nil {
		t.Fatal(err)
	}
	st, err := remote.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 1 || st.DeltaLen != 0 {
		t.Fatalf("remote stats after delete+merge: %+v", st)
	}
	if err := remote.Retire(bg); err != nil {
		t.Fatal(err)
	}
	st, _ = remote.Stats(bg)
	if st.StaticLen != 0 {
		t.Fatalf("remote retire did not empty node: %+v", st)
	}
}

// ErrFull must survive the trip through the multiplexed protocol as a
// matchable sentinel.
func TestTCPErrFullSentinel(t *testing.T) {
	n := testNode(t, 50)
	addr, _ := startServer(t, n)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	vs := testDocs(80, 5)
	if _, err := client.Insert(bg, vs[:50]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Insert(bg, vs[50:]); !errors.Is(err, node.ErrFull) {
		t.Fatalf("want ErrFull across the wire, got %v", err)
	}
}

func TestClientClosedErrors(t *testing.T) {
	n := testNode(t, 50)
	addr, _ := startServer(t, n)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	if _, err := client.Stats(bg); err == nil {
		t.Fatal("closed client accepted a call")
	}
	if err := client.Close(); err != nil {
		t.Fatal("double Close errored")
	}
}

func TestConcurrentClients(t *testing.T) {
	n := testNode(t, 1000)
	vs := testDocs(200, 7)
	if _, err := NewLocal(n).Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	addr, _ := startServer(t, n)

	const clients = 4
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func() {
			c, err := Dial(bg, addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for rep := 0; rep < 10; rep++ {
				if _, err := c.QueryBatch(bg, vs[:3]); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	for g := 0; g < clients; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentInFlightSingleConn proves the protocol multiplexes: the
// backend blocks every QueryBatch until `lanes` of them have arrived, so
// the test completes only if all `lanes` RPCs are simultaneously in flight
// on ONE connection. A serial one-request-at-a-time protocol deadlocks
// here (and trips the watchdog).
func TestConcurrentInFlightSingleConn(t *testing.T) {
	const lanes = 8
	var (
		mu      sync.Mutex
		arrived int
		release = make(chan struct{})
	)
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			mu.Lock()
			arrived++
			if arrived == lanes {
				close(release)
			}
			mu.Unlock()
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			// Echo the lane tag (the query's first index) so the client can
			// verify responses were dispatched to the right caller.
			return [][]core.Neighbor{{{ID: qs[0].Idx[0], Dist: 0}}}, nil
		},
	}
	addr, _ := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(bg, 30*time.Second) // watchdog, not a pacing device
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, lanes)
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			q := sparse.Vector{Idx: []uint32{uint32(lane)}, Val: []float32{1}}
			res, err := client.QueryBatch(ctx, []sparse.Vector{q})
			if err != nil {
				errs[lane] = err
				return
			}
			if len(res) != 1 || len(res[0]) != 1 || res[0][0].ID != uint32(lane) {
				errs[lane] = errors.New("response misrouted")
			}
		}(lane)
	}
	wg.Wait()
	for lane, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", lane, err)
		}
	}
}

// TestServerShutdownMidRequest: canceling the server context while a
// request is being handled must fail the client call with an error — not
// leave it hanging.
func TestServerShutdownMidRequest(t *testing.T) {
	started := make(chan struct{}, 1)
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			started <- struct{}{}
			<-ctx.Done() // block until shutdown
			return nil, ctx.Err()
		},
	}
	addr, shutdown := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		_, err := client.QueryBatch(bg, testDocs(1, 3))
		done <- err
	}()
	<-started
	shutdown()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded through a server shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("call hung across server shutdown")
	}
}

// TestCanceledCallReturnsEarly: a client-side cancellation must abort the
// waiting call with ctx.Err() even though the server never responds.
func TestCanceledCallReturnsEarly(t *testing.T) {
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	addr, _ := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := client.QueryBatch(ctx, testDocs(1, 5))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled call did not return")
	}

	// The connection survives a canceled call: subsequent RPCs work.
	st, err := client.Stats(bg)
	if err != nil {
		t.Fatalf("call after cancellation failed: %v (stats %+v)", err, st)
	}
}

// TestCancelPropagatesToServer: abandoning a call client-side must abort
// the backend work server-side (via the cancel frame / carried deadline),
// not just stop the client from waiting.
func TestCancelPropagatesToServer(t *testing.T) {
	aborted := make(chan struct{}, 1)
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			<-ctx.Done()
			select {
			case aborted <- struct{}{}:
			default:
			}
			return nil, ctx.Err()
		},
	}
	addr, _ := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := client.QueryBatch(ctx, testDocs(1, 7))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client call: %v", err)
	}
	// The server's handler must observe the abort without the server
	// itself shutting down.
	select {
	case <-aborted:
	case <-time.After(10 * time.Second):
		t.Fatal("server-side work kept running after client cancellation")
	}
}

// TestClientDisconnectAbortsServerWork: when the client connection drops
// entirely, the server abandons the in-flight backend work instead of
// computing answers nobody will read.
func TestClientDisconnectAbortsServerWork(t *testing.T) {
	aborted := make(chan struct{}, 1)
	started := make(chan struct{}, 1)
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			started <- struct{}{}
			<-ctx.Done()
			select {
			case aborted <- struct{}{}:
			default:
			}
			return nil, ctx.Err()
		},
	}
	addr, _ := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	go client.QueryBatch(bg, testDocs(1, 11)) // fails when the client closes
	<-started
	client.Close()
	select {
	case <-aborted:
	case <-time.After(10 * time.Second):
		t.Fatal("server-side work kept running after the client disconnected")
	}
}

// TestDeadlinePropagatesToServer: the request carries the caller's
// deadline, so server-side work is bounded even without a cancel frame.
func TestDeadlinePropagatesToServer(t *testing.T) {
	sawDeadline := make(chan bool, 1)
	backend := &stubBackend{
		queryBatch: func(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
			_, ok := ctx.Deadline()
			select {
			case sawDeadline <- ok:
			default:
			}
			return make([][]core.Neighbor, len(qs)), nil
		},
	}
	addr, _ := startBackend(t, backend, nil)
	client, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	if _, err := client.QueryBatch(ctx, testDocs(1, 9)); err != nil {
		t.Fatal(err)
	}
	if ok := <-sawDeadline; !ok {
		t.Fatal("caller deadline did not reach the server-side context")
	}
}

// TestDecodeErrorSurfaced: garbage on the wire must reach the server's
// error callback instead of silently dropping the connection.
func TestDecodeErrorSurfaced(t *testing.T) {
	errCh := make(chan error, 1)
	addr, _ := startBackend(t, &stubBackend{}, func(err error) {
		select {
		case errCh <- err:
		default:
		}
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not a gob stream")); err != nil {
		t.Fatal(err)
	}
	// Close mid-"frame": the garbage length prefix promises more bytes than
	// ever arrive, so the decoder fails with an unexpected EOF (not the
	// clean io.EOF of an idle close).
	conn.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("nil error surfaced")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("decode error never surfaced")
	}
}

// Flush and MergeNow cross the wire: a remote MergeNow leaves the node
// fully static, and a remote Flush settles the background auto-merges a
// burst of inserts triggered.
func TestTCPMergeAndFlush(t *testing.T) {
	n := testNode(t, 2000)
	addr, _ := startServer(t, n)
	remote, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	if _, err := remote.Insert(bg, testDocs(300, 13)); err != nil {
		t.Fatal(err)
	}
	if err := remote.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st, err := remote.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MergeInFlight {
		t.Fatalf("Flush returned with a merge in flight: %+v", st)
	}
	if err := remote.MergeNow(bg); err != nil {
		t.Fatal(err)
	}
	if st, err = remote.Stats(bg); err != nil || st.DeltaLen != 0 || st.StaticLen != 300 {
		t.Fatalf("post-merge stats: %+v err=%v", st, err)
	}
}

// TestTCPSaveAndNotFound exercises the two newest wire codes end to end:
// opSave checkpoints a durable backend's data directory, and a delete of
// a never-inserted id comes back as node.ErrNotFound (codeNotFound), not
// a generic remote error.
func TestTCPSaveAndNotFound(t *testing.T) {
	dir := t.TempDir()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: 500,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
		Dir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	addr, _ := startBackend(t, NewLocal(n), nil)
	remote, err := Dial(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	ids, err := remote.Insert(bg, testDocs(40, 17))
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.Delete(bg, ids[0]); err != nil {
		t.Fatalf("valid delete over TCP: %v", err)
	}
	if err := remote.Delete(bg, 40); !errors.Is(err, node.ErrNotFound) {
		t.Fatalf("out-of-range delete over TCP: want ErrNotFound, got %v", err)
	}
	if err := remote.Save(bg); err != nil {
		t.Fatalf("Save over TCP: %v", err)
	}
	if _, err := persist.ReadSnapshot(dir); err != nil {
		t.Fatalf("no valid snapshot after remote Save: %v", err)
	}

	// An in-memory backend refuses the checkpoint with a remote error.
	mem := testNode(t, 100)
	addr2, _ := startBackend(t, NewLocal(mem), nil)
	remote2, err := Dial(bg, addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer remote2.Close()
	if err := remote2.Save(bg); err == nil {
		t.Fatal("Save on in-memory node succeeded over TCP")
	}
}
