package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// op enumerates wire operations.
type op uint8

const (
	opInsert op = iota + 1
	opQueryBatch
	opDelete
	opMerge
	opRetire
	opStats
)

// request is the client→server message.
type request struct {
	Op      op
	Vectors []sparse.Vector
	ID      uint32
}

// respCode distinguishes sentinel errors across the wire.
type respCode uint8

const (
	codeOK respCode = iota
	codeFull
	codeError
)

// response is the server→client message.
type response struct {
	Code    respCode
	Err     string
	IDs     []uint32
	Results [][]core.Neighbor
	Stats   node.Stats
}

// Serve answers requests for n on listener l until the listener is closed
// or ctxDone is closed (pass nil for no external cancellation). Each
// connection is served by its own goroutine; requests on one connection are
// processed in order.
func Serve(l net.Listener, n *node.Node, ctxDone <-chan struct{}) error {
	if ctxDone != nil {
		go func() {
			<-ctxDone
			l.Close()
		}()
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctxDone != nil {
				select {
				case <-ctxDone:
					return nil // clean shutdown
				default:
				}
			}
			return err
		}
		go serveConn(conn, n)
	}
}

func serveConn(conn net.Conn, n *node.Node) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupted; drop it
		}
		resp := handle(n, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func handle(n *node.Node, req *request) *response {
	resp := &response{}
	switch req.Op {
	case opInsert:
		ids, err := n.Insert(req.Vectors)
		switch {
		case errors.Is(err, node.ErrFull):
			resp.Code = codeFull
		case err != nil:
			resp.Code = codeError
			resp.Err = err.Error()
		default:
			resp.IDs = ids
		}
	case opQueryBatch:
		resp.Results = n.QueryBatch(req.Vectors)
	case opDelete:
		n.Delete(req.ID)
	case opMerge:
		n.MergeNow()
	case opRetire:
		n.Retire()
	case opStats:
		resp.Stats = n.Stats()
	default:
		resp.Code = codeError
		resp.Err = fmt.Sprintf("transport: unknown op %d", req.Op)
	}
	return resp
}

// Client is a NodeClient over one TCP connection. Calls are serialized
// (one in flight per connection), matching the coordinator's one-goroutine-
// per-node fan-out pattern.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	closed bool
}

// Dial connects to a node server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *Client) do(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClosed
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("transport: receive: %w", err)
	}
	switch resp.Code {
	case codeFull:
		return nil, node.ErrFull
	case codeError:
		return nil, fmt.Errorf("transport: remote: %s", resp.Err)
	}
	return &resp, nil
}

// Insert implements NodeClient.
func (c *Client) Insert(vs []sparse.Vector) ([]uint32, error) {
	resp, err := c.do(&request{Op: opInsert, Vectors: vs})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// QueryBatch implements NodeClient.
func (c *Client) QueryBatch(qs []sparse.Vector) ([][]core.Neighbor, error) {
	resp, err := c.do(&request{Op: opQueryBatch, Vectors: qs})
	if err != nil {
		return nil, err
	}
	// gob flattens empty vs nil; normalize length.
	res := resp.Results
	for len(res) < len(qs) {
		res = append(res, nil)
	}
	return res, nil
}

// Delete implements NodeClient.
func (c *Client) Delete(id uint32) error {
	_, err := c.do(&request{Op: opDelete, ID: id})
	return err
}

// MergeNow implements NodeClient.
func (c *Client) MergeNow() error {
	_, err := c.do(&request{Op: opMerge})
	return err
}

// Retire implements NodeClient.
func (c *Client) Retire() error {
	_, err := c.do(&request{Op: opRetire})
	return err
}

// Stats implements NodeClient.
func (c *Client) Stats() (node.Stats, error) {
	resp, err := c.do(&request{Op: opStats})
	if err != nil {
		return node.Stats{}, err
	}
	return resp.Stats, nil
}

// Close implements NodeClient.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

var _ NodeClient = (*Client)(nil)
