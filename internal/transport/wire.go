package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// The wire protocol is a sequence of gob frames in each direction over one
// TCP connection. Every request carries a client-assigned sequence number;
// the server handles each request in its own goroutine and writes the
// response — tagged with the same sequence number — as soon as it is
// ready, so responses may arrive out of order and many RPCs are in flight
// per connection at once (the net/rpc design: a writer goroutine
// serializing frames, a reader goroutine dispatching on a pending map).
// Cancellation crosses the wire two ways: each request carries its
// context deadline, and an abandoned call sends a best-effort opCancel
// frame, so the server stops spending CPU on answers nobody will read.

// op enumerates wire operations.
type op uint8

const (
	opInsert op = iota + 1
	opQueryBatch
	opQueryTopK
	opDelete
	opMerge
	opRetire
	opStats
	// opCancel aborts the in-flight request whose Seq it carries; it has
	// no response frame.
	opCancel
	// New ops append after opCancel so existing opcode values stay stable
	// under client/server version skew.
	opFlush
	// opSave checkpoints the node's data directory (snapshot + journal
	// truncation).
	opSave
	// opSearch is the unified query op: a batch of vectors plus a
	// versioned request-scoped parameter struct (radius, top-k bound,
	// candidate budget). Older servers answer it with an unknown-op
	// error, so mixed-version clusters fail loud, not wrong.
	opSearch
	// opDoc fetches one stored vector by node-local id, plus the node's
	// authoritative known/unknown answer.
	opDoc
)

// searchVersion is the highest searchParams revision this binary speaks.
// The version rides inside every opSearch frame; a server that receives a
// newer revision than it knows rejects the request instead of silently
// dropping parameters it cannot interpret.
const searchVersion = 1

// searchParams is the wire form of node.SearchParams. It is a separate
// struct so the wire encoding is owned here: node-side fields can evolve
// independently, and appends to this struct keep old frames decodable
// (gob fills missing fields with zero values, which all mean "default").
type searchParams struct {
	// Version is the revision of this struct the client encoded;
	// required (an opSearch frame with Version 0 is malformed).
	Version       uint8
	Radius        float64
	K             int
	MaxCandidates int
}

// request is the client→server frame.
type request struct {
	Seq     uint64
	Op      op
	Vectors []sparse.Vector
	ID      uint32 // Delete / Doc target
	K       int    // QueryTopK bound
	// Search carries the request-scoped parameters of an opSearch frame.
	// Nil on every other op (and on frames from pre-opSearch clients).
	Search *searchParams
	// Deadline is the caller's context deadline as Unix nanoseconds (0 =
	// none). The server bounds the backend call with it, so an expired
	// client deadline stops costing server CPU even if the cancel frame
	// never arrives. Assumes loosely synchronized clocks; skew only moves
	// when the server gives up, never the client-side outcome.
	Deadline int64
}

// respCode distinguishes sentinel errors across the wire.
type respCode uint8

const (
	codeOK respCode = iota
	codeFull
	codeError
	// codeNotFound carries node.ErrNotFound (delete of a never-inserted
	// id); appended after codeError so existing values stay stable under
	// version skew.
	codeNotFound
)

// response is the server→client frame.
type response struct {
	Seq     uint64
	Code    respCode
	Err     string
	IDs     []uint32
	Results [][]core.Neighbor
	TopK    []core.Neighbor
	Stats   node.Stats
	// Doc and Known answer an opDoc request.
	Doc   sparse.Vector
	Known bool
}

// Serve answers requests for backend on l until ctx is canceled (clean
// shutdown: returns nil) or the listener fails. Each connection decodes
// requests sequentially but handles every request in its own goroutine,
// so one connection sustains many concurrent RPCs. Cancellation closes
// the listener and every open connection, failing in-flight client calls
// promptly instead of leaving them hanging; Serve returns only after
// every connection's handlers have finished, so the backend is quiescent
// when it does.
//
// onError, if non-nil, receives connection-level failures (frame decode
// errors, response encode errors) that would otherwise be silent; it may
// be called from multiple goroutines.
func Serve(ctx context.Context, l net.Listener, backend NodeClient, onError func(error)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			serveConn(ctx, conn, backend, onError)
		}()
	}
}

func serveConn(ctx context.Context, conn net.Conn, backend NodeClient, onError func(error)) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var writeMu sync.Mutex // gob encoders are stateful: one frame at a time
	// inflight maps request Seq → cancel func, so an opCancel frame from
	// the client aborts the matching backend call.
	var inflightMu sync.Mutex
	inflight := map[uint64]context.CancelFunc{}
	var wg sync.WaitGroup
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			// EOF is a clean client close and shutdown races are expected;
			// anything else is a protocol/peer failure worth surfacing.
			if err != io.EOF && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) && onError != nil {
				onError(fmt.Errorf("transport: decode from %v: %w", conn.RemoteAddr(), err))
			}
			break
		}
		if req.Op == opCancel {
			inflightMu.Lock()
			cancel := inflight[req.Seq]
			inflightMu.Unlock()
			if cancel != nil {
				cancel()
			}
			continue
		}
		var rctx context.Context
		var rcancel context.CancelFunc
		if req.Deadline > 0 {
			rctx, rcancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
		} else {
			rctx, rcancel = context.WithCancel(ctx)
		}
		inflightMu.Lock()
		inflight[req.Seq] = rcancel
		inflightMu.Unlock()
		wg.Add(1)
		go func(req request, rctx context.Context) {
			defer wg.Done()
			defer func() {
				inflightMu.Lock()
				delete(inflight, req.Seq)
				inflightMu.Unlock()
				rcancel()
			}()
			resp := handle(rctx, backend, &req)
			writeMu.Lock()
			err := enc.Encode(resp)
			writeMu.Unlock()
			if err != nil && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) && onError != nil {
				onError(fmt.Errorf("transport: encode to %v: %w", conn.RemoteAddr(), err))
			}
		}(req, rctx)
	}
	// The connection is gone: nobody will read the remaining answers, so
	// abort their backend work instead of letting it run to completion.
	inflightMu.Lock()
	for _, cancel := range inflight {
		cancel()
	}
	inflightMu.Unlock()
	wg.Wait()
}

func handle(ctx context.Context, backend NodeClient, req *request) *response {
	resp := &response{Seq: req.Seq}
	fail := func(err error) {
		if errors.Is(err, node.ErrFull) {
			resp.Code = codeFull
			return
		}
		if errors.Is(err, node.ErrNotFound) {
			resp.Code = codeNotFound
			return
		}
		resp.Code = codeError
		resp.Err = err.Error()
	}
	switch req.Op {
	case opInsert:
		ids, err := backend.Insert(ctx, req.Vectors)
		if err != nil {
			fail(err)
			break
		}
		resp.IDs = ids
	case opQueryBatch:
		res, err := backend.QueryBatch(ctx, req.Vectors)
		if err != nil {
			fail(err)
			break
		}
		// The decoded frame's vector count is the contract: a conforming
		// backend answers every query exactly once, so a length mismatch
		// is a backend bug to surface, not to paper over.
		if len(res) != len(req.Vectors) {
			fail(fmt.Errorf("transport: backend returned %d answer lists for %d queries",
				len(res), len(req.Vectors)))
			break
		}
		resp.Results = res
	case opQueryTopK:
		if len(req.Vectors) != 1 {
			fail(fmt.Errorf("transport: top-k frame carries %d vectors, want 1", len(req.Vectors)))
			break
		}
		res, err := backend.QueryTopK(ctx, req.Vectors[0], req.K)
		if err != nil {
			fail(err)
			break
		}
		resp.TopK = res
	case opSearch:
		p := req.Search
		if p == nil || p.Version == 0 {
			fail(errors.New("transport: search frame carries no parameters"))
			break
		}
		if p.Version > searchVersion {
			fail(fmt.Errorf("transport: search parameters v%d from peer, this server speaks v%d",
				p.Version, searchVersion))
			break
		}
		res, err := backend.Search(ctx, req.Vectors, node.SearchParams{
			Radius:        p.Radius,
			K:             p.K,
			MaxCandidates: p.MaxCandidates,
		})
		if err != nil {
			fail(err)
			break
		}
		if len(res) != len(req.Vectors) {
			fail(fmt.Errorf("transport: backend returned %d answer lists for %d queries",
				len(res), len(req.Vectors)))
			break
		}
		resp.Results = res
	case opDoc:
		v, known, err := backend.Doc(ctx, req.ID)
		if err != nil {
			fail(err)
			break
		}
		resp.Doc = v
		resp.Known = known
	case opDelete:
		if err := backend.Delete(ctx, req.ID); err != nil {
			fail(err)
		}
	case opMerge:
		if err := backend.MergeNow(ctx); err != nil {
			fail(err)
		}
	case opFlush:
		if err := backend.Flush(ctx); err != nil {
			fail(err)
		}
	case opRetire:
		if err := backend.Retire(ctx); err != nil {
			fail(err)
		}
	case opSave:
		if err := backend.Save(ctx); err != nil {
			fail(err)
		}
	case opStats:
		st, err := backend.Stats(ctx)
		if err != nil {
			fail(err)
			break
		}
		resp.Stats = st
	default:
		fail(fmt.Errorf("transport: unknown op %d", req.Op))
	}
	return resp
}

// Client is a NodeClient over one TCP connection. Any number of calls may
// be in flight concurrently: each is assigned a sequence number, a writer
// goroutine serializes frames onto the wire, and a reader goroutine
// dispatches responses to waiting calls by sequence number. A canceled
// call returns ctx.Err() immediately — even while its frame is still
// queued behind a stalled send — and tells the server to abandon the
// request (best-effort cancel frame, plus the deadline carried in the
// request itself); its late response, if any, is discarded on arrival.
type Client struct {
	conn net.Conn

	writeCh chan *request // consumed by writeLoop in FIFO order
	dead    chan struct{} // closed when the connection is torn down

	mu      sync.Mutex // guards seq, pending, err, closed, down
	seq     uint64
	pending map[uint64]chan *response
	err     error // first terminal connection error
	closed  bool
	down    bool // dead already closed
}

// Dial connects to a node server at addr, honoring ctx for the dial
// itself.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		writeCh: make(chan *request, 16),
		dead:    make(chan struct{}),
		pending: map[uint64]chan *response{},
	}
	go c.writeLoop(gob.NewEncoder(conn))
	go c.readLoop(gob.NewDecoder(conn))
	return c, nil
}

// writeLoop is the single writer: it drains queued frames onto the gob
// encoder until the connection dies. Callers never block on a slow send —
// they wait on their response channel (or their context) instead.
func (c *Client) writeLoop(enc *gob.Encoder) {
	for {
		select {
		case req := <-c.writeCh:
			if err := enc.Encode(req); err != nil {
				c.fail(fmt.Errorf("transport: send: %w", err))
				return
			}
		case <-c.dead:
			return
		}
	}
}

// readLoop dispatches response frames to pending calls until the
// connection dies, then fails whatever is still waiting.
func (c *Client) readLoop(dec *gob.Decoder) {
	for {
		var resp response
		if err := dec.Decode(&resp); err != nil {
			c.fail(fmt.Errorf("transport: receive: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp // buffered; never blocks
		}
		// else: the call was canceled or the frame is stray — drop it.
	}
}

// fail records the connection's terminal error once, tears the
// connection down, and wakes every pending call. Idempotent; returns the
// underlying close error for Close's benefit.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	down := c.down
	c.down = true
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
	c.mu.Unlock()
	if !down {
		close(c.dead)
	}
	return c.conn.Close()
}

// terminalErr returns the error pending calls should report after their
// channel was closed without a response.
func (c *Client) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errClosed
}

func (c *Client) do(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	req.Seq = c.seq
	ch := make(chan *response, 1)
	c.pending[req.Seq] = ch
	c.mu.Unlock()

	// Carry the caller's deadline to the server so abandoned work is
	// bounded there too.
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}

	select {
	case c.writeCh <- req:
	case <-ctx.Done():
		c.forget(req.Seq)
		return nil, ctx.Err()
	case <-c.dead:
		c.forget(req.Seq)
		return nil, c.terminalErr()
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, c.terminalErr()
		}
		switch resp.Code {
		case codeFull:
			return nil, node.ErrFull
		case codeNotFound:
			return nil, node.ErrNotFound
		case codeError:
			return nil, fmt.Errorf("transport: remote: %s", resp.Err)
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(req.Seq)
		c.sendCancel(req.Seq)
		return nil, ctx.Err()
	}
}

// forget abandons a pending call (cancellation or send failure); a late
// response for it will be discarded by readLoop.
func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// sendCancel tells the server to abandon seq. Best-effort: if the write
// queue is saturated or the connection is down the frame is dropped —
// the deadline carried in the original request still bounds the
// server-side work.
func (c *Client) sendCancel(seq uint64) {
	select {
	case c.writeCh <- &request{Op: opCancel, Seq: seq}:
	case <-c.dead:
	default:
	}
}

// Insert implements NodeClient.
func (c *Client) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	resp, err := c.do(ctx, &request{Op: opInsert, Vectors: vs})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// QueryBatch implements NodeClient.
func (c *Client) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	resp, err := c.do(ctx, &request{Op: opQueryBatch, Vectors: qs})
	if err != nil {
		return nil, err
	}
	// The server guarantees one answer list per query; a mismatch means a
	// corrupt or non-conforming peer, not something to paper over.
	if len(resp.Results) != len(qs) {
		return nil, fmt.Errorf("transport: reply carries %d answer lists for %d queries",
			len(resp.Results), len(qs))
	}
	return resp.Results, nil
}

// Search implements NodeClient: one frame carries the batch and the
// versioned request-scoped parameter struct.
func (c *Client) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	resp, err := c.do(ctx, &request{Op: opSearch, Vectors: qs, Search: &searchParams{
		Version:       searchVersion,
		Radius:        p.Radius,
		K:             p.K,
		MaxCandidates: p.MaxCandidates,
	}})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(qs) {
		return nil, fmt.Errorf("transport: reply carries %d answer lists for %d queries",
			len(resp.Results), len(qs))
	}
	return resp.Results, nil
}

// Doc implements NodeClient.
func (c *Client) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	resp, err := c.do(ctx, &request{Op: opDoc, ID: id})
	if err != nil {
		return sparse.Vector{}, false, err
	}
	return resp.Doc, resp.Known, nil
}

// QueryTopK implements NodeClient.
func (c *Client) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	resp, err := c.do(ctx, &request{Op: opQueryTopK, Vectors: []sparse.Vector{q}, K: k})
	if err != nil {
		return nil, err
	}
	return resp.TopK, nil
}

// Delete implements NodeClient.
func (c *Client) Delete(ctx context.Context, id uint32) error {
	_, err := c.do(ctx, &request{Op: opDelete, ID: id})
	return err
}

// MergeNow implements NodeClient.
func (c *Client) MergeNow(ctx context.Context) error {
	_, err := c.do(ctx, &request{Op: opMerge})
	return err
}

// Flush implements NodeClient.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.do(ctx, &request{Op: opFlush})
	return err
}

// Retire implements NodeClient.
func (c *Client) Retire(ctx context.Context) error {
	_, err := c.do(ctx, &request{Op: opRetire})
	return err
}

// Save implements NodeClient.
func (c *Client) Save(ctx context.Context) error {
	_, err := c.do(ctx, &request{Op: opSave})
	return err
}

// Stats implements NodeClient.
func (c *Client) Stats(ctx context.Context) (node.Stats, error) {
	resp, err := c.do(ctx, &request{Op: opStats})
	if err != nil {
		return node.Stats{}, err
	}
	return resp.Stats, nil
}

// Broken reports whether the connection has failed terminally — every
// future call on this Client will fail without touching the network.
// Redial uses it to decide when a fresh dial is needed; a call that
// merely hit its context deadline leaves the connection healthy and
// Broken false.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil || c.closed
}

// Close implements NodeClient. In-flight calls fail with a closed-client
// error; Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.fail(errClosed)
}

var _ NodeClient = (*Client)(nil)
