package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// The wire protocol is a sequence of gob frames in each direction over one
// TCP connection. Every request carries a client-assigned sequence number;
// the server handles each request in its own goroutine and writes the
// response — tagged with the same sequence number — as soon as it is
// ready, so responses may arrive out of order and many RPCs are in flight
// per connection at once (the net/rpc design: a writer goroutine
// serializing frames, a reader goroutine dispatching on a pending map).
// Cancellation crosses the wire two ways: each request carries its
// context deadline, and an abandoned call sends a best-effort opCancel
// frame, so the server stops spending CPU on answers nobody will read.

// op enumerates wire operations.
type op uint8

const (
	opInsert op = iota + 1
	opQueryBatch
	opQueryTopK
	opDelete
	opMerge
	opRetire
	opStats
	// opCancel aborts the in-flight request whose Seq it carries; it has
	// no response frame.
	opCancel
	// New ops append after opCancel so existing opcode values stay stable
	// under client/server version skew.
	opFlush
	// opSave checkpoints the node's data directory (snapshot + journal
	// truncation).
	opSave
	// opSearch is the unified query op: a batch of vectors plus a
	// versioned request-scoped parameter struct (radius, top-k bound,
	// candidate budget). Older servers answer it with an unknown-op
	// error, so mixed-version clusters fail loud, not wrong.
	opSearch
	// opDoc fetches one stored vector by node-local id, plus the node's
	// authoritative known/unknown answer.
	opDoc
)

// searchVersion is the highest searchParams revision this binary speaks.
// The version rides inside every opSearch frame; a server that receives a
// newer revision than it knows rejects the request instead of silently
// dropping parameters it cannot interpret.
//
// v2 added the Routing hint. A search without the hint still declares
// searchVersionBase, so scatter traffic stays decodable by — and
// byte-identical to — pre-routing servers; only frames that actually
// carry routing claim v2, which a pre-routing server rejects loudly.
const (
	searchVersionBase = 1
	searchVersion     = 2
)

// searchParams is the wire form of node.SearchParams. It is a separate
// struct so the wire encoding is owned here: node-side fields can evolve
// independently, and appends to this struct keep old frames decodable
// (gob fills missing fields with zero values, which all mean "default").
type searchParams struct {
	// Version is the revision of this struct the client encoded;
	// required (an opSearch frame with Version 0 is malformed).
	Version       uint8
	Radius        float64
	K             int
	MaxCandidates int
	// Routing is the v2 placement-routing hint (node.RoutingPartitioned
	// on routed sub-batches); zero — and absent from the frame's bytes,
	// gob omits zero fields — on ordinary searches.
	Routing uint8
}

// request is the client→server frame. Pooled; putRequest zeroes it
// wholesale before Put, because gob decodes into retained capacity.
//
//plshvet:frame
type request struct {
	Seq     uint64
	Op      op
	Vectors []sparse.Vector
	ID      uint32 // Delete / Doc target
	K       int    // QueryTopK bound
	// Search carries the request-scoped parameters of an opSearch frame.
	// Nil on every other op (and on frames from pre-opSearch clients).
	Search *searchParams
	// Deadline is the caller's context deadline as Unix nanoseconds (0 =
	// none). The server bounds the backend call with it, so an expired
	// client deadline stops costing server CPU even if the cancel frame
	// never arrives. Assumes loosely synchronized clocks; skew only moves
	// when the server gives up, never the client-side outcome.
	Deadline int64

	// sp is client-side scratch: Search points at it so an opSearch frame
	// costs no separate searchParams allocation. Unexported, so gob never
	// sees it — the wire encoding is unchanged (pinned by the golden test).
	sp searchParams
}

// respCode distinguishes sentinel errors across the wire.
type respCode uint8

const (
	codeOK respCode = iota
	codeFull
	codeError
	// codeNotFound carries node.ErrNotFound (delete of a never-inserted
	// id); appended after codeError so existing values stay stable under
	// version skew.
	codeNotFound
)

// response is the server→client frame. Pooled; putResponse zeroes it
// wholesale before Put.
//
//plshvet:frame
type response struct {
	Seq     uint64
	Code    respCode
	Err     string
	IDs     []uint32
	Results [][]core.Neighbor
	TopK    []core.Neighbor
	Stats   node.Stats
	// Doc and Known answer an opDoc request.
	Doc   sparse.Vector
	Known bool
}

// Frame structs are pooled on both ends of the connection: every RPC
// reuses a request and a response instead of allocating fresh ones. The
// invariant is "pool contents are zeroed" — put* clears the struct before
// Put, so a Get always hands gob a blank frame and decoded slices that
// escaped into the backend (inserted vectors, returned answer lists) are
// never aliased by a later decode: gob allocates fresh backing arrays
// into zeroed fields.
var (
	reqPool  = sync.Pool{New: func() any { return new(request) }}
	respPool = sync.Pool{New: func() any { return new(response) }}
	// respChPool recycles the per-call response channel. Only channels
	// that completed a normal receive are returned: a channel closed by
	// connection failure, or one a canceled call abandoned (a late
	// response may still land in it), is left to the GC.
	respChPool = sync.Pool{New: func() any { return make(chan *response, 1) }}
)

func getRequest() *request   { return reqPool.Get().(*request) }
func getResponse() *response { return respPool.Get().(*response) }

func putRequest(r *request) {
	*r = request{}
	reqPool.Put(r)
}

func putResponse(r *response) {
	*r = response{}
	respPool.Put(r)
}

// Serve answers requests for backend on l until ctx is canceled (clean
// shutdown: returns nil) or the listener fails. Each connection decodes
// requests sequentially but handles every request in its own goroutine,
// so one connection sustains many concurrent RPCs. Cancellation closes
// the listener and every open connection, failing in-flight client calls
// promptly instead of leaving them hanging; Serve returns only after
// every connection's handlers have finished, so the backend is quiescent
// when it does.
//
// onError, if non-nil, receives connection-level failures (frame decode
// errors, response encode errors) that would otherwise be silent; it may
// be called from multiple goroutines.
func Serve(ctx context.Context, l net.Listener, backend NodeClient, onError func(error)) error {
	return ServeWithOptions(ctx, l, backend, ServeOptions{OnError: onError})
}

// ServeOptions configures Serve's shutdown behavior.
type ServeOptions struct {
	// Drain is the graceful-shutdown window. When the serve context is
	// canceled, intake stops immediately — the listener closes and no
	// further requests are decoded — but requests already in flight keep
	// their backend contexts and connections alive for up to Drain, so
	// their answers (and, on a durable node, their journal appends) land
	// instead of being torn mid-write. Requests still running at the end
	// of the window are hard-canceled. Zero reproduces the legacy
	// behavior: cancellation aborts in-flight requests at once.
	Drain time.Duration
	// OnError, if non-nil, receives connection-level failures (frame
	// decode errors, response encode errors) that would otherwise be
	// silent; it may be called from multiple goroutines.
	OnError func(error)
}

// ServeWithOptions is Serve with explicit shutdown options; see Serve for
// the serving contract and ServeOptions.Drain for the graceful-shutdown
// window. Like Serve it returns only after every in-flight handler has
// finished, so the backend is quiescent — checkpointable — when it does.
func ServeWithOptions(ctx context.Context, l net.Listener, backend NodeClient, opts ServeOptions) error {
	if ctx == nil {
		//plshvet:ignore ctxcheck nil-ctx fallback at the public serve boundary; Serve owns its root context when the caller passes none
		ctx = context.Background()
	}
	// Request contexts derive from hardCtx, which outlives the serve
	// context by the drain window: canceling ctx stops intake (soft stop)
	// while in-flight requests keep running until they finish or the
	// window closes.
	hardCtx, hardCancel := context.WithCancel(context.WithoutCancel(ctx))
	defer hardCancel()
	stopDrain := context.AfterFunc(ctx, func() {
		if opts.Drain <= 0 {
			hardCancel()
			return
		}
		time.AfterFunc(opts.Drain, hardCancel)
	})
	defer stopDrain()
	stop := context.AfterFunc(ctx, func() { l.Close() })
	defer stop()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return err
		}
		conns.Add(1)
		go func() {
			defer conns.Done()
			serveConn(ctx, hardCtx, conn, backend, opts.OnError)
		}()
	}
}

// serveConn serves one connection. ctx is the serve (soft-stop) context:
// its cancellation stops decoding — via an immediate read deadline, so
// the connection stays writable for draining answers. hardCtx bounds the
// in-flight requests themselves; its cancellation closes the connection
// outright. Without a drain window the two cancel together, which is the
// legacy abort-everything shutdown.
func serveConn(ctx, hardCtx context.Context, conn net.Conn, backend NodeClient, onError func(error)) {
	defer conn.Close() // best-effort; the peer sees EOF either way
	stopSoft := context.AfterFunc(ctx, func() {
		_ = conn.SetReadDeadline(time.Unix(1, 0)) // unblock the decoder, keep the conn writable
	})
	defer stopSoft()
	stop := context.AfterFunc(hardCtx, func() { conn.Close() })
	defer stop()
	// One decoder, one encoder, one write buffer per connection — frames
	// reuse them for the connection's whole life instead of paying
	// per-RPC setup. The decoder reads through its own buffer (gob wraps
	// non-ByteReaders in one); the encoder writes through bw, flushed
	// per frame under writeMu so a response hits the wire as soon as its
	// frame is complete.
	dec := gob.NewDecoder(bufio.NewReader(conn))
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	var writeMu sync.Mutex // gob encoders are stateful: one frame at a time
	// inflight maps request Seq → cancel func, so an opCancel frame from
	// the client aborts the matching backend call.
	var inflightMu sync.Mutex
	inflight := map[uint64]context.CancelFunc{}
	var wg sync.WaitGroup
	for {
		req := getRequest()
		if err := dec.Decode(req); err != nil {
			putRequest(req)
			// EOF is a clean client close and shutdown races are expected;
			// anything else is a protocol/peer failure worth surfacing.
			if err != io.EOF && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) && onError != nil {
				onError(fmt.Errorf("transport: decode from %v: %w", conn.RemoteAddr(), err))
			}
			break
		}
		if req.Op == opCancel {
			inflightMu.Lock()
			cancel := inflight[req.Seq]
			inflightMu.Unlock()
			if cancel != nil {
				cancel()
			}
			putRequest(req)
			continue
		}
		var rctx context.Context
		var rcancel context.CancelFunc
		if req.Deadline > 0 {
			rctx, rcancel = context.WithDeadline(hardCtx, time.Unix(0, req.Deadline))
		} else {
			rctx, rcancel = context.WithCancel(hardCtx)
		}
		inflightMu.Lock()
		inflight[req.Seq] = rcancel
		inflightMu.Unlock()
		wg.Add(1)
		go func(req *request, rctx context.Context) {
			defer wg.Done()
			seq := req.Seq // survives the frame's return to the pool
			defer func() {
				inflightMu.Lock()
				delete(inflight, seq)
				inflightMu.Unlock()
				rcancel()
			}()
			resp := getResponse()
			resp.Seq = seq
			handle(rctx, backend, req, resp)
			writeMu.Lock()
			//plshvet:ignore lockorder one stateful gob encoder per connection: frame writes must serialize on it, and contention is bounded by frame size
			err := enc.Encode(resp)
			if err == nil {
				//plshvet:ignore lockorder the flush belongs to the same serialized frame write as the encode above
				err = bw.Flush()
			}
			writeMu.Unlock()
			// The answer lists are on the wire; hand them back to the
			// backend's buffer pool when it recycles (the in-process
			// Local does), then recycle both frames.
			if rel, ok := backend.(Releaser); ok && resp.Results != nil {
				rel.ReleaseResults(resp.Results)
			}
			putResponse(resp)
			putRequest(req)
			if err != nil && ctx.Err() == nil && !errors.Is(err, net.ErrClosed) && onError != nil {
				onError(fmt.Errorf("transport: encode to %v: %w", conn.RemoteAddr(), err))
			}
		}(req, rctx)
	}
	// The decode loop is done. On a real peer disconnect nobody will read
	// the remaining answers, so abort their backend work instead of
	// letting it run to completion. On a soft stop (serve context
	// canceled, connection still writable) the in-flight requests are
	// exactly what the drain window exists for: let them finish and
	// answer, bounded by hardCtx.
	if ctx.Err() == nil {
		inflightMu.Lock()
		for _, cancel := range inflight {
			cancel()
		}
		inflightMu.Unlock()
	}
	wg.Wait()
}

func handle(ctx context.Context, backend NodeClient, req *request, resp *response) {
	fail := func(err error) {
		if errors.Is(err, node.ErrFull) {
			resp.Code = codeFull
			return
		}
		if errors.Is(err, node.ErrNotFound) {
			resp.Code = codeNotFound
			return
		}
		resp.Code = codeError
		resp.Err = err.Error()
	}
	switch req.Op {
	case opInsert:
		ids, err := backend.Insert(ctx, req.Vectors)
		if err != nil {
			fail(err)
			break
		}
		resp.IDs = ids
	case opQueryBatch:
		res, err := backend.QueryBatch(ctx, req.Vectors)
		if err != nil {
			fail(err)
			break
		}
		// The decoded frame's vector count is the contract: a conforming
		// backend answers every query exactly once, so a length mismatch
		// is a backend bug to surface, not to paper over.
		if len(res) != len(req.Vectors) {
			fail(fmt.Errorf("transport: backend returned %d answer lists for %d queries",
				len(res), len(req.Vectors)))
			break
		}
		resp.Results = res
	case opQueryTopK:
		if len(req.Vectors) != 1 {
			fail(fmt.Errorf("transport: top-k frame carries %d vectors, want 1", len(req.Vectors)))
			break
		}
		res, err := backend.QueryTopK(ctx, req.Vectors[0], req.K)
		if err != nil {
			fail(err)
			break
		}
		resp.TopK = res
	case opSearch:
		p := req.Search
		if p == nil || p.Version == 0 {
			fail(errors.New("transport: search frame carries no parameters"))
			break
		}
		if p.Version > searchVersion {
			fail(fmt.Errorf("transport: search parameters v%d from peer, this server speaks v%d",
				p.Version, searchVersion))
			break
		}
		if p.Routing != 0 && p.Version < 2 {
			fail(fmt.Errorf("transport: search frame carries a routing hint but declares v%d", p.Version))
			break
		}
		res, err := backend.Search(ctx, req.Vectors, node.SearchParams{
			Radius:        p.Radius,
			K:             p.K,
			MaxCandidates: p.MaxCandidates,
			Routing:       p.Routing,
		})
		if err != nil {
			fail(err)
			break
		}
		if len(res) != len(req.Vectors) {
			fail(fmt.Errorf("transport: backend returned %d answer lists for %d queries",
				len(res), len(req.Vectors)))
			break
		}
		resp.Results = res
	case opDoc:
		v, known, err := backend.Doc(ctx, req.ID)
		if err != nil {
			fail(err)
			break
		}
		resp.Doc = v
		resp.Known = known
	case opDelete:
		if err := backend.Delete(ctx, req.ID); err != nil {
			fail(err)
		}
	case opMerge:
		if err := backend.MergeNow(ctx); err != nil {
			fail(err)
		}
	case opFlush:
		if err := backend.Flush(ctx); err != nil {
			fail(err)
		}
	case opRetire:
		if err := backend.Retire(ctx); err != nil {
			fail(err)
		}
	case opSave:
		if err := backend.Save(ctx); err != nil {
			fail(err)
		}
	case opStats:
		st, err := backend.Stats(ctx)
		if err != nil {
			fail(err)
			break
		}
		resp.Stats = st
	default:
		fail(fmt.Errorf("transport: unknown op %d", req.Op))
	}
}

// Client is a NodeClient over one TCP connection. Any number of calls may
// be in flight concurrently: each is assigned a sequence number, a writer
// goroutine serializes frames onto the wire, and a reader goroutine
// dispatches responses to waiting calls by sequence number. A canceled
// call returns ctx.Err() immediately — even while its frame is still
// queued behind a stalled send — and tells the server to abandon the
// request (best-effort cancel frame, plus the deadline carried in the
// request itself); its late response, if any, is discarded on arrival.
type Client struct {
	conn net.Conn

	writeCh chan *request // consumed by writeLoop in FIFO order
	dead    chan struct{} // closed when the connection is torn down

	mu      sync.Mutex // guards seq, pending, err, closed, down
	seq     uint64
	pending map[uint64]chan *response
	err     error // first terminal connection error
	closed  bool
	down    bool // dead already closed
}

// Dial connects to a node server at addr, honoring ctx for the dial
// itself.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		writeCh: make(chan *request, 16),
		dead:    make(chan struct{}),
		pending: map[uint64]chan *response{},
	}
	bw := bufio.NewWriter(conn)
	go c.writeLoop(gob.NewEncoder(bw), bw)
	go c.readLoop(gob.NewDecoder(bufio.NewReader(conn)))
	return c, nil
}

// writeLoop is the single writer: it drains queued frames onto the gob
// encoder until the connection dies, recycling each frame once it is
// encoded. Callers never block on a slow send — they wait on their
// response channel (or their context) instead. The write buffer is
// flushed only when the queue drains, so a burst of concurrent calls
// coalesces into fewer, larger writes.
func (c *Client) writeLoop(enc *gob.Encoder, bw *bufio.Writer) {
	for {
		select {
		case req := <-c.writeCh:
			err := enc.Encode(req)
			putRequest(req)
			if err == nil && len(c.writeCh) == 0 {
				err = bw.Flush()
			}
			if err != nil {
				c.fail(fmt.Errorf("transport: send: %w", err))
				return
			}
		case <-c.dead:
			return
		}
	}
}

// readLoop dispatches response frames to pending calls until the
// connection dies, then fails whatever is still waiting. Each frame is a
// pooled response struct; ownership passes to the waiting call, which
// recycles it after extracting the answer.
func (c *Client) readLoop(dec *gob.Decoder) {
	for {
		resp := getResponse()
		if err := dec.Decode(resp); err != nil {
			putResponse(resp)
			c.fail(fmt.Errorf("transport: receive: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.Seq]
		delete(c.pending, resp.Seq)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp // buffered; never blocks
		} else {
			// The call was canceled or the frame is stray — recycle it.
			putResponse(resp)
		}
	}
}

// fail records the connection's terminal error once, tears the
// connection down, and wakes every pending call. Idempotent; returns the
// underlying close error for Close's benefit.
func (c *Client) fail(err error) error {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	down := c.down
	c.down = true
	for seq, ch := range c.pending {
		delete(c.pending, seq)
		close(ch)
	}
	c.mu.Unlock()
	if !down {
		close(c.dead)
	}
	return c.conn.Close()
}

// terminalErr returns the error pending calls should report after their
// channel was closed without a response.
func (c *Client) terminalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return errClosed
}

// do sends req — a pooled frame the caller filled via getRequest — and
// waits for its answer. Ownership of req passes to writeLoop on a
// successful enqueue (it recycles the frame after encoding); on the early
// abort paths do recycles it itself. A successful return hands the caller
// a pooled response to release with putResponse once the answer is
// extracted.
func (c *Client) do(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		putRequest(req)
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putRequest(req)
		return nil, errClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		putRequest(req)
		return nil, err
	}
	c.seq++
	seq := c.seq
	req.Seq = seq
	ch := respChPool.Get().(chan *response)
	c.pending[seq] = ch
	c.mu.Unlock()

	// Carry the caller's deadline to the server so abandoned work is
	// bounded there too.
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}

	select {
	case c.writeCh <- req:
	case <-ctx.Done():
		c.forget(seq)
		putRequest(req)
		return nil, ctx.Err()
	case <-c.dead:
		c.forget(seq)
		putRequest(req)
		return nil, c.terminalErr()
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			// Closed by fail(); a closed channel cannot be reused.
			return nil, c.terminalErr()
		}
		respChPool.Put(ch) // drained, and seq is out of pending: safe to reuse
		switch resp.Code {
		case codeFull:
			putResponse(resp)
			return nil, node.ErrFull
		case codeNotFound:
			putResponse(resp)
			return nil, node.ErrNotFound
		case codeError:
			err := fmt.Errorf("transport: remote: %s", resp.Err)
			putResponse(resp)
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		// A late response may still land in ch; leave both to the GC.
		c.forget(seq)
		c.sendCancel(seq)
		return nil, ctx.Err()
	}
}

// forget abandons a pending call (cancellation or send failure); a late
// response for it will be discarded by readLoop.
func (c *Client) forget(seq uint64) {
	c.mu.Lock()
	delete(c.pending, seq)
	c.mu.Unlock()
}

// sendCancel tells the server to abandon seq. Best-effort: if the write
// queue is saturated or the connection is down the frame is dropped —
// the deadline carried in the original request still bounds the
// server-side work.
func (c *Client) sendCancel(seq uint64) {
	req := getRequest()
	req.Op = opCancel
	req.Seq = seq
	select {
	case c.writeCh <- req:
	case <-c.dead:
		putRequest(req)
	default:
		putRequest(req)
	}
}

// doEmpty runs an RPC whose response carries no payload beyond its code.
func (c *Client) doEmpty(ctx context.Context, req *request) error {
	resp, err := c.do(ctx, req)
	if err != nil {
		return err
	}
	putResponse(resp)
	return nil
}

// Insert implements NodeClient.
func (c *Client) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	req := getRequest()
	req.Op = opInsert
	req.Vectors = vs
	resp, err := c.do(ctx, req)
	if err != nil {
		return nil, err
	}
	ids := resp.IDs
	putResponse(resp)
	return ids, nil
}

// QueryBatch implements NodeClient.
func (c *Client) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	req := getRequest()
	req.Op = opQueryBatch
	req.Vectors = qs
	resp, err := c.do(ctx, req)
	if err != nil {
		return nil, err
	}
	res := resp.Results
	putResponse(resp)
	// The server guarantees one answer list per query; a mismatch means a
	// corrupt or non-conforming peer, not something to paper over.
	if len(res) != len(qs) {
		return nil, fmt.Errorf("transport: reply carries %d answer lists for %d queries",
			len(res), len(qs))
	}
	return res, nil
}

// Search implements NodeClient: one frame carries the batch and the
// versioned request-scoped parameter struct.
func (c *Client) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	req := getRequest()
	req.Op = opSearch
	req.Vectors = qs
	// Scatter searches declare the base revision so their frames stay
	// byte-identical to pre-routing clients; only a frame that actually
	// carries the routing hint claims v2 (and is rejected, loudly, by a
	// server too old to interpret it).
	v := uint8(searchVersionBase)
	if p.Routing != node.RoutingNone {
		v = searchVersion
	}
	req.sp = searchParams{
		Version:       v,
		Radius:        p.Radius,
		K:             p.K,
		MaxCandidates: p.MaxCandidates,
		Routing:       p.Routing,
	}
	req.Search = &req.sp
	resp, err := c.do(ctx, req)
	if err != nil {
		return nil, err
	}
	res := resp.Results
	putResponse(resp)
	if len(res) != len(qs) {
		return nil, fmt.Errorf("transport: reply carries %d answer lists for %d queries",
			len(res), len(qs))
	}
	return res, nil
}

// Doc implements NodeClient.
func (c *Client) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	req := getRequest()
	req.Op = opDoc
	req.ID = id
	resp, err := c.do(ctx, req)
	if err != nil {
		return sparse.Vector{}, false, err
	}
	v, known := resp.Doc, resp.Known
	putResponse(resp)
	return v, known, nil
}

// QueryTopK implements NodeClient.
func (c *Client) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	req := getRequest()
	req.Op = opQueryTopK
	req.Vectors = []sparse.Vector{q}
	req.K = k
	resp, err := c.do(ctx, req)
	if err != nil {
		return nil, err
	}
	res := resp.TopK
	putResponse(resp)
	return res, nil
}

// Delete implements NodeClient.
func (c *Client) Delete(ctx context.Context, id uint32) error {
	req := getRequest()
	req.Op = opDelete
	req.ID = id
	return c.doEmpty(ctx, req)
}

// MergeNow implements NodeClient.
func (c *Client) MergeNow(ctx context.Context) error {
	req := getRequest()
	req.Op = opMerge
	return c.doEmpty(ctx, req)
}

// Flush implements NodeClient.
func (c *Client) Flush(ctx context.Context) error {
	req := getRequest()
	req.Op = opFlush
	return c.doEmpty(ctx, req)
}

// Retire implements NodeClient.
func (c *Client) Retire(ctx context.Context) error {
	req := getRequest()
	req.Op = opRetire
	return c.doEmpty(ctx, req)
}

// Save implements NodeClient.
func (c *Client) Save(ctx context.Context) error {
	req := getRequest()
	req.Op = opSave
	return c.doEmpty(ctx, req)
}

// Stats implements NodeClient.
func (c *Client) Stats(ctx context.Context) (node.Stats, error) {
	req := getRequest()
	req.Op = opStats
	resp, err := c.do(ctx, req)
	if err != nil {
		return node.Stats{}, err
	}
	st := resp.Stats
	putResponse(resp)
	return st, nil
}

// Broken reports whether the connection has failed terminally — every
// future call on this Client will fail without touching the network.
// Redial uses it to decide when a fresh dial is needed; a call that
// merely hit its context deadline leaves the connection healthy and
// Broken false.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil || c.closed
}

// Close implements NodeClient. In-flight calls fail with a closed-client
// error; Close is idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.fail(errClosed)
}

var _ NodeClient = (*Client)(nil)
