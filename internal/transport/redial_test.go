package transport

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"
)

// killableServer is a node server whose process death is simulated by
// tearing down its listener and every open connection; restart re-listens
// on the same address over the same backend.
type killableServer struct {
	t    *testing.T
	addr string
	back NodeClient
	stop context.CancelFunc
	done chan struct{}
}

func startKillableServer(t *testing.T, back NodeClient) *killableServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &killableServer{t: t, addr: l.Addr().String(), back: back}
	s.serve(l)
	t.Cleanup(func() { s.stop() })
	return s
}

func (s *killableServer) serve(l net.Listener) {
	ctx, cancel := context.WithCancel(context.Background())
	s.stop = cancel
	done := make(chan struct{})
	s.done = done
	go func() {
		defer close(done)
		Serve(ctx, l, s.back, nil)
	}()
}

// kill closes the listener and every connection, and waits until the
// server has fully drained — the in-process stand-in for SIGKILL.
func (s *killableServer) kill() {
	s.stop()
	<-s.done
}

// restart re-listens on the same address.
func (s *killableServer) restart() {
	s.t.Helper()
	var l net.Listener
	var err error
	// The old listener's port can linger briefly after close; retry.
	for deadline := time.Now().Add(5 * time.Second); ; {
		l, err = net.Listen("tcp", s.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			s.t.Fatalf("re-listen on %s: %v", s.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.serve(l)
}

// TestRedialReconnectsAfterServerRestart: a Redial client fails while its
// node is down, then heals itself once the node is back — the property
// that lets a crashed replica rejoin a cluster without rebuilding the
// coordinator.
func TestRedialReconnectsAfterServerRestart(t *testing.T) {
	n := testNode(t, 1000)
	srv := startKillableServer(t, NewLocal(n))
	r, err := NewRedial(bg, srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	docs := testDocs(100, 5)
	if _, err := r.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	before, err := r.QueryBatch(bg, docs[:4])
	if err != nil {
		t.Fatal(err)
	}

	srv.kill()
	// Down: calls fail (Redial does not retry within a call)...
	if _, err := r.Stats(bg); err == nil {
		t.Fatal("Stats succeeded against a dead server")
	}

	srv.restart()
	// ...but once the server is back, the next call re-dials and the
	// answers are exactly what the node held before (the backend survived;
	// in a real deployment the journal replay restores it).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := r.Stats(bg); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Redial never healed after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := r.QueryBatch(bg, docs[:4])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, before) {
		t.Fatal("answers differ across the restart")
	}

	// Close is terminal: no further dial is attempted.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Stats(bg); err == nil {
		t.Fatal("closed Redial answered a call")
	}
}
