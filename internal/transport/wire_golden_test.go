package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/hex"
	"net"
	"reflect"
	"testing"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// TestOpcodeValuesStable pins every wire constant to its numeric value.
// The opcode block is append-only: a reordered or renumbered constant
// breaks mixed-version clusters silently (an old peer would run the
// wrong operation), so any diff here must be an append — this table
// grows, existing rows never change.
func TestOpcodeValuesStable(t *testing.T) {
	ops := []struct {
		name string
		got  op
		want uint8
	}{
		{"opInsert", opInsert, 1},
		{"opQueryBatch", opQueryBatch, 2},
		{"opQueryTopK", opQueryTopK, 3},
		{"opDelete", opDelete, 4},
		{"opMerge", opMerge, 5},
		{"opRetire", opRetire, 6},
		{"opStats", opStats, 7},
		{"opCancel", opCancel, 8},
		{"opFlush", opFlush, 9},
		{"opSave", opSave, 10},
		{"opSearch", opSearch, 11},
		{"opDoc", opDoc, 12},
	}
	for _, tc := range ops {
		if uint8(tc.got) != tc.want {
			t.Errorf("%s = %d, must stay %d (opcodes are append-only)", tc.name, tc.got, tc.want)
		}
	}
	codes := []struct {
		name string
		got  respCode
		want uint8
	}{
		{"codeOK", codeOK, 0},
		{"codeFull", codeFull, 1},
		{"codeError", codeError, 2},
		{"codeNotFound", codeNotFound, 3},
	}
	for _, tc := range codes {
		if uint8(tc.got) != tc.want {
			t.Errorf("%s = %d, must stay %d (response codes are append-only)", tc.name, tc.got, tc.want)
		}
	}
	// v2 added the Routing hint; v1 frames are still decoded (gob fills
	// the missing field with zero = RoutingNone), so every older revision
	// stays servable. Frames without routing keep declaring v1, pinned by
	// the "search" golden frame below.
	if searchVersionBase != 1 {
		t.Errorf("searchVersionBase = %d; the base revision never moves", searchVersionBase)
	}
	if searchVersion != 2 {
		t.Errorf("searchVersion = %d; bump only with a compatible server-side decoder for every older revision", searchVersion)
	}
}

type goldenReq struct {
	name string
	req  request
}

func goldenVec() sparse.Vector {
	return sparse.Vector{Idx: []uint32{1, 5}, Val: []float32{0.5, 0.25}}
}

// goldenRequests is one canonical frame per opcode, in opcode order.
func goldenRequests() []goldenReq {
	return []goldenReq{
		{"insert", request{Seq: 1, Op: opInsert, Vectors: []sparse.Vector{goldenVec()}}},
		{"queryBatch", request{Seq: 2, Op: opQueryBatch, Vectors: []sparse.Vector{goldenVec()}, Deadline: 12345}},
		{"queryTopK", request{Seq: 3, Op: opQueryTopK, Vectors: []sparse.Vector{goldenVec()}, K: 7}},
		{"delete", request{Seq: 4, Op: opDelete, ID: 42}},
		{"merge", request{Seq: 5, Op: opMerge}},
		{"retire", request{Seq: 6, Op: opRetire}},
		{"stats", request{Seq: 7, Op: opStats}},
		{"cancel", request{Seq: 8, Op: opCancel}},
		{"flush", request{Seq: 9, Op: opFlush}},
		{"save", request{Seq: 10, Op: opSave}},
		{"search", request{Seq: 11, Op: opSearch, Vectors: []sparse.Vector{goldenVec()},
			Search: &searchParams{Version: 1, Radius: 1.25, K: 9, MaxCandidates: 100}}},
		{"doc", request{Seq: 12, Op: opDoc, ID: 99}},
		// The v2 routed-search frame: identical layout plus the Routing
		// hint. Scatter searches never emit it — the v1 "search" frame
		// above stays their exact wire form.
		{"searchRouted", request{Seq: 13, Op: opSearch, Vectors: []sparse.Vector{goldenVec()},
			Search: &searchParams{Version: 2, Radius: 0.9, K: 5, Routing: 1}}},
	}
}

// goldenStream is the byte-exact gob encoding of goldenRequests on one
// encoder (one encoder per connection, exactly like Client.writeLoop).
// It pins the request struct's field names, types, and the opcode
// numbering all at once: any change to the frame layout — renamed field,
// retyped field, renumbered opcode — shows up as a diff here and must be
// made as a backward-compatible append instead.
//
// Regenerated when searchParams grew the v2 Routing field: gob's
// one-time type descriptor for the struct names every field, so the
// descriptor block changed. The per-frame bytes of every pre-existing
// frame — including the v1 "search" frame — are unchanged (gob omits
// zero fields), which is what keeps scatter traffic byte-identical to
// pre-routing clients; the only new payload bytes are the appended
// "searchRouted" frame.
const goldenStream = "" +
	"567f030101077265717565737401ff80000107010353657101060001024f7001" +
	"06000107566563746f727301ff88000102494401060001014b01040001065365" +
	"6172636801ff8a000108446561646c696e6501040000001eff870201010f5b5d" +
	"7370617273652e566563746f7201ff880001ff82000026ff8103010106566563" +
	"746f7201ff82000102010349647801ff8400010356616c01ff8600000016ff83" +
	"020101085b5d75696e74333201ff84000106000017ff85020101095b5d666c6f" +
	"6174333201ff86000108000055ff890301010c736561726368506172616d7301" +
	"ff8a000105010756657273696f6e010600010652616469757301080001014b01" +
	"0400010d4d617843616e646964617465730104000107526f7574696e67010600" +
	"000016ff80010101010101010201050102fee03ffed03f00001aff8001020102" +
	"0101010201050102fee03ffed03f0004fe60720018ff80010301030101010201" +
	"050102fee03ffed03f00020e0009ff8001040104022a0007ff80010501050007" +
	"ff80010601060007ff80010701070007ff80010801080007ff80010901090007" +
	"ff80010a010a0023ff80010b010b0101010201050102fee03ffed03f00030101" +
	"01fef43f011201ffc8000009ff80010c010c02630028ff80010d010b01010102" +
	"01050102fee03ffed03f0003010201f8cdccccccccccec3f010a02010000"

// TestWireFramesGolden re-encodes the canonical frame sequence and
// requires the byte-exact golden stream, then decodes the golden bytes
// back and requires the canonical requests — so both directions of the
// frame layout are pinned.
func TestWireFramesGolden(t *testing.T) {
	reqs := goldenRequests()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, tc := range reqs {
		if err := enc.Encode(tc.req); err != nil {
			t.Fatal(err)
		}
	}
	got := hex.EncodeToString(buf.Bytes())
	if got != goldenStream {
		t.Fatalf("wire frame encoding changed; this breaks mixed-version clusters.\ngot:  %s\nwant: %s",
			got, goldenStream)
	}

	raw, err := hex.DecodeString(goldenStream)
	if err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(bytes.NewReader(raw))
	for _, tc := range reqs {
		var back request
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("%s: decoding golden bytes: %v", tc.name, err)
		}
		if !reflect.DeepEqual(back, tc.req) {
			t.Fatalf("%s: golden bytes decode to %+v, want %+v", tc.name, back, tc.req)
		}
	}
}

// TestSearchIdenticalAcrossTransports is the mixed-path satellite: the
// same Search (radius override, top-k bound, candidate budget) against
// the same node must answer byte-identically through transport.NewLocal
// and through a real TCP Client — the serialization layer may not perturb
// parameters or results.
func TestSearchIdenticalAcrossTransports(t *testing.T) {
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 4, M: 16, Seed: 7},
		Capacity: 1000,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	local := NewLocal(n)
	docs := testDocs(400, 3)
	if _, err := local.Insert(context.Background(), docs); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Serve(ctx, l, local, nil)
	remote, err := Dial(context.Background(), l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	queries := docs[:16]
	for _, p := range []node.SearchParams{
		{},
		{Radius: 1.2},
		{K: 5},
		{Radius: 1.1, K: 3},
		{Radius: 1.3, MaxCandidates: 10},
	} {
		a, err := local.Search(context.Background(), queries, p)
		if err != nil {
			t.Fatalf("local search %+v: %v", p, err)
		}
		b, err := remote.Search(context.Background(), queries, p)
		if err != nil {
			t.Fatalf("tcp search %+v: %v", p, err)
		}
		if len(a) != len(b) {
			t.Fatalf("params %+v: %d vs %d answer lists", p, len(a), len(b))
		}
		for qi := range a {
			// gob decodes an empty slice as nil; normalize before the
			// byte-identical comparison.
			if len(a[qi]) == 0 && len(b[qi]) == 0 {
				continue
			}
			if !reflect.DeepEqual(a[qi], b[qi]) {
				t.Fatalf("params %+v query %d: local %+v, tcp %+v", p, qi, a[qi], b[qi])
			}
		}
	}

	// Doc crosses the wire unperturbed too.
	for _, id := range []uint32{0, 399} {
		va, ka, err := local.Doc(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		vb, kb, err := remote.Doc(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb || !reflect.DeepEqual(va.Idx, vb.Idx) || !reflect.DeepEqual(va.Val, vb.Val) {
			t.Fatalf("doc %d differs across transports", id)
		}
	}
	if _, known, err := remote.Doc(context.Background(), 5000); err != nil || known {
		t.Fatalf("unknown id over TCP: known=%v err=%v", known, err)
	}
}
