// Package expr is the experiment harness: one runner per table/figure of
// the paper's evaluation (§8), each printing the same rows/series the paper
// reports, plus the streaming and recall measurements of §8.6 and §8.1.
//
// Experiments run at a configurable scale (defaults target a laptop; the
// paper's single-node point is N=10.5M, D=500K, k=16, m=40). Absolute
// times differ from the paper's Xeon cluster; the comparisons preserved are
// the *shapes*: who wins, by what rough factor, and where curves cross.
// EXPERIMENTS.md records paper-vs-measured for each.
package expr

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// Options scales and seeds the experiments.
type Options struct {
	// N is the dataset size (per node, for multi-node experiments).
	N int
	// Dim is the vocabulary size.
	Dim int
	// K and M are the LSH parameters (L = M(M−1)/2).
	K, M int
	// Queries is the query-set size (paper: 1000).
	Queries int
	// Radius is R (paper: 0.9).
	Radius float64
	// Workers bounds parallelism; 0 = GOMAXPROCS.
	Workers int
	// Seed drives corpus generation and hashing.
	Seed uint64
}

// Defaults returns a laptop-scale configuration.
func Defaults() Options {
	return Options{
		N:       50000,
		Dim:     50000,
		K:       16,
		M:       16,
		Queries: 500,
		Radius:  0.9,
		Seed:    42,
	}
}

func (o Options) params() lshhash.Params {
	return lshhash.Params{Dim: o.Dim, K: o.K, M: o.M, Seed: o.Seed}
}

// twitterCorpus generates the tweet-like dataset for o.
func (o Options) twitterCorpus() *corpus.Collection {
	cfg := corpus.Twitter(o.N, o.Dim, o.Seed)
	return corpus.Generate(cfg)
}

// wikipediaCorpus generates the abstract-like dataset for o.
func (o Options) wikipediaCorpus() *corpus.Collection {
	cfg := corpus.Wikipedia(o.N, o.Dim, o.Seed)
	return corpus.Generate(cfg)
}

// queries samples the query workload ("a random subset of 1000 tweets from
// the database", §8).
func (o Options) queries(c *corpus.Collection) []sparse.Vector {
	return c.SampleQueries(o.Queries, o.Seed+1)
}

// Runner is one experiment.
type Runner struct {
	// Name is the CLI identifier (e.g. "table2", "fig9").
	Name string
	// Desc is a one-line description.
	Desc string
	// Run executes the experiment at the given scale, writing a formatted
	// report to w.
	Run func(o Options, w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Runner {
	return []Runner{
		{"table2", "PLSH vs inverted index vs exhaustive search", Table2},
		{"fig4", "construction-time optimization breakdown", Fig4},
		{"fig5", "query-time optimization breakdown", Fig5},
		{"fig6", "performance model vs actual, per phase", Fig6},
		{"fig7", "model accuracy across (k,m), Twitter + Wikipedia", Fig7},
		{"fig8", "thread scaling on one node", Fig8},
		{"fig9", "node scaling with fixed data per node", Fig9},
		{"fig10", "latency vs throughput across batch sizes", Fig10},
		{"fig11", "streaming query overhead vs delta fill", Fig11},
		{"streaming", "insert/merge overheads at Twitter rates (§8.6)", Streaming},
		{"recall", "measured recall vs the 1−δ guarantee (§8.1)", Recall},
	}
}

// Lookup finds a runner by name.
func Lookup(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// table is a small formatting helper around tabwriter.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

// flush renders the table; a stdout write failure is ignored — the
// experiment's numbers are already lost if stdout is gone.
func (t *table) flush() { _ = t.tw.Flush() }

// ms renders a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// msf renders nanoseconds (float) as milliseconds.
func msf(ns float64) string { return fmt.Sprintf("%.2f", ns/1e6) }

// minMaxAvg summarizes a slice of durations.
func minMaxAvg(ds []time.Duration) (mn, mx, avg time.Duration) {
	if len(ds) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mn, mx = sorted[0], sorted[len(sorted)-1]
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return mn, mx, sum / time.Duration(len(ds))
}

// header prints a section title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// lshFamily draws the hash family for o.
func lshFamily(o Options) (*lshhash.Family, error) {
	return lshhash.NewFamily(o.params())
}

// docsOf flattens a collection into a vector slice.
func docsOf(c *corpus.Collection) []sparse.Vector {
	out := make([]sparse.Vector, c.Mat.Rows())
	for i := range out {
		out[i] = c.Mat.Row(i)
	}
	return out
}
