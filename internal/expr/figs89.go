package expr

import (
	"context"
	"fmt"
	"io"
	"time"

	"plsh/internal/cluster"
	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/transport"
)

// Fig8 reproduces Figure 8: initialization and query time on a single node
// as the thread count grows (the paper reaches 7.2× on initialization and
// 7.8× on queries with 8 cores + SMT). The shape to verify: both curves
// fall near-linearly with threads until the physical core count.
func Fig8(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	queries := o.queries(c)
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 8: thread scaling (N=%d, %d queries)", o.N, len(queries)))
	tb := newTable(w)
	tb.row("threads", "init (ms)", "init speedup", "query (ms)", "query speedup")
	var initBase, queryBase time.Duration
	for _, threads := range []int{1, 2, 4, 8, 16} {
		buildOpts := core.Defaults()
		buildOpts.Workers = threads
		initDur, err := timeBuild(fam, c.Mat, buildOpts)
		if err != nil {
			return err
		}
		st, err := core.Build(fam, c.Mat, buildOpts)
		if err != nil {
			return err
		}
		qOpts := core.QueryDefaults()
		qOpts.Radius = o.Radius
		qOpts.Workers = threads
		eng := core.NewEngine(st, c.Mat, qOpts)
		eng.QueryBatch(queries[:min(32, len(queries))])
		t0 := time.Now()
		eng.QueryBatch(queries)
		queryDur := time.Since(t0)
		if threads == 1 {
			initBase, queryBase = initDur, queryDur
		}
		tb.row(threads, ms(initDur),
			fmt.Sprintf("%.2fx", float64(initBase)/float64(initDur)),
			ms(queryDur),
			fmt.Sprintf("%.2fx", float64(queryBase)/float64(queryDur)))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: 7.2x init / 7.8x query at 16 threads (8 cores + SMT)\n")
	return nil
}

// fig9NodeCounts is the sweep; the paper runs up to 100 physical nodes —
// here nodes are in-process, so memory bounds the count.
var fig9NodeCounts = []int{1, 2, 4, 8}

// Fig9 reproduces Figure 9: with data per node held constant, per-node
// initialization and query times as the node count grows. Perfect scaling
// is flat lines; the paper's load imbalance (max/avg) stays below 1.3.
func Fig9(o Options, w io.Writer) error {
	header(w, fmt.Sprintf("Figure 9: node scaling, %d docs/node, %d queries", o.N, o.Queries))
	tb := newTable(w)
	tb.row("nodes", "init min/avg/max (ms)", "query min/avg/max (ms)", "imbalance (max/avg)")
	for _, nn := range fig9NodeCounts {
		clients := make([]transport.NodeClient, nn)
		initTimes := make([]time.Duration, nn)
		for i := 0; i < nn; i++ {
			cfg := node.Config{
				Params:    o.params(),
				Capacity:  o.N + 1,
				AutoMerge: true,
				Build:     core.Defaults(),
				Query:     core.QueryDefaults(),
			}
			cfg.Build.Workers = o.Workers
			cfg.Query.Workers = o.Workers
			cfg.Query.Radius = o.Radius
			n, err := node.New(cfg)
			if err != nil {
				return err
			}
			// Each node gets its own N documents (data per node constant).
			shard := Options{N: o.N, Dim: o.Dim, Seed: o.Seed + uint64(i)*101, Queries: o.Queries}
			docs := shard.twitterCorpus()
			vs := docsOf(docs)
			t0 := time.Now()
			ctx := context.Background()
			if _, err := n.Insert(ctx, vs); err != nil {
				return err
			}
			if err := n.MergeNow(ctx); err != nil {
				return err
			}
			initTimes[i] = time.Since(t0)
			clients[i] = transport.NewLocal(n)
		}
		ctx := context.Background()
		cl, err := cluster.New(ctx, clients, nn)
		if err != nil {
			return err
		}
		queries := o.queries(o.twitterCorpus())
		if _, _, err := cl.QueryBatchTimed(ctx, queries[:min(32, len(queries))], cluster.BatchOptions{}); err != nil {
			return err
		}
		_, report, err := cl.QueryBatchTimed(ctx, queries, cluster.BatchOptions{})
		if err != nil {
			return err
		}
		times := report.Times
		iMn, iMx, iAvg := minMaxAvg(initTimes)
		qMn, qMx, qAvg := minMaxAvg(times)
		imb := float64(qMx) / float64(qAvg)
		tb.row(nn,
			fmt.Sprintf("%s/%s/%s", ms(iMn), ms(iAvg), ms(iMx)),
			fmt.Sprintf("%s/%s/%s", ms(qMn), ms(qAvg), ms(qMx)),
			fmt.Sprintf("%.2f", imb))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: flat lines to 100 nodes; load imbalance < 1.3; communication < 1%%\n")
	fmt.Fprintf(w, "note: nodes here share one machine, so query times rise with node count as\n")
	fmt.Fprintf(w, "they contend for the same cores — per-node work, not communication, is the load measure\n")
	return nil
}
