package expr

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps every experiment under a second or two.
func tinyOptions() Options {
	return Options{
		N:       1500,
		Dim:     5000,
		K:       8,
		M:       6,
		Queries: 40,
		Radius:  0.9,
		Seed:    42,
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	markers := map[string][]string{
		"table2":    {"exhaustive", "inverted index", "plsh", "speedup"},
		"fig4":      {"no optimizations", "+2-level hashtable", "+shared tables", "+vectorization"},
		"fig5":      {"no optimizations", "+bitvector", "+optimized sparse DP", "+sw prefetch", "+large pages"},
		"fig6":      {"hashing", "step I1", "step I3", "bitvector (Q2)", "search (Q3)"},
		"fig7":      {"twitter", "wikipedia", "(12,21)", "(18,55)"},
		"fig8":      {"threads", "init", "query"},
		"fig9":      {"nodes", "imbalance"},
		"fig10":     {"batch size", "latency", "throughput"},
		"fig11":     {"100% static reference", "50% static", "90% static"},
		"streaming": {"insert per", "merge", "overhead"},
		"recall":    {"measured recall", "model-expected recall"},
	}
	o := tinyOptions()
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			opts := o
			if r.Name == "fig7" {
				// fig7 sweeps m up to 55 (L=1485 tables); shrink N further.
				opts.N = 600
				opts.Queries = 20
			}
			if r.Name == "fig9" {
				opts.N = 500
				opts.Queries = 20
			}
			var buf bytes.Buffer
			if err := r.Run(opts, &buf); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			out := buf.String()
			for _, m := range markers[r.Name] {
				if !strings.Contains(out, m) {
					t.Errorf("%s output missing %q:\n%s", r.Name, m, out)
				}
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table2"); !ok {
		t.Fatal("table2 not found")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("nonsense found")
	}
	if len(All()) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(All()))
	}
}

func TestMinMaxAvg(t *testing.T) {
	mn, mx, avg := minMaxAvg(nil)
	if mn != 0 || mx != 0 || avg != 0 {
		t.Fatal("empty minMaxAvg not zero")
	}
	mn, mx, avg = minMaxAvg([]time.Duration{3e6, 1e6, 2e6})
	if mn != 1e6 || mx != 3e6 || avg != 2e6 {
		t.Fatalf("minMaxAvg = %v %v %v", mn, mx, avg)
	}
}
