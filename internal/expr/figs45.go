package expr

import (
	"fmt"
	"io"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// Fig4 reproduces Figure 4: PLSH table-construction time as the §5.1
// optimizations are applied cumulatively. The paper reports a total 3.7×
// improvement from "no optimizations" (one-level 2^k-way partitioning per
// table) through 2-level hashing, shared first-level tables, and
// vectorized hashing. The shape to verify: each step helps, with the
// 2-level and sharing steps carrying most of the gain.
func Fig4(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 4: construction breakdown (N=%d, k=%d, m=%d, L=%d)", o.N, o.K, o.M, o.params().L()))

	steps := []struct {
		name string
		opts core.BuildOptions
	}{
		{"no optimizations", core.BuildOptions{}},
		{"+2-level hashtable", core.BuildOptions{TwoLevel: true}},
		{"+shared tables", core.BuildOptions{TwoLevel: true, ShareFirstLevel: true}},
		{"+vectorization", core.BuildOptions{TwoLevel: true, ShareFirstLevel: true, Vectorized: true}},
	}
	tb := newTable(w)
	tb.row("configuration", "time (ms)", "speedup vs no-opt")
	var base time.Duration
	for i, s := range steps {
		s.opts.Workers = o.Workers
		dur, err := timeBuild(fam, c.Mat, s.opts)
		if err != nil {
			return err
		}
		if i == 0 {
			base = dur
		}
		tb.row(s.name, ms(dur), fmt.Sprintf("%.2fx", float64(base)/float64(dur)))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: cumulative 3.7x from no-opt to +vectorization (16 threads, N=10.5M)\n")
	return nil
}

func timeBuild(fam *lshhash.Family, mat *sparse.Matrix, opts core.BuildOptions) (time.Duration, error) {
	// Best of 2 runs to damp allocator noise.
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 2; r++ {
		t0 := time.Now()
		if _, err := core.Build(fam, mat, opts); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

// Fig5 reproduces Figure 5: query time for the batch as the §5.2
// optimizations are applied cumulatively. The paper reports a total 8.3×
// improvement: set→bitvector dedup, optimized sparse dot products,
// software prefetching (here: sorted candidate extraction), and large
// pages (here: arena vs per-document document store).
func Fig5(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	queries := o.queries(c)
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	buildOpts := core.Defaults()
	buildOpts.Workers = o.Workers
	st, err := core.Build(fam, c.Mat, buildOpts)
	if err != nil {
		return err
	}
	scattered := sparse.NewScatteredStore(c.Mat)
	header(w, fmt.Sprintf("Figure 5: query breakdown (N=%d, %d queries, L=%d)", o.N, len(queries), o.params().L()))

	steps := []struct {
		name  string
		store sparse.Store
		opts  core.QueryOptions
	}{
		{"no optimizations", scattered, core.QueryOptions{}},
		{"+bitvector", scattered, core.QueryOptions{UseBitvector: true}},
		{"+optimized sparse DP", scattered, core.QueryOptions{UseBitvector: true, OptimizedDP: true}},
		{"+sw prefetch (extract)", scattered, core.QueryOptions{UseBitvector: true, OptimizedDP: true, ExtractCandidates: true}},
		{"+large pages (arena)", c.Mat, core.QueryOptions{UseBitvector: true, OptimizedDP: true, ExtractCandidates: true}},
	}
	tb := newTable(w)
	tb.row("configuration", "time (ms)", "speedup vs no-opt")
	var base time.Duration
	for i, s := range steps {
		s.opts.Radius = o.Radius
		s.opts.Workers = o.Workers
		eng := core.NewEngine(st, s.store, s.opts)
		eng.QueryBatch(queries[:min(32, len(queries))]) // warm up workspaces
		t0 := time.Now()
		eng.QueryBatch(queries)
		dur := time.Since(t0)
		if i == 0 {
			base = dur
		}
		tb.row(s.name, ms(dur), fmt.Sprintf("%.2fx", float64(base)/float64(dur)))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: cumulative 8.3x from no-opt to +large pages (1000 queries, N=10.5M)\n")
	return nil
}
