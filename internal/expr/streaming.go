package expr

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// Streaming reproduces the §8.6 measurements: the cost of inserting
// 100K-tweet chunks into the delta table (~400 ms in the paper), the worst-
// case merge (~15 s when static is nearly full), and the resulting share of
// wall time spent on maintenance at Twitter's 400M tweets/day with M=4
// insert nodes (~2% in the paper). Chunk and capacity sizes scale with -n.
func Streaming(o Options, w io.Writer) error {
	capacity := o.N
	chunk := max(1, capacity/100) // paper: 100K chunks into C=10M nodes
	deltaCap := capacity / 10     // η = 0.1
	header(w, fmt.Sprintf("Streaming (§8.6): C=%d, chunk=%d, η·C=%d", capacity, chunk, deltaCap))

	cfg := node.Config{
		Params:    o.params(),
		Capacity:  capacity + 1,
		AutoMerge: false,
		Build:     core.Defaults(),
		Query:     core.QueryDefaults(),
	}
	cfg.Build.Workers = o.Workers
	cfg.Query.Workers = o.Workers
	cfg.Query.Radius = o.Radius
	n, err := node.New(cfg)
	if err != nil {
		return err
	}

	// Fill static to 90% (the worst case of §6.3).
	ctx := context.Background()
	stream := corpus.NewStream(corpus.Twitter(0, o.Dim, o.Seed+77))
	fill := capacity * 9 / 10
	static := collectVecs(stream, fill)
	if _, err := n.Insert(ctx, static); err != nil {
		return err
	}
	if err := n.MergeNow(ctx); err != nil {
		return err
	}

	// Measure chunk inserts into the delta until it reaches η·C.
	var insertTotal time.Duration
	chunks := 0
	for n.DeltaLen()+chunk <= deltaCap {
		vs := collectVecs(stream, chunk)
		t0 := time.Now()
		if _, err := n.Insert(ctx, vs); err != nil {
			return err
		}
		insertTotal += time.Since(t0)
		chunks++
	}
	insertPerChunk := insertTotal / time.Duration(max(1, chunks))

	// Worst-case merge: static ~90%, delta full. The merge runs in the
	// background (MergeNow only waits for quiescence), so we sample query
	// latency *while it is in flight* — the number the snapshot-based
	// concurrency model exists to bound. The paper buffers queries for the
	// whole merge, so its during-merge p99 equals the merge duration; here
	// it should stay near the steady-state query time.
	queries := collectVecs(stream, 16)
	mergeErr := make(chan error, 1)
	t0 := time.Now()
	go func() { mergeErr <- n.MergeNow(ctx) }()
	var during []time.Duration
	for done := false; !done; {
		select {
		case err := <-mergeErr:
			if err != nil {
				return err
			}
			done = true
		default:
			q0 := time.Now()
			if _, err := n.Query(ctx, queries[len(during)%len(queries)]); err != nil {
				return err
			}
			during = append(during, time.Since(q0))
		}
	}
	mergeDur := time.Since(t0)
	sort.Slice(during, func(i, j int) bool { return during[i] < during[j] })
	pct := func(p float64) time.Duration {
		if len(during) == 0 {
			return 0
		}
		i := int(p * float64(len(during)-1))
		return during[i]
	}

	tb := newTable(w)
	tb.row("measurement", "value")
	tb.row(fmt.Sprintf("insert per %d-doc chunk (ms)", chunk), ms(insertPerChunk))
	tb.row("chunks absorbed before merge", chunks)
	tb.row("worst-case merge (ms)", ms(mergeDur))
	tb.row("queries answered during merge", len(during))
	tb.row("query p50 during merge (ms)", ms(pct(0.50)))
	tb.row("query p99 during merge (ms)", ms(pct(0.99)))
	tb.flush()

	// Overhead accounting at Twitter rates, scaled: the paper processes
	// 400M tweets/day over M=4 insert nodes; each node absorbs η·C tweets
	// between merges. Maintenance fraction = (insert+merge time per η·C
	// tweets) / (wall time for η·C tweets to arrive at the node).
	const tweetsPerDay = 400e6
	const insertNodes = 4.0
	perNodeRate := tweetsPerDay / 86400 / insertNodes // tweets/s at one node
	arrivalWindow := float64(deltaCap) / perNodeRate  // seconds between merges
	maintenance := insertTotal.Seconds() + mergeDur.Seconds()
	fmt.Fprintf(w, "at Twitter rates (400M/day, M=4): η·C=%d tweets arrive in %.0f s;\n", deltaCap, arrivalWindow)
	fmt.Fprintf(w, "maintenance (inserts+merge) = %.2f s → %.2f%% overhead\n",
		maintenance, 100*maintenance/arrivalWindow)
	fmt.Fprintf(w, "paper: 400 ms per 100K chunk, 15 s worst-case merge, ≈2%% total overhead\n")
	return nil
}

func collectVecs(s *corpus.Stream, n int) []sparse.Vector {
	out := make([]sparse.Vector, n)
	for i := range out {
		out[i] = s.NextVector()
	}
	return out
}
