package expr

import (
	"fmt"
	"io"
	"runtime"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/perfmodel"
	"plsh/internal/sparse"
)

// Fig6 reproduces Figure 6: estimated vs actual runtimes for PLSH creation
// (hashing, Steps I1–I3) and querying (Q2 bitvector, Q3 search). The paper
// finds the model within 15% on Twitter data (25% on Wikipedia). Estimates
// here are single-threaded totals, so the measured side uses 1 worker for
// construction and summed-across-workers phase times for queries.
func Fig6(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	queries := o.queries(c)
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 6: model vs measured (N=%d, k=%d, m=%d, %d queries)", o.N, o.K, o.M, len(queries)))

	wl := perfmodel.SampleWorkload(c.Mat, min(o.Queries, 1000), min(o.N, 1000), o.Seed+7)
	cc := perfmodel.DefaultCalibration(o.Dim, wl.MeanNNZ, o.N, o.K, o.M)
	cc.Seed = o.Seed + 9
	costs := perfmodel.CalibrateFor(cc)
	// Query-side constants are fitted from an instrumented reference run at
	// a deliberately different configuration (N/8 docs, k=12, m=8) and then
	// extrapolated to (k, m, N) here — the Slaney-style regression the
	// paper cites (§2).
	costs, err = costs.FitQuery(c.Mat, perfmodel.FitConfig{Seed: o.Seed + 11})
	if err != nil {
		return err
	}

	// Creation: model vs 1-thread measured phases. GC first so the
	// measured build does not absorb collection work from corpus
	// generation and calibration.
	runtime.GC()
	buildOpts := core.Defaults()
	buildOpts.Workers = 1
	_, tm, err := core.BuildTimed(fam, c.Mat, buildOpts)
	if err != nil {
		return err
	}
	be := costs.EstimateBuild(wl, o.K, o.M)
	tb := newTable(w)
	tb.row("creation phase", "estimated (ms)", "actual (ms)", "error")
	rows := []struct {
		name     string
		est, act float64
	}{
		{"hashing", be.HashNS, float64(tm.HashNS)},
		{"step I1", be.I1NS, float64(tm.I1NS)},
		{"step I2", be.I2NS, float64(tm.I2NS)},
		{"step I3", be.I3NS, float64(tm.I3NS)},
		{"total", be.TotalNS, float64(tm.HashNS + tm.I1NS + tm.I2NS + tm.I3NS)},
	}
	for _, r := range rows {
		tb.row(r.name, msf(r.est), msf(r.act), fmt.Sprintf("%.0f%%", perfmodel.RelativeError(r.est, r.act)*100))
	}
	tb.flush()

	// Query: model vs summed phase times on the real engine. One worker:
	// the model's constants are contention-free per-worker costs (the
	// paper likewise models per-core work and divides by core count).
	qOpts := core.QueryDefaults()
	qOpts.Radius = o.Radius
	qOpts.Workers = 1
	qOpts.CollectPhases = true
	eng := core.NewEngine(core.MustBuild(fam, c.Mat, core.Defaults()), c.Mat, qOpts)
	eng.QueryBatch(queries[:min(32, len(queries))]) // warm up
	runtime.GC()
	ph := bestPhases(eng, queries, 3)
	qe := costs.EstimateQuery(wl, o.K, o.M)
	nq := float64(len(queries))

	tb = newTable(w)
	tb.row("query phase", "estimated (ms)", "actual (ms)", "error")
	tb.row("bitvector (Q2)", msf(qe.Q2NS*nq), msf(float64(ph.Q2NS)), fmt.Sprintf("%.0f%%", perfmodel.RelativeError(qe.Q2NS*nq, float64(ph.Q2NS))*100))
	tb.row("search (Q3)", msf(qe.Q3NS*nq), msf(float64(ph.Q3NS)), fmt.Sprintf("%.0f%%", perfmodel.RelativeError(qe.Q3NS*nq, float64(ph.Q3NS))*100))
	tb.row("total", msf(qe.TotalNS*nq), msf(float64(ph.Q2NS+ph.Q3NS)), fmt.Sprintf("%.0f%%", perfmodel.RelativeError(qe.TotalNS*nq, float64(ph.Q2NS+ph.Q3NS))*100))
	tb.flush()
	fmt.Fprintf(w, "paper: model within 15%% (Twitter) / 25%% (Wikipedia)\n")
	return nil
}

// bestPhases measures the batch reps times and keeps the per-phase minima
// (GC and scheduler interference only ever inflate a run).
func bestPhases(eng *core.Engine, queries []sparse.Vector, reps int) core.PhaseTimes {
	var best core.PhaseTimes
	for r := 0; r < reps; r++ {
		eng.ResetPhases()
		eng.QueryBatch(queries)
		ph := eng.Phases()
		if r == 0 || ph.Q2NS < best.Q2NS {
			best.Q2NS = ph.Q2NS
		}
		if r == 0 || ph.Q3NS < best.Q3NS {
			best.Q3NS = ph.Q3NS
		}
	}
	return best
}

// fig7Points are the paper's Figure 7 parameter sweep.
var fig7Points = []struct{ K, M int }{{12, 21}, {14, 29}, {16, 40}, {18, 55}}

// Fig7 reproduces Figure 7: estimated vs actual query runtimes for the
// batch across (k, m) points, on both the Twitter-like and Wikipedia-like
// corpora. The shape to verify: the model tracks the measured times as
// parameters change (relative ordering preserved), on both datasets.
func Fig7(o Options, w io.Writer) error {
	type ds struct {
		name string
		col  *corpus.Collection
	}
	datasets := []ds{
		{"twitter", o.twitterCorpus()},
		{"wikipedia", o.wikipediaCorpus()},
	}
	header(w, fmt.Sprintf("Figure 7: model across (k,m) (N=%d, %d queries)", o.N, o.Queries))
	tb := newTable(w)
	tb.row("dataset", "(k,m)", "L", "estimated (ms)", "actual (ms)", "error")
	for _, d := range datasets {
		queries := d.col.SampleQueries(o.Queries, o.Seed+1)
		wl := perfmodel.SampleWorkload(d.col.Mat, min(o.Queries, 1000), min(o.N, 1000), o.Seed+7)
		for _, pt := range fig7Points {
			cc := perfmodel.DefaultCalibration(o.Dim, wl.MeanNNZ, o.N, pt.K, pt.M)
			cc.Seed = o.Seed + 9
			costs := perfmodel.CalibrateFor(cc)
			costs, err := costs.FitQuery(d.col.Mat, perfmodel.FitConfig{Seed: o.Seed + 11})
			if err != nil {
				return err
			}
			p := lshhash.Params{Dim: o.Dim, K: pt.K, M: pt.M, Seed: o.Seed}
			fam, err := lshhash.NewFamily(p)
			if err != nil {
				return err
			}
			buildOpts := core.Defaults()
			buildOpts.Workers = o.Workers
			st, err := core.Build(fam, d.col.Mat, buildOpts)
			if err != nil {
				return err
			}
			qOpts := core.QueryDefaults()
			qOpts.Radius = o.Radius
			qOpts.Workers = 1 // fitted constants are per-worker
			qOpts.CollectPhases = true
			eng := core.NewEngine(st, d.col.Mat, qOpts)
			eng.QueryBatch(queries[:min(32, len(queries))])
			runtime.GC()
			ph := bestPhases(eng, queries, 3)
			actual := float64(ph.Q2NS + ph.Q3NS) // summed CPU-phase time
			est := costs.EstimateQuery(wl, pt.K, pt.M).TotalNS * float64(len(queries))
			tb.row(d.name, fmt.Sprintf("(%d,%d)", pt.K, pt.M), p.L(),
				msf(est), msf(actual),
				fmt.Sprintf("%.0f%%", perfmodel.RelativeError(est, actual)*100))
		}
	}
	tb.flush()
	fmt.Fprintf(w, "paper: errors <15%% Twitter, <25%% Wikipedia; relative ordering across (k,m) preserved\n")
	return nil
}
