package expr

import (
	"fmt"
	"io"

	"plsh/internal/core"
	"plsh/internal/lshhash"
)

// Recall reproduces the §8.1 accuracy measurement: the fraction of true
// R-near neighbors (by exhaustive ground truth) that PLSH reports. The
// paper's parameters guarantee ≥1−δ = 90% and measure 92%. The analytic
// expectation Σ P′(d)/Σ 1 over the true neighbors' distances is printed
// alongside — measured recall should track it closely.
func Recall(o Options, w io.Writer) error {
	cfg := o
	c := cfg.twitterCorpus()
	queries := o.queries(c)
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	buildOpts := core.Defaults()
	buildOpts.Workers = o.Workers
	st, err := core.Build(fam, c.Mat, buildOpts)
	if err != nil {
		return err
	}
	qOpts := core.QueryDefaults()
	qOpts.Radius = o.Radius
	qOpts.Workers = o.Workers
	eng := core.NewEngine(st, c.Mat, qOpts)

	var truth, found, expected float64
	for _, q := range queries {
		exact := core.ExactNeighbors(c.Mat, q, o.Radius)
		got := map[uint32]bool{}
		for _, nb := range eng.Query(q) {
			got[nb.ID] = true
		}
		for _, nb := range exact {
			truth++
			expected += lshhash.RetrievalProb(nb.Dist, o.K, o.M)
			if got[nb.ID] {
				found++
			}
		}
	}
	header(w, fmt.Sprintf("Recall (§8.1): N=%d, %d queries, R=%.2f, k=%d, m=%d", o.N, len(queries), o.Radius, o.K, o.M))
	if truth == 0 {
		fmt.Fprintln(w, "no true neighbors in sample; increase N or near-duplicate rate")
		return nil
	}
	tb := newTable(w)
	tb.row("quantity", "value")
	tb.row("true R-near neighbor pairs", int(truth))
	tb.row("retrieved", int(found))
	tb.row("measured recall", fmt.Sprintf("%.1f%%", 100*found/truth))
	tb.row("model-expected recall", fmt.Sprintf("%.1f%%", 100*expected/truth))
	tb.row("boundary guarantee P'(R)", fmt.Sprintf("%.1f%%", 100*lshhash.RetrievalProb(o.Radius, o.K, o.M)))
	tb.flush()
	fmt.Fprintf(w, "paper: 92%% measured at (k=16, m=40), guarantee 90%%; most true neighbors sit\n")
	fmt.Fprintf(w, "well inside R, where P' exceeds its boundary value — hence measured > guarantee\n")
	return nil
}
