package expr

import (
	"fmt"
	"io"
	"time"

	"plsh/internal/baseline"
	"plsh/internal/core"
)

// Table2 reproduces Table 2: average distance computations per query and
// total runtime for exhaustive search, an inverted index, and PLSH, over
// the query set. The paper (10.5M tweets, 1000 queries, one node) reports:
//
//	Exhaustive search   10,579,994 comps   115.35 ms
//	Inverted index         847,028 comps   >21.81 ms
//	PLSH                   120,346 comps     1.42 ms
//
// — i.e. PLSH ≈15× faster than the inverted index's distance phase and
// ≈81× faster than exhaustive search. The shape to verify at reduced scale:
// the same ordering, with PLSH's candidate count a small fraction of N.
func Table2(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	queries := o.queries(c)
	header(w, fmt.Sprintf("Table 2: deterministic baselines vs PLSH (N=%d, %d queries)", o.N, len(queries)))

	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	buildOpts := core.Defaults()
	buildOpts.Workers = o.Workers
	st, err := core.Build(fam, c.Mat, buildOpts)
	if err != nil {
		return err
	}
	qOpts := core.QueryDefaults()
	qOpts.Radius = o.Radius
	qOpts.Workers = o.Workers
	eng := core.NewEngine(st, c.Mat, qOpts)

	ex := baseline.NewExhaustive(c.Mat, o.Radius, o.Workers)
	inv := baseline.NewInverted(c.Mat, o.Radius, o.Workers)

	t0 := time.Now()
	exRes := ex.QueryBatch(queries)
	exDur := time.Since(t0)

	t0 = time.Now()
	invRes := inv.QueryBatch(queries)
	invDur := time.Since(t0)

	t0 = time.Now()
	_, plshStats := eng.QueryBatchStats(queries)
	plshDur := time.Since(t0)

	var exC, invC, plshC float64
	for i := range queries {
		exC += float64(exRes[i].DistComps)
		invC += float64(invRes[i].DistComps)
		plshC += float64(plshStats[i].Unique)
	}
	nq := float64(len(queries))

	tb := newTable(w)
	tb.row("algorithm", "avg #distance comps", "total runtime (ms)", "ms/query")
	tb.row("exhaustive", fmt.Sprintf("%.1f", exC/nq), ms(exDur), fmt.Sprintf("%.3f", float64(exDur.Nanoseconds())/nq/1e6))
	tb.row("inverted index", fmt.Sprintf("%.1f", invC/nq), ms(invDur), fmt.Sprintf("%.3f", float64(invDur.Nanoseconds())/nq/1e6))
	tb.row("plsh", fmt.Sprintf("%.1f", plshC/nq), ms(plshDur), fmt.Sprintf("%.3f", float64(plshDur.Nanoseconds())/nq/1e6))
	tb.flush()

	fmt.Fprintf(w, "speedup vs exhaustive: %.1fx   vs inverted: %.1fx\n",
		float64(exDur)/float64(plshDur), float64(invDur)/float64(plshDur))
	fmt.Fprintf(w, "paper (N=10.5M): comps 10.58M / 847K / 120K; runtime 115.35 / >21.81 / 1.42 ms; 81x / 15x\n")
	return nil
}
