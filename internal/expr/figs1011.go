package expr

import (
	"context"
	"fmt"
	"io"
	"time"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// Fig10 reproduces Figure 10: latency vs throughput as the query batch
// size grows (the paper sweeps 10→1000 in steps of 10; throughput
// saturates around 30 queries/batch at ~700 q/s on their node). The shape
// to verify: throughput climbs steeply with small batches, then plateaus
// while latency keeps growing linearly.
func Fig10(o Options, w io.Writer) error {
	c := o.twitterCorpus()
	allQueries := c.SampleQueries(1000, o.Seed+1)
	fam, err := lshFamily(o)
	if err != nil {
		return err
	}
	buildOpts := core.Defaults()
	buildOpts.Workers = o.Workers
	st, err := core.Build(fam, c.Mat, buildOpts)
	if err != nil {
		return err
	}
	qOpts := core.QueryDefaults()
	qOpts.Radius = o.Radius
	qOpts.Workers = o.Workers
	eng := core.NewEngine(st, c.Mat, qOpts)
	eng.QueryBatch(allQueries[:64])

	header(w, fmt.Sprintf("Figure 10: latency vs throughput (N=%d)", o.N))
	tb := newTable(w)
	tb.row("batch size", "latency (ms)", "throughput (queries/s)")
	for _, bs := range []int{1, 5, 10, 20, 30, 50, 100, 200, 500, 1000} {
		// Repeat small batches for a stable measurement, rotating through
		// distinct queries so repetition does not turn into a cache-hot
		// replay of one query.
		reps := max(1, 512/bs)
		t0 := time.Now()
		for r := 0; r < reps; r++ {
			off := (r * bs) % (len(allQueries) - bs + 1)
			eng.QueryBatch(allQueries[off : off+bs])
		}
		total := time.Since(t0)
		latency := total / time.Duration(reps)
		throughput := float64(bs*reps) / total.Seconds()
		tb.row(bs, ms(latency), fmt.Sprintf("%.0f", throughput))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: throughput saturates ≈700 q/s beyond ~30 queries/batch; latency grows linearly\n")
	return nil
}

// Fig11 reproduces Figure 11: query time as data accumulates in the
// streaming delta table, at 50%% and 90%% static fill, against the
// 100%%-static-at-capacity line. The paper's bound: even in the worst case
// (static nearly full, delta at its η=10%% cap) queries stay within 1.5× of
// fully-static performance, and at 50%% static fill there is no penalty.
func Fig11(o Options, w io.Writer) error {
	capacity := o.N
	deltaCap := capacity / 10 // η = 0.1
	queries := o.queries(o.twitterCorpus())

	// Reference: 100% static at capacity.
	refDur, err := fig11Run(o, capacity, 0, queries)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 11: streaming query overhead (C=%d, η·C=%d, %d queries)", capacity, deltaCap, len(queries)))
	fmt.Fprintf(w, "100%% static reference: %s ms\n", ms(refDur))

	tb := newTable(w)
	tb.row("% of delta cap filled", "50% static (ms)", "vs ref", "90% static (ms)", "vs ref")
	for _, pct := range []int{0, 20, 40, 60, 80, 100} {
		deltaN := deltaCap * pct / 100
		d50, err := fig11Run(o, capacity/2, deltaN, queries)
		if err != nil {
			return err
		}
		d90, err := fig11Run(o, capacity*9/10, deltaN, queries)
		if err != nil {
			return err
		}
		tb.row(fmt.Sprintf("%d%%", pct),
			ms(d50), fmt.Sprintf("%.2fx", float64(d50)/float64(refDur)),
			ms(d90), fmt.Sprintf("%.2fx", float64(d90)/float64(refDur)))
	}
	tb.flush()
	fmt.Fprintf(w, "paper: ≤1.3x at 90%% static in the worst case (bound 1.5x); no penalty at 50%% static\n")
	return nil
}

// fig11Run builds a node with staticN docs merged into the static
// structure and deltaN docs held in the delta table, then times the batch.
func fig11Run(o Options, staticN, deltaN int, queries []sparse.Vector) (time.Duration, error) {
	cfg := node.Config{
		Params:    o.params(),
		Capacity:  staticN + deltaN + 1,
		AutoMerge: false,
		Build:     core.Defaults(),
		Query:     core.QueryDefaults(),
	}
	cfg.Build.Workers = o.Workers
	cfg.Query.Workers = o.Workers
	cfg.Query.Radius = o.Radius
	n, err := node.New(cfg)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	data := Options{N: staticN + deltaN + 1, Dim: o.Dim, Seed: o.Seed + 33}.twitterCorpus()
	vs := docsOf(data)
	if staticN > 0 {
		if _, err := n.Insert(ctx, vs[:staticN]); err != nil {
			return 0, err
		}
		if err := n.MergeNow(ctx); err != nil {
			return 0, err
		}
	}
	if deltaN > 0 {
		if _, err := n.Insert(ctx, vs[staticN:staticN+deltaN]); err != nil {
			return 0, err
		}
	}
	n.QueryBatch(ctx, queries[:min(32, len(queries))]) // warm up
	// Best of three: GC from the node builds otherwise lands in arbitrary
	// points of the sweep.
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		n.QueryBatch(ctx, queries)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}
