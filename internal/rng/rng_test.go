package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child must be deterministic given the parent's state.
	parent2 := New(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("split streams are not reproducible")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	out := make([]int, 257)
	s.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(17)
	z := NewZipf(s, 1.07, 1000)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Zipf skew: rank 0 must dominate rank 99 by roughly (100)^alpha.
	if counts[0] < 10*counts[99] {
		t.Errorf("insufficient skew: counts[0]=%d counts[99]=%d", counts[0], counts[99])
	}
	// Monotone-ish: head ranks ordered.
	if counts[0] < counts[1] || counts[1] < counts[4] {
		t.Errorf("head of Zipf not decreasing: %v", counts[:5])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		alpha float64
		n     int
	}{{1.0, 10}, {0.5, 10}, {1.1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(alpha=%v, n=%d) did not panic", tc.alpha, tc.n)
				}
			}()
			NewZipf(New(1), tc.alpha, tc.n)
		}()
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify with the schoolbook method on 32-bit halves.
		const m = 1<<32 - 1
		a0, a1 := a&m, a>>32
		b0, b1 := b&m, b>>32
		c0 := a0 * b0
		c1a := a1*b0 + c0>>32
		c1b := a0*b1 + c1a&m
		wantLo := c1b<<32 | c0&m
		wantHi := a1*b1 + c1a>>32 + c1b>>32
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
