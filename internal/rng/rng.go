// Package rng provides deterministic, splittable pseudo-random number
// generation for PLSH.
//
// Everything in PLSH that involves randomness — hyperplane generation,
// synthetic corpus generation, query sampling — must be reproducible from a
// single seed so that experiments can be re-run bit-identically and so that
// parallel workers can draw independent streams without locking. The
// SplitMix64 generator provides both: it is a tiny, fast, well-distributed
// generator (Steele, Lea & Flood, OOPSLA 2014) whose streams can be forked
// cheaply with Split.
package rng

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// Source is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New for an explicit seed.
type Source struct {
	state uint64
	// spare Gaussian value from Box-Muller, valid when hasSpare is true.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split forks an independent child stream. The child's sequence is
// uncorrelated with the parent's subsequent output, so each parallel worker
// can own a private Source derived from one master seed.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x6a09e667f3bcc909}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aHi * bLo
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Norm returns a standard normal variate (mean 0, stddev 1) using the polar
// Box-Muller transform. Gaussian hyperplane entries give the exact
// p(t) = 1 − t/π collision probability of the Charikar angular LSH family.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.hasSpare = true
		return u * f
	}
}

// Perm fills out with a uniform random permutation of 0..len(out)-1
// (Fisher-Yates).
func (s *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Zipf draws from a Zipf–Mandelbrot-like distribution over [0, n) with
// exponent alpha > 1, using inversion by rejection (Devroye). Word
// frequencies in natural language follow a Zipf law; the synthetic corpus
// generator uses this to reproduce the skew that makes some hyperplane rows
// hot in cache (§5.1.1 of the paper).
type Zipf struct {
	src              *Source
	n                float64
	alpha            float64
	oneMinusAlpha    float64
	invOneMinusAlpha float64
	hIntegralX1      float64
	hIntegralN       float64
	sCut             float64
}

// NewZipf returns a Zipf sampler over {0, 1, ..., n-1} with exponent alpha.
// It panics if n <= 0 or alpha <= 1.
func NewZipf(src *Source, alpha float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if alpha <= 1 {
		panic("rng: NewZipf requires alpha > 1")
	}
	z := &Zipf{src: src, n: float64(n), alpha: alpha}
	z.oneMinusAlpha = 1 - alpha
	z.invOneMinusAlpha = 1 / z.oneMinusAlpha
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.sCut = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.alpha * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusAlpha*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusAlpha
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a series fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next draws the next Zipf variate in [0, n).
func (z *Zipf) Next() int {
	// Rejection-inversion sampling (Hörmann & Derflinger 1996), as used by
	// the Apache Commons RejectionInversionZipfSampler.
	for {
		u := z.hIntegralN + z.src.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= z.sCut || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k) - 1
		}
	}
}
