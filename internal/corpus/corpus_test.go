package corpus

import (
	"math"
	"testing"

	"plsh/internal/sparse"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Twitter(500, 2000, 42)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Docs) != len(b.Docs) {
		t.Fatal("doc counts differ across identical runs")
	}
	for i := range a.Docs {
		if len(a.Docs[i]) != len(b.Docs[i]) {
			t.Fatalf("doc %d differs", i)
		}
		for j := range a.Docs[i] {
			if a.Docs[i][j] != b.Docs[i][j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Twitter(2000, 5000, 1)
	c := Generate(cfg)
	if c.Mat.Rows() != 2000 || len(c.Docs) != 2000 {
		t.Fatalf("rows = %d", c.Mat.Rows())
	}
	// Mean NNZ should be near MeanLen (slightly below: duplicate words and
	// zero-IDF words collapse).
	mean := float64(c.Mat.NNZ()) / float64(c.Mat.Rows())
	if mean < 4 || mean > 9 {
		t.Fatalf("mean NNZ = %v, want near 7.2", mean)
	}
	// All rows unit-normalized.
	for i := 0; i < 50; i++ {
		if n := c.Mat.Row(i).Norm(); math.Abs(n-1) > 1e-5 {
			t.Fatalf("row %d norm = %v", i, n)
		}
	}
}

func TestWikipediaLonger(t *testing.T) {
	tw := Generate(Twitter(300, 5000, 7))
	wp := Generate(Wikipedia(300, 5000, 7))
	twMean := float64(tw.Mat.NNZ()) / float64(tw.Mat.Rows())
	wpMean := float64(wp.Mat.NNZ()) / float64(wp.Mat.Rows())
	if wpMean < 3*twMean {
		t.Fatalf("wikipedia docs not longer: tw=%v wp=%v", twMean, wpMean)
	}
}

func TestZipfSkewInCorpus(t *testing.T) {
	c := Generate(Twitter(5000, 3000, 3))
	counts := make(map[uint32]int)
	for _, d := range c.Docs {
		for _, w := range d {
			counts[w]++
		}
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	// The hottest word should carry well over 1% of all tokens under
	// Zipf(1.07); a uniform distribution would give ~0.03%.
	if float64(max)/float64(total) < 0.01 {
		t.Fatalf("vocabulary not skewed: max share = %v", float64(max)/float64(total))
	}
	// And far fewer distinct words than tokens.
	if len(counts) >= total {
		t.Fatal("no word repetition at all")
	}
}

func TestNearDuplicatesExist(t *testing.T) {
	// With NearDupRate set, a noticeable fraction of documents must have a
	// close neighbor (angular distance below ~0.9 as in the paper).
	c := Generate(Config{
		Docs: 800, VocabSize: 5000, ZipfAlpha: 1.07, MeanLen: 7.2,
		NearDupRate: 0.3, NearDupEdits: 1, Seed: 11,
	})
	near := 0
	const R = 0.9
	for i := 100; i < 400; i++ {
		qi := c.Mat.Row(i)
		for j := 0; j < i; j++ {
			d := sparse.Dot(qi, c.Mat.Row(j))
			if sparse.AngularDistance(d) <= R && i != j {
				near++
				break
			}
		}
	}
	if near < 30 {
		t.Fatalf("only %d/300 docs have an R-near neighbor; near-dup planting failed", near)
	}
}

func TestNoNearDupWhenRateZero(t *testing.T) {
	c := Generate(Config{
		Docs: 300, VocabSize: 50000, ZipfAlpha: 1.3, MeanLen: 7,
		NearDupRate: 0, NearDupEdits: 0, Seed: 13,
	})
	// With a huge sparse vocabulary and no planted dups, random short docs
	// rarely collide; sanity-check the generator doesn't secretly clone.
	same := 0
	for i := 1; i < 100; i++ {
		if sparse.Dot(c.Mat.Row(i), c.Mat.Row(i-1)) > 0.99 {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d adjacent near-identical docs with NearDupRate=0", same)
	}
}

func TestSampleQueries(t *testing.T) {
	c := Generate(Twitter(400, 2000, 5))
	qs := c.SampleQueries(50, 99)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.NNZ() == 0 {
			t.Fatal("zero-length query sampled")
		}
		if math.Abs(q.Norm()-1) > 1e-5 {
			t.Fatalf("query norm %v", q.Norm())
		}
	}
	// Deterministic in seed.
	qs2 := c.SampleQueries(50, 99)
	for i := range qs {
		if qs[i].NNZ() != qs2[i].NNZ() {
			t.Fatal("SampleQueries not deterministic")
		}
	}
}

func TestStreamEncodeConsistentWithIDF(t *testing.T) {
	s := NewStream(Twitter(0, 1000, 21))
	var docs [][]uint32
	for i := 0; i < 200; i++ {
		docs = append(docs, s.NextTokens())
	}
	doc := docs[199]
	v, ok := s.Encode(doc)
	if !ok {
		t.Skip("sampled doc encoded to zero; acceptable")
	}
	if math.Abs(v.Norm()-1) > 1e-5 {
		t.Fatalf("norm %v", v.Norm())
	}
	// Values must be proportional to current IDF.
	if v.NNZ() >= 2 {
		i0, i1 := v.Idx[0], v.Idx[1]
		r1 := float64(v.Val[0]) / float64(v.Val[1])
		r2 := s.IDF(i0) / s.IDF(i1)
		if math.Abs(r1-r2) > 1e-4 {
			t.Fatalf("value ratio %v != IDF ratio %v", r1, r2)
		}
	}
}

func TestStreamPanics(t *testing.T) {
	for _, cfg := range []Config{
		{VocabSize: 1, MeanLen: 5, ZipfAlpha: 1.1},
		{VocabSize: 100, MeanLen: 0, ZipfAlpha: 1.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStream(%+v) did not panic", cfg)
				}
			}()
			NewStream(cfg)
		}()
	}
}

func TestNextVectorNeverZero(t *testing.T) {
	s := NewStream(Twitter(0, 500, 31))
	for i := 0; i < 500; i++ {
		if s.NextVector().NNZ() == 0 {
			t.Fatal("NextVector returned zero vector")
		}
	}
}
