// Package corpus generates synthetic document collections that stand in for
// the paper's proprietary datasets.
//
// The paper evaluates on 1.05 billion real tweets (≈7.2 words per tweet
// after cleaning, 500,000-word vocabulary, Zipf-distributed words) and, for
// model validation, 8 million Wikipedia abstracts. Neither dataset is
// available, so this package synthesizes collections that match the three
// properties LSH performance actually depends on:
//
//  1. sparsity — document length distribution (NNZ per row);
//  2. skew — Zipf word-frequency distribution, which controls hyperplane
//     cache behaviour (§5.1.1) and inverted-index candidate counts (§8.1);
//  3. distance profile — a tunable fraction of near-duplicate documents
//     ("retweets") so that R-near neighbors exist and recall can be
//     measured against ground truth.
//
// All generation is deterministic given the seed.
package corpus

import (
	"math"

	"plsh/internal/rng"
	"plsh/internal/sparse"
)

// Config parameterizes a synthetic collection.
type Config struct {
	// Docs is the number of documents to generate.
	Docs int
	// VocabSize is the dimensionality D of the vector space.
	VocabSize int
	// ZipfAlpha is the word-frequency skew exponent (must be > 1).
	ZipfAlpha float64
	// MeanLen is the mean number of word draws per document.
	MeanLen float64
	// NearDupRate is the probability that a document is generated as a
	// near-duplicate of an earlier one rather than fresh.
	NearDupRate float64
	// NearDupEdits is how many word substitutions a near-duplicate applies.
	NearDupEdits int
	// Seed makes generation deterministic.
	Seed uint64
}

// Twitter returns the tweet-like preset: short documents over a skewed
// vocabulary with a retweet-style near-duplicate fraction.
func Twitter(docs, vocabSize int, seed uint64) Config {
	return Config{
		Docs:         docs,
		VocabSize:    vocabSize,
		ZipfAlpha:    1.07,
		MeanLen:      7.2,
		NearDupRate:  0.12,
		NearDupEdits: 1,
		Seed:         seed,
	}
}

// Wikipedia returns the abstract-like preset used by the paper for model
// validation: longer documents, flatter skew.
func Wikipedia(docs, vocabSize int, seed uint64) Config {
	return Config{
		Docs:         docs,
		VocabSize:    vocabSize,
		ZipfAlpha:    1.15,
		MeanLen:      48,
		NearDupRate:  0.04,
		NearDupEdits: 4,
		Seed:         seed,
	}
}

// Collection is a generated corpus: token ID lists, the encoded unit
// vectors in one CSR arena, and the DF table used for IDF weighting.
type Collection struct {
	Cfg  Config
	Docs [][]uint32     // raw word-ID lists (documents that encoded to zero are dropped)
	Mat  *sparse.Matrix // row i encodes Docs[i]
	df   []int32
}

// Generate builds a Collection from cfg.
func Generate(cfg Config) *Collection {
	g := NewStream(cfg)
	c := &Collection{Cfg: cfg, Mat: sparse.NewMatrix(cfg.VocabSize, cfg.Docs, int(float64(cfg.Docs)*cfg.MeanLen))}
	for len(c.Docs) < cfg.Docs {
		doc := g.NextTokens()
		vec, ok := g.Encode(doc)
		if !ok {
			continue
		}
		c.Docs = append(c.Docs, doc)
		c.Mat.AppendRow(vec)
	}
	c.df = g.df
	return c
}

// SampleQueries returns n encoded queries drawn uniformly from the
// collection (the paper queries with "a random subset of 1000 tweets from
// the database", §8) using an independent stream derived from seed.
func (c *Collection) SampleQueries(n int, seed uint64) []sparse.Vector {
	src := rng.New(seed)
	out := make([]sparse.Vector, 0, n)
	for len(out) < n {
		i := src.Intn(len(c.Docs))
		out = append(out, c.Mat.Row(i).Clone())
	}
	return out
}

// Stream generates documents one at a time, maintaining the document-
// frequency table incrementally. It backs both batch Generate and the
// streaming examples/benchmarks, where tweets arrive continuously (§6).
type Stream struct {
	cfg    Config
	src    *rng.Source
	zipf   *rng.Zipf
	perm   []uint32 // random relabeling of Zipf ranks to word IDs
	df     []int32
	nDocs  int
	recent [][]uint32 // reservoir of recent docs for near-dup generation
}

// NewStream returns a document stream for cfg.
func NewStream(cfg Config) *Stream {
	if cfg.VocabSize <= 1 {
		panic("corpus: VocabSize must be > 1")
	}
	if cfg.MeanLen <= 0 {
		panic("corpus: MeanLen must be > 0")
	}
	src := rng.New(cfg.Seed)
	s := &Stream{
		cfg:  cfg,
		src:  src,
		zipf: rng.NewZipf(src.Split(), cfg.ZipfAlpha, cfg.VocabSize),
		df:   make([]int32, cfg.VocabSize),
	}
	// Scatter Zipf ranks over word IDs so that "hot" words are not the
	// numerically smallest IDs; real vocabularies are not frequency-sorted.
	perm := make([]int, cfg.VocabSize)
	src.Split().Perm(perm)
	s.perm = make([]uint32, cfg.VocabSize)
	for i, p := range perm {
		s.perm[i] = uint32(p)
	}
	return s
}

// docLen draws a document length: 1 + Poisson(MeanLen−1), approximated by
// inversion for small means and a normal approximation for large ones.
func (s *Stream) docLen() int {
	lambda := s.cfg.MeanLen - 1
	if lambda <= 0 {
		return 1
	}
	if lambda < 30 {
		// Knuth inversion.
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= s.src.Float64()
			if p <= l {
				return 1 + k
			}
			k++
		}
	}
	k := int(lambda + math.Sqrt(lambda)*s.src.Norm() + 0.5)
	if k < 0 {
		k = 0
	}
	return 1 + k
}

// NextTokens generates the next document's word-ID list.
func (s *Stream) NextTokens() []uint32 {
	s.nDocs++
	var doc []uint32
	if len(s.recent) > 16 && s.src.Float64() < s.cfg.NearDupRate {
		// Near-duplicate of a random recent document with a few edits:
		// the "retweet" path that plants genuine R-near neighbors.
		base := s.recent[s.src.Intn(len(s.recent))]
		doc = append([]uint32(nil), base...)
		for e := 0; e < s.cfg.NearDupEdits && len(doc) > 0; e++ {
			doc[s.src.Intn(len(doc))] = s.draw()
		}
	} else {
		n := s.docLen()
		doc = make([]uint32, n)
		for i := range doc {
			doc[i] = s.draw()
		}
	}
	s.observe(doc)
	if len(s.recent) < 4096 {
		s.recent = append(s.recent, doc)
	} else {
		s.recent[s.src.Intn(len(s.recent))] = doc
	}
	return doc
}

func (s *Stream) draw() uint32 { return s.perm[s.zipf.Next()] }

func (s *Stream) observe(doc []uint32) {
	// Count DF: each distinct word once per doc. Docs are short; the O(n²)
	// distinctness check beats a map allocation for n ≈ 7.
	for i, w := range doc {
		dup := false
		for _, prev := range doc[:i] {
			if prev == w {
				dup = true
				break
			}
		}
		if !dup {
			s.df[w]++
		}
	}
}

// IDF returns the current smoothed inverse document frequency of word w:
// log((1+docs)/(1+df)) + 1, matching vocab.Vocabulary.IDF.
func (s *Stream) IDF(w uint32) float64 {
	return math.Log(float64(1+s.nDocs)/float64(1+s.df[w])) + 1
}

// Encode converts a word-ID document to a unit-normalized IDF-weighted
// sparse vector. ok is false if the document encodes to the zero vector.
func (s *Stream) Encode(doc []uint32) (sparse.Vector, bool) {
	var idx []uint32
	var val []float32
	for i, w := range doc {
		dup := false
		for _, prev := range doc[:i] {
			if prev == w {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		f := s.IDF(w)
		if f <= 0 {
			continue
		}
		idx = append(idx, w)
		val = append(val, float32(f))
	}
	v, err := sparse.NewVector(idx, val)
	if err != nil || !v.Normalize() {
		return sparse.Vector{}, false
	}
	return v, true
}

// NextVector generates and encodes the next document, skipping any that
// encode to zero.
func (s *Stream) NextVector() sparse.Vector {
	for {
		if v, ok := s.Encode(s.NextTokens()); ok {
			return v
		}
	}
}
