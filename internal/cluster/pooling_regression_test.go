package cluster

import (
	"testing"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
)

// TestMergeStateReleaseDropsReferences pins the fix plsh-vet's poolzero
// check first caught: mergeState went back to mergePool with its input
// lists, cursor arena, and heap still pointing into per-group answer
// buffers, pinning released node answers across unrelated requests.
// release must drop every such reference — over the slices' full
// capacity, because per-query truncate-and-refill and heap.Pop both
// leave live pointers beyond the final lengths.
func TestMergeStateReleaseDropsReferences(t *testing.T) {
	ms := &mergeState{}
	ms.lists = append(ms.lists,
		[]core.Neighbor{{ID: 1, Dist: 0.1}, {ID: 3, Dist: 0.3}},
		[]core.Neighbor{{ID: 2, Dist: 0.2}},
	)
	ms.groups = append(ms.groups, 0, 1)
	out := ms.mergeAppend(nil, 3)
	if len(out) != 3 {
		t.Fatalf("merge returned %d neighbors, want 3", len(out))
	}
	nl, nc, nh := cap(ms.lists), cap(ms.cursors), cap(ms.h)
	if nc == 0 || nh == 0 {
		t.Fatal("merge built no cursors or heap; the test lost its subject")
	}
	ms.release()
	if len(ms.lists) != 0 || len(ms.groups) != 0 || len(ms.cursors) != 0 || len(ms.h) != 0 {
		t.Errorf("release left lengths (%d,%d,%d,%d), want all 0",
			len(ms.lists), len(ms.groups), len(ms.cursors), len(ms.h))
	}
	for i, l := range ms.lists[:nl] {
		if l != nil {
			t.Errorf("lists[%d] still references an answer buffer after release", i)
		}
	}
	for i, c := range ms.cursors[:nc] {
		if c.list != nil {
			t.Errorf("cursors[%d].list still references an answer buffer after release", i)
		}
	}
	for i, p := range ms.h[:nh] {
		if p != nil {
			t.Errorf("h[%d] still points into the cursor arena after release", i)
		}
	}
}

// TestQueryCopiesOutOfPooledBatch pins the fix releasecheck first
// caught: Query returned res[0] — an alias into the pooled batch — so
// it could neither release the batch (the alias would be recycled under
// the caller) nor recycle the buffers. Query now copies the one answer
// out and releases; the copy must stay intact while later broadcasts
// reuse and overwrite the recycled buffers.
func TestQueryCopiesOutOfPooledBatch(t *testing.T) {
	nodes := testNodes(t, 2, 200)
	c, err := New(bg, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(100, 3)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(bg, vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("doc 0 not found by its own query")
	}
	snapshot := append([]Neighbor(nil), res...)
	// Hammer the recycled batch buffers: each broadcast gets the pooled
	// storage back, and scribbling over its answers before releasing
	// would show through any alias Query had kept.
	for i := 0; i < 8; i++ {
		batch, _, err := c.Search(bg, []sparse.Vector{vs[1], vs[2]}, node.SearchParams{}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for qi := range batch {
			for j := range batch[qi] {
				batch[qi][j] = Neighbor{Node: -1, ID: 0xdead, Dist: -1}
			}
		}
		c.ReleaseResults(batch)
	}
	for i := range res {
		if res[i] != snapshot[i] {
			t.Fatalf("Query answer %d mutated by later broadcasts: result aliases the pooled batch", i)
		}
	}
}
