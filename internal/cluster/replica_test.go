package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// TestNewReplicatedValidation pins the placement contract: endpoints must
// divide evenly into groups, r ≤ 0 means single-copy, and the insert
// window is clamped in group units.
func TestNewReplicatedValidation(t *testing.T) {
	if _, err := NewReplicated(bg, testNodes(t, 5, 100), 2, 2); err == nil {
		t.Fatal("5 nodes accepted for groups of 2 replicas")
	}
	c, err := NewReplicated(bg, testNodes(t, 4, 100), 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Replicas() != 1 || c.NumGroups() != 4 || c.m != 4 {
		t.Fatalf("r=0 cluster: replicas=%d groups=%d window=%d", c.Replicas(), c.NumGroups(), c.m)
	}
	c, err = NewReplicated(bg, testNodes(t, 6, 100), 99, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Replicas() != 3 || c.NumGroups() != 2 || c.NumNodes() != 6 || c.m != 2 {
		t.Fatalf("replicated cluster shape: replicas=%d groups=%d nodes=%d window=%d",
			c.Replicas(), c.NumGroups(), c.NumNodes(), c.m)
	}
}

// TestReplicatedInsertMirrors: with R=2, every member of a group holds an
// identical copy of the group's documents, global IDs are group-indexed,
// and every document is findable — from either replica, since the
// preferred member rotates across searches.
func TestReplicatedInsertMirrors(t *testing.T) {
	nodes := testNodes(t, 4, 1000) // 2 groups × 2 replicas
	c, err := NewReplicated(bg, nodes, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(300, 41)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for g := 0; g < 2; g++ {
		a := stats[2*g].StaticLen + stats[2*g].DeltaLen
		b := stats[2*g+1].StaticLen + stats[2*g+1].DeltaLen
		if a != b {
			t.Fatalf("group %d mirrors diverge: %d vs %d docs", g, a, b)
		}
		total += a
	}
	if total != 300 {
		t.Fatalf("unique docs across groups = %d, want 300", total)
	}
	for i, id := range ids {
		if g, _ := SplitGlobalID(id); g < 0 || g >= 2 {
			t.Fatalf("doc %d assigned to nonexistent group %d", i, g)
		}
	}
	// Two passes so the rotating preference makes both replicas of each
	// group serve at least once.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(vs); i += 37 {
			res, err := c.Query(bg, vs[i])
			if err != nil {
				t.Fatal(err)
			}
			if !findGlobal(res, ids[i]) {
				t.Fatalf("pass %d: doc %d (gid %d) not found", pass, i, ids[i])
			}
		}
	}
}

// TestReplicatedSearchFailsOver: a dead replica is masked by its sibling —
// the search completes, the report stays Complete, and the failover is
// visible in the attempt trace.
func TestReplicatedSearchFailsOver(t *testing.T) {
	down := &fakeNode{capacity: 100, err: errors.New("replica down")}
	up := &fakeNode{capacity: 100}
	c, err := NewReplicated(bg, []transport.NodeClient{down, up}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs := testDocs(3, 43)
	failovers := 0
	for i := 0; i < 2; i++ { // rotation covers both preference orders
		res, report, err := c.Search(bg, qs, node.SearchParams{}, BatchOptions{Trace: true})
		if err != nil {
			t.Fatalf("search %d with one dead replica: %v", i, err)
		}
		if len(res) != 3 {
			t.Fatalf("search %d: %d answer lists", i, len(res))
		}
		if !report.Complete() || len(report.Stragglers()) != 0 {
			t.Fatalf("search %d: report not Complete with a live sibling: %+v", i, report)
		}
		if len(report.Times) != 1 || len(report.Errs) != 1 {
			t.Fatalf("search %d: report sized per group: %+v", i, report)
		}
		winner := -1
		for _, a := range report.Attempts {
			if a.Won {
				if a.Err != nil {
					t.Fatalf("winning attempt carries error %v", a.Err)
				}
				winner = a.Node
			}
		}
		if winner != 1 {
			t.Fatalf("search %d: winner node = %d, want 1 (the live replica)", i, winner)
		}
		failovers += report.Failovers()
	}
	// Exactly one of the two searches preferred the dead replica first.
	if failovers != 1 {
		t.Fatalf("failovers across both preference orders = %d, want 1", failovers)
	}
}

// TestReplicatedSearchWholeGroupDown: when every replica of a group is
// dead the group fails as a unit — all-or-nothing fails the call, and
// AllowPartial degrades to the documented partial answer with that group
// named in the report.
func TestReplicatedSearchWholeGroupDown(t *testing.T) {
	dead := errors.New("node down")
	nodes := []transport.NodeClient{
		&fakeNode{capacity: 100, err: dead}, // group 0
		&fakeNode{capacity: 100, err: dead},
		&fakeNode{capacity: 100}, // group 1
		&fakeNode{capacity: 100},
	}
	c, err := NewReplicated(bg, nodes, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs := testDocs(2, 45)

	// All-or-nothing: the dead group fails the whole batch, blamed on it.
	_, report, err := c.Search(bg, qs, node.SearchParams{}, BatchOptions{Trace: true})
	if err == nil {
		t.Fatal("all-or-nothing broadcast succeeded with a whole group dead")
	}
	if !errors.Is(err, dead) {
		t.Fatalf("batch error does not carry the group failure: %v", err)
	}

	// Partial: group 1 answers; group 0 is the straggler, having tried
	// both replicas.
	res, report, err := c.Search(bg, qs, node.SearchParams{}, BatchOptions{Partial: true, Trace: true})
	if err != nil {
		t.Fatalf("partial broadcast failed: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("%d answer lists", len(res))
	}
	if report.Complete() {
		t.Fatal("report claims completeness with a dead group")
	}
	if s := report.Stragglers(); len(s) != 1 || s[0] != 0 {
		t.Fatalf("stragglers = %v, want [0] (the dead group)", s)
	}
	tried := 0
	for _, a := range report.Attempts {
		if a.Group == 0 {
			tried++
			if a.Won {
				t.Fatal("dead group recorded a winning attempt")
			}
		}
	}
	if tried != 2 {
		t.Fatalf("dead group tried %d replicas, want 2 (both before giving up)", tried)
	}
}

// TestHedgeRacesSlowReplica: a merely-slow replica is raced after the
// hedge delay and the sibling's answer wins, long before the straggler
// would have answered; the rescue is visible in HedgesWon.
func TestHedgeRacesSlowReplica(t *testing.T) {
	slow := &fakeNode{capacity: 100, delay: time.Hour}
	fast := &fakeNode{capacity: 100}
	c, err := NewReplicated(bg, []transport.NodeClient{slow, fast}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs := testDocs(2, 47)
	hedgesWon := 0
	t0 := time.Now()
	for i := 0; i < 2; i++ { // rotation: one search prefers the slow replica
		res, report, err := c.Search(bg, qs, node.SearchParams{}, BatchOptions{Hedge: 10 * time.Millisecond, Trace: true})
		if err != nil {
			t.Fatalf("hedged search %d: %v", i, err)
		}
		if len(res) != 2 || !report.Complete() {
			t.Fatalf("hedged search %d: res=%d report=%+v", i, len(res), report)
		}
		hedgesWon += report.HedgesWon()
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("hedged searches took %v; the hedge never fired", elapsed)
	}
	if hedgesWon != 1 {
		t.Fatalf("hedges won across both preference orders = %d, want 1", hedgesWon)
	}

	// Without replicas to race, the hedge is inert and the slow node
	// stalls the search until its deadline.
	single, err := NewReplicated(bg, []transport.NodeClient{&fakeNode{capacity: 100, delay: time.Hour}}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	if _, _, err := single.Search(ctx, qs, node.SearchParams{}, BatchOptions{Hedge: time.Millisecond}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("single-copy hedge: %v, want DeadlineExceeded", err)
	}
}

// TestInsertErrorReportsPlaced pins the mid-batch contract: a per-group
// failure partway through an Insert returns an *InsertError that says
// exactly which documents were durably assigned global IDs before the
// error — the caller is never left guessing what the cluster holds.
func TestInsertErrorReportsPlaced(t *testing.T) {
	cause := errors.New("node down mid-batch")
	real := testNodes(t, 1, 1000)[0]
	nodes := []transport.NodeClient{real, &fakeNode{capacity: 1000, err: cause}}
	c, err := New(bg, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(100, 49)
	ids, err := c.Insert(bg, vs)
	if err == nil {
		t.Fatal("insert succeeded with a dead window node")
	}
	if ids != nil {
		t.Fatal("failed insert returned ids alongside the error")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("insert error does not unwrap to the node failure: %v", err)
	}
	var ie *InsertError
	if !errors.As(err, &ie) {
		t.Fatalf("insert error is not an *InsertError: %v", err)
	}
	if len(ie.IDs) != 100 || len(ie.Placed) != 100 {
		t.Fatalf("InsertError sized %d/%d, want 100/100", len(ie.IDs), len(ie.Placed))
	}
	// The even split routed the first half to the healthy node 0 before
	// the second share hit the dead node.
	for i := 0; i < 50; i++ {
		if !ie.Placed[i] {
			t.Fatalf("doc %d reported unplaced despite landing before the failure", i)
		}
		if g, _ := SplitGlobalID(ie.IDs[i]); g != 0 {
			t.Fatalf("doc %d placed on group %d, want 0", i, g)
		}
	}
	for i := 50; i < 100; i++ {
		if ie.Placed[i] {
			t.Fatalf("doc %d reported placed despite the failure", i)
		}
	}
	// The placed documents are really in the cluster and findable (the
	// dead node is still dead, so the verifying search must be partial).
	res, _, err := c.Search(bg, []sparse.Vector{vs[0]}, node.SearchParams{}, BatchOptions{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !findGlobal(res[0], ie.IDs[0]) {
		t.Fatal("doc reported placed is not findable")
	}
	// A canceled context reports the same way (Unwrap → context.Canceled).
	canceled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := c.Insert(canceled, vs); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled insert: %v", err)
	}
}

// TestPartialFullGroupIsDriftNotRetry: one member reporting ErrFull while
// its mirror accepts the batch is replica drift, not a full group —
// Insert must fail loudly instead of resyncing and re-sending the batch
// into the mirrors that already accepted it (which would duplicate every
// document).
func TestPartialFullGroupIsDriftNotRetry(t *testing.T) {
	okMember := &fakeNode{capacity: 100}
	fullMember := &fakeNode{capacity: 100, err: node.ErrFull}
	c, err := NewReplicated(bg, []transport.NodeClient{okMember, fullMember}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Insert(bg, testDocs(10, 61))
	if err == nil {
		t.Fatal("insert succeeded with a drifted (partially full) group")
	}
	// The ErrFull sentinel must NOT surface: Insert's resync-and-retry
	// path keys on it, and retrying would duplicate the batch on the
	// member that accepted it.
	if errors.Is(err, node.ErrFull) {
		t.Fatalf("partial-full drift surfaced as group-full: %v", err)
	}
	var ie *InsertError
	if !errors.As(err, &ie) {
		t.Fatalf("drifted insert did not report via InsertError: %v", err)
	}
	for i, p := range ie.Placed {
		if p {
			t.Fatalf("doc %d reported durably placed despite the drifted group", i)
		}
	}
}

// TestReplicatedDeleteReachesAllMirrors: a tombstone lands on every
// member of the group, so the document stays gone no matter which replica
// serves the next search; never-inserted IDs stay ErrNotFound.
func TestReplicatedDeleteReachesAllMirrors(t *testing.T) {
	c, err := NewReplicated(bg, testNodes(t, 2, 500), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(100, 51)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(bg, ids[7]); err != nil {
		t.Fatal(err)
	}
	// Both passes: the rotating preference makes each replica serve once.
	for pass := 0; pass < 2; pass++ {
		res, err := c.Query(bg, vs[7])
		if err != nil {
			t.Fatal(err)
		}
		if findGlobal(res, ids[7]) {
			t.Fatalf("pass %d: deleted doc served by a mirror", pass)
		}
	}
	if err := c.Delete(bg, GlobalID(0, 9999)); !errors.Is(err, node.ErrNotFound) {
		t.Fatalf("never-inserted id: %v, want ErrNotFound", err)
	}
	if err := c.Delete(bg, GlobalID(99, 0)); !errors.Is(err, node.ErrNotFound) {
		t.Fatalf("nonexistent group: %v, want ErrNotFound", err)
	}
}

// TestDocFailsOverToSibling: Doc is served by any live member; only
// failure of every member is an error.
func TestDocFailsOverToSibling(t *testing.T) {
	// Real pair: the doc comes back from a replicated group.
	c, err := NewReplicated(bg, testNodes(t, 2, 500), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(50, 53)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	v, known, err := c.Doc(bg, ids[3])
	if err != nil || !known || v.NNZ() != vs[3].NNZ() {
		t.Fatalf("replicated Doc: known=%v err=%v", known, err)
	}

	// One dead member: the sibling answers authoritatively.
	mixed, err := NewReplicated(bg, []transport.NodeClient{
		&fakeNode{capacity: 100, err: errors.New("down")},
		&fakeNode{capacity: 100},
	}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, known, err := mixed.Doc(bg, GlobalID(0, 1)); err != nil || known {
		t.Fatalf("doc with one dead member: known=%v err=%v", known, err)
	}

	// Every member dead: an error, not a silent unknown.
	dead, err := NewReplicated(bg, []transport.NodeClient{
		&fakeNode{capacity: 100, err: errors.New("down")},
		&fakeNode{capacity: 100, err: errors.New("down")},
	}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dead.Doc(bg, GlobalID(0, 1)); err == nil {
		t.Fatal("Doc succeeded with every member dead")
	}
}

// TestReplicatedWindowRetiresWholeGroups: expiration erases every member
// of the groups the window wraps onto, so no mirror keeps serving expired
// documents.
func TestReplicatedWindowRetiresWholeGroups(t *testing.T) {
	// 2 groups × 2 replicas, 100 docs/group capacity, window 1 group:
	// 300 docs force a wrap through both groups and back onto group 0.
	c, err := NewReplicated(bg, testNodes(t, 4, 100), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(300, 55)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(bg, vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if findGlobal(res, ids[0]) {
		t.Fatal("expired doc still answers at its original global ID")
	}
	last := len(vs) - 1
	res, err = c.Query(bg, vs[last])
	if err != nil {
		t.Fatal(err)
	}
	if !findGlobal(res, ids[last]) {
		t.Fatal("most recent doc not found after wrap")
	}
	stats, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(stats); i += 2 {
		a := stats[i].StaticLen + stats[i].DeltaLen
		b := stats[i+1].StaticLen + stats[i+1].DeltaLen
		if a != b {
			t.Fatalf("group %d mirrors diverge after retirement: %d vs %d", i/2, a, b)
		}
	}
}

// TestReplicatedEquivalentToSingleCopy: the same stream through an R=2
// cluster and a single node answers with identical result counts — the
// mirrors add fault tolerance, never extra (or duplicate) answers.
func TestReplicatedEquivalentToSingleCopy(t *testing.T) {
	vs := testDocs(400, 57)
	queries := testDocs(25, 59)

	single := testNodes(t, 1, 1000)[0]
	if _, err := single.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	c, err := NewReplicated(bg, testNodes(t, 4, 200), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	singleRes, err := single.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	clusterRes, err := c.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(singleRes[qi]) != len(clusterRes[qi]) {
			t.Fatalf("query %d: single %d vs replicated cluster %d results",
				qi, len(singleRes[qi]), len(clusterRes[qi]))
		}
	}
}
