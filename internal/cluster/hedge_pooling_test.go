package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// poolNode builds a real in-process node so the tests can watch its
// batch pool through OutstandingBatches.
func poolNode(t *testing.T, capacity int) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// waitOutstandingZero polls until every node reports zero checked-out
// batch buffers — the release-exactly-once invariant after all in-flight
// searches (including async loser drains) have settled. A strand keeps a
// count positive forever; a double release drives one negative; either
// way the poll times out and fails with the stuck value.
func waitOutstandingZero(t *testing.T, nodes ...*node.Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		bad, got := -1, int64(0)
		for i, n := range nodes {
			if o := n.OutstandingBatches(); o != 0 {
				bad, got = i, o
			}
		}
		if bad < 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d settled at %d outstanding pooled batches, want 0 (positive = stranded, negative = double-released)", bad, got)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// slowDeliver wraps a member: Search computes the answer first — checking
// a pooled batch out of the member's pool — and only then sleeps, modeling
// a replica that is healthy but slow to deliver. The sleep deliberately
// ignores cancellation: the computed answer is already in flight, exactly
// the late-loser shape that used to strand its buffers.
type slowDeliver struct {
	transport.NodeClient
	delay time.Duration
}

func (s *slowDeliver) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	res, err := s.NodeClient.Search(ctx, qs, p)
	time.Sleep(s.delay)
	return res, err
}

// ReleaseResults forwards to the wrapped member's pool. Embedding does not
// provide it: Releaser is deliberately not part of NodeClient.
func (s *slowDeliver) ReleaseResults(res [][]core.Neighbor) {
	if rel, ok := s.NodeClient.(transport.Releaser); ok {
		rel.ReleaseResults(res)
	}
}

// TestHedgedLoserReleasesPooledBatch pins the searchGroup drain fix: a
// hedged search whose preferred replica answers successfully but slowly
// used to leave that loser's result sitting unread in the buffered
// results channel, its pooled batch checked out of the node forever. The
// group must drain resolved-but-late attempts and hand their buffers
// back.
func TestHedgedLoserReleasesPooledBatch(t *testing.T) {
	n0, n1 := poolNode(t, 200), poolNode(t, 200)
	clients := []transport.NodeClient{
		// Replica 0 is first in rotation for the first search; it computes
		// its answer immediately but delivers long after the hedge fires,
		// so the hedged replica 1 wins and replica 0 is a late loser with
		// a checked-out batch.
		&slowDeliver{NodeClient: transport.NewLocal(n0), delay: 60 * time.Millisecond},
		transport.NewLocal(n1),
	}
	c, err := NewReplicated(bg, clients, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(50, 7)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	res, rep, err := c.Search(bg, vs[:4], node.SearchParams{}, BatchOptions{Hedge: time.Millisecond, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HedgesWon() == 0 {
		t.Fatal("hedge did not win the group; the test lost its late loser")
	}
	c.ReleaseResults(res)
	waitOutstandingZero(t, n0, n1)
}

// TestCallerCancelReleasesInflightBatches pins the ctx.Done() drain path:
// when the caller gives up while replicas are still delivering, their
// eventual successful answers must still be handed back to the pools.
func TestCallerCancelReleasesInflightBatches(t *testing.T) {
	n0, n1 := poolNode(t, 200), poolNode(t, 200)
	clients := []transport.NodeClient{
		&slowDeliver{NodeClient: transport.NewLocal(n0), delay: 50 * time.Millisecond},
		&slowDeliver{NodeClient: transport.NewLocal(n1), delay: 50 * time.Millisecond},
	}
	c, err := NewReplicated(bg, clients, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(50, 7)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	defer cancel()
	// Hedge well inside the caller's deadline so both replicas are in
	// flight — both computed, both sleeping — when the caller gives up.
	_, _, err = c.Search(ctx, vs[:4], node.SearchParams{}, BatchOptions{Hedge: time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("search returned %v, want deadline exceeded", err)
	}
	waitOutstandingZero(t, n0, n1)
}

// flakyMember wraps a member with randomized delivery delay and injected
// post-compute failures: Search checks a pooled batch out of the inner
// member, sleeps, and then either delivers it or — modeling a transport
// that computed an answer the caller never receives — releases it itself
// and reports an error.
type flakyMember struct {
	transport.NodeClient
	mu  sync.Mutex
	rng *rand.Rand
}

var errInjected = errors.New("injected member failure")

func (f *flakyMember) plan() (delay time.Duration, fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Intn(2000)) * time.Microsecond, f.rng.Intn(4) == 0
}

func (f *flakyMember) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	delay, fail := f.plan()
	res, err := f.NodeClient.Search(ctx, qs, p)
	time.Sleep(delay)
	if err != nil {
		return nil, err
	}
	if fail {
		f.ReleaseResults(res)
		return nil, errInjected
	}
	return res, nil
}

func (f *flakyMember) ReleaseResults(res [][]core.Neighbor) {
	if rel, ok := f.NodeClient.(transport.Releaser); ok {
		rel.ReleaseResults(res)
	}
}

// TestSearchGroupInterleavingsReleaseAllBatches drives the failover/hedge
// state machine through randomized interleavings — winner-first,
// loser-first, all-fail, caller-cancel, per-node timeout — across a
// 3-replica group and asserts the release-exactly-once invariant: after
// everything settles, every node's outstanding pooled-batch count is
// exactly zero. Run under -race this also exercises the drain goroutine
// against concurrent searches.
func TestSearchGroupInterleavingsReleaseAllBatches(t *testing.T) {
	const replicas = 3
	nodes := make([]*node.Node, replicas)
	clients := make([]transport.NodeClient, replicas)
	rng := rand.New(rand.NewSource(1))
	for i := range nodes {
		nodes[i] = poolNode(t, 200)
		clients[i] = &flakyMember{
			NodeClient: transport.NewLocal(nodes[i]),
			rng:        rand.New(rand.NewSource(int64(i + 100))),
		}
	}
	c, err := NewReplicated(bg, clients, 1, replicas)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(60, 11)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		opts := BatchOptions{Partial: rng.Intn(2) == 0}
		if rng.Intn(2) == 0 {
			opts.Hedge = time.Duration(rng.Intn(1500)) * time.Microsecond
		}
		if rng.Intn(4) == 0 {
			opts.PerNodeTimeout = time.Duration(500+rng.Intn(1500)) * time.Microsecond
		}
		ctx := bg
		if rng.Intn(3) == 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(bg, time.Duration(rng.Intn(2500))*time.Microsecond)
			defer cancel()
		}
		res, _, err := c.Search(ctx, vs[:1+rng.Intn(3)], node.SearchParams{}, opts)
		if err == nil {
			c.ReleaseResults(res)
		}
	}
	waitOutstandingZero(t, nodes...)
}
