// Data-aware placement and query routing — the layered/entropy-LSH idea
// (Bahmani et al., "Efficient Distributed Locality Sensitive Hashing")
// applied to this coordinator: instead of broadcasting every search to
// every replica group, documents are placed by a short LSH bucket
// signature and each query probes only the groups whose signatures it
// could plausibly collide with, to a configurable recall target.
//
// The routing signature is B sign bits from a dedicated hyperplane set,
// drawn deterministically from the fleet's (Dim, Seed) but independent
// of the node-level tables' planes. Independence matters: if routing
// reused the tables' own bits, every document inside a routed group
// would agree on those bits by construction, so every table containing
// them would lose B bits of selectivity within the group — bucket
// occupancy inflates 2^B-fold on those tables and the routed search does
// more node work than the broadcast it replaces. With independent
// planes, co-located documents constrain the table keys only through
// genuine angular similarity, which in high dimension is negligible.
// Placement is a pure function of the signature and the shared hash
// seed: a bijective scramble of the B-bit signature followed by a
// balanced range reduction onto the group count, so mirrored replicas,
// a restarted coordinator, and WAL-recovered nodes all agree on where a
// document lives without any state exchange.
//
// Probing is confidence-ordered multiprobe (Lv et al.'s query-directed
// probing, applied to the routing bits): for a query with per-bit
// margins s_j, a document at angle t flips bit j with probability
// ε_j(t) = Φ(−|s_j|·cot t) — exact for the sign-random-projection
// family, since a·d = s·cos t + z·sin t with z ~ N(0,1) independent
// across hyperplanes — and ε_j is increasing in t on (0, π/2), so
// evaluating it at the search radius R bounds every in-radius document.
// Signatures are enumerated in decreasing collision probability until
// the accumulated mass reaches the recall target; the visited set is
// downward closed (a sub-pattern of any enumerated flip pattern is
// enumerated first), so the ≥ target guarantee extends to every
// document within the radius, not just those at exactly R. When the
// probe set degenerates — the mass target needs more than half the
// groups, the enumeration budget runs out, or cot R is too small to
// discriminate (R near π/2) — the query falls back to the full scatter
// broadcast, trading the saved fan-out for the exact pre-routing
// behavior.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// Placement selects how a Cluster places documents onto replica groups
// and which groups a search contacts.
type Placement uint8

const (
	// PlacementScatter is the default and the paper's layout: inserts go
	// round-robin to the rolling window, searches broadcast to every
	// group. Bit-stable with clusters built before placement existed.
	PlacementScatter Placement = iota
	// PlacementPartitioned places each document on the group chosen from
	// its LSH bucket signature and routes each search to the small set of
	// groups that can hold its in-radius neighbors, falling back to
	// scatter per query when the probe set degenerates. Opt-in: it trades
	// a bounded recall target (RouterConfig.Recall) for per-query cost
	// proportional to the probe count instead of the group count, and it
	// gives up the rolling insert window (documents live where their
	// signature says, so there is no oldest-group retirement).
	PlacementPartitioned
)

// String implements fmt.Stringer for logs and bench labels.
func (p Placement) String() string {
	switch p {
	case PlacementScatter:
		return "scatter"
	case PlacementPartitioned:
		return "partitioned"
	}
	return fmt.Sprintf("placement(%d)", uint8(p))
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Groups is the replica-group count of the cluster the router places
	// for. Required.
	Groups int
	// Radius is the default search radius (radians) used to bound the
	// per-bit flip probabilities when a request carries no radius of its
	// own. Default 0.9, the package-wide default.
	Radius float64
	// Recall is the probe-mass target in (0, 1]: every document within
	// the effective radius is routed-to with at least this probability
	// (over the draw of the hyperplanes). Higher values probe more
	// groups. Default 0.9.
	Recall float64
	// Bits is the routing-signature width B; 2^B signature cells are
	// spread evenly over the groups. 0 picks ceil(log2(Groups)) clamped
	// to [1, 8] — the narrowest signature that still maps onto every
	// group, keeping probe sets small. Explicit values are clamped to
	// [1, 16].
	Bits int
	// MaxPatterns bounds the multiprobe enumeration per query; a query
	// that cannot reach the recall target within the budget falls back
	// to scatter. Default 64 (and never more than 2^Bits).
	MaxPatterns int
}

// Router maps documents to replica groups and queries to probe sets, as
// a pure function of the LSH family's seed — see the package comment on
// routing for the scheme and its recall guarantee.
type Router struct {
	// rfam is the router's own tiny hyperplane family (bits elementary
	// functions), derived from the fleet's (Dim, Seed) but disjoint from
	// the tables' planes — see the package comment for why sharing them
	// would inflate within-group bucket occupancy 2^B-fold.
	rfam        *lshhash.Family
	groups      int
	bits        int
	half        int // rfam's K/2: bits per packed half-hash
	radius      float64
	recall      float64
	maxPatterns int
	maxProbe    int // probe sets larger than this fall back to scatter
	mulA, mulB  uint32
	scratch     sync.Pool
}

// routerScratch is the pooled per-call workspace of GroupFor/Probe.
//
//plshvet:scratch per-call sketch and probe-enumeration buffers owned by the router; no caller or node memory is ever stored in them
type routerScratch struct {
	scores []float32
	halves []uint32
	eps    []float64
	odds   []float64
	order  []int
	heap   []probeState
}

// probeState is one pending flip pattern of the multiprobe enumeration:
// its collision mass, the flipped sorted-bit set, and the highest
// flipped index (the successor frontier).
type probeState struct {
	mass float64
	mask uint16
	last int8
}

// NewRouter builds a Router over fam for cfg.Groups replica groups.
func NewRouter(fam *lshhash.Family, cfg RouterConfig) (*Router, error) {
	if fam == nil {
		return nil, fmt.Errorf("cluster: router needs an LSH family")
	}
	if cfg.Groups < 1 {
		return nil, fmt.Errorf("cluster: router groups = %d, need at least 1", cfg.Groups)
	}
	if cfg.Recall < 0 || cfg.Recall > 1 {
		return nil, fmt.Errorf("cluster: routing recall %v outside (0, 1]", cfg.Recall)
	}
	if cfg.Radius < 0 {
		return nil, fmt.Errorf("cluster: routing radius %v must not be negative", cfg.Radius)
	}
	p := fam.Params()
	bits := cfg.Bits
	if bits == 0 {
		bits = min(bitsFor(cfg.Groups), 8)
	}
	bits = max(1, min(bits, 16))
	radius := cfg.Radius
	if radius == 0 {
		radius = 0.9
	}
	recall := cfg.Recall
	if recall == 0 {
		recall = 0.9
	}
	maxPatterns := cfg.MaxPatterns
	if maxPatterns <= 0 {
		maxPatterns = 64
	}
	if lim := 1 << bits; maxPatterns > lim {
		maxPatterns = lim
	}
	// The dedicated routing family: K=2 makes each "half" a single sign
	// bit, so M half-hashes are exactly M elementary functions; the seed
	// is scrambled away from the fleet seed so the planes are disjoint
	// from every table's. M is padded to lshhash's minimum of 2 when one
	// bit suffices — sigOf reads only the first `bits` functions.
	rp := lshhash.Params{Dim: p.Dim, K: 2, M: max(2, bits), Seed: mix64(p.Seed ^ 0x726f757465)}
	rfam, err := lshhash.NewFamily(rp)
	if err != nil {
		return nil, fmt.Errorf("cluster: routing hyperplanes: %w", err)
	}
	r := &Router{
		rfam:        rfam,
		groups:      cfg.Groups,
		bits:        bits,
		half:        rp.K / 2,
		radius:      radius,
		recall:      recall,
		maxPatterns: maxPatterns,
		maxProbe:    max(1, cfg.Groups/2),
		mulA:        uint32(mix64(p.Seed^0x8f1bbcdc)) | 1,
		mulB:        uint32(mix64(p.Seed^0x5a827999)) | 1,
	}
	r.scratch.New = func() any {
		return &routerScratch{
			scores: make([]float32, rp.NumFuncs()),
			halves: make([]uint32, rp.M),
			eps:    make([]float64, bits),
			odds:   make([]float64, bits),
			order:  make([]int, bits),
			heap:   make([]probeState, 0, maxPatterns+2),
		}
	}
	return r, nil
}

// Groups returns the group count the router places for.
func (r *Router) Groups() int { return r.groups }

// Bits returns the routing-signature width B.
func (r *Router) Bits() int { return r.bits }

// Recall returns the configured probe-mass target.
func (r *Router) Recall() float64 { return r.recall }

// bitsFor returns ceil(log2(n)), at least 1.
func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}

// mix64 is the SplitMix64 finalizer — the deterministic scrambler behind
// the signature→group constants.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// groupOf maps a B-bit signature to its group: a seed-keyed bijective
// scramble of the signature space (odd multiply and xor-shift are both
// invertible mod 2^B) followed by a balanced range reduction, so every
// group owns either floor(2^B/G) or ceil(2^B/G) signature cells — no
// group is left idle, and the assignment is a pure function of
// (signature, B, G, seed).
func (r *Router) groupOf(sig uint32) int {
	mask := uint32(1)<<r.bits - 1
	x := (sig * r.mulA) & mask
	x ^= x >> ((r.bits + 1) / 2)
	x = (x * r.mulB) & mask
	return int((uint64(x) * uint64(r.groups)) >> r.bits)
}

// sigOf extracts the B routing bits from a packed half-hash row
// (elementary function j lives at bit j%half of half-hash j/half — the
// same packing TableKey concatenates pairs of).
func (r *Router) sigOf(halves []uint32) uint32 {
	var sig uint32
	for j := 0; j < r.bits; j++ {
		sig |= (halves[j/r.half] >> (j % r.half) & 1) << j
	}
	return sig
}

// GroupFor returns the replica group that owns document v under
// partitioned placement. Deterministic in (v, family seed): mirrored
// coordinators and restarts agree without coordination.
func (r *Router) GroupFor(v sparse.Vector) int {
	s := r.scratch.Get().(*routerScratch)
	r.rfam.SketchInto(v, s.scores, s.halves)
	g := r.groupOf(r.sigOf(s.halves))
	r.scratch.Put(s)
	return g
}

// Probe appends the probe set for query q at the given radius (0 = the
// router's default) to dst and reports whether routing is usable: the
// returned groups carry at least the configured recall mass for every
// document within the radius. ok = false means the probe set degenerated
// — too many distinct groups, enumeration budget exhausted, or a radius
// too close to π/2 to discriminate — and the caller must fall back to
// the full broadcast. The set always contains GroupFor(q)'s group (the
// zero-flip signature is enumerated first), so exact duplicates are
// never routed away from.
func (r *Router) Probe(q sparse.Vector, radius float64, dst []int) ([]int, bool) {
	if radius <= 0 {
		radius = r.radius
	}
	if radius <= 0 || radius >= math.Pi/2 {
		return dst, false
	}
	cot := math.Cos(radius) / math.Sin(radius)
	if cot < 1e-3 {
		return dst, false
	}
	s := r.scratch.Get().(*routerScratch)
	defer r.scratch.Put(s)
	r.rfam.SketchInto(q, s.scores, s.halves)
	sig := r.sigOf(s.halves)

	// Per-bit worst-case flip probabilities at the radius, most uncertain
	// first: ε_j = Φ(−|s_j|·cot R), clamped away from the degenerate 0.5
	// and exact-0 endpoints.
	for j := 0; j < r.bits; j++ {
		m := float64(s.scores[j])
		if m < 0 {
			m = -m
		}
		e := 0.5 * math.Erfc(m*cot/math.Sqrt2)
		s.eps[j] = min(max(e, 1e-12), 0.5)
		s.order[j] = j
	}
	// Insertion sort, most uncertain bit first: bits ≤ 16 and sort.Slice
	// would allocate its swapper on every probe of the hot path.
	for i := 1; i < r.bits; i++ {
		j, o := i, s.order[i]
		for j > 0 && s.eps[s.order[j-1]] < s.eps[o] {
			s.order[j] = s.order[j-1]
			j--
		}
		s.order[j] = o
	}
	base := 1.0
	for j := 0; j < r.bits; j++ {
		e := s.eps[s.order[j]]
		s.odds[j] = e / (1 - e)
		base *= 1 - e
	}

	start := len(dst)
	visit := func(sigp uint32) bool {
		g := r.groupOf(sigp)
		for _, have := range dst[start:] {
			if have == g {
				return true
			}
		}
		if len(dst)-start == r.maxProbe {
			return false // would probe more than half the groups: degenerate
		}
		dst = append(dst, g)
		return true
	}
	// xorFor maps a flip pattern over sorted bit indices back to a
	// signature xor mask in original bit positions.
	xorFor := func(mask uint16) uint32 {
		var x uint32
		for j := 0; mask != 0; j++ {
			if mask&1 != 0 {
				x |= 1 << s.order[j]
			}
			mask >>= 1
		}
		return x
	}

	mass := base
	if !visit(sig) {
		return dst[:start], false
	}
	if mass >= r.recall {
		return dst, true
	}
	// Best-first enumeration of flip patterns in decreasing mass
	// (query-directed probing): each heap pop either extends the pattern
	// with the next bit or shifts its frontier bit onward, generating
	// every nonempty subset exactly once.
	h := s.heap[:0]
	h = pushState(h, probeState{mass: base * s.odds[0], mask: 1, last: 0})
	for emitted := 1; len(h) > 0 && emitted < r.maxPatterns; emitted++ {
		st := h[0]
		h = popState(h)
		if !visit(sig ^ xorFor(st.mask)) {
			s.heap = h
			return dst[:start], false
		}
		mass += st.mass
		if mass >= r.recall {
			s.heap = h
			return dst, true
		}
		if next := int(st.last) + 1; next < r.bits {
			h = pushState(h, probeState{
				mass: st.mass * s.odds[next],
				mask: st.mask | 1<<next,
				last: int8(next),
			})
			h = pushState(h, probeState{
				mass: st.mass * s.odds[next] / s.odds[st.last],
				mask: st.mask&^(1<<st.last) | 1<<next,
				last: int8(next),
			})
		}
	}
	s.heap = h
	return dst[:start], false // budget exhausted below the recall target
}

// pushState/popState maintain a max-heap of probe states by mass.
func pushState(h []probeState, st probeState) []probeState {
	h = append(h, st)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].mass >= h[i].mass {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

func popState(h []probeState) []probeState {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h[l].mass > h[big].mass {
			big = l
		}
		if r < n && h[r].mass > h[big].mass {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return h
}
