package cluster

import (
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

func testNodes(t *testing.T, count, capacity int) []transport.NodeClient {
	t.Helper()
	out := make([]transport.NodeClient, count)
	for i := range out {
		n, err := node.New(node.Config{
			Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
			Capacity: capacity,
			Build:    core.Defaults(),
			Query:    core.QueryDefaults(),
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = transport.NewLocal(n)
	}
	return out
}

func testDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 2000, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

func findGlobal(ns []Neighbor, g uint64) bool {
	for _, nb := range ns {
		if GlobalID(nb.Node, nb.ID) == g {
			return true
		}
	}
	return false
}

func TestGlobalIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		node  int
		local uint32
	}{{0, 0}, {1, 7}, {99, 1 << 30}, {65535, ^uint32(0)}} {
		g := GlobalID(tc.node, tc.local)
		n, l := SplitGlobalID(g)
		if n != tc.node || l != tc.local {
			t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", tc.node, tc.local, g, n, l)
		}
	}
}

func TestInsertDistributesOverWindow(t *testing.T) {
	nodes := testNodes(t, 6, 1000)
	c, err := New(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(300, 1)
	ids, err := c.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 {
		t.Fatalf("ids = %d", len(ids))
	}
	// All inserts must land on window nodes 0..2, roughly evenly.
	stats, _ := c.Stats()
	for i := 0; i < 3; i++ {
		n := stats[i].StaticLen + stats[i].DeltaLen
		if n < 80 || n > 120 {
			t.Fatalf("node %d holds %d docs, want ≈100", i, n)
		}
	}
	for i := 3; i < 6; i++ {
		if stats[i].StaticLen+stats[i].DeltaLen != 0 {
			t.Fatalf("node %d outside window received inserts", i)
		}
	}
}

// Cluster queries must equal a single node holding the whole corpus.
func TestClusterEquivalentToSingleNode(t *testing.T) {
	vs := testDocs(400, 3)
	queries := testDocs(25, 9)

	single := testNodes(t, 1, 1000)[0]
	if _, err := single.Insert(vs); err != nil {
		t.Fatal(err)
	}

	nodes := testNodes(t, 4, 200)
	c, err := New(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(vs); err != nil {
		t.Fatal(err)
	}

	singleRes, _ := single.QueryBatch(queries)
	clusterRes, err := c.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(singleRes[qi]) != len(clusterRes[qi]) {
			t.Fatalf("query %d: single %d vs cluster %d results",
				qi, len(singleRes[qi]), len(clusterRes[qi]))
		}
	}
}

func TestEveryInsertedDocFindable(t *testing.T) {
	nodes := testNodes(t, 4, 150)
	c, _ := New(nodes, 2)
	vs := testDocs(300, 5)
	ids, err := c.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(vs); i += 23 {
		res, err := c.Query(vs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !findGlobal(res, ids[i]) {
			t.Fatalf("doc %d (gid %d) not found", i, ids[i])
		}
	}
}

func TestWindowAdvancesAndRetires(t *testing.T) {
	// 4 nodes × 100 capacity, window 2: inserting 350 docs fills nodes
	// 0-1 (200), advances to 2-3 (150). Inserting 250 more fills 2-3 and
	// wraps: nodes 0-1 retire and receive the rest.
	nodes := testNodes(t, 4, 100)
	c, _ := New(nodes, 2)
	vs := testDocs(600, 7)
	if _, err := c.Insert(vs[:350]); err != nil {
		t.Fatal(err)
	}
	if c.WindowStart() != 2 {
		t.Fatalf("window start = %d, want 2", c.WindowStart())
	}
	firstBatchRes, err := c.Query(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(firstBatchRes) == 0 {
		t.Fatal("doc 0 missing before wrap")
	}

	if _, err := c.Insert(vs[350:]); err != nil {
		t.Fatal(err)
	}
	if c.WindowStart() != 0 {
		t.Fatalf("window start after wrap = %d, want 0", c.WindowStart())
	}
	stats, _ := c.Stats()
	total := 0
	for _, st := range stats {
		total += st.StaticLen + st.DeltaLen
	}
	// 0-1 retired (lost 200 oldest), then received the last 250.
	if total != 400 {
		t.Fatalf("cluster holds %d docs, want 400 after retirement", total)
	}
}

func TestOldestDataExpires(t *testing.T) {
	nodes := testNodes(t, 4, 100)
	c, _ := New(nodes, 2)
	vs := testDocs(600, 11)
	ids, err := c.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	// The first 200 docs lived on nodes 0-1, which were retired during the
	// wrap; they must no longer be findable at their original identity.
	res, err := c.Query(vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if findGlobal(res, ids[0]) {
		t.Fatal("expired doc still answers at its original global ID")
	}
	// The last docs must be findable.
	last := len(vs) - 1
	res, _ = c.Query(vs[last])
	if !findGlobal(res, ids[last]) {
		t.Fatal("most recent doc not found")
	}
}

func TestDeleteByGlobalID(t *testing.T) {
	nodes := testNodes(t, 3, 200)
	c, _ := New(nodes, 3)
	vs := testDocs(150, 13)
	ids, _ := c.Insert(vs)
	if err := c.Delete(ids[42]); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Query(vs[42])
	if findGlobal(res, ids[42]) {
		t.Fatal("deleted doc returned")
	}
	if err := c.Delete(GlobalID(99, 0)); err == nil {
		t.Fatal("delete on unknown node accepted")
	}
}

func TestQueryBatchTimedReportsAllNodes(t *testing.T) {
	nodes := testNodes(t, 5, 200)
	c, _ := New(nodes, 5)
	vs := testDocs(250, 15)
	c.Insert(vs)
	_, times, err := c.QueryBatchTimed(vs[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 5 {
		t.Fatalf("times for %d nodes", len(times))
	}
	for i, d := range times {
		if d <= 0 {
			t.Fatalf("node %d reported no time", i)
		}
	}
}

func TestMergeAll(t *testing.T) {
	nodes := testNodes(t, 3, 500)
	c, _ := New(nodes, 3)
	vs := testDocs(90, 17)
	c.Insert(vs)
	if err := c.MergeAll(); err != nil {
		t.Fatal(err)
	}
	stats, _ := c.Stats()
	for i, st := range stats {
		if st.DeltaLen != 0 {
			t.Fatalf("node %d delta not merged: %+v", i, st)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
	// Window clamped when out of range.
	nodes := testNodes(t, 2, 100)
	c, err := New(nodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.m != 2 {
		t.Fatalf("window not clamped: %d", c.m)
	}
}

func TestInsertLargerThanClusterWraps(t *testing.T) {
	// Total capacity 200; inserting 250 must succeed by expiring the
	// oldest — the cluster is a sliding window over the stream.
	nodes := testNodes(t, 2, 100)
	c, _ := New(nodes, 1)
	vs := testDocs(250, 19)
	ids, err := c.Insert(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 250 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, _ := c.Query(vs[249])
	if !findGlobal(res, ids[249]) {
		t.Fatal("newest doc missing after wrap")
	}
}

func TestEmptyInsert(t *testing.T) {
	nodes := testNodes(t, 2, 100)
	c, _ := New(nodes, 1)
	ids, err := c.Insert(nil)
	if err != nil || ids != nil {
		t.Fatalf("empty insert: %v %v", ids, err)
	}
}
