package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

var bg = context.Background()

func testNodes(t *testing.T, count, capacity int) []transport.NodeClient {
	t.Helper()
	out := make([]transport.NodeClient, count)
	for i := range out {
		n, err := node.New(node.Config{
			Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
			Capacity: capacity,
			Build:    core.Defaults(),
			Query:    core.QueryDefaults(),
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = transport.NewLocal(n)
	}
	return out
}

func testDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 2000, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

func findGlobal(ns []Neighbor, g uint64) bool {
	for _, nb := range ns {
		if GlobalID(nb.Node, nb.ID) == g {
			return true
		}
	}
	return false
}

// fakeNode is a controllable NodeClient for failure-policy tests. Its
// query path blocks for `delay` (honoring ctx) and then returns `err` or
// an empty answer.
type fakeNode struct {
	capacity int
	delay    time.Duration
	err      error
}

func (f *fakeNode) wait(ctx context.Context) error {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return err
	}
	return f.err
}

func (f *fakeNode) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return make([]uint32, len(vs)), nil
}

func (f *fakeNode) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return make([][]core.Neighbor, len(qs)), nil
}

func (f *fakeNode) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return nil, nil
}

func (f *fakeNode) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	if err := f.wait(ctx); err != nil {
		return nil, err
	}
	return make([][]core.Neighbor, len(qs)), nil
}

func (f *fakeNode) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	if err := f.wait(ctx); err != nil {
		return sparse.Vector{}, false, err
	}
	return sparse.Vector{}, false, nil
}

func (f *fakeNode) Delete(ctx context.Context, id uint32) error { return f.wait(ctx) }
func (f *fakeNode) MergeNow(ctx context.Context) error          { return f.wait(ctx) }
func (f *fakeNode) Flush(ctx context.Context) error             { return f.wait(ctx) }
func (f *fakeNode) Retire(ctx context.Context) error            { return f.wait(ctx) }
func (f *fakeNode) Save(ctx context.Context) error              { return f.wait(ctx) }
func (f *fakeNode) Stats(ctx context.Context) (node.Stats, error) {
	return node.Stats{Capacity: f.capacity}, nil
}
func (f *fakeNode) Close() error { return nil }

func TestGlobalIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		node  int
		local uint32
	}{{0, 0}, {1, 7}, {99, 1 << 30}, {65535, ^uint32(0)}} {
		g := GlobalID(tc.node, tc.local)
		n, l := SplitGlobalID(g)
		if n != tc.node || l != tc.local {
			t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", tc.node, tc.local, g, n, l)
		}
	}
}

func TestInsertDistributesOverWindow(t *testing.T) {
	nodes := testNodes(t, 6, 1000)
	c, err := New(bg, nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(300, 1)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 300 {
		t.Fatalf("ids = %d", len(ids))
	}
	// All inserts must land on window nodes 0..2, roughly evenly.
	stats, _ := c.Stats(bg)
	for i := 0; i < 3; i++ {
		n := stats[i].StaticLen + stats[i].DeltaLen
		if n < 80 || n > 120 {
			t.Fatalf("node %d holds %d docs, want ≈100", i, n)
		}
	}
	for i := 3; i < 6; i++ {
		if stats[i].StaticLen+stats[i].DeltaLen != 0 {
			t.Fatalf("node %d outside window received inserts", i)
		}
	}
}

// Cluster queries must equal a single node holding the whole corpus.
func TestClusterEquivalentToSingleNode(t *testing.T) {
	vs := testDocs(400, 3)
	queries := testDocs(25, 9)

	single := testNodes(t, 1, 1000)[0]
	if _, err := single.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	nodes := testNodes(t, 4, 200)
	c, err := New(bg, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}

	singleRes, _ := single.QueryBatch(bg, queries)
	clusterRes, err := c.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(singleRes[qi]) != len(clusterRes[qi]) {
			t.Fatalf("query %d: single %d vs cluster %d results",
				qi, len(singleRes[qi]), len(clusterRes[qi]))
		}
	}
}

func TestEveryInsertedDocFindable(t *testing.T) {
	nodes := testNodes(t, 4, 150)
	c, _ := New(bg, nodes, 2)
	vs := testDocs(300, 5)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(vs); i += 23 {
		res, err := c.Query(bg, vs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !findGlobal(res, ids[i]) {
			t.Fatalf("doc %d (gid %d) not found", i, ids[i])
		}
	}
}

func TestWindowAdvancesAndRetires(t *testing.T) {
	// 4 nodes × 100 capacity, window 2: inserting 350 docs fills nodes
	// 0-1 (200), advances to 2-3 (150). Inserting 250 more fills 2-3 and
	// wraps: nodes 0-1 retire and receive the rest.
	nodes := testNodes(t, 4, 100)
	c, _ := New(bg, nodes, 2)
	vs := testDocs(600, 7)
	if _, err := c.Insert(bg, vs[:350]); err != nil {
		t.Fatal(err)
	}
	if c.WindowStart() != 2 {
		t.Fatalf("window start = %d, want 2", c.WindowStart())
	}
	firstBatchRes, err := c.Query(bg, vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(firstBatchRes) == 0 {
		t.Fatal("doc 0 missing before wrap")
	}

	if _, err := c.Insert(bg, vs[350:]); err != nil {
		t.Fatal(err)
	}
	if c.WindowStart() != 0 {
		t.Fatalf("window start after wrap = %d, want 0", c.WindowStart())
	}
	stats, _ := c.Stats(bg)
	total := 0
	for _, st := range stats {
		total += st.StaticLen + st.DeltaLen
	}
	// 0-1 retired (lost 200 oldest), then received the last 250.
	if total != 400 {
		t.Fatalf("cluster holds %d docs, want 400 after retirement", total)
	}
}

func TestOldestDataExpires(t *testing.T) {
	nodes := testNodes(t, 4, 100)
	c, _ := New(bg, nodes, 2)
	vs := testDocs(600, 11)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	// The first 200 docs lived on nodes 0-1, which were retired during the
	// wrap; they must no longer be findable at their original identity.
	res, err := c.Query(bg, vs[0])
	if err != nil {
		t.Fatal(err)
	}
	if findGlobal(res, ids[0]) {
		t.Fatal("expired doc still answers at its original global ID")
	}
	// The last docs must be findable.
	last := len(vs) - 1
	res, _ = c.Query(bg, vs[last])
	if !findGlobal(res, ids[last]) {
		t.Fatal("most recent doc not found")
	}
}

func TestDeleteByGlobalID(t *testing.T) {
	nodes := testNodes(t, 3, 200)
	c, _ := New(bg, nodes, 3)
	vs := testDocs(150, 13)
	ids, _ := c.Insert(bg, vs)
	if err := c.Delete(bg, ids[42]); err != nil {
		t.Fatal(err)
	}
	res, _ := c.Query(bg, vs[42])
	if findGlobal(res, ids[42]) {
		t.Fatal("deleted doc returned")
	}
	if err := c.Delete(bg, GlobalID(99, 0)); err == nil {
		t.Fatal("delete on unknown node accepted")
	}
}

func TestQueryBatchTimedReportsAllNodes(t *testing.T) {
	nodes := testNodes(t, 5, 200)
	c, _ := New(bg, nodes, 5)
	vs := testDocs(250, 15)
	c.Insert(bg, vs)
	_, report, err := c.QueryBatchTimed(bg, vs[:10], BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Times) != 5 {
		t.Fatalf("times for %d nodes", len(report.Times))
	}
	for i, d := range report.Times {
		if d <= 0 {
			t.Fatalf("node %d reported no time", i)
		}
	}
	if !report.Complete() || len(report.Stragglers()) != 0 {
		t.Fatalf("healthy broadcast reported incomplete: %+v", report)
	}
}

// A canceled context must abort a broadcast early with ctx.Err() instead
// of waiting out the slowest node.
func TestCanceledContextAbortsBroadcast(t *testing.T) {
	nodes := []transport.NodeClient{
		&fakeNode{capacity: 100},
		&fakeNode{capacity: 100, delay: time.Hour}, // would stall forever
	}
	c, err := New(bg, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, _, err = c.QueryBatchTimed(ctx, testDocs(3, 17), BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("broadcast waited on slow node for %v despite cancellation", elapsed)
	}
}

// A context deadline likewise aborts the broadcast with DeadlineExceeded.
func TestDeadlineAbortsBroadcast(t *testing.T) {
	nodes := []transport.NodeClient{
		&fakeNode{capacity: 100, delay: time.Hour},
	}
	c, err := New(bg, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	if _, _, err := c.QueryBatchTimed(ctx, testDocs(3, 17), BatchOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// Partial policy: answers from healthy nodes come back; the failed node is
// reported as a straggler instead of failing the batch.
func TestPartialResultsPolicy(t *testing.T) {
	real := testNodes(t, 2, 1000)
	bad := &fakeNode{capacity: 100, err: errors.New("node down")}
	nodes := []transport.NodeClient{real[0], bad, real[1]}
	c, err := New(bg, nodes, 1) // window node 0 only → inserts land on real[0]
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(100, 19)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}

	// All-or-nothing: the dead node fails the whole batch.
	if _, _, err := c.QueryBatchTimed(bg, vs[:5], BatchOptions{}); err == nil {
		t.Fatal("all-or-nothing broadcast succeeded with a dead node")
	}

	// Partial: healthy answers arrive, the dead node is reported.
	res, report, err := c.QueryBatchTimed(bg, vs[:5], BatchOptions{Partial: true})
	if err != nil {
		t.Fatalf("partial broadcast failed: %v", err)
	}
	if report.Complete() {
		t.Fatal("report claims completeness with a dead node")
	}
	if s := report.Stragglers(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", s)
	}
	if !findGlobal(res[0], ids[0]) {
		t.Fatal("healthy node's answer missing from partial results")
	}
}

// Per-node timeout: a slow node is cut off and reported while the rest of
// the broadcast completes.
func TestPerNodeTimeoutReportsStraggler(t *testing.T) {
	real := testNodes(t, 1, 1000)
	slow := &fakeNode{capacity: 100, delay: time.Hour}
	nodes := []transport.NodeClient{real[0], slow}
	c, err := New(bg, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	vs := testDocs(50, 21)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	res, report, err := c.QueryBatchTimed(bg, vs[:3], BatchOptions{
		PerNodeTimeout: 50 * time.Millisecond,
		Partial:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := report.Stragglers(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", s)
	}
	if !errors.Is(report.Errs[1], context.DeadlineExceeded) {
		t.Fatalf("straggler error = %v, want DeadlineExceeded", report.Errs[1])
	}
	if len(res) != 3 {
		t.Fatalf("partial results missing: %d answer lists", len(res))
	}
}

// QueryTopK must agree with sorting the full broadcast answer and keeping
// the k best.
func TestQueryTopKMatchesBroadcast(t *testing.T) {
	nodes := testNodes(t, 4, 200)
	c, _ := New(bg, nodes, 2)
	vs := testDocs(400, 23)
	if _, err := c.Insert(bg, vs); err != nil {
		t.Fatal(err)
	}
	queries := testDocs(15, 25)
	for _, k := range []int{1, 5, 20} {
		for qi, q := range queries {
			full, err := c.Query(bg, q)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]Neighbor(nil), full...)
			sortClusterNeighbors(want)
			if k < len(want) {
				want = want[:k]
			}
			got, err := c.QueryTopK(bg, q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d query %d: %d results, want %d", k, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d query %d entry %d: %+v, want %+v", k, qi, i, got[i], want[i])
				}
			}
		}
	}
	// k ≤ 0 yields nothing.
	if res, err := c.QueryTopK(bg, queries[0], 0); err != nil || len(res) != 0 {
		t.Fatalf("k=0: %v %v", res, err)
	}
}

// sortClusterNeighbors mirrors the coordinator's merge order: ascending
// (Dist, Node, ID).
func sortClusterNeighbors(ns []Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && clusterLess(ns[j], ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func clusterLess(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.ID < b.ID
}

func TestMergeAll(t *testing.T) {
	nodes := testNodes(t, 3, 500)
	c, _ := New(bg, nodes, 3)
	vs := testDocs(90, 17)
	c.Insert(bg, vs)
	if err := c.MergeAll(bg); err != nil {
		t.Fatal(err)
	}
	stats, _ := c.Stats(bg)
	for i, st := range stats {
		if st.DeltaLen != 0 {
			t.Fatalf("node %d delta not merged: %+v", i, st)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(bg, nil, 2); err == nil {
		t.Fatal("empty cluster accepted")
	}
	// Window clamped when out of range.
	nodes := testNodes(t, 2, 100)
	c, err := New(bg, nodes, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.m != 2 {
		t.Fatalf("window not clamped: %d", c.m)
	}
}

func TestInsertLargerThanClusterWraps(t *testing.T) {
	// Total capacity 200; inserting 250 must succeed by expiring the
	// oldest — the cluster is a sliding window over the stream.
	nodes := testNodes(t, 2, 100)
	c, _ := New(bg, nodes, 1)
	vs := testDocs(250, 19)
	ids, err := c.Insert(bg, vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 250 {
		t.Fatalf("ids = %d", len(ids))
	}
	res, _ := c.Query(bg, vs[249])
	if !findGlobal(res, ids[249]) {
		t.Fatal("newest doc missing after wrap")
	}
}

func TestEmptyInsert(t *testing.T) {
	nodes := testNodes(t, 2, 100)
	c, _ := New(bg, nodes, 1)
	ids, err := c.Insert(bg, nil)
	if err != nil || ids != nil {
		t.Fatalf("empty insert: %v %v", ids, err)
	}
}

func TestCanceledInsertRejected(t *testing.T) {
	nodes := testNodes(t, 2, 100)
	c, _ := New(bg, nodes, 1)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := c.Insert(ctx, testDocs(10, 27)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled insert: %v", err)
	}
}

// MergeAll drives every node static while broadcasts keep answering;
// FlushAll is the no-force barrier and reports clean merge state after.
func TestMergeAllNonBlockingAndFlushAll(t *testing.T) {
	c, err := New(bg, testNodes(t, 3, 1000), 3)
	if err != nil {
		t.Fatal(err)
	}
	docs := testDocs(600, 29)
	ids, err := c.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	mergeErr := make(chan error, 1)
	go func() { mergeErr <- c.MergeAll(bg) }()
	// Broadcasts issued while the cluster-wide merge runs must answer from
	// the nodes' snapshots, not buffer behind the rebuilds.
	for i := 0; i < len(docs); i += 67 {
		res, err := c.Query(bg, docs[i])
		if err != nil {
			t.Fatalf("query during MergeAll: %v", err)
		}
		if !findGlobal(res, ids[i]) {
			t.Fatalf("doc %d missing during MergeAll", i)
		}
	}
	if err := <-mergeErr; err != nil {
		t.Fatal(err)
	}
	if err := c.FlushAll(bg); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.DeltaLen != 0 || st.MergeInFlight {
			t.Fatalf("node %d not quiesced after MergeAll+FlushAll: %+v", i, st)
		}
	}
}
