package cluster

import (
	"context"
	"errors"
	"math"
	"testing"

	"plsh/internal/lshhash"
	"plsh/internal/node"
)

func testRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: 2000, K: 4, M: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(fam, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRouterConfigValidation(t *testing.T) {
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: 100, K: 4, M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(nil, RouterConfig{Groups: 4}); err == nil {
		t.Error("nil family accepted")
	}
	if _, err := NewRouter(fam, RouterConfig{Groups: 0}); err == nil {
		t.Error("zero groups accepted")
	}
	if _, err := NewRouter(fam, RouterConfig{Groups: 4, Recall: 1.5}); err == nil {
		t.Error("recall > 1 accepted")
	}
	if _, err := NewRouter(fam, RouterConfig{Groups: 4, Radius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	r, err := NewRouter(fam, RouterConfig{Groups: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits() != 4 {
		t.Errorf("default bits for 16 groups = %d, want 4", r.Bits())
	}
	if r.Recall() != 0.9 {
		t.Errorf("default recall = %v, want 0.9", r.Recall())
	}
}

// Placement must be a pure function of (document, family seed): two
// independently built routers agree on every document, so mirrored
// coordinators and WAL-restarted fleets agree with zero coordination.
func TestRouterDeterministicAcrossInstances(t *testing.T) {
	a := testRouter(t, RouterConfig{Groups: 8})
	b := testRouter(t, RouterConfig{Groups: 8})
	docs := testDocs(200, 7)
	for i, d := range docs {
		ga, gb := a.GroupFor(d), b.GroupFor(d)
		if ga != gb {
			t.Fatalf("doc %d: router A places on %d, router B on %d", i, ga, gb)
		}
		if ga < 0 || ga >= 8 {
			t.Fatalf("doc %d placed on group %d of 8", i, ga)
		}
		pa, oka := a.Probe(d, 0, nil)
		pb, okb := b.Probe(d, 0, nil)
		if oka != okb {
			t.Fatalf("doc %d: probe ok %v vs %v", i, oka, okb)
		}
		if len(pa) != len(pb) {
			t.Fatalf("doc %d: probe sets %v vs %v", i, pa, pb)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("doc %d: probe sets %v vs %v", i, pa, pb)
			}
		}
	}
}

// The balanced range reduction must leave no group idle: with B =
// ceil(log2 G) every group owns at least one of the 2^B signature cells.
func TestRouterSignatureMapCoversEveryGroup(t *testing.T) {
	for _, groups := range []int{2, 3, 4, 6, 8, 16} {
		r := testRouter(t, RouterConfig{Groups: groups})
		seen := make([]bool, groups)
		for sig := uint32(0); sig < 1<<r.Bits(); sig++ {
			g := r.groupOf(sig)
			if g < 0 || g >= groups {
				t.Fatalf("groups=%d: signature %d maps to group %d", groups, sig, g)
			}
			seen[g] = true
		}
		for g, ok := range seen {
			if !ok {
				t.Errorf("groups=%d: group %d owns no signature cell", groups, g)
			}
		}
	}
}

// A query's probe set must always include the group its own signature
// maps to — the zero-flip pattern is enumerated first — so a search for
// an exact duplicate is never routed away from the copy.
func TestProbeContainsOwnGroup(t *testing.T) {
	r := testRouter(t, RouterConfig{Groups: 16})
	docs := testDocs(200, 11)
	fallbacks := 0
	for i, d := range docs {
		probes, ok := r.Probe(d, 0.9, nil)
		if !ok {
			fallbacks++
			continue
		}
		own := r.GroupFor(d)
		found := false
		for _, g := range probes {
			if g == own {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("doc %d: probe set %v misses its own group %d", i, probes, own)
		}
		if len(probes) > 8 {
			t.Fatalf("doc %d: %d probes exceed half of 16 groups", i, len(probes))
		}
	}
	if fallbacks == len(docs) {
		t.Fatal("every query fell back to scatter; routing never engaged")
	}
}

// Raising the recall target only extends the enumeration, so a lower
// target's probe set is a prefix of a higher target's — the monotonicity
// the recall guarantee leans on.
func TestProbeSetMonotoneInRecall(t *testing.T) {
	lo := testRouter(t, RouterConfig{Groups: 16, Recall: 0.5})
	hi := testRouter(t, RouterConfig{Groups: 16, Recall: 0.95})
	docs := testDocs(100, 13)
	for i, d := range docs {
		pl, okl := lo.Probe(d, 0.9, nil)
		ph, okh := hi.Probe(d, 0.9, nil)
		if !okl || !okh {
			continue // either side degenerated; nothing to compare
		}
		if len(pl) > len(ph) {
			t.Fatalf("doc %d: recall 0.5 probes %v, recall 0.95 only %v", i, pl, ph)
		}
		for j := range pl {
			if pl[j] != ph[j] {
				t.Fatalf("doc %d: lower-recall set %v is not a prefix of %v", i, pl, ph)
			}
		}
	}
}

// Radii at or beyond π/2 cannot discriminate (cot ≤ 0: a far document
// flips bits as often as a near one) and must degrade to scatter.
func TestProbeDegeneratesToScatter(t *testing.T) {
	r := testRouter(t, RouterConfig{Groups: 8})
	d := testDocs(1, 17)[0]
	for _, radius := range []float64{math.Pi / 2, 1.6, 3.0} {
		if _, ok := r.Probe(d, radius, nil); ok {
			t.Errorf("radius %v: expected scatter fallback", radius)
		}
	}
	// An unreachable recall target within one pattern must also fall back
	// rather than silently under-probing.
	one := testRouter(t, RouterConfig{Groups: 8, Recall: 0.999999, MaxPatterns: 1})
	if _, ok := one.Probe(d, 0.9, nil); ok {
		t.Error("recall target unreachable within budget: expected scatter fallback")
	}
}

// Partitioned insert must agree with the router on every placement, and
// a full routed group must surface *InsertError wrapping node.ErrFull —
// never spill onto another group, which would break the routing
// invariant.
func TestPartitionedInsertPlacesByRouterAndFailsFull(t *testing.T) {
	ctx := context.Background()
	nodes := testNodes(t, 8, 100)
	r := testRouter(t, RouterConfig{Groups: 8})
	c, err := NewWithOptions(ctx, nodes, Options{Placement: PlacementPartitioned, Router: r})
	if err != nil {
		t.Fatal(err)
	}
	if c.Placement() != PlacementPartitioned {
		t.Fatalf("placement = %v", c.Placement())
	}
	docs := testDocs(300, 19)
	ids, err := c.Insert(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		g, _ := SplitGlobalID(id)
		if want := r.GroupFor(docs[i]); g != want {
			t.Fatalf("doc %d placed on group %d, router says %d", i, g, want)
		}
	}
	// Tiny per-group capacity: some routed group must fill and the insert
	// must fail loudly with the partial-placement contract intact.
	small := testNodes(t, 8, 10)
	cs, err := NewWithOptions(ctx, small, Options{Placement: PlacementPartitioned, Router: r})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cs.Insert(ctx, docs)
	if err == nil {
		t.Fatal("300 docs into 8 groups of 10: expected a full group")
	}
	var ie *InsertError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InsertError, got %T: %v", err, err)
	}
	if !errors.Is(err, node.ErrFull) {
		t.Fatalf("want ErrFull in chain, got: %v", err)
	}
}

// Partitioned construction is validated: a router is required and its
// group count must match the layout.
func TestPartitionedOptionsValidation(t *testing.T) {
	ctx := context.Background()
	nodes := testNodes(t, 4, 100)
	if _, err := NewWithOptions(ctx, nodes, Options{Placement: PlacementPartitioned}); err == nil {
		t.Error("partitioned without router accepted")
	}
	r := testRouter(t, RouterConfig{Groups: 8})
	if _, err := NewWithOptions(ctx, nodes, Options{Placement: PlacementPartitioned, Router: r}); err == nil {
		t.Error("router for 8 groups accepted on a 4-group cluster")
	}
	if _, err := NewWithOptions(ctx, nodes, Options{Placement: Placement(9)}); err == nil {
		t.Error("unknown placement accepted")
	}
}
