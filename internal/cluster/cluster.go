// Package cluster implements the multi-node PLSH system of §4 and §5.3:
// a coordinator that broadcasts queries to every node and concatenates the
// partial answers, and a rolling window of M insert nodes that gives the
// system well-defined expiration of the oldest data.
//
// Data is partitioned by document, not by table (§5.3's "second scheme"):
// each node holds all L tables over its own subset, so queries need no
// cross-node candidate deduplication and node count scales with data size.
// Inserts go round-robin to the M window nodes; when the window's nodes
// reach capacity the window advances, and on wrap-around the nodes it
// advances onto — necessarily holding the oldest data — are retired
// (erased) before accepting new inserts (§6, Fig. 1).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// Neighbor is a cluster-level query answer: the node that holds the
// document, its node-local ID, and the angular distance.
type Neighbor struct {
	Node int
	ID   uint32
	Dist float64
}

// GlobalID packs (node, local ID) into one opaque identifier.
func GlobalID(nodeIdx int, local uint32) uint64 {
	return uint64(nodeIdx)<<32 | uint64(local)
}

// SplitGlobalID inverts GlobalID.
func SplitGlobalID(g uint64) (nodeIdx int, local uint32) {
	return int(g >> 32), uint32(g)
}

// Cluster is the coordinator. Query methods may run concurrently with each
// other; Insert/Delete/Retire serialize behind an internal mutex (the
// paper's coordinator is likewise a single insertion sequencer).
type Cluster struct {
	mu    sync.Mutex
	nodes []transport.NodeClient
	caps  []int
	used  []int
	m     int // insert-window width M
	start int // first node of the current window
}

// New builds a coordinator over the given nodes with an insert window of
// windowM nodes (paper: M=4 of 100). Node capacities are read from Stats.
func New(nodes []transport.NodeClient, windowM int) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if windowM <= 0 || windowM > len(nodes) {
		windowM = min(4, len(nodes))
	}
	c := &Cluster{
		nodes: nodes,
		caps:  make([]int, len(nodes)),
		used:  make([]int, len(nodes)),
		m:     windowM,
	}
	for i, n := range nodes {
		st, err := n.Stats()
		if err != nil {
			return nil, fmt.Errorf("cluster: stats from node %d: %w", i, err)
		}
		c.caps[i] = st.Capacity
		c.used[i] = st.StaticLen + st.DeltaLen
	}
	return c, nil
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// WindowStart returns the index of the first node in the current insert
// window (exposed for tests and monitoring).
func (c *Cluster) WindowStart() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start
}

// Insert distributes the batch round-robin over the insert window,
// advancing the window — and retiring the oldest nodes on wrap-around —
// as nodes fill (§6). The returned IDs parallel vs.
func (c *Cluster) Insert(vs []sparse.Vector) ([]uint64, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]uint64, len(vs))
	// pending holds positions into vs still awaiting placement.
	pending := make([]int, len(vs))
	for i := range pending {
		pending[i] = i
	}
	scratch := make([]sparse.Vector, 0, len(vs))
	// Each round either places documents or advances the window (which
	// retires old data, freeing capacity). A round that does neither means
	// the cluster has no usable capacity at all.
	for len(pending) > 0 {
		window := c.windowNodes()
		free := 0
		for _, w := range window {
			free += c.caps[w] - c.used[w]
		}
		if free == 0 {
			if err := c.advanceWindow(); err != nil {
				return nil, err
			}
			window = c.windowNodes()
			free = 0
			for _, w := range window {
				free += c.caps[w] - c.used[w]
			}
			if free == 0 {
				return nil, errors.New("cluster: no insertable capacity (all node capacities zero?)")
			}
		}
		// Round-robin shares: split what fits evenly over the window's
		// non-full nodes; anything a node cannot take (its even share
		// exceeds its space) stays pending for the next round.
		fit := min(len(pending), free)
		batch := pending[:fit]
		rest := pending[fit:]
		live := 0
		for _, w := range window {
			if c.caps[w] > c.used[w] {
				live++
			}
		}
		offset := 0
		placed := 0
		var requeue []int
		for _, w := range window {
			space := c.caps[w] - c.used[w]
			if space == 0 || offset == len(batch) {
				continue
			}
			share := (len(batch) - offset + live - 1) / live
			live--
			if share > space {
				share = space
			}
			if share == 0 {
				continue
			}
			part := batch[offset : offset+share]
			offset += share
			scratch = scratch[:0]
			for _, pos := range part {
				scratch = append(scratch, vs[pos])
			}
			local, err := c.nodes[w].Insert(scratch)
			if errors.Is(err, node.ErrFull) {
				// Bookkeeping drift (shouldn't happen): resync and retry
				// this part in a later round.
				c.resyncUsed(w)
				requeue = append(requeue, part...)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: insert on node %d: %w", w, err)
			}
			c.used[w] += len(part)
			placed += len(part)
			for i, l := range local {
				ids[part[i]] = GlobalID(w, l)
			}
		}
		// Keep the capped tail and any ErrFull retries pending.
		requeue = append(requeue, batch[offset:]...)
		pending = append(requeue, rest...)
		if placed == 0 {
			// No progress this round despite free > 0: bookkeeping and
			// reality disagree irrecoverably.
			return nil, errors.New("cluster: insert made no progress")
		}
	}
	return ids, nil
}

func (c *Cluster) windowNodes() []int {
	out := make([]int, 0, c.m)
	for i := 0; i < c.m; i++ {
		out = append(out, (c.start+i)%len(c.nodes))
	}
	return out
}

// advanceWindow moves the insert window forward by M nodes, retiring any
// node in the new window that still holds (old) data.
func (c *Cluster) advanceWindow() error {
	c.start = (c.start + c.m) % len(c.nodes)
	for i := 0; i < c.m; i++ {
		w := (c.start + i) % len(c.nodes)
		if c.used[w] > 0 {
			if err := c.nodes[w].Retire(); err != nil {
				return fmt.Errorf("cluster: retire node %d: %w", w, err)
			}
			c.used[w] = 0
		}
	}
	return nil
}

func (c *Cluster) resyncUsed(w int) {
	if st, err := c.nodes[w].Stats(); err == nil {
		c.used[w] = st.StaticLen + st.DeltaLen
	}
}

// Query answers one query by broadcast.
func (c *Cluster) Query(q sparse.Vector) ([]Neighbor, error) {
	res, _, err := c.QueryBatchTimed([]sparse.Vector{q})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// QueryBatch broadcasts the batch to every node in parallel and
// concatenates the per-node answers (§4: "individual query responses from
// each structure are concatenated by the coordinator").
func (c *Cluster) QueryBatch(qs []sparse.Vector) ([][]Neighbor, error) {
	res, _, err := c.QueryBatchTimed(qs)
	return res, err
}

// QueryBatchTimed additionally reports each node's wall time for the batch
// — the load-balance measure of Fig. 9 (max/avg ≤ 1.3 in the paper).
func (c *Cluster) QueryBatchTimed(qs []sparse.Vector) ([][]Neighbor, []time.Duration, error) {
	perNode := make([][][]Neighbor, len(c.nodes))
	times := make([]time.Duration, len(c.nodes))
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			res, err := c.nodes[i].QueryBatch(qs)
			times[i] = time.Since(t0)
			if err != nil {
				errs[i] = err
				return
			}
			conv := make([][]Neighbor, len(res))
			for qi, ns := range res {
				out := make([]Neighbor, len(ns))
				for j, nb := range ns {
					out[j] = Neighbor{Node: i, ID: nb.ID, Dist: nb.Dist}
				}
				conv[qi] = out
			}
			perNode[i] = conv
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, times, fmt.Errorf("cluster: query on node %d: %w", i, err)
		}
	}
	out := make([][]Neighbor, len(qs))
	for qi := range qs {
		var merged []Neighbor
		for i := range c.nodes {
			merged = append(merged, perNode[i][qi]...)
		}
		out[qi] = merged
	}
	return out, times, nil
}

// Delete removes a document by global ID.
func (c *Cluster) Delete(g uint64) error {
	nodeIdx, local := SplitGlobalID(g)
	if nodeIdx < 0 || nodeIdx >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d", nodeIdx)
	}
	return c.nodes[nodeIdx].Delete(local)
}

// MergeAll forces a merge on every node (used by experiments to reach a
// fully static state).
func (c *Cluster) MergeAll() error {
	for i, n := range c.nodes {
		if err := n.MergeNow(); err != nil {
			return fmt.Errorf("cluster: merge node %d: %w", i, err)
		}
	}
	return nil
}

// Stats gathers per-node snapshots.
func (c *Cluster) Stats() ([]node.Stats, error) {
	out := make([]node.Stats, len(c.nodes))
	for i, n := range c.nodes {
		st, err := n.Stats()
		if err != nil {
			return nil, fmt.Errorf("cluster: stats node %d: %w", i, err)
		}
		out[i] = st
	}
	return out, nil
}

// Close closes every node client.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
