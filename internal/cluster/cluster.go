// Package cluster implements the multi-node PLSH system of §4 and §5.3:
// a coordinator that broadcasts queries to every node and merges the
// partial answers, and a rolling window of M insert nodes that gives the
// system well-defined expiration of the oldest data.
//
// Data is partitioned by document, not by table (§5.3's "second scheme"):
// each node holds all L tables over its own subset, so queries need no
// cross-node candidate deduplication and node count scales with data size.
// Inserts go round-robin to the M window nodes; when the window's nodes
// reach capacity the window advances, and on wrap-around the nodes it
// advances onto — necessarily holding the oldest data — are retired
// (erased) before accepting new inserts (§6, Fig. 1).
//
// Unlike the paper's MPI coordinator, every operation takes a
// context.Context: a deadline or cancellation aborts a broadcast early
// instead of waiting on the slowest node, and QueryBatchTimed can trade
// completeness for latency with a per-node timeout and a partial-results
// policy.
package cluster

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// Neighbor is a cluster-level query answer: the node that holds the
// document, its node-local ID, and the angular distance.
type Neighbor struct {
	Node int
	ID   uint32
	Dist float64
}

// GlobalID packs (node, local ID) into one opaque identifier.
func GlobalID(nodeIdx int, local uint32) uint64 {
	return uint64(nodeIdx)<<32 | uint64(local)
}

// SplitGlobalID inverts GlobalID.
func SplitGlobalID(g uint64) (nodeIdx int, local uint32) {
	return int(g >> 32), uint32(g)
}

// BatchOptions is the failure policy for a broadcast.
type BatchOptions struct {
	// PerNodeTimeout bounds each node's RPC in addition to the call's
	// context deadline; zero means no extra per-node bound.
	PerNodeTimeout time.Duration
	// Partial, when set, returns the merged answers from the nodes that
	// responded instead of failing the whole batch when some did not;
	// failed or timed-out nodes are reported in the BatchReport. When
	// unset, the first node error cancels the rest of the broadcast and
	// fails the call (all-or-nothing).
	Partial bool
}

// BatchReport describes how a broadcast went: per-node wall time (the
// load-balance measure of Fig. 9; max/avg ≤ 1.3 in the paper) and
// per-node errors (nil for nodes that answered).
type BatchReport struct {
	Times []time.Duration
	Errs  []error
}

// Complete reports whether every node answered.
func (r BatchReport) Complete() bool {
	for _, err := range r.Errs {
		if err != nil {
			return false
		}
	}
	return true
}

// Stragglers lists the nodes that failed or timed out.
func (r BatchReport) Stragglers() []int {
	var out []int
	for i, err := range r.Errs {
		if err != nil {
			out = append(out, i)
		}
	}
	return out
}

// Cluster is the coordinator. Query methods may run concurrently with each
// other; Insert/Delete/Retire serialize behind an internal mutex (the
// paper's coordinator is likewise a single insertion sequencer).
type Cluster struct {
	mu    sync.Mutex
	nodes []transport.NodeClient
	caps  []int
	used  []int
	m     int // insert-window width M
	start int // first node of the current window
}

// New builds a coordinator over the given nodes with an insert window of
// windowM nodes (paper: M=4 of 100). Node capacities are read from Stats,
// in parallel, under ctx.
func New(ctx context.Context, nodes []transport.NodeClient, windowM int) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if windowM <= 0 || windowM > len(nodes) {
		windowM = min(4, len(nodes))
	}
	c := &Cluster{
		nodes: nodes,
		caps:  make([]int, len(nodes)),
		used:  make([]int, len(nodes)),
		m:     windowM,
	}
	err := c.fanOut(ctx, "stats", func(ctx context.Context, i int) error {
		st, err := c.nodes[i].Stats(ctx)
		if err != nil {
			return err
		}
		c.caps[i] = st.Capacity
		c.used[i] = st.StaticLen + st.DeltaLen
		return nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// fanOut runs f for every node concurrently, canceling the remaining
// calls on the first failure and reporting that failure (attributed to
// its node) rather than the cancellations it induced.
func (c *Cluster) fanOut(ctx context.Context, what string, f func(ctx context.Context, i int) error) error {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if errs[i] = f(fctx, i); errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err // the caller's deadline/cancellation, not a node failure
	}
	return firstNodeError(errs, what)
}

// firstNodeError classifies a per-node error slice from a broadcast whose
// siblings get canceled on the first failure: the first real failure wins
// over the cancellations it induced. Shared by fanOut and QueryBatchTimed
// so error blame stays consistent across all broadcast shapes.
func firstNodeError(errs []error, what string) error {
	var firstCancel error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if firstCancel == nil {
				firstCancel = fmt.Errorf("cluster: %s on node %d: %w", what, i, err)
			}
			continue
		}
		return fmt.Errorf("cluster: %s on node %d: %w", what, i, err)
	}
	return firstCancel
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// WindowStart returns the index of the first node in the current insert
// window (exposed for tests and monitoring).
func (c *Cluster) WindowStart() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start
}

// Insert distributes the batch round-robin over the insert window,
// advancing the window — and retiring the oldest nodes on wrap-around —
// as nodes fill (§6). The returned IDs parallel vs. Cancellation is
// checked between per-node RPCs; an aborted insert leaves the documents
// placed so far in the cluster (IDs for them are lost, as with a failed
// node).
func (c *Cluster) Insert(ctx context.Context, vs []sparse.Vector) ([]uint64, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]uint64, len(vs))
	// pending holds positions into vs still awaiting placement.
	pending := make([]int, len(vs))
	for i := range pending {
		pending[i] = i
	}
	scratch := make([]sparse.Vector, 0, len(vs))
	// Each round either places documents or advances the window (which
	// retires old data, freeing capacity). A round that does neither means
	// the cluster has no usable capacity at all.
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		window := c.windowNodes()
		free := 0
		for _, w := range window {
			free += c.caps[w] - c.used[w]
		}
		if free == 0 {
			if err := c.advanceWindow(ctx); err != nil {
				return nil, err
			}
			window = c.windowNodes()
			free = 0
			for _, w := range window {
				free += c.caps[w] - c.used[w]
			}
			if free == 0 {
				return nil, errors.New("cluster: no insertable capacity (all node capacities zero?)")
			}
		}
		// Round-robin shares: split what fits evenly over the window's
		// non-full nodes; anything a node cannot take (its even share
		// exceeds its space) stays pending for the next round.
		fit := min(len(pending), free)
		batch := pending[:fit]
		rest := pending[fit:]
		live := 0
		for _, w := range window {
			if c.caps[w] > c.used[w] {
				live++
			}
		}
		offset := 0
		placed := 0
		var requeue []int
		for _, w := range window {
			space := c.caps[w] - c.used[w]
			if space == 0 || offset == len(batch) {
				continue
			}
			share := (len(batch) - offset + live - 1) / live
			live--
			if share > space {
				share = space
			}
			if share == 0 {
				continue
			}
			part := batch[offset : offset+share]
			offset += share
			scratch = scratch[:0]
			for _, pos := range part {
				scratch = append(scratch, vs[pos])
			}
			local, err := c.nodes[w].Insert(ctx, scratch)
			if errors.Is(err, node.ErrFull) {
				// Bookkeeping drift (shouldn't happen): resync and retry
				// this part in a later round.
				c.resyncUsed(ctx, w)
				requeue = append(requeue, part...)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: insert on node %d: %w", w, err)
			}
			c.used[w] += len(part)
			placed += len(part)
			for i, l := range local {
				ids[part[i]] = GlobalID(w, l)
			}
		}
		// Keep the capped tail and any ErrFull retries pending.
		requeue = append(requeue, batch[offset:]...)
		pending = append(requeue, rest...)
		if placed == 0 {
			// No progress this round despite free > 0: bookkeeping and
			// reality disagree irrecoverably.
			return nil, errors.New("cluster: insert made no progress")
		}
	}
	return ids, nil
}

func (c *Cluster) windowNodes() []int {
	out := make([]int, 0, c.m)
	for i := 0; i < c.m; i++ {
		out = append(out, (c.start+i)%len(c.nodes))
	}
	return out
}

// advanceWindow moves the insert window forward by M nodes, retiring any
// node in the new window that still holds (old) data.
func (c *Cluster) advanceWindow(ctx context.Context) error {
	c.start = (c.start + c.m) % len(c.nodes)
	for i := 0; i < c.m; i++ {
		w := (c.start + i) % len(c.nodes)
		if c.used[w] > 0 {
			if err := c.nodes[w].Retire(ctx); err != nil {
				return fmt.Errorf("cluster: retire node %d: %w", w, err)
			}
			c.used[w] = 0
		}
	}
	return nil
}

func (c *Cluster) resyncUsed(ctx context.Context, w int) {
	if st, err := c.nodes[w].Stats(ctx); err == nil {
		c.used[w] = st.StaticLen + st.DeltaLen
	}
}

// Search broadcasts a batch under request-scoped parameters and opts'
// failure policy, and reports each node's wall time and outcome. It is
// the one query path of the coordinator: every node answers the whole
// batch through its Search entry point (per-query radius and candidate
// budget applied node-side, answers pruned to p.K per node when bounded),
// and the coordinator k-way-merges the per-node sorted partial lists per
// query — bounded-heap selection of the global k best when p.K is set,
// a full ordered merge otherwise. Answers come back in canonical
// ascending (distance, node, id) order.
//
// Cancellation of ctx aborts the whole broadcast early with ctx.Err().
// Under the default all-or-nothing policy the first node failure cancels
// the remaining in-flight RPCs; with opts.Partial the broadcast runs to
// completion (each node bounded by opts.PerNodeTimeout, if set), answers
// from responding nodes are merged, and stragglers show up only in the
// report — the production trade of a complete answer for bounded latency.
func (c *Cluster) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams, opts BatchOptions) ([][]Neighbor, BatchReport, error) {
	report := BatchReport{
		Times: make([]time.Duration, len(c.nodes)),
		Errs:  make([]error, len(c.nodes)),
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	perNode := make([][][]core.Neighbor, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nctx := bctx
			if opts.PerNodeTimeout > 0 {
				var ncancel context.CancelFunc
				nctx, ncancel = context.WithTimeout(bctx, opts.PerNodeTimeout)
				defer ncancel()
			}
			t0 := time.Now()
			res, err := c.nodes[i].Search(nctx, qs, p)
			report.Times[i] = time.Since(t0)
			if err != nil {
				report.Errs[i] = err
				if !opts.Partial {
					cancel() // abort the rest of the broadcast
				}
				return
			}
			perNode[i] = res
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	firstErr := firstNodeError(report.Errs, "search")
	answered := 0
	realFailure := false
	for _, err := range report.Errs {
		if err == nil {
			answered++
		} else if !errors.Is(err, context.Canceled) {
			realFailure = true
		}
	}
	// In all-or-nothing mode the first failure cancels its siblings; those
	// induced cancellations are casualties, not stragglers — drop them so
	// the report blames only the node that actually failed.
	if !opts.Partial && realFailure {
		for i, err := range report.Errs {
			if err != nil && errors.Is(err, context.Canceled) {
				report.Errs[i] = nil
			}
		}
	}
	if firstErr != nil && (!opts.Partial || answered == 0) {
		return nil, report, firstErr
	}
	out := make([][]Neighbor, len(qs))
	lists := make([][]core.Neighbor, len(c.nodes))
	for qi := range qs {
		total := 0
		for i := range c.nodes {
			lists[i] = nil
			if perNode[i] != nil {
				lists[i] = perNode[i][qi]
				total += len(lists[i])
			}
		}
		if total == 0 {
			continue
		}
		k := p.K
		if k <= 0 {
			k = total // unbounded: a full ordered merge
		}
		out[qi] = mergeTopK(lists, k)
	}
	return out, report, nil
}

// Query answers one query by broadcast.
//
// Deprecated: use Search.
func (c *Cluster) Query(ctx context.Context, q sparse.Vector) ([]Neighbor, error) {
	res, _, err := c.Search(ctx, []sparse.Vector{q}, node.SearchParams{}, BatchOptions{})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// QueryBatch broadcasts the batch to every node in parallel and merges
// the per-node answers, all-or-nothing.
//
// Deprecated: use Search.
func (c *Cluster) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]Neighbor, error) {
	res, _, err := c.Search(ctx, qs, node.SearchParams{}, BatchOptions{})
	return res, err
}

// QueryBatchTimed broadcasts the batch under opts' failure policy and
// reports each node's wall time and outcome.
//
// Deprecated: use Search, which carries the same policy plus the
// request-scoped query parameters.
func (c *Cluster) QueryBatchTimed(ctx context.Context, qs []sparse.Vector, opts BatchOptions) ([][]Neighbor, BatchReport, error) {
	return c.Search(ctx, qs, node.SearchParams{}, opts)
}

// QueryTopK answers one query with the k nearest of its R-near neighbors
// cluster-wide.
//
// Deprecated: use Search with SearchParams.K.
func (c *Cluster) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	res, _, err := c.Search(ctx, []sparse.Vector{q}, node.SearchParams{K: k}, BatchOptions{})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Doc fetches the stored vector for a global ID from the node that holds
// it, with the node's authoritative answer to whether the local id was
// ever inserted. A global ID naming a nonexistent node is simply unknown
// — (zero, false, nil), matching an unknown local id — while a transport
// failure is an error.
func (c *Cluster) Doc(ctx context.Context, g uint64) (sparse.Vector, bool, error) {
	nodeIdx, local := SplitGlobalID(g)
	if nodeIdx < 0 || nodeIdx >= len(c.nodes) {
		return sparse.Vector{}, false, nil
	}
	v, known, err := c.nodes[nodeIdx].Doc(ctx, local)
	if err != nil {
		return sparse.Vector{}, false, fmt.Errorf("cluster: doc on node %d: %w", nodeIdx, err)
	}
	return v, known, nil
}

// topkCursor walks one node's sorted partial list during the merge.
type topkCursor struct {
	node int
	list []core.Neighbor
	pos  int
}

func (c *topkCursor) head() core.Neighbor { return c.list[c.pos] }

// topkHeap is a min-heap of cursors ordered by their heads' (Dist, Node,
// ID) — the cluster-wide presentation order.
type topkHeap []*topkCursor

func (h topkHeap) Len() int { return len(h) }
func (h topkHeap) Less(i, j int) bool {
	a, b := h[i].head(), h[j].head()
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if h[i].node != h[j].node {
		return h[i].node < h[j].node
	}
	return a.ID < b.ID
}
func (h topkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)   { *h = append(*h, x.(*topkCursor)) }
func (h *topkHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// mergeTopK k-way-merges per-node ascending lists into the global top k.
func mergeTopK(perNode [][]core.Neighbor, k int) []Neighbor {
	h := make(topkHeap, 0, len(perNode))
	for i, list := range perNode {
		if len(list) > 0 {
			h = append(h, &topkCursor{node: i, list: list})
		}
	}
	heap.Init(&h)
	out := make([]Neighbor, 0, k)
	for len(h) > 0 && len(out) < k {
		cur := h[0]
		nb := cur.head()
		out = append(out, Neighbor{Node: cur.node, ID: nb.ID, Dist: nb.Dist})
		cur.pos++
		if cur.pos == len(cur.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// Delete removes a document by global ID. A global ID that names a
// nonexistent node or a never-inserted local ID returns an error wrapping
// node.ErrNotFound, so callers can tell a bad ID from a transport
// failure.
func (c *Cluster) Delete(ctx context.Context, g uint64) error {
	nodeIdx, local := SplitGlobalID(g)
	if nodeIdx < 0 || nodeIdx >= len(c.nodes) {
		return fmt.Errorf("cluster: no node %d: %w", nodeIdx, node.ErrNotFound)
	}
	return c.nodes[nodeIdx].Delete(ctx, local)
}

// MergeAll drives every node to a fully static state in parallel. Under
// the nodes' snapshot concurrency model each per-node merge runs as a
// background rebuild — MergeNow only waits for quiescence — so broadcasts
// issued while MergeAll is in flight keep being answered from the nodes'
// pre-merge snapshots instead of buffering behind the rebuilds.
func (c *Cluster) MergeAll(ctx context.Context) error {
	return c.fanOut(ctx, "merge", func(ctx context.Context, i int) error {
		return c.nodes[i].MergeNow(ctx)
	})
}

// FlushAll waits, in parallel, for every node's in-flight background merge
// (if any) to finish without forcing new ones — the barrier callers use to
// read settled Stats after streaming inserts.
func (c *Cluster) FlushAll(ctx context.Context) error {
	return c.fanOut(ctx, "flush", func(ctx context.Context, i int) error {
		return c.nodes[i].Flush(ctx)
	})
}

// SaveAll checkpoints every node's data directory in parallel — the
// cluster-wide durability barrier: when it returns nil, every node's
// state is a snapshot plus an empty journal, and a restart of any (or
// every) node recovers exactly the acknowledged cluster contents.
func (c *Cluster) SaveAll(ctx context.Context) error {
	return c.fanOut(ctx, "save", func(ctx context.Context, i int) error {
		return c.nodes[i].Save(ctx)
	})
}

// Stats gathers per-node snapshots in parallel.
func (c *Cluster) Stats(ctx context.Context) ([]node.Stats, error) {
	out := make([]node.Stats, len(c.nodes))
	err := c.fanOut(ctx, "stats", func(ctx context.Context, i int) error {
		st, err := c.nodes[i].Stats(ctx)
		if err != nil {
			return err
		}
		out[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close closes every node client.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
