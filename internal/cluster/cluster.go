// Package cluster implements the multi-node PLSH system of §4 and §5.3:
// a coordinator that broadcasts queries to every replica group and merges
// the partial answers, and a rolling window of M insert groups that gives
// the system well-defined expiration of the oldest data.
//
// Data is partitioned by document, not by table (§5.3's "second scheme"):
// each group holds all L tables over its own subset, so queries need no
// cross-node candidate deduplication and group count scales with data
// size. Inserts go round-robin to the M window groups; when the window's
// groups reach capacity the window advances, and on wrap-around the groups
// it advances onto — necessarily holding the oldest data — are retired
// (erased) before accepting new inserts (§6, Fig. 1).
//
// The paper runs every shard single-copy and simply loses a dead node's
// documents (§6). This coordinator instead arranges its N endpoints into
// N/R replica groups of R mirrored members each (R = 1 reproduces the
// paper exactly): inserts are written to every member of the target group
// — journal-before-ack on each durable member — while a search sends each
// group's sub-query to one preferred member, fails over to the next on
// error or timeout, and can optionally hedge a slow member with a raced
// second request (BatchOptions.Hedge, the "tail at scale" trade). Answers
// are replica-agnostic: members are deterministic mirrors (identical
// batches in identical order under one hash-family seed), so any member
// of a group returns the same (id, distance) list.
//
// Unlike the paper's MPI coordinator, every operation takes a
// context.Context: a deadline or cancellation aborts a broadcast early
// instead of waiting on the slowest node, and Search can trade
// completeness for latency with a per-node timeout and a partial-results
// policy.
package cluster

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"plsh/internal/core"
	"plsh/internal/node"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// Neighbor is a cluster-level query answer: the replica group that holds
// the document, its group-local ID, and the angular distance. With
// Replicas = 1 the group index is exactly the node index.
type Neighbor struct {
	Node int // replica-group index (node index when Replicas = 1)
	ID   uint32
	Dist float64
}

// GlobalID packs (group, local ID) into one opaque identifier. With
// Replicas = 1 the group index is the node index, so single-copy IDs are
// bit-identical to the pre-replication layout.
func GlobalID(group int, local uint32) uint64 {
	return uint64(group)<<32 | uint64(local)
}

// SplitGlobalID inverts GlobalID.
func SplitGlobalID(g uint64) (group int, local uint32) {
	return int(g >> 32), uint32(g)
}

// BatchOptions is the failure policy for a broadcast.
type BatchOptions struct {
	// PerNodeTimeout bounds each replica attempt's RPC in addition to the
	// call's context deadline; zero means no extra per-attempt bound. A
	// timed-out attempt fails over to the group's next replica like any
	// other failure.
	PerNodeTimeout time.Duration
	// Partial, when set, returns the merged answers from the groups that
	// responded instead of failing the whole batch when some did not;
	// failed or timed-out groups are reported in the BatchReport. When
	// unset, the first group failure (every replica exhausted) cancels the
	// rest of the broadcast and fails the call (all-or-nothing).
	Partial bool
	// Hedge, when > 0 on a replicated cluster, arms the tail-latency
	// hedge: if a group's preferred replica has not answered within Hedge,
	// the next replica is raced against it and the first complete answer
	// wins. The loser is canceled. No-op with Replicas = 1.
	Hedge time.Duration
	// Trace, when set, materializes BatchReport.Attempts — the per-replica
	// RPC trace behind Failovers and HedgesWon. Off (the default) the
	// broadcast records nothing per attempt, keeping the hot path free of
	// bookkeeping allocations; failover and hedging behave identically
	// either way.
	Trace bool
}

// Attempt is one replica RPC of a broadcast: which group and member it
// went to, why it was launched (first try, failover, or hedge), how long
// it ran, and how it ended. The winning attempt of each group has Won set
// and a nil Err.
type Attempt struct {
	Group   int           // replica group the attempt belongs to
	Replica int           // member index within the group
	Node    int           // global endpoint index (Group·R + Replica)
	Hedged  bool          // launched by the hedge timer, not by a failure
	Won     bool          // this attempt's answer was used
	Time    time.Duration // wall time of this attempt's RPC
	Err     error         // nil for the winner; the failure otherwise
}

// BatchReport describes how a broadcast went: per-group wall time until
// the group resolved (the load-balance measure of Fig. 9; max/avg ≤ 1.3
// in the paper), per-group errors (nil for groups that answered), and the
// full per-attempt trace — which replica answered, which failed over,
// which hedges won.
type BatchReport struct {
	Times []time.Duration
	Errs  []error
	// Attempts lists the replica RPCs observed before each group
	// resolved, grouped by group — recorded only when the request asked
	// for it (BatchOptions.Trace; WithTrace at the public surface), nil
	// otherwise. A losing attempt still in flight when its group's answer
	// lands (a hedged-out primary, a cancellation casualty) is canceled
	// without being recorded, so this is the trace of outcomes the
	// broadcast acted on, not an exhaustive RPC log. With Replicas = 1 it
	// is one attempt per node.
	Attempts []Attempt
	// RoutedGroups and PrunedGroups measure data-aware routing on a
	// partitioned-placement cluster, recorded only when the request asked
	// for the trace (BatchOptions.Trace): summed over the batch's queries,
	// RoutedGroups counts the (query, group) probe pairs the router
	// contacted and PrunedGroups the pairs it proved unnecessary — they
	// always sum to len(queries)·groups. A query whose probe set
	// degenerated falls back to the full broadcast and contributes every
	// group to RoutedGroups. Both are zero on a scatter-placement cluster
	// (a broadcast probes everything by definition) and on untraced calls.
	RoutedGroups int
	PrunedGroups int
}

// Complete reports whether every group answered.
func (r BatchReport) Complete() bool {
	for _, err := range r.Errs {
		if err != nil {
			return false
		}
	}
	return true
}

// Stragglers lists the groups that failed or timed out (every replica
// exhausted).
func (r BatchReport) Stragglers() []int {
	var out []int
	for i, err := range r.Errs {
		if err != nil {
			out = append(out, i)
		}
	}
	return out
}

// Failovers counts attempts launched because an earlier replica of the
// same group failed (hedges excluded). It reads the Attempts trace, so it
// reports 0 unless the broadcast ran with Trace set.
func (r BatchReport) Failovers() int {
	primary := map[int]bool{}
	n := 0
	for _, a := range r.Attempts {
		if a.Hedged {
			continue
		}
		if primary[a.Group] {
			n++
		} else {
			primary[a.Group] = true
		}
	}
	return n
}

// HedgesWon counts hedged attempts whose answer won their group — the
// searches the hedge actually rescued from a slow replica. It reads the
// Attempts trace, so it reports 0 unless the broadcast ran with Trace set.
func (r BatchReport) HedgesWon() int {
	n := 0
	for _, a := range r.Attempts {
		if a.Hedged && a.Won {
			n++
		}
	}
	return n
}

// InsertError reports a batch insert that failed midway. The documents
// already written when the failure hit are not lost: Placed[i] is true
// exactly when docs[i] was durably accepted by every member of its group
// before the error, and IDs[i] is then its global ID (IDs[i] is
// meaningless where Placed[i] is false). Unwrap exposes the underlying
// cause, so errors.Is(err, context.Canceled) and friends keep working.
type InsertError struct {
	IDs    []uint64
	Placed []bool
	Err    error
}

func (e *InsertError) Error() string {
	n := 0
	for _, p := range e.Placed {
		if p {
			n++
		}
	}
	return fmt.Sprintf("cluster: insert failed with %d/%d documents durably placed: %v",
		n, len(e.Placed), e.Err)
}

func (e *InsertError) Unwrap() error { return e.Err }

// Cluster is the coordinator. Query methods may run concurrently with each
// other; Insert/Delete/Retire serialize behind an internal mutex (the
// paper's coordinator is likewise a single insertion sequencer).
type Cluster struct {
	mu     sync.Mutex
	nodes  []transport.NodeClient // group-major: group g is nodes[g·r : (g+1)·r]
	r      int                    // replicas per group
	groups int                    // len(nodes) / r
	caps   []int                  // per group: min member capacity
	used   []int                  // per group: rows held (mirrored, so one number)
	m      int                    // insert-window width M, in groups
	start  int                    // first group of the current window

	// placement/router select the data-placement mode; router is non-nil
	// exactly when placement is PlacementPartitioned. Both are immutable
	// after construction, so the search path reads them without the lock.
	placement Placement
	router    *Router

	// rr rotates the preferred replica across searches so read load
	// spreads over a group's members.
	rr atomic.Uint32

	// Always-on coordinator telemetry: cheap atomics on the search path,
	// independent of opts.Trace, read through CoordStats. The soak harness
	// correlates client-observed tails with these (failovers during kill
	// windows, hedges fired under merge pressure).
	searches       atomic.Uint64 // batches answered (Search + routed)
	queriesServed  atomic.Uint64 // individual queries across those batches
	failovers      atomic.Uint64 // attempts launched because a replica failed
	hedgesLaunched atomic.Uint64 // attempts launched by the hedge timer
	hedgesWon      atomic.Uint64 // hedged attempts whose answer won the group
	groupFailures  atomic.Uint64 // groups that exhausted every replica

	// batchPool recycles Search answer buffers (the [][]Neighbor and the
	// per-query backing arrays inside) between broadcasts; see
	// ReleaseResults for the ownership contract.
	batchPool sync.Pool
}

// bcastScratch is the per-call fan-out state of Search — per-group
// answer pointers and winning clients — recycled across broadcasts so a
// warmed coordinator fans out without allocating. Entries are zeroed
// before the scratch returns to the pool, so no node answer buffer is
// retained past its release.
//
//plshvet:frame
type bcastScratch struct {
	perGroup [][][]core.Neighbor
	winners  []transport.NodeClient
}

var bcastPool = sync.Pool{New: func() any { return new(bcastScratch) }}

// New builds a single-copy coordinator (Replicas = 1) over the given
// nodes with an insert window of windowM nodes (paper: M=4 of 100).
func New(ctx context.Context, nodes []transport.NodeClient, windowM int) (*Cluster, error) {
	return NewReplicated(ctx, nodes, windowM, 1)
}

// NewReplicated builds a coordinator that arranges the endpoints into
// len(nodes)/replicas groups of replicas mirrored members each — members
// of one group are adjacent (group-major), and windowM counts groups.
// len(nodes) must be divisible by replicas. Group capacities are read
// from member Stats, in parallel, under ctx: a group's capacity is its
// smallest member's, and its occupancy the largest member's, so a drifted
// fleet is never over-filled.
func NewReplicated(ctx context.Context, nodes []transport.NodeClient, windowM, replicas int) (*Cluster, error) {
	return NewWithOptions(ctx, nodes, Options{WindowM: windowM, Replicas: replicas})
}

// Options configures a coordinator beyond the basic replicated layout.
// The zero value reproduces New's defaults: scatter placement, one
// replica per group, a window of min(4, groups).
type Options struct {
	// WindowM is the rolling insert window width, in groups; out-of-range
	// values fall back to min(4, groups). Unused under partitioned
	// placement, where documents live where their signature says.
	WindowM int
	// Replicas is R, the mirrored members per group; 0 means 1.
	Replicas int
	// Placement selects the data-placement / query-routing mode; see the
	// Placement constants. PlacementScatter is the default.
	Placement Placement
	// Router computes signature→group placement and per-query probe sets.
	// Required when Placement is PlacementPartitioned (its group count
	// must match the layout), ignored otherwise.
	Router *Router
}

// NewWithOptions builds a coordinator under opts; see NewReplicated for
// the layout and capacity-discovery rules it shares.
func NewWithOptions(ctx context.Context, nodes []transport.NodeClient, opts Options) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if len(nodes)%replicas != 0 {
		return nil, fmt.Errorf("cluster: %d nodes cannot form groups of %d replicas", len(nodes), replicas)
	}
	groups := len(nodes) / replicas
	windowM := opts.WindowM
	if windowM <= 0 || windowM > groups {
		windowM = min(4, groups)
	}
	c := &Cluster{
		nodes:     nodes,
		r:         replicas,
		groups:    groups,
		caps:      make([]int, groups),
		used:      make([]int, groups),
		m:         windowM,
		placement: opts.Placement,
		router:    opts.Router,
	}
	switch opts.Placement {
	case PlacementScatter:
		c.router = nil // scatter never routes, whatever the caller passed
	case PlacementPartitioned:
		if opts.Router == nil {
			return nil, errors.New("cluster: partitioned placement needs a Router")
		}
		if opts.Router.Groups() != groups {
			return nil, fmt.Errorf("cluster: router placed for %d groups, cluster has %d",
				opts.Router.Groups(), groups)
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement %d", opts.Placement)
	}
	memberCaps := make([]int, len(nodes))
	memberUsed := make([]int, len(nodes))
	err := c.fanOut(ctx, "stats", func(ctx context.Context, i int) error {
		st, err := c.nodes[i].Stats(ctx)
		if err != nil {
			return err
		}
		memberCaps[i] = st.Capacity
		memberUsed[i] = st.StaticLen + st.DeltaLen
		return nil
	})
	if err != nil {
		return nil, err
	}
	for g := 0; g < groups; g++ {
		c.caps[g] = memberCaps[g*replicas]
		c.used[g] = memberUsed[g*replicas]
		for j := 1; j < replicas; j++ {
			c.caps[g] = min(c.caps[g], memberCaps[g*replicas+j])
			c.used[g] = max(c.used[g], memberUsed[g*replicas+j])
		}
	}
	return c, nil
}

// member returns group g's j-th replica client.
func (c *Cluster) member(g, j int) transport.NodeClient { return c.nodes[g*c.r+j] }

// nodeIndex maps (group, replica) to the global endpoint index.
func (c *Cluster) nodeIndex(g, j int) int { return g*c.r + j }

// fanOut runs f for every endpoint concurrently, canceling the remaining
// calls on the first failure and reporting that failure (attributed to
// its node) rather than the cancellations it induced.
func (c *Cluster) fanOut(ctx context.Context, what string, f func(ctx context.Context, i int) error) error {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i := range c.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if errs[i] = f(fctx, i); errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err // the caller's deadline/cancellation, not a node failure
	}
	return firstError(errs, what, "node")
}

// firstError classifies a per-unit error slice from a broadcast whose
// siblings get canceled on the first failure: the first real failure wins
// over the cancellations it induced. Shared by fanOut (unit "node") and
// Search (unit "group") so error blame stays consistent across all
// broadcast shapes.
func firstError(errs []error, what, unit string) error {
	var firstCancel error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) {
			if firstCancel == nil {
				firstCancel = fmt.Errorf("cluster: %s on %s %d: %w", what, unit, i, err)
			}
			continue
		}
		return fmt.Errorf("cluster: %s on %s %d: %w", what, unit, i, err)
	}
	return firstCancel
}

// NumNodes returns the endpoint count (groups × replicas).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NumGroups returns the replica-group count — the unit of data placement,
// global IDs, and broadcast reports.
func (c *Cluster) NumGroups() int { return c.groups }

// Replicas returns R, the mirrored members per group.
func (c *Cluster) Replicas() int { return c.r }

// Placement returns the cluster's data-placement mode.
func (c *Cluster) Placement() Placement { return c.placement }

// WindowStart returns the index of the first group in the current insert
// window (exposed for tests and monitoring).
func (c *Cluster) WindowStart() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.start
}

// Insert distributes the batch round-robin over the insert window,
// advancing the window — and retiring the oldest groups on wrap-around —
// as groups fill (§6). Every document is written to all members of its
// target group (journal-before-ack on each durable member), so a later
// single-member loss costs no answers. The returned IDs parallel vs.
//
// A failure midway — a member error, a canceled context between per-group
// RPCs — returns an *InsertError whose Placed/IDs report exactly which
// documents were durably accepted by their whole group before the error,
// so the caller knows what the cluster holds instead of guessing.
func (c *Cluster) Insert(ctx context.Context, vs []sparse.Vector) ([]uint64, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.placement == PlacementPartitioned {
		//plshvet:ignore lockorder single insertion sequencer: c.mu serializes inserts and their replica RPCs by design; the query path never takes it
		return c.insertPartitioned(ctx, vs)
	}
	ids := make([]uint64, len(vs))
	placed := make([]bool, len(vs))
	fail := func(err error) error { return &InsertError{IDs: ids, Placed: placed, Err: err} }
	// pending holds positions into vs still awaiting placement.
	pending := make([]int, len(vs))
	for i := range pending {
		pending[i] = i
	}
	scratch := make([]sparse.Vector, 0, len(vs))
	// Each round either places documents or advances the window (which
	// retires old data, freeing capacity). A round that does neither means
	// the cluster has no usable capacity at all.
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fail(err)
		}
		window := c.windowGroups()
		free := 0
		for _, w := range window {
			free += c.caps[w] - c.used[w]
		}
		if free == 0 {
			//plshvet:ignore lockorder single insertion sequencer: retirement RPCs run under c.mu so the window advances atomically against other inserts
			if err := c.advanceWindow(ctx); err != nil {
				return nil, fail(err)
			}
			window = c.windowGroups()
			free = 0
			for _, w := range window {
				free += c.caps[w] - c.used[w]
			}
			if free == 0 {
				return nil, fail(errors.New("cluster: no insertable capacity (all group capacities zero?)"))
			}
		}
		// Round-robin shares: split what fits evenly over the window's
		// non-full groups; anything a group cannot take (its even share
		// exceeds its space) stays pending for the next round.
		fit := min(len(pending), free)
		batch := pending[:fit]
		rest := pending[fit:]
		live := 0
		for _, w := range window {
			if c.caps[w] > c.used[w] {
				live++
			}
		}
		offset := 0
		placedThisRound := 0
		var requeue []int
		for _, w := range window {
			space := c.caps[w] - c.used[w]
			if space == 0 || offset == len(batch) {
				continue
			}
			share := (len(batch) - offset + live - 1) / live
			live--
			if share > space {
				share = space
			}
			if share == 0 {
				continue
			}
			part := batch[offset : offset+share]
			offset += share
			scratch = scratch[:0]
			for _, pos := range part {
				scratch = append(scratch, vs[pos])
			}
			//plshvet:ignore lockorder single insertion sequencer: replica broadcast RPCs run under c.mu by design; queries never take this lock
			local, err := c.insertGroup(ctx, w, scratch)
			if errors.Is(err, node.ErrFull) {
				// Bookkeeping drift (shouldn't happen): resync and retry
				// this part in a later round.
				//plshvet:ignore lockorder single insertion sequencer: stats resync must see a quiesced used-count, so it stays under c.mu
				c.resyncUsed(ctx, w)
				requeue = append(requeue, part...)
				continue
			}
			if err != nil {
				return nil, fail(fmt.Errorf("cluster: insert on group %d: %w", w, err))
			}
			c.used[w] += len(part)
			placedThisRound += len(part)
			for i, l := range local {
				ids[part[i]] = GlobalID(w, l)
				placed[part[i]] = true
			}
		}
		// Keep the capped tail and any ErrFull retries pending.
		requeue = append(requeue, batch[offset:]...)
		pending = append(requeue, rest...)
		if placedThisRound == 0 {
			// No progress this round despite free > 0: bookkeeping and
			// reality disagree irrecoverably.
			return nil, fail(errors.New("cluster: insert made no progress"))
		}
	}
	return ids, nil
}

// insertPartitioned places each document on the group its LSH signature
// names (Router.GroupFor) instead of round-robin over the window — the
// invariant routed searches depend on, so there is no spill-over: a full
// target group fails the insert with an *InsertError wrapping
// node.ErrFull that names the group, and already-written groups stay
// placed (Placed/IDs report them exactly). Partitioned placement has no
// rolling window and never retires old groups; capacity is per group,
// so provision headroom above the expected hash balance. Called with
// c.mu held.
func (c *Cluster) insertPartitioned(ctx context.Context, vs []sparse.Vector) ([]uint64, error) {
	ids := make([]uint64, len(vs))
	placed := make([]bool, len(vs))
	fail := func(err error) error { return &InsertError{IDs: ids, Placed: placed, Err: err} }
	// Route first — placement is a pure function of each document — then
	// write group by group so each mirrored batch is one insertGroup call.
	perGroup := make([][]int, c.groups)
	for i := range vs {
		g := c.router.GroupFor(vs[i])
		perGroup[g] = append(perGroup[g], i)
	}
	scratch := make([]sparse.Vector, 0, len(vs))
	for g, part := range perGroup {
		if len(part) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fail(err)
		}
		if c.used[g]+len(part) > c.caps[g] {
			return nil, fail(fmt.Errorf(
				"cluster: group %d cannot take %d routed documents (%d/%d used): %w",
				g, len(part), c.used[g], c.caps[g], node.ErrFull))
		}
		scratch = scratch[:0]
		for _, pos := range part {
			scratch = append(scratch, vs[pos])
		}
		local, err := c.insertGroup(ctx, g, scratch)
		if errors.Is(err, node.ErrFull) {
			// Bookkeeping drift: the group holds more than we thought.
			c.resyncUsed(ctx, g)
			return nil, fail(fmt.Errorf("cluster: insert on group %d: %w", g, err))
		}
		if err != nil {
			return nil, fail(fmt.Errorf("cluster: insert on group %d: %w", g, err))
		}
		c.used[g] += len(part)
		for i, l := range local {
			ids[part[i]] = GlobalID(g, l)
			placed[part[i]] = true
		}
	}
	return ids, nil
}

// insertGroup mirrors one batch onto every member of group g in parallel
// and returns the agreed node-local IDs. Members are deterministic
// mirrors — each receives identical batches in identical order — so the
// per-member ID slices must agree; a divergence is replica drift and
// fails the insert. ErrFull is returned only when every member reports it
// (mirrors fill in lockstep); any other member failure fails the group
// insert, and the batch may then be held by some members but not others —
// the drift Insert's *InsertError makes visible to the caller.
func (c *Cluster) insertGroup(ctx context.Context, g int, vs []sparse.Vector) ([]uint32, error) {
	if c.r == 1 {
		return c.member(g, 0).Insert(ctx, vs)
	}
	perMember := make([][]uint32, c.r)
	errs := make([]error, c.r)
	var wg sync.WaitGroup
	for j := 0; j < c.r; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			perMember[j], errs[j] = c.member(g, j).Insert(ctx, vs)
		}(j)
	}
	wg.Wait()
	allFull := true
	for _, err := range errs {
		if !errors.Is(err, node.ErrFull) {
			allFull = false
			break
		}
	}
	if allFull {
		return nil, node.ErrFull
	}
	for j, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, node.ErrFull) {
			// Some members are full but their mirrors are not: replica
			// drift, not a full group. Hide the ErrFull sentinel (%v, not
			// %w) so Insert's resync-and-retry path cannot re-send a batch
			// that the non-full mirrors already accepted and duplicate it.
			return nil, fmt.Errorf("replica drift: node %d reports full, its mirrors do not (%v)",
				c.nodeIndex(g, j), err)
		}
		return nil, fmt.Errorf("replica %d (node %d): %w", j, c.nodeIndex(g, j), err)
	}
	for j := 1; j < c.r; j++ {
		if !slices.Equal(perMember[j], perMember[0]) {
			return nil, fmt.Errorf("replica drift: node %d assigned different ids than node %d",
				c.nodeIndex(g, j), c.nodeIndex(g, 0))
		}
	}
	return perMember[0], nil
}

func (c *Cluster) windowGroups() []int {
	out := make([]int, 0, c.m)
	for i := 0; i < c.m; i++ {
		out = append(out, (c.start+i)%c.groups)
	}
	return out
}

// advanceWindow moves the insert window forward by M groups, retiring
// every member of any group in the new window that still holds (old)
// data. Retirement must reach all members — a member that cannot be
// retired would keep answering with expired documents — so a dead member
// fails the advance (and the Insert that triggered it).
func (c *Cluster) advanceWindow(ctx context.Context) error {
	c.start = (c.start + c.m) % c.groups
	for i := 0; i < c.m; i++ {
		w := (c.start + i) % c.groups
		if c.used[w] == 0 {
			continue
		}
		for j := 0; j < c.r; j++ {
			if err := c.member(w, j).Retire(ctx); err != nil {
				return fmt.Errorf("cluster: retire node %d: %w", c.nodeIndex(w, j), err)
			}
		}
		c.used[w] = 0
	}
	return nil
}

// resyncUsed refreshes a group's occupancy as the maximum over every
// member that answers — the same rule NewReplicated applies, and it only
// matters here, on the drift path, where mirrors disagree: counting the
// emptiest member would keep the group looking insertable while its
// fullest member keeps rejecting.
func (c *Cluster) resyncUsed(ctx context.Context, g int) {
	used, answered := 0, false
	for j := 0; j < c.r; j++ {
		if st, err := c.member(g, j).Stats(ctx); err == nil {
			used = max(used, st.StaticLen+st.DeltaLen)
			answered = true
		}
	}
	if answered {
		c.used[g] = used
	}
}

// attemptResult carries one replica RPC's outcome back to the group's
// failover loop.
type attemptResult struct {
	replica int
	hedged  bool
	res     [][]core.Neighbor
	dur     time.Duration
	err     error
}

// searchGroup answers one group's share of a broadcast through its
// failover/hedge state machine: the sub-query goes to the preferred
// replica (rotated across searches for load spread); a failure launches
// the next replica; with opts.Hedge set, a replica that is merely slow is
// raced by the next one after the hedge delay and the first complete
// answer wins. Losers are canceled on resolution. The group fails only
// when every replica has been tried and failed. On success the winning
// member's client is returned alongside its answer so the caller can hand
// the answer buffers back to it (transport.Releaser) after the merge; the
// attempt trace is recorded only under opts.Trace.
func (c *Cluster) searchGroup(ctx context.Context, g int, qs []sparse.Vector, p node.SearchParams, opts BatchOptions) ([][]core.Neighbor, transport.NodeClient, []Attempt, error) {
	if c.r == 1 && opts.Hedge <= 0 {
		// Single-copy fast path: no failover state machine to run, so the
		// member is called inline — no extra goroutine, channel, or cancel
		// context per group.
		actx := ctx
		if opts.PerNodeTimeout > 0 {
			var acancel context.CancelFunc
			actx, acancel = context.WithTimeout(ctx, opts.PerNodeTimeout)
			defer acancel()
		}
		member := c.member(g, 0)
		t0 := time.Now()
		res, err := member.Search(actx, qs, p)
		var attempts []Attempt
		if opts.Trace {
			attempts = []Attempt{{Group: g, Node: g, Won: err == nil, Time: time.Since(t0), Err: err}}
		}
		if err != nil {
			c.groupFailures.Add(1)
			return nil, nil, attempts, err
		}
		return res, member, attempts, nil
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing attempts once the group resolves
	order := make([]int, c.r)
	pref := 0
	if c.r > 1 {
		pref = int(c.rr.Add(1)-1) % c.r
	}
	for j := range order {
		order[j] = (pref + j) % c.r
	}
	// Buffered to the maximum attempt count: a late loser's send never
	// blocks, so no goroutine outlives the group unobserved.
	results := make(chan attemptResult, c.r)
	next, inflight := 0, 0
	launch := func(hedged bool) {
		replica := order[next]
		next++
		inflight++
		go func() {
			actx := gctx
			if opts.PerNodeTimeout > 0 {
				var acancel context.CancelFunc
				actx, acancel = context.WithTimeout(gctx, opts.PerNodeTimeout)
				defer acancel()
			}
			t0 := time.Now()
			res, err := c.member(g, replica).Search(actx, qs, p)
			results <- attemptResult{replica: replica, hedged: hedged, res: res, dur: time.Since(t0), err: err}
		}()
	}
	launch(false)
	var hedgeC <-chan time.Time
	if opts.Hedge > 0 && next < c.r {
		timer := time.NewTimer(opts.Hedge)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var attempts []Attempt
	record := func(a Attempt) {
		if opts.Trace {
			attempts = append(attempts, a)
		}
	}
	var lastErr error
	for {
		select {
		case ar := <-results:
			inflight--
			a := Attempt{
				Group: g, Replica: ar.replica, Node: c.nodeIndex(g, ar.replica),
				Hedged: ar.hedged, Time: ar.dur, Err: ar.err,
			}
			if ar.err == nil {
				a.Won = true
				record(a)
				if ar.hedged {
					c.hedgesWon.Add(1)
				}
				c.drainAttempts(g, inflight, results)
				return ar.res, c.member(g, ar.replica), attempts, nil
			}
			record(a)
			lastErr = ar.err
			if err := ctx.Err(); err != nil {
				c.drainAttempts(g, inflight, results)
				return nil, nil, attempts, err // the caller gave up; failing over is pointless
			}
			if next < c.r {
				c.failovers.Add(1)
				launch(false) // failover to the next replica
			} else if inflight == 0 {
				c.groupFailures.Add(1)
				return nil, nil, attempts, lastErr // every replica tried and failed
			}
		case <-hedgeC:
			hedgeC = nil // one hedge per group
			if next < c.r {
				c.hedgesLaunched.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			c.drainAttempts(g, inflight, results)
			return nil, nil, attempts, ctx.Err()
		}
	}
}

// drainAttempts reaps the attempts still in flight when a group resolves
// early — a winner returned, or the caller gave up — so a late loser's
// successful answer is not stranded unread in the results channel with
// its pooled buffers checked out forever. Sends into results are buffered
// to the maximum attempt count, so the drain runs asynchronously: it
// receives exactly inflight more outcomes and hands each successful
// answer back to its member's pool. In-process members implement
// transport.Releaser; remote clients' results are plain GC memory and
// need no release. The group context is canceled as searchGroup returns,
// so losers finish promptly and the drain goroutine is bounded by the
// slowest outstanding attempt.
func (c *Cluster) drainAttempts(g, inflight int, results <-chan attemptResult) {
	if inflight == 0 {
		return
	}
	go func() {
		for i := 0; i < inflight; i++ {
			ar := <-results
			if ar.err == nil && ar.res != nil {
				if rel, ok := c.member(g, ar.replica).(transport.Releaser); ok {
					rel.ReleaseResults(ar.res)
				}
			}
		}
	}()
}

// Search broadcasts a batch under request-scoped parameters and opts'
// failure policy, and reports each group's wall time and outcome. It is
// the one query path of the coordinator: every group answers the whole
// batch through one member's Search entry point (per-query radius and
// candidate budget applied node-side, answers pruned to p.K per group
// when bounded) — with failover to sibling replicas on error/timeout and
// an optional hedge against slow ones (see searchGroup) — and the
// coordinator k-way-merges the per-group sorted partial lists per query:
// bounded-heap selection of the global k best when p.K is set, a full
// ordered merge otherwise. Answers come back in canonical ascending
// (distance, group, id) order and are replica-agnostic (mirrors answer
// identically, so which member won is visible only in the report).
//
// Cancellation of ctx aborts the whole broadcast early with ctx.Err().
// Under the default all-or-nothing policy the first group failure (every
// replica exhausted) cancels the remaining in-flight work; with
// opts.Partial the broadcast runs to completion (each attempt bounded by
// opts.PerNodeTimeout, if set), answers from responding groups are
// merged, and stragglers show up only in the report — the production
// trade of a complete answer for bounded latency.
func (c *Cluster) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams, opts BatchOptions) ([][]Neighbor, BatchReport, error) {
	if c.placement == PlacementPartitioned {
		return c.searchRouted(ctx, qs, p, opts)
	}
	report := BatchReport{
		Times: make([]time.Duration, c.groups),
		Errs:  make([]error, c.groups),
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	bs := bcastPool.Get().(*bcastScratch)
	for cap(bs.perGroup) < c.groups {
		bs.perGroup = append(bs.perGroup[:cap(bs.perGroup)], nil)
	}
	for cap(bs.winners) < c.groups {
		bs.winners = append(bs.winners[:cap(bs.winners)], nil)
	}
	perGroup := bs.perGroup[:c.groups]
	winners := bs.winners[:c.groups]
	// Registered before the ReleaseResults defer below, so it runs after
	// it: answer buffers go back to their nodes first, then the (zeroed)
	// scratch returns to its pool.
	defer func() {
		for g := range perGroup {
			perGroup[g], winners[g] = nil, nil
		}
		bcastPool.Put(bs)
	}()
	var attempts [][]Attempt
	if opts.Trace {
		attempts = make([][]Attempt, c.groups)
	}
	var wg sync.WaitGroup
	for g := 0; g < c.groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			t0 := time.Now()
			res, winner, atts, err := c.searchGroup(bctx, g, qs, p, opts)
			report.Times[g] = time.Since(t0)
			if opts.Trace {
				attempts[g] = atts
			}
			if err != nil {
				report.Errs[g] = err
				if !opts.Partial {
					cancel() // abort the rest of the broadcast
				}
				return
			}
			perGroup[g], winners[g] = res, winner
		}(g)
	}
	wg.Wait()
	for _, atts := range attempts {
		report.Attempts = append(report.Attempts, atts...)
	}
	// Whatever happens below, answered groups' result buffers go back to
	// the members that produced them (a no-op for transports that don't
	// pool) once the merge has copied what it needs.
	defer func() {
		for g, res := range perGroup {
			if res == nil {
				continue
			}
			if rel, ok := winners[g].(transport.Releaser); ok {
				rel.ReleaseResults(res)
			}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	firstErr := firstError(report.Errs, "search", "group")
	answered := 0
	realFailure := false
	for _, err := range report.Errs {
		if err == nil {
			answered++
		} else if !errors.Is(err, context.Canceled) {
			realFailure = true
		}
	}
	// In all-or-nothing mode the first failure cancels its siblings; those
	// induced cancellations are casualties, not stragglers — drop them so
	// the report blames only the group that actually failed.
	if !opts.Partial && realFailure {
		for i, err := range report.Errs {
			if err != nil && errors.Is(err, context.Canceled) {
				report.Errs[i] = nil
			}
		}
	}
	if firstErr != nil && (!opts.Partial || answered == 0) {
		return nil, report, firstErr
	}
	// Merge into recycled per-query buffers: each out entry keeps the
	// backing capacity it grew to in earlier broadcasts, so a warmed
	// coordinator merges a batch without allocating result storage. The
	// caller may hand the batch back with ReleaseResults once done.
	out := c.getBatchOut(len(qs))
	ms := mergePool.Get().(*mergeState)
	for qi := range qs {
		ms.lists = ms.lists[:0]
		ms.groups = ms.groups[:0]
		total := 0
		for g := 0; g < c.groups; g++ {
			if perGroup[g] == nil || len(perGroup[g][qi]) == 0 {
				continue
			}
			ms.lists = append(ms.lists, perGroup[g][qi])
			ms.groups = append(ms.groups, g)
			total += len(perGroup[g][qi])
		}
		if total == 0 {
			continue
		}
		k := p.K
		if k <= 0 {
			k = total // unbounded: a full ordered merge
		}
		out[qi] = ms.mergeAppend(out[qi][:0], k)
	}
	ms.release()
	c.searches.Add(1)
	c.queriesServed.Add(uint64(len(qs)))
	return out, report, nil
}

// probeRef locates one (query, group) probe's answer: group g's
// sub-batch answers query j. The refs of one query are contiguous in
// routedScratch.refs, delimited by offs.
type probeRef struct {
	g, j int32
}

// routedScratch is the pooled per-call state of a routed search: the
// per-group sub-batches (only the queries routed to each group), the
// per-group answers and winning clients, and the flat probe-ref arena
// that maps answers back to query positions. Entries holding caller or
// node memory are zeroed before the scratch returns to the pool.
//
//plshvet:frame
type routedScratch struct {
	qidx    [][]int           // per group: original query positions
	subs    [][]sparse.Vector // per group: sub-batch, parallel to qidx
	res     [][][]core.Neighbor
	winners []transport.NodeClient
	refs    []probeRef
	offs    []int32 // per query: refs[offs[qi]:offs[qi+1]]
	probes  []int   // router probe-set scratch
}

var routedPool = sync.Pool{New: func() any { return new(routedScratch) }}

// searchRouted is Search under partitioned placement: each query is
// routed to the recall-bounded probe set of groups its in-radius
// neighbors can live on (all groups when the probe set degenerates —
// see Router.Probe), each contacted group answers only its share of the
// batch through the same failover/hedge state machine as a scatter
// broadcast (searchGroup — so the preferred member, failover, and
// hedging all happen within the routed set), and pruned groups are
// skipped entirely: zero wall time, nil error, nothing on the wire.
// Answers merge back into query order through the probe-ref arena and
// come out in the same canonical (distance, group, id) order as
// scatter. The failure policy is unchanged — all-or-nothing fails the
// batch on the first contacted group whose replicas are exhausted,
// Partial merges what answered and names contacted stragglers — and the
// per-batch routed/pruned totals land in the report under Trace.
func (c *Cluster) searchRouted(ctx context.Context, qs []sparse.Vector, p node.SearchParams, opts BatchOptions) ([][]Neighbor, BatchReport, error) {
	report := BatchReport{
		Times: make([]time.Duration, c.groups),
		Errs:  make([]error, c.groups),
	}
	rs := routedPool.Get().(*routedScratch)
	for cap(rs.qidx) < c.groups {
		rs.qidx = append(rs.qidx[:cap(rs.qidx)], nil)
	}
	for cap(rs.subs) < c.groups {
		rs.subs = append(rs.subs[:cap(rs.subs)], nil)
	}
	for cap(rs.res) < c.groups {
		rs.res = append(rs.res[:cap(rs.res)], nil)
	}
	for cap(rs.winners) < c.groups {
		rs.winners = append(rs.winners[:cap(rs.winners)], nil)
	}
	qidx := rs.qidx[:c.groups]
	subs := rs.subs[:c.groups]
	res := rs.res[:c.groups]
	winners := rs.winners[:c.groups]
	for g := range qidx {
		qidx[g] = qidx[g][:0]
		subs[g] = subs[g][:0]
	}
	// Registered before the ReleaseResults defer below, so it runs after
	// it: node answer buffers go back first, then the zeroed scratch.
	defer func() {
		for g := range qidx {
			for i := range subs[g] {
				subs[g][i] = sparse.Vector{}
			}
			subs[g] = subs[g][:0]
			qidx[g] = qidx[g][:0]
			res[g], winners[g] = nil, nil
		}
		routedPool.Put(rs)
	}()

	// Build the probe plan: per-group sub-batches plus, per query, the
	// contiguous refs that find its answers again at merge time.
	rs.refs = rs.refs[:0]
	rs.offs = append(rs.offs[:0], 0)
	routedPairs := 0
	add := func(qi, g int) {
		rs.refs = append(rs.refs, probeRef{g: int32(g), j: int32(len(qidx[g]))})
		qidx[g] = append(qidx[g], qi)
		subs[g] = append(subs[g], qs[qi])
	}
	for qi := range qs {
		probes, ok := c.router.Probe(qs[qi], p.Radius, rs.probes[:0])
		if ok {
			for _, g := range probes {
				add(qi, g)
			}
			routedPairs += len(probes)
		} else {
			for g := 0; g < c.groups; g++ {
				add(qi, g)
			}
			routedPairs += c.groups
		}
		rs.probes = probes[:0] // keep the grown capacity for the next query
		rs.offs = append(rs.offs, int32(len(rs.refs)))
	}
	if opts.Trace {
		report.RoutedGroups = routedPairs
		report.PrunedGroups = len(qs)*c.groups - routedPairs
	}

	rp := p
	rp.Routing = node.RoutingPartitioned
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var attempts [][]Attempt
	if opts.Trace {
		attempts = make([][]Attempt, c.groups)
	}
	var wg sync.WaitGroup
	for g := 0; g < c.groups; g++ {
		if len(qidx[g]) == 0 {
			continue // pruned: zero time, nil error, nothing on the wire
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			t0 := time.Now()
			r, winner, atts, err := c.searchGroup(bctx, g, subs[g], rp, opts)
			report.Times[g] = time.Since(t0)
			if opts.Trace {
				attempts[g] = atts
			}
			if err != nil {
				report.Errs[g] = err
				if !opts.Partial {
					cancel()
				}
				return
			}
			res[g], winners[g] = r, winner
		}(g)
	}
	wg.Wait()
	for _, atts := range attempts {
		report.Attempts = append(report.Attempts, atts...)
	}
	defer func() {
		for g, r := range res {
			if r == nil {
				continue
			}
			if rel, ok := winners[g].(transport.Releaser); ok {
				rel.ReleaseResults(r)
			}
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	firstErr := firstError(report.Errs, "search", "group")
	answered := 0 // contacted groups that answered (pruned groups don't count)
	realFailure := false
	for g, err := range report.Errs {
		if err == nil {
			if len(qidx[g]) > 0 {
				answered++
			}
		} else if !errors.Is(err, context.Canceled) {
			realFailure = true
		}
	}
	if !opts.Partial && realFailure {
		for i, err := range report.Errs {
			if err != nil && errors.Is(err, context.Canceled) {
				report.Errs[i] = nil
			}
		}
	}
	if firstErr != nil && (!opts.Partial || answered == 0) {
		return nil, report, firstErr
	}
	out := c.getBatchOut(len(qs))
	ms := mergePool.Get().(*mergeState)
	for qi := range qs {
		ms.lists = ms.lists[:0]
		ms.groups = ms.groups[:0]
		total := 0
		for _, ref := range rs.refs[rs.offs[qi]:rs.offs[qi+1]] {
			lists := res[ref.g]
			if lists == nil || len(lists[ref.j]) == 0 {
				continue
			}
			ms.lists = append(ms.lists, lists[ref.j])
			ms.groups = append(ms.groups, int(ref.g))
			total += len(lists[ref.j])
		}
		if total == 0 {
			continue
		}
		k := p.K
		if k <= 0 {
			k = total
		}
		out[qi] = ms.mergeAppend(out[qi][:0], k)
	}
	ms.release()
	c.searches.Add(1)
	c.queriesServed.Add(uint64(len(qs)))
	return out, report, nil
}

// getBatchOut fetches a recycled broadcast answer buffer of exactly nq
// entries, each truncated to length 0 but keeping its grown capacity.
func (c *Cluster) getBatchOut(nq int) [][]Neighbor {
	var out [][]Neighbor
	if p, _ := c.batchPool.Get().(*[][]Neighbor); p != nil {
		out = *p
	}
	for cap(out) < nq {
		out = append(out[:cap(out)], nil)
	}
	out = out[:nq]
	for i := range out {
		out[i] = out[i][:0]
	}
	return out
}

// ReleaseResults recycles a batch answer returned by Search. It is
// optional — an un-released batch is simply garbage collected — but a
// caller that releases once per batch, after it has finished reading
// every entry, lets the coordinator reuse the buffers for the next
// broadcast. The caller must not touch the slices afterwards and must
// not release a batch twice. Neighbors hold no pointers, so recycling
// retains no document memory.
func (c *Cluster) ReleaseResults(out [][]Neighbor) {
	if out == nil {
		return
	}
	c.batchPool.Put(&out)
}

// Query answers one query by broadcast.
//
// Deprecated: use Search.
func (c *Cluster) Query(ctx context.Context, q sparse.Vector) ([]Neighbor, error) {
	res, _, err := c.Search(ctx, []sparse.Vector{q}, node.SearchParams{}, BatchOptions{})
	if err != nil {
		return nil, err
	}
	// res is a pooled batch; the caller keeps the answer, so copy it out
	// and recycle the batch instead of stranding the whole buffer behind
	// a one-query alias.
	out := append([]Neighbor(nil), res[0]...)
	c.ReleaseResults(res)
	return out, nil
}

// QueryBatch broadcasts the batch to every group in parallel and merges
// the per-group answers, all-or-nothing.
//
// Deprecated: use Search.
func (c *Cluster) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]Neighbor, error) {
	res, _, err := c.Search(ctx, qs, node.SearchParams{}, BatchOptions{})
	return res, err
}

// QueryBatchTimed broadcasts the batch under opts' failure policy and
// reports each group's wall time and outcome.
//
// Deprecated: use Search, which carries the same policy plus the
// request-scoped query parameters.
func (c *Cluster) QueryBatchTimed(ctx context.Context, qs []sparse.Vector, opts BatchOptions) ([][]Neighbor, BatchReport, error) {
	return c.Search(ctx, qs, node.SearchParams{}, opts)
}

// QueryTopK answers one query with the k nearest of its R-near neighbors
// cluster-wide.
//
// Deprecated: use Search with SearchParams.K.
func (c *Cluster) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	res, _, err := c.Search(ctx, []sparse.Vector{q}, node.SearchParams{K: k}, BatchOptions{})
	if err != nil {
		return nil, err
	}
	out := append([]Neighbor(nil), res[0]...)
	c.ReleaseResults(res)
	return out, nil
}

// Doc fetches the stored vector for a global ID from the group that holds
// it — any live member, failing over to the next on a transport error —
// with the member's authoritative answer to whether the local id was ever
// inserted. A global ID naming a nonexistent group is simply unknown —
// (zero, false, nil), matching an unknown local id — while failure of
// every member is an error.
func (c *Cluster) Doc(ctx context.Context, gid uint64) (sparse.Vector, bool, error) {
	group, local := SplitGlobalID(gid)
	if group < 0 || group >= c.groups {
		return sparse.Vector{}, false, nil
	}
	var lastErr error
	for j := 0; j < c.r; j++ {
		v, known, err := c.member(group, j).Doc(ctx, local)
		if err == nil {
			return v, known, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break // the caller gave up; trying siblings is pointless
		}
	}
	return sparse.Vector{}, false, fmt.Errorf("cluster: doc on group %d: %w", group, lastErr)
}

// topkCursor walks one group's sorted partial list during the merge.
type topkCursor struct {
	group int
	list  []core.Neighbor
	pos   int
}

func (c *topkCursor) head() core.Neighbor { return c.list[c.pos] }

// topkHeap is a min-heap of cursors ordered by their heads' (Dist, Group,
// ID) — the cluster-wide presentation order.
type topkHeap []*topkCursor

func (h topkHeap) Len() int { return len(h) }
func (h topkHeap) Less(i, j int) bool {
	a, b := h[i].head(), h[j].head()
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if h[i].group != h[j].group {
		return h[i].group < h[j].group
	}
	return a.ID < b.ID
}
func (h topkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)   { *h = append(*h, x.(*topkCursor)) }
func (h *topkHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// mergeState is the recycled scratch of one k-way merge: the non-empty
// input lists with their group indexes, the cursor arena, and the heap of
// cursor pointers. One state serves a whole batch, query after query, and
// returns to mergePool — via release, which drops every reference to the
// per-group answer buffers — when the batch's Search call finishes.
//
//plshvet:frame
type mergeState struct {
	lists   [][]core.Neighbor
	groups  []int
	cursors []topkCursor
	h       topkHeap
}

var mergePool = sync.Pool{New: func() any { return new(mergeState) }}

// release hands the merge scratch back to mergePool with every
// reference into per-group answer buffers dropped. lists aliases node
// result memory and each cursor (and the heap's pointers into the
// cursor arena) aliases one of those lists; a state pooled with them
// intact would pin released answer buffers across requests — and read
// recycled memory if a stale cursor were ever walked.
func (ms *mergeState) release() {
	// Clear the full capacity, not just the length: a batch truncates
	// and refills these per query, so slots past the last query's
	// length still hold earlier queries' references, and heap.Pop
	// leaves popped cursor pointers beyond the heap's final length.
	lists := ms.lists[:cap(ms.lists)]
	for i := range lists {
		lists[i] = nil
	}
	ms.lists = ms.lists[:0]
	ms.groups = ms.groups[:0]
	cursors := ms.cursors[:cap(ms.cursors)]
	for i := range cursors {
		cursors[i] = topkCursor{}
	}
	ms.cursors = ms.cursors[:0]
	h := ms.h[:cap(ms.h)]
	for i := range h {
		h[i] = nil
	}
	ms.h = ms.h[:0]
	mergePool.Put(ms)
}

// mergeAppend k-way-merges ms.lists (per-group ascending partial lists,
// parallel to ms.groups) into dst, emitting at most k entries, and
// returns the extended slice. It allocates only if dst or the recycled
// scratch must grow.
func (ms *mergeState) mergeAppend(dst []Neighbor, k int) []Neighbor {
	// Fill the cursor arena first, then point the heap at it — appending
	// could move the arena, so pointers are taken only once it is sized.
	ms.cursors = ms.cursors[:0]
	for i, list := range ms.lists {
		ms.cursors = append(ms.cursors, topkCursor{group: ms.groups[i], list: list})
	}
	ms.h = ms.h[:0]
	for i := range ms.cursors {
		ms.h = append(ms.h, &ms.cursors[i])
	}
	heap.Init(&ms.h)
	emitted := 0
	for len(ms.h) > 0 && emitted < k {
		cur := ms.h[0]
		nb := cur.head()
		dst = append(dst, Neighbor{Node: cur.group, ID: nb.ID, Dist: nb.Dist})
		emitted++
		cur.pos++
		if cur.pos == len(cur.list) {
			heap.Pop(&ms.h)
		} else {
			heap.Fix(&ms.h, 0)
		}
	}
	return dst
}

// mergeTopK k-way-merges per-group ascending lists into the global top k.
func mergeTopK(perGroup [][]core.Neighbor, k int) []Neighbor {
	ms := mergePool.Get().(*mergeState)
	ms.lists, ms.groups = ms.lists[:0], ms.groups[:0]
	for g, list := range perGroup {
		if len(list) > 0 {
			ms.lists = append(ms.lists, list)
			ms.groups = append(ms.groups, g)
		}
	}
	out := ms.mergeAppend(make([]Neighbor, 0, min(k, 1024)), k)
	ms.release()
	return out
}

// Delete removes a document by global ID from every member of its group
// (a tombstone that reached only some mirrors would resurrect the
// document on a failover to the others). A global ID that names a
// nonexistent group, or a local ID no member ever inserted, returns an
// error wrapping node.ErrNotFound, so callers can tell a bad ID from a
// transport failure. A member failure fails the call — the tombstone may
// then be applied on some members only; retry until nil to restore
// mirror agreement.
func (c *Cluster) Delete(ctx context.Context, gid uint64) error {
	group, local := SplitGlobalID(gid)
	if group < 0 || group >= c.groups {
		return fmt.Errorf("cluster: no group %d: %w", group, node.ErrNotFound)
	}
	if c.r == 1 {
		return c.member(group, 0).Delete(ctx, local)
	}
	errs := make([]error, c.r)
	var wg sync.WaitGroup
	for j := 0; j < c.r; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = c.member(group, j).Delete(ctx, local)
		}(j)
	}
	wg.Wait()
	notFound := 0
	for j, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, node.ErrNotFound) {
			notFound++
			continue
		}
		return fmt.Errorf("cluster: delete on node %d: %w", c.nodeIndex(group, j), err)
	}
	if notFound == c.r {
		return fmt.Errorf("cluster: %w", node.ErrNotFound)
	}
	return nil
}

// MergeAll drives every node to a fully static state in parallel. Under
// the nodes' snapshot concurrency model each per-node merge runs as a
// background rebuild — MergeNow only waits for quiescence — so broadcasts
// issued while MergeAll is in flight keep being answered from the nodes'
// pre-merge snapshots instead of buffering behind the rebuilds.
func (c *Cluster) MergeAll(ctx context.Context) error {
	return c.fanOut(ctx, "merge", func(ctx context.Context, i int) error {
		return c.nodes[i].MergeNow(ctx)
	})
}

// FlushAll waits, in parallel, for every node's in-flight background merge
// (if any) to finish without forcing new ones — the barrier callers use to
// read settled Stats after streaming inserts.
func (c *Cluster) FlushAll(ctx context.Context) error {
	return c.fanOut(ctx, "flush", func(ctx context.Context, i int) error {
		return c.nodes[i].Flush(ctx)
	})
}

// SaveAll checkpoints every node's data directory in parallel — the
// cluster-wide durability barrier: when it returns nil, every node's
// state is a snapshot plus an empty journal, and a restart of any (or
// every) node recovers exactly the acknowledged cluster contents.
func (c *Cluster) SaveAll(ctx context.Context) error {
	return c.fanOut(ctx, "save", func(ctx context.Context, i int) error {
		return c.nodes[i].Save(ctx)
	})
}

// Stats gathers per-endpoint snapshots in parallel (one entry per node,
// group-major: members of group g are entries [g·R, (g+1)·R)).
func (c *Cluster) Stats(ctx context.Context) ([]node.Stats, error) {
	out := make([]node.Stats, len(c.nodes))
	err := c.fanOut(ctx, "stats", func(ctx context.Context, i int) error {
		st, err := c.nodes[i].Stats(ctx)
		if err != nil {
			return err
		}
		out[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CoordStats is the coordinator's own always-on telemetry: counters the
// search path maintains with cheap atomics regardless of opts.Trace.
// Unlike BatchReport.HedgesWon (per-call, trace-gated), these accumulate
// over the coordinator's lifetime, so a soak run can assert that injected
// faults actually exercised failover and hedging.
type CoordStats struct {
	// Searches counts answered batches; Queries the individual queries
	// across them.
	Searches uint64
	Queries  uint64
	// Failovers counts replica attempts launched because a sibling failed;
	// HedgesLaunched those launched by the hedge timer; HedgesWon the
	// hedged attempts whose answer won their group.
	Failovers      uint64
	HedgesLaunched uint64
	HedgesWon      uint64
	// GroupFailures counts groups that exhausted every replica (or, single
	// -copy, whose only member failed).
	GroupFailures uint64
}

// CoordStats returns the coordinator's accumulated telemetry.
func (c *Cluster) CoordStats() CoordStats {
	return CoordStats{
		Searches:       c.searches.Load(),
		Queries:        c.queriesServed.Load(),
		Failovers:      c.failovers.Load(),
		HedgesLaunched: c.hedgesLaunched.Load(),
		HedgesWon:      c.hedgesWon.Load(),
		GroupFailures:  c.groupFailures.Load(),
	}
}

// Close closes every node client.
func (c *Cluster) Close() error {
	var first error
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
