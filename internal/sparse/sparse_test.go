package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"plsh/internal/rng"
)

func vec(pairs ...float32) Vector {
	// pairs alternates index, value.
	var v Vector
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Idx = append(v.Idx, uint32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func TestNewVectorSortsAndMerges(t *testing.T) {
	v, err := NewVector([]uint32{5, 1, 5, 3}, []float32{2, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []uint32{1, 3, 5}
	wantVal := []float32{1, 4, 5}
	if len(v.Idx) != 3 {
		t.Fatalf("got %v", v)
	}
	for i := range wantIdx {
		if v.Idx[i] != wantIdx[i] || v.Val[i] != wantVal[i] {
			t.Fatalf("NewVector = %v/%v, want %v/%v", v.Idx, v.Val, wantIdx, wantVal)
		}
	}
}

func TestNewVectorLengthMismatch(t *testing.T) {
	if _, err := NewVector([]uint32{1}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestNormalize(t *testing.T) {
	v := vec(0, 3, 1, 4)
	if !v.Normalize() {
		t.Fatal("Normalize returned false for non-zero vector")
	}
	if math.Abs(v.Norm()-1) > 1e-6 {
		t.Fatalf("norm after Normalize = %v", v.Norm())
	}
	zero := Vector{}
	if zero.Normalize() {
		t.Fatal("Normalize returned true for zero vector")
	}
}

func TestDotVariantsAgree(t *testing.T) {
	src := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		a := randVector(src, 1000, 1+src.Intn(20))
		b := randVector(src, 1000, 1+src.Intn(20))
		d1 := Dot(a, b)
		d2 := DotBinary(a, b)
		d3 := Dot(b, a)
		if math.Abs(d1-d2) > 1e-5 || math.Abs(d1-d3) > 1e-5 {
			t.Fatalf("dot variants disagree: merge=%v binary=%v swapped=%v", d1, d2, d3)
		}
	}
}

func randVector(src *rng.Source, dim, nnz int) Vector {
	idx := make([]uint32, nnz)
	val := make([]float32, nnz)
	for i := range idx {
		idx[i] = uint32(src.Intn(dim))
		val[i] = float32(src.Float64())
	}
	v, _ := NewVector(idx, val)
	v.Normalize()
	return v
}

func TestQueryMaskMatchesMergeDot(t *testing.T) {
	src := rng.New(2)
	qm := NewQueryMask(1000)
	for trial := 0; trial < 100; trial++ {
		q := randVector(src, 1000, 1+src.Intn(15))
		qm.Scatter(q)
		for inner := 0; inner < 10; inner++ {
			d := randVector(src, 1000, 1+src.Intn(15))
			got := qm.Dot(d.Idx, d.Val)
			want := Dot(q, d)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("QueryMask.Dot = %v, want %v", got, want)
			}
		}
	}
	// After Unscatter, everything must be clean: dot with anything is 0.
	qm.Unscatter()
	d := randVector(src, 1000, 10)
	if qm.Dot(d.Idx, d.Val) != 0 {
		t.Fatal("mask not clean after Unscatter")
	}
}

func TestQueryMaskRescatterReplaces(t *testing.T) {
	qm := NewQueryMask(100)
	q1 := vec(1, 1, 2, 1)
	q2 := vec(3, 1)
	qm.Scatter(q1)
	qm.Scatter(q2) // implicit unscatter of q1
	if got := qm.Dot([]uint32{1, 2}, []float32{1, 1}); got != 0 {
		t.Fatalf("stale query values leaked: dot=%v", got)
	}
	if got := qm.Dot([]uint32{3}, []float32{2}); math.Abs(got-2) > 1e-6 {
		t.Fatalf("new query not visible: dot=%v", got)
	}
}

func TestDotSparseDense4MatchesScalar(t *testing.T) {
	src := rng.New(3)
	dim := 500
	mk := func() []float32 {
		d := make([]float32, dim)
		for i := range d {
			d[i] = float32(src.Norm())
		}
		return d
	}
	d0, d1, d2, d3 := mk(), mk(), mk(), mk()
	for trial := 0; trial < 50; trial++ {
		v := randVector(src, dim, 1+src.Intn(12))
		s0, s1, s2, s3 := DotSparseDense4(v.Idx, v.Val, d0, d1, d2, d3)
		for i, pair := range []struct {
			got  float32
			dcol []float32
		}{{s0, d0}, {s1, d1}, {s2, d2}, {s3, d3}} {
			want := DotSparseDense(v.Idx, v.Val, pair.dcol)
			if math.Abs(float64(pair.got-want)) > 1e-4 {
				t.Fatalf("lane %d: got %v want %v", i, pair.got, want)
			}
		}
	}
}

func TestDotSparseDenseStrideMatchesScalar(t *testing.T) {
	src := rng.New(4)
	dim, nCols := 300, 7
	plane := make([]float32, dim*nCols)
	for i := range plane {
		plane[i] = float32(src.Norm())
	}
	col := func(j int) []float32 {
		d := make([]float32, dim)
		for c := 0; c < dim; c++ {
			d[c] = plane[c*nCols+j]
		}
		return d
	}
	for trial := 0; trial < 30; trial++ {
		v := randVector(src, dim, 1+src.Intn(10))
		out := make([]float32, nCols)
		DotSparseDenseStride(v.Idx, v.Val, plane, nCols, nCols, out)
		for j := 0; j < nCols; j++ {
			want := DotSparseDense(v.Idx, v.Val, col(j))
			if math.Abs(float64(out[j]-want)) > 1e-4 {
				t.Fatalf("col %d: got %v want %v", j, out[j], want)
			}
		}
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	m := NewMatrix(100, 4, 16)
	rows := []Vector{vec(1, 0.5, 7, 0.5), vec(), vec(99, 1)}
	for i, r := range rows {
		if got := m.AppendRow(r); got != i {
			t.Fatalf("AppendRow returned %d, want %d", got, i)
		}
	}
	if m.Rows() != 3 || m.NNZ() != 3 {
		t.Fatalf("Rows=%d NNZ=%d", m.Rows(), m.NNZ())
	}
	for i, want := range rows {
		got := m.Row(i)
		if len(got.Idx) != len(want.Idx) {
			t.Fatalf("row %d: got %v want %v", i, got, want)
		}
		for j := range want.Idx {
			if got.Idx[j] != want.Idx[j] || got.Val[j] != want.Val[j] {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestMatrixAppendRowOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range column")
		}
	}()
	NewMatrix(10, 1, 1).AppendRow(vec(10, 1))
}

func TestAppendMatrix(t *testing.T) {
	a := NewMatrix(50, 2, 4)
	a.AppendRow(vec(1, 1))
	b := NewMatrix(50, 2, 4)
	b.AppendRow(vec(2, 2))
	b.AppendRow(vec(3, 3))
	a.AppendMatrix(b)
	if a.Rows() != 3 {
		t.Fatalf("Rows = %d, want 3", a.Rows())
	}
	if r := a.Row(2); len(r.Idx) != 1 || r.Idx[0] != 3 || r.Val[0] != 3 {
		t.Fatalf("row 2 = %v", r)
	}
}

func TestAppendMatrixDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for dim mismatch")
		}
	}()
	NewMatrix(10, 1, 1).AppendMatrix(NewMatrix(20, 1, 1))
}

func TestMatrixReset(t *testing.T) {
	m := NewMatrix(10, 1, 1)
	m.AppendRow(vec(1, 1))
	m.Reset()
	if m.Rows() != 0 || m.NNZ() != 0 {
		t.Fatal("Reset did not empty matrix")
	}
	m.AppendRow(vec(2, 2))
	if m.Rows() != 1 || m.Row(0).Idx[0] != 2 {
		t.Fatal("matrix unusable after Reset")
	}
}

func TestScatteredStoreMirrorsMatrix(t *testing.T) {
	src := rng.New(5)
	m := NewMatrix(200, 10, 100)
	for i := 0; i < 10; i++ {
		m.AppendRow(randVector(src, 200, 1+src.Intn(8)))
	}
	s := NewScatteredStore(m)
	if s.Rows() != m.Rows() || s.Dimension() != m.Dimension() {
		t.Fatal("shape mismatch")
	}
	for i := 0; i < m.Rows(); i++ {
		mi, mv := m.Doc(i)
		si, sv := s.Doc(i)
		if len(mi) != len(si) {
			t.Fatalf("doc %d length mismatch", i)
		}
		for j := range mi {
			if mi[j] != si[j] || mv[j] != sv[j] {
				t.Fatalf("doc %d differs at %d", i, j)
			}
		}
	}
}

func TestAngularDistance(t *testing.T) {
	cases := []struct{ dot, want float64 }{
		{1, 0}, {0, math.Pi / 2}, {-1, math.Pi},
		{1.0000001, 0}, {-1.0000001, math.Pi}, // clamped
	}
	for _, c := range cases {
		if got := AngularDistance(c.dot); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("AngularDistance(%v) = %v, want %v", c.dot, got, c.want)
		}
	}
}

func TestCosThresholdEquivalence(t *testing.T) {
	// angdist(q,v) ≤ R  ⇔  dot ≥ cos(R) for unit vectors.
	src := rng.New(6)
	const R = 0.9
	thr := CosThreshold(R)
	for trial := 0; trial < 500; trial++ {
		a := randVector(src, 300, 1+src.Intn(10))
		b := randVector(src, 300, 1+src.Intn(10))
		d := Dot(a, b)
		if (AngularDistance(d) <= R) != (d >= thr) {
			t.Fatalf("threshold equivalence violated at dot=%v", d)
		}
	}
}

// Property: Dot is symmetric and bounded by the product of norms.
func TestQuickDotCauchySchwarz(t *testing.T) {
	src := rng.New(7)
	f := func(seedA, seedB uint16) bool {
		a := randVector(src, 400, 1+int(seedA)%15)
		b := randVector(src, 400, 1+int(seedB)%15)
		d := Dot(a, b)
		if math.Abs(d-Dot(b, a)) > 1e-6 {
			return false
		}
		return math.Abs(d) <= a.Norm()*b.Norm()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := NewMatrix(10, 1, 1)
	m.AppendRow(vec(1, 1, 2, 1))
	want := int64(2*4 + 2*4 + 2*4) // offs(2) + cols(2) + vals(2), 4 bytes each
	if got := m.MemoryBytes(); got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

// Prefix must be a faithful read-only view of the first rows, immune to
// later appends on the parent (the snapshot contract the node relies on).
func TestMatrixPrefix(t *testing.T) {
	m := NewMatrix(10, 8, 8)
	mustRow := func(idx []uint32, val []float32) {
		t.Helper()
		v, err := NewVector(idx, val)
		if err != nil {
			t.Fatal(err)
		}
		m.AppendRow(v)
	}
	mustRow([]uint32{1, 3}, []float32{0.5, 0.5})
	mustRow([]uint32{2}, []float32{1})
	mustRow([]uint32{0, 9}, []float32{0.7, 0.3})

	p := m.Prefix(2)
	if p.Rows() != 2 || p.Dim != 10 {
		t.Fatalf("prefix shape %d×%d", p.Rows(), p.Dim)
	}
	// Appends to the parent must not change the view.
	mustRow([]uint32{5}, []float32{1})
	mustRow([]uint32{6}, []float32{1})
	if p.Rows() != 2 {
		t.Fatalf("prefix grew to %d rows after parent append", p.Rows())
	}
	for i := 0; i < 2; i++ {
		pr, mr := p.Row(i), m.Row(i)
		if len(pr.Idx) != len(mr.Idx) {
			t.Fatalf("row %d NNZ mismatch", i)
		}
		for j := range pr.Idx {
			if pr.Idx[j] != mr.Idx[j] || pr.Val[j] != mr.Val[j] {
				t.Fatalf("row %d entry %d differs", i, j)
			}
		}
	}
	// Full and empty prefixes are legal; out-of-range rows panic.
	if full := m.Prefix(m.Rows()); full.Rows() != 5 {
		t.Fatalf("full prefix rows = %d", full.Rows())
	}
	if empty := m.Prefix(0); empty.Rows() != 0 || empty.NNZ() != 0 {
		t.Fatal("empty prefix not empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Prefix did not panic")
		}
	}()
	m.Prefix(6)
}
