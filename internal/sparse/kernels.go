package sparse

// QueryMask is the §5.2.3 query-side structure: a dense value array over the
// vocabulary plus an occupancy mask, giving O(1) lookups per candidate
// non-zero during Step Q3. The paper stores the mask as a bitvector over the
// 500K-word vocabulary (fits in L2); we pair it with a dense float array so
// the matched IDF score is one indexed load away.
//
// A QueryMask is scatter/unscatter-recycled across the queries a worker
// processes, so the dense arrays are allocated once per worker.
type QueryMask struct {
	vals []float32
	mask []uint64
	// scattered remembers the active query's indexes for O(NNZ) unscatter.
	scattered []uint32
}

// NewQueryMask returns a mask for dimensionality dim.
func NewQueryMask(dim int) *QueryMask {
	return &QueryMask{
		vals: make([]float32, dim),
		mask: make([]uint64, (dim+63)/64),
	}
}

// Scatter loads query q into the mask. Any previously scattered query is
// removed first.
func (qm *QueryMask) Scatter(q Vector) {
	qm.Unscatter()
	for i, c := range q.Idx {
		qm.vals[c] = q.Val[i]
		qm.mask[c>>6] |= 1 << (uint64(c) & 63)
	}
	qm.scattered = append(qm.scattered[:0], q.Idx...)
}

// Unscatter removes the active query from the mask in O(NNZ).
func (qm *QueryMask) Unscatter() {
	for _, c := range qm.scattered {
		qm.vals[c] = 0
		qm.mask[c>>6] &^= 1 << (uint64(c) & 63)
	}
	qm.scattered = qm.scattered[:0]
}

// Dot computes the dot product between the scattered query and a candidate
// document given as parallel index/value slices. Each candidate non-zero
// costs one mask probe; only ~8% of probes hit for Twitter data (§5.2.3),
// so the common path is a single bit test.
func (qm *QueryMask) Dot(idx []uint32, val []float32) float64 {
	var s float64
	for i, c := range idx {
		if qm.mask[c>>6]&(1<<(uint64(c)&63)) != 0 {
			s += float64(val[i]) * float64(qm.vals[c])
		}
	}
	return s
}

// DotSparseDense computes the dot product of a sparse vector (idx, val)
// against a dense column vector. This is the inner kernel of LSH hashing
// (§5.1.1): each hash bit is sign(sparse · hyperplane).
func DotSparseDense(idx []uint32, val []float32, dense []float32) float32 {
	var s float32
	for i, c := range idx {
		s += val[i] * dense[c]
	}
	return s
}

// DotSparseDense4 computes four sparse×dense dot products against four
// dense vectors simultaneously. Processing hyperplanes in groups of four
// amortizes the sparse-side loads and lets the compiler keep accumulators
// in registers — the portable stand-in for the paper's AVX vectorization of
// the hashing phase (Fig. 4, "+vectorization").
func DotSparseDense4(idx []uint32, val []float32, d0, d1, d2, d3 []float32) (s0, s1, s2, s3 float32) {
	for i, c := range idx {
		v := val[i]
		s0 += v * d0[c]
		s1 += v * d1[c]
		s2 += v * d2[c]
		s3 += v * d3[c]
	}
	return
}

// DotSparseDenseStride computes a sparse vector against nCols dense columns
// stored row-major in one plane slab: plane[c*stride+j] is column j of
// vocabulary row c. Touching one contiguous slab row per non-zero maximizes
// spatial locality exactly as §5.1.1 prescribes ("at least one row of the
// dense matrix is read consecutively"). Results are accumulated into out,
// which must have length ≥ nCols and arrive zeroed.
func DotSparseDenseStride(idx []uint32, val []float32, plane []float32, stride, nCols int, out []float32) {
	// Four-way unrolled across columns; handles the tail scalar-wise.
	for i, c := range idx {
		v := val[i]
		row := plane[int(c)*stride : int(c)*stride+nCols]
		j := 0
		for ; j+4 <= nCols; j += 4 {
			out[j] += v * row[j]
			out[j+1] += v * row[j+1]
			out[j+2] += v * row[j+2]
			out[j+3] += v * row[j+3]
		}
		for ; j < nCols; j++ {
			out[j] += v * row[j]
		}
	}
}
