// Package sparse provides the sparse-vector substrate PLSH is built on.
//
// Tweets are represented as sparse IDF-weighted unit vectors in a large
// vocabulary space (§8 of the paper: D ≈ 500,000 with ~7.2 non-zeros per
// tweet). The package supplies:
//
//   - Vector: a single sparse unit vector (sorted column indexes + values);
//   - Matrix: a Compressed-Sparse-Row (CRS/CSR, §5.1.1) collection of
//     vectors stored in one contiguous arena, the layout that bounds the
//     paper's Step Q3 at ~4 cache lines per candidate;
//   - dot-product kernels in the variants the paper's Figures 4 and 5
//     ablate: naive merge intersection, binary-search intersection, and the
//     query-side dense vocabulary mask with O(1) membership checks
//     (§5.2.3), plus 4-way unrolled sparse×dense kernels standing in for
//     the paper's SIMD vectorization.
package sparse

import (
	"errors"
	"math"
	"sort"
)

// Vector is a sparse vector: parallel slices of strictly increasing column
// indexes and their values. The zero value is the empty vector.
type Vector struct {
	Idx []uint32
	Val []float32
}

// NNZ returns the number of stored non-zeros.
func (v Vector) NNZ() int { return len(v.Idx) }

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	var s float64
	for _, x := range v.Val {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit norm in place. Zero vectors are left unchanged
// and reported with ok = false; the paper discards such "0-length queries"
// (§8) because they cannot match anything.
func (v Vector) Normalize() (ok bool) {
	n := v.Norm()
	if n == 0 {
		return false
	}
	inv := float32(1 / n)
	for i := range v.Val {
		v.Val[i] *= inv
	}
	return true
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	return Vector{Idx: append([]uint32(nil), v.Idx...), Val: append([]float32(nil), v.Val...)}
}

// NewVector builds a Vector from unordered (index, value) pairs, sorting by
// index and summing duplicates. Entries that sum to zero are kept (they are
// harmless and rare); indexes must fit the caller's dimensionality.
func NewVector(idx []uint32, val []float32) (Vector, error) {
	if len(idx) != len(val) {
		return Vector{}, errors.New("sparse: index/value length mismatch")
	}
	type pair struct {
		i uint32
		v float32
	}
	pairs := make([]pair, len(idx))
	for i := range idx {
		pairs[i] = pair{idx[i], val[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	out := Vector{Idx: make([]uint32, 0, len(pairs)), Val: make([]float32, 0, len(pairs))}
	for _, p := range pairs {
		if n := len(out.Idx); n > 0 && out.Idx[n-1] == p.i {
			out.Val[n-1] += p.v
		} else {
			out.Idx = append(out.Idx, p.i)
			out.Val = append(out.Val, p.v)
		}
	}
	return out, nil
}

// Matrix is a CSR matrix over a fixed dimensionality. Rows share two
// contiguous arenas (cols, vals); offs[i]..offs[i+1] delimits row i. This is
// the "large pages / contiguous arena" document-store layout (§5.2.2): one
// allocation, predictable addresses, minimal pointer chasing.
type Matrix struct {
	Dim  int
	offs []int32
	cols []uint32
	vals []float32
}

// NewMatrix returns an empty CSR matrix with the given dimensionality and
// space reserved for nRows rows of nnzHint total non-zeros.
func NewMatrix(dim, nRows, nnzHint int) *Matrix {
	m := &Matrix{Dim: dim}
	m.offs = make([]int32, 1, nRows+1)
	m.cols = make([]uint32, 0, nnzHint)
	m.vals = make([]float32, 0, nnzHint)
	return m
}

// Rows returns the number of rows stored.
func (m *Matrix) Rows() int { return len(m.offs) - 1 }

// NNZ returns the total number of stored non-zeros.
func (m *Matrix) NNZ() int { return len(m.cols) }

// AppendRow appends v as a new row and returns its row index.
// It panics if any column index is outside [0, Dim).
func (m *Matrix) AppendRow(v Vector) int {
	for _, c := range v.Idx {
		if int(c) >= m.Dim {
			panic("sparse: column index out of range")
		}
	}
	m.cols = append(m.cols, v.Idx...)
	m.vals = append(m.vals, v.Val...)
	m.offs = append(m.offs, int32(len(m.cols)))
	return len(m.offs) - 2
}

// Row returns row i as a Vector sharing the matrix's storage. The caller
// must not modify it.
func (m *Matrix) Row(i int) Vector {
	lo, hi := m.offs[i], m.offs[i+1]
	return Vector{Idx: m.cols[lo:hi], Val: m.vals[lo:hi]}
}

// Prefix returns a read-only view of the first rows rows, sharing the
// receiver's arenas. The view is safe to read concurrently with further
// AppendRow calls on the receiver: appends only write beyond the captured
// lengths (or reallocate, leaving the captured arrays untouched), so a
// prefix taken while holding the writer's lock is an immutable snapshot.
// The view's capacities are clipped so an accidental append to it can never
// clobber the shared arenas. Callers must not modify the view's contents.
func (m *Matrix) Prefix(rows int) *Matrix {
	if rows < 0 || rows > m.Rows() {
		panic("sparse: prefix rows out of range")
	}
	nnz := m.offs[rows]
	return &Matrix{
		Dim:  m.Dim,
		offs: m.offs[: rows+1 : rows+1],
		cols: m.cols[:nnz:nnz],
		vals: m.vals[:nnz:nnz],
	}
}

// AppendMatrix appends every row of src (which must have the same Dim).
func (m *Matrix) AppendMatrix(src *Matrix) {
	if src.Dim != m.Dim {
		panic("sparse: dimension mismatch in AppendMatrix")
	}
	base := int32(len(m.cols))
	m.cols = append(m.cols, src.cols...)
	m.vals = append(m.vals, src.vals...)
	for _, o := range src.offs[1:] {
		m.offs = append(m.offs, base+o)
	}
}

// Raw exposes the CSR arrays — row offsets, column indexes, values — for
// serialization. Callers must not modify them, and for a live arena must
// call it on an immutable Prefix, not the append side.
func (m *Matrix) Raw() (offs []int32, cols []uint32, vals []float32) {
	return m.offs, m.cols, m.vals
}

// FromRaw builds a Matrix over pre-decoded CSR arrays, taking ownership of
// the slices. It validates the shape a deserialized arena must have —
// monotone offsets delimiting len(cols) == len(vals) non-zeros, and every
// row's column indexes strictly increasing within [0, dim) — so a corrupt
// or hand-edited snapshot is rejected instead of producing undefined query
// behavior.
func FromRaw(dim int, offs []int32, cols []uint32, vals []float32) (*Matrix, error) {
	if dim <= 0 {
		return nil, errors.New("sparse: FromRaw: non-positive dimension")
	}
	if len(offs) < 1 || offs[0] != 0 {
		return nil, errors.New("sparse: FromRaw: offsets must start at 0")
	}
	if len(cols) != len(vals) {
		return nil, errors.New("sparse: FromRaw: column/value length mismatch")
	}
	if int(offs[len(offs)-1]) != len(cols) {
		return nil, errors.New("sparse: FromRaw: final offset does not match non-zero count")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, errors.New("sparse: FromRaw: offsets decrease")
		}
		for j := offs[i-1]; j < offs[i]; j++ {
			if int(cols[j]) >= dim {
				return nil, errors.New("sparse: FromRaw: column index out of range")
			}
			if j > offs[i-1] && cols[j] <= cols[j-1] {
				return nil, errors.New("sparse: FromRaw: column indexes not strictly increasing")
			}
		}
	}
	return &Matrix{Dim: dim, offs: offs, cols: cols, vals: vals}, nil
}

// Reset empties the matrix, retaining capacity.
func (m *Matrix) Reset() {
	m.offs = m.offs[:1]
	m.cols = m.cols[:0]
	m.vals = m.vals[:0]
}

// MemoryBytes reports the approximate arena footprint, used by the §7.3
// memory constraint.
func (m *Matrix) MemoryBytes() int64 {
	return int64(len(m.offs))*4 + int64(len(m.cols))*4 + int64(len(m.vals))*4
}

// Dot computes the dot product of two sorted sparse vectors by merge
// intersection. This is the paper's *unoptimized* sparse dot product (the
// baseline of Fig. 5's "+optimized sparse DP" step).
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		ai, bj := a.Idx[i], b.Idx[j]
		switch {
		case ai == bj:
			s += float64(a.Val[i]) * float64(b.Val[j])
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return s
}

// DotBinary computes the same dot product by iterating the shorter vector
// and binary-searching the longer — the alternative naive scheme discussed
// in §5.2.3 ("perform a search for the corresponding index").
func DotBinary(a, b Vector) float64 {
	if len(a.Idx) > len(b.Idx) {
		a, b = b, a
	}
	var s float64
	lo := 0
	for i, ai := range a.Idx {
		j := lo + sort.Search(len(b.Idx)-lo, func(k int) bool { return b.Idx[lo+k] >= ai })
		if j < len(b.Idx) && b.Idx[j] == ai {
			s += float64(a.Val[i]) * float64(b.Val[j])
			lo = j + 1
		} else {
			lo = j
		}
		if lo >= len(b.Idx) {
			break
		}
	}
	return s
}

// AngularDistance returns the angle in radians between two unit vectors
// given their dot product, clamped into [0, π] against rounding drift.
func AngularDistance(dot float64) float64 {
	if dot > 1 {
		dot = 1
	} else if dot < -1 {
		dot = -1
	}
	return math.Acos(dot)
}

// CosThreshold converts an angular radius R into the equivalent dot-product
// threshold: angdist(q,v) ≤ R  ⇔  q·v ≥ cos(R). Comparing dots avoids an
// acos per candidate in the hot Q3 loop.
func CosThreshold(radius float64) float64 { return math.Cos(radius) }
