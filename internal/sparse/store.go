package sparse

// Store abstracts the read path of a document collection for the query
// engine's Step Q3: fetch candidate i's non-zeros and compute a distance.
// Two implementations exist so the Fig. 5 "+large pages" ablation can
// compare memory layouts:
//
//   - *Matrix: one contiguous arena (the optimized layout; stands in for
//     the paper's 2 MB large pages — few distinct pages, no pointer chase);
//   - *ScatteredStore: every document separately allocated (the
//     unoptimized layout — maximal page spread and per-document pointer
//     indirection).
type Store interface {
	// Doc returns document i's column indexes and values. Callers must not
	// modify the returned slices.
	Doc(i int) ([]uint32, []float32)
	// Rows returns the number of documents.
	Rows() int
	// Dimension returns the vocabulary size.
	Dimension() int
}

// Doc implements Store for *Matrix.
func (m *Matrix) Doc(i int) ([]uint32, []float32) {
	lo, hi := m.offs[i], m.offs[i+1]
	return m.cols[lo:hi], m.vals[lo:hi]
}

// Dimension implements Store for *Matrix.
func (m *Matrix) Dimension() int { return m.Dim }

// ScatteredStore stores each document in its own allocations. It exists
// only as the "no large pages / no arena" baseline of the Fig. 5 ablation.
type ScatteredStore struct {
	dim  int
	idxs [][]uint32
	vals [][]float32
}

// NewScatteredStore builds a ScatteredStore with per-document copies of
// every row of m.
func NewScatteredStore(m *Matrix) *ScatteredStore {
	s := &ScatteredStore{dim: m.Dim}
	n := m.Rows()
	s.idxs = make([][]uint32, n)
	s.vals = make([][]float32, n)
	for i := 0; i < n; i++ {
		r := m.Row(i)
		// Deliberately separate allocations per document.
		s.idxs[i] = append(make([]uint32, 0, len(r.Idx)), r.Idx...)
		s.vals[i] = append(make([]float32, 0, len(r.Val)), r.Val...)
	}
	return s
}

// Doc implements Store.
func (s *ScatteredStore) Doc(i int) ([]uint32, []float32) { return s.idxs[i], s.vals[i] }

// Rows implements Store.
func (s *ScatteredStore) Rows() int { return len(s.idxs) }

// Dimension implements Store.
func (s *ScatteredStore) Dimension() int { return s.dim }
