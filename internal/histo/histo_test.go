package histo

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketGeometry checks the index/bound pair on every representable
// boundary: each bucket's max really is the largest value mapping to it,
// and indices are monotone in the value.
func TestBucketGeometry(t *testing.T) {
	last := -1
	for exp := 0; exp < 64; exp++ {
		for _, off := range []uint64{0, 1} {
			v := uint64(1)<<uint(exp) + off - 1
			if v == 0 && off == 0 && exp > 0 {
				continue
			}
			i := bucketIndex(v)
			if i < last {
				t.Fatalf("bucketIndex not monotone: v=%d -> %d after %d", v, i, last)
			}
			last = i
			if mx := bucketMax(i); v > mx {
				t.Fatalf("value %d maps to bucket %d whose max is %d", v, i, mx)
			}
		}
	}
	if i := bucketIndex(^uint64(0)); i != nBuckets-1 {
		t.Fatalf("max uint64 maps to bucket %d, want %d", i, nBuckets-1)
	}
	if mx := bucketMax(nBuckets - 1); mx != ^uint64(0) {
		t.Fatalf("last bucket max = %d, want max uint64", mx)
	}
}

// TestQuantileErrorBound records a deterministic heavy-tailed sample and
// checks every reported quantile against the exact order statistic: the
// histogram answer must be >= the true value (pessimistic) and within the
// 2^-subBits relative quantization error.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var h Histogram
	vals := make([]uint64, 20000)
	for i := range vals {
		v := uint64(rng.Int63n(1 << uint(8+rng.Intn(30))))
		vals[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		idx := int(q*float64(len(vals))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		exact := vals[idx]
		got := uint64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%g: histogram %d < exact %d (quantile understates)", q, got, exact)
		}
		if maxErr := exact >> subBits; got > exact+maxErr+1 {
			t.Errorf("q=%g: histogram %d exceeds exact %d by more than 2^-%d relative error", q, got, exact, subBits)
		}
	}
}

func TestEmptyAndSmall(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(7)
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("single exact-range value: quantile %d, want 7", got)
	}
	if got := h.Mean(); got != 7 {
		t.Fatalf("mean %d, want 7", got)
	}
	h.Record(-time.Second) // clock step: clamps to 0, must not panic
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines (run
// under -race in CI) and checks nothing is lost: count and sum are exact
// even though quantile reads race the writers.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000 + i))
				if i%512 == 0 {
					_ = h.Quantile(0.99)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
}

// TestRecordDoesNotAllocate pins the zero-alloc record path the allocgate
// budget also enforces at compile time.
func TestRecordDoesNotAllocate(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Record allocates %v times per call, want 0", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i))
	}
}
