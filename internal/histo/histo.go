// Package histo provides a fixed-footprint log-linear latency histogram
// whose record path is wait-free and allocation-free: one bucket-index
// computation (two shifts and a bits.Len64) plus two atomic adds. That is
// what lets the soak harness and the WAL keep per-operation latency
// distributions on hot paths that the allocgate budget pins to zero
// escapes.
//
// Geometry: values are nanoseconds. The first 2^subBits buckets are exact
// (one bucket per nanosecond); above that, each power-of-two range splits
// into 2^subBits equal sub-buckets, bounding the relative quantization
// error of any recorded value by 1/2^subBits (~3% at subBits=5). All of
// uint64 is representable, so nothing is ever clamped or dropped. The
// whole histogram is a flat value type (~15 KiB) that can be embedded and
// read concurrently with writers; quantiles read the buckets atomically
// but are not a consistent snapshot — fine for monitoring, where the
// distribution dwarfs any in-flight increment.
package histo

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits is the sub-bucket resolution: 2^subBits sub-buckets per
	// power-of-two range, so quantile error is bounded by 2^-subBits.
	subBits = 5
	subs    = 1 << subBits
	// nBuckets covers every uint64: the exact range [0, subs) plus one
	// block of subs sub-buckets for each of the 64-subBits+... exponents.
	nBuckets = (64 - subBits + 1) * subs
)

// Histogram is a concurrent log-linear histogram of nanosecond values.
// The zero value is ready to use. Copying a Histogram that has ever been
// recorded to is not supported (it embeds atomics); embed it by value and
// share a pointer.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [nBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond value to its bucket. Values below subs
// map exactly; larger values land in the sub-bucket whose range holds
// them.
func bucketIndex(v uint64) int {
	if v < subs {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 2^exp <= v < 2^(exp+1)
	sub := (v >> (uint(exp) - subBits)) & (subs - 1)
	return (exp-subBits)*subs + subs + int(sub)
}

// bucketMax is the largest value bucket i holds — what Quantile reports,
// so quantiles err on the pessimistic (larger) side, never understating a
// tail.
func bucketMax(i int) uint64 {
	if i < subs {
		return uint64(i)
	}
	block := i/subs - 1 // exponent block above the exact range
	exp := uint(block + subBits)
	sub := uint64(i % subs)
	lower := uint64(1)<<exp | sub<<(exp-subBits)
	return lower + 1<<(exp-subBits) - 1
}

// Record adds one observation. Negative durations count as zero (clock
// steps happen; a poisoned bucket index must not).
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean recorded duration, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// recorded distribution: the max value of the bucket holding the
// ceil(q·count)-th smallest observation. Empty histograms report 0.
// Concurrent recording skews the answer by at most the in-flight
// increments.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q*float64(n) + 0.5)
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(bucketMax(i))
		}
	}
	// Recorders raced ahead of the bucket walk; the tail bucket we saw
	// last is still the best answer available.
	return time.Duration(bucketMax(nBuckets - 1))
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// recorders: increments in flight during a reset may survive it.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
