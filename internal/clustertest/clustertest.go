// Package clustertest runs real multi-process PLSH clusters for
// fault-injection tests: it builds cmd/plsh-node once per test run,
// spawns N node processes — each with its own TCP address and data
// directory — and lets a test SIGKILL chosen nodes at chosen points and
// restart them (recovering from their write-ahead journals) to verify
// the cluster-level failover and rejoin guarantees.
//
// Unlike the in-process killable servers used by the fast tests, a node
// killed here dies the way a machine does: no Go cleanup runs, sockets
// are torn down by the kernel, and the only state that survives is what
// the durability layer journaled before the acknowledgment. The suite
// that drives this package is gated behind the `slow` build tag and runs
// in CI's integration job.
package clustertest

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"plsh/internal/transport"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// nodeBinary builds cmd/plsh-node once per test-binary run and returns
// its path. Tests are skipped when no go toolchain is available (the
// same policy as the root package's kill -9 recovery test).
func nodeBinary(t testing.TB) string {
	t.Helper()
	buildOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			buildErr = fmt.Errorf("go toolchain unavailable: %w", err)
			return
		}
		out, err := exec.Command(goBin, "env", "GOMOD").Output()
		if err != nil {
			buildErr = fmt.Errorf("go env GOMOD: %w", err)
			return
		}
		root := filepath.Dir(strings.TrimSpace(string(out)))
		dir, err := os.MkdirTemp("", "plsh-clustertest-")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "plsh-node")
		cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/plsh-node")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build plsh-node: %v\n%s", err, out)
			return
		}
		buildBin = bin
	})
	if buildErr != nil {
		if strings.Contains(buildErr.Error(), "toolchain unavailable") {
			t.Skip(buildErr)
		}
		t.Fatal(buildErr)
	}
	return buildBin
}

// Node is one plsh-node process of a Fleet. Addr and Dir are stable
// across Kill/Start cycles, so a restarted node recovers its own journal
// and rejoins at the address the coordinator already knows.
type Node struct {
	Addr string
	Dir  string

	t    testing.TB
	bin  string
	args []string
	cmd  *exec.Cmd
}

// Start launches (or relaunches) the node process and waits until it
// answers RPCs — after a kill, that includes its snapshot load and
// journal replay.
func (n *Node) Start() {
	n.t.Helper()
	if n.cmd != nil {
		n.t.Fatal("clustertest: Start on a running node (Kill it first)")
	}
	args := append([]string{"-addr", n.Addr, "-data", n.Dir}, n.args...)
	cmd := exec.Command(n.bin, args...)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		n.t.Fatalf("clustertest: start plsh-node: %v", err)
	}
	n.cmd = cmd
	n.waitReady(15 * time.Second)
}

// Kill SIGKILLs the node process and reaps it — no shutdown path runs,
// exactly like a machine loss. Idempotent on an already-dead node.
func (n *Node) Kill() {
	n.t.Helper()
	if n.cmd == nil {
		return
	}
	// Best-effort teardown of a process we are abandoning: Kill on an
	// already-dead process and Wait's exit status are both uninteresting.
	_ = n.cmd.Process.Kill()
	_ = n.cmd.Wait()
	n.cmd = nil
}

// Running reports whether the node process is currently up (as far as
// this harness knows — a crash the test did not inject is not tracked).
func (n *Node) Running() bool { return n.cmd != nil }

// waitReady polls the node with real RPCs until it answers (the listener
// may be up before Serve is wired, and a restart replays its journal
// first).
func (n *Node) waitReady(timeout time.Duration) {
	n.t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := transport.Dial(ctx, n.Addr)
		if err == nil {
			_, serr := c.Stats(ctx)
			c.Close()
			if serr == nil {
				return
			}
			err = serr
		}
		lastErr = err
		if time.Now().After(deadline) {
			n.t.Fatalf("clustertest: node at %s not ready: %v", n.Addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Fleet is a set of plsh-node processes under one test's control.
type Fleet struct {
	Nodes []*Node
}

// Start builds the node binary, reserves n TCP addresses, and launches n
// durable node processes, each with its own data directory under the
// test's temp space plus the given extra flags (dimensions, seed, ...).
// Every process still running at test end is SIGKILLed by cleanup.
func Start(t testing.TB, n int, extraArgs ...string) *Fleet {
	t.Helper()
	bin := nodeBinary(t)
	f := &Fleet{}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		f.Nodes = append(f.Nodes, &Node{
			Addr: addr,
			Dir:  t.TempDir(),
			t:    t,
			bin:  bin,
			args: extraArgs,
		})
	}
	t.Cleanup(func() {
		for _, nd := range f.Nodes {
			nd.Kill()
		}
	})
	for _, nd := range f.Nodes {
		nd.Start()
	}
	return f
}

// Addrs returns every node's address, in fleet order (group-major when
// the coordinator is built with replicas).
func (f *Fleet) Addrs() []string {
	out := make([]string, len(f.Nodes))
	for i, nd := range f.Nodes {
		out[i] = nd.Addr
	}
	return out
}
