// Package clustertest runs real multi-process PLSH clusters: it builds
// cmd/plsh-node once per process, spawns N node processes — each with its
// own TCP address and data directory — and lets the caller SIGKILL chosen
// nodes at chosen points and restart them (recovering from their
// write-ahead journals) to verify the cluster-level failover and rejoin
// guarantees.
//
// Unlike the in-process killable servers used by the fast tests, a node
// killed here dies the way a machine does: no Go cleanup runs, sockets
// are torn down by the kernel, and the only state that survives is what
// the durability layer journaled before the acknowledgment.
//
// The package has two front doors over one error-returning core: the
// testing wrapper Start (t.Fatal/t.Skip semantics, cleanup-registered
// kills) used by the `slow`-tagged fault-injection suite, and Spawn,
// which cmd/plsh-soak uses to drive the same fleets from a plain binary.
package clustertest

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"plsh/internal/transport"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// errNoToolchain marks the build failure tests translate into a skip.
const errNoToolchain = "go toolchain unavailable"

// BuildNodeBinary builds cmd/plsh-node once per process and returns its
// path. The binary lands in a temp directory that outlives the caller
// (the OS reaps it); repeated calls return the first build.
func BuildNodeBinary() (string, error) {
	buildOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			buildErr = fmt.Errorf("%s: %w", errNoToolchain, err)
			return
		}
		out, err := exec.Command(goBin, "env", "GOMOD").Output()
		if err != nil {
			buildErr = fmt.Errorf("go env GOMOD: %w", err)
			return
		}
		root := filepath.Dir(strings.TrimSpace(string(out)))
		dir, err := os.MkdirTemp("", "plsh-clustertest-")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "plsh-node")
		cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/plsh-node")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build plsh-node: %v\n%s", err, out)
			return
		}
		buildBin = bin
	})
	return buildBin, buildErr
}

// nodeBinary is BuildNodeBinary with test policy: skip when no go
// toolchain is available (the same policy as the root package's kill -9
// recovery test), fail on real build errors.
func nodeBinary(t testing.TB) string {
	t.Helper()
	bin, err := BuildNodeBinary()
	if err != nil {
		if strings.Contains(err.Error(), errNoToolchain) {
			t.Skip(err)
		}
		t.Fatal(err)
	}
	return bin
}

// Node is one plsh-node process of a Fleet. Addr and Dir are stable
// across Kill/Start cycles, so a restarted node recovers its own journal
// and rejoins at the address the coordinator already knows.
type Node struct {
	Addr string
	Dir  string

	bin  string
	args []string
	cmd  *exec.Cmd
}

// Start launches (or relaunches) the node process and waits until it
// answers RPCs — after a kill, that includes its snapshot load and
// journal replay.
func (n *Node) Start() error {
	if n.cmd != nil {
		return fmt.Errorf("clustertest: Start on a running node at %s (Kill or Stop it first)", n.Addr)
	}
	args := append([]string{"-addr", n.Addr, "-data", n.Dir}, n.args...)
	cmd := exec.Command(n.bin, args...)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("clustertest: start plsh-node: %w", err)
	}
	n.cmd = cmd
	if err := n.waitReady(15 * time.Second); err != nil {
		n.Kill()
		return err
	}
	return nil
}

// Kill SIGKILLs the node process and reaps it — no shutdown path runs,
// exactly like a machine loss. Idempotent on an already-dead node.
func (n *Node) Kill() {
	if n.cmd == nil {
		return
	}
	// Best-effort teardown of a process we are abandoning: Kill on an
	// already-dead process and Wait's exit status are both uninteresting.
	_ = n.cmd.Process.Kill()
	_ = n.cmd.Wait()
	n.cmd = nil
}

// Stop SIGTERMs the node and waits up to timeout for it to exit — the
// graceful path: the process drains in-flight RPCs, checkpoints, and
// exits 0. A process still alive at the deadline is SIGKILLed and the
// call errors; a nonzero exit status errors too. Idempotent on an
// already-dead node.
func (n *Node) Stop(timeout time.Duration) error {
	if n.cmd == nil {
		return nil
	}
	cmd := n.cmd
	n.cmd = nil
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("clustertest: SIGTERM node at %s: %w", n.Addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("clustertest: node at %s exited uncleanly after SIGTERM: %w", n.Addr, err)
		}
		return nil
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return fmt.Errorf("clustertest: node at %s did not exit within %v of SIGTERM", n.Addr, timeout)
	}
}

// Running reports whether the node process is currently up (as far as
// this harness knows — a crash the caller did not inject is not tracked).
func (n *Node) Running() bool { return n.cmd != nil }

// Signal sends sig to the node process; a no-op when the node is down.
// SIGSTOP/SIGCONT pairs freeze a live replica — the process holds its
// sockets but answers nothing — which is the fault that forces hedged
// searches to fire and win (a dead replica fails fast and exercises
// failover instead).
func (n *Node) Signal(sig os.Signal) error {
	if n.cmd == nil {
		return nil
	}
	return n.cmd.Process.Signal(sig)
}

// waitReady polls the node with real RPCs until it answers (the listener
// may be up before Serve is wired, and a restart replays its journal
// first).
func (n *Node) waitReady(timeout time.Duration) error {
	ctx := context.Background()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := transport.Dial(ctx, n.Addr)
		if err == nil {
			_, serr := c.Stats(ctx)
			c.Close()
			if serr == nil {
				return nil
			}
			err = serr
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("clustertest: node at %s not ready: %w", n.Addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Fleet is a set of plsh-node processes under one caller's control.
type Fleet struct {
	Nodes []*Node
}

// Spawn builds the node binary, reserves n TCP addresses, and launches n
// durable node processes, each with its own data directory under
// dataRoot plus the given extra flags (dimensions, seed, ...). On error,
// any processes already launched are killed. The caller owns shutdown:
// KillAll (or per-node Kill/Stop) when done.
func Spawn(n int, dataRoot string, extraArgs ...string) (*Fleet, error) {
	bin, err := BuildNodeBinary()
	if err != nil {
		return nil, err
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := l.Addr().String()
		l.Close()
		dir := filepath.Join(dataRoot, fmt.Sprintf("node-%02d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		f.Nodes = append(f.Nodes, &Node{
			Addr: addr,
			Dir:  dir,
			bin:  bin,
			args: extraArgs,
		})
	}
	for _, nd := range f.Nodes {
		if err := nd.Start(); err != nil {
			f.KillAll()
			return nil, err
		}
	}
	return f, nil
}

// Start is the testing front door over Spawn: node data directories live
// under the test's temp space, failures are t.Fatal (or t.Skip without a
// toolchain), and every process still running at test end is SIGKILLed
// by cleanup.
func Start(t testing.TB, n int, extraArgs ...string) *Fleet {
	t.Helper()
	nodeBinary(t) // resolve skip-vs-fatal before Spawn can fail on it
	f, err := Spawn(n, t.TempDir(), extraArgs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.KillAll)
	return f
}

// KillAll SIGKILLs every node still running, in fleet order.
func (f *Fleet) KillAll() {
	for _, nd := range f.Nodes {
		nd.Kill()
	}
}

// Addrs returns every node's address, in fleet order (group-major when
// the coordinator is built with replicas).
func (f *Fleet) Addrs() []string {
	out := make([]string, len(f.Nodes))
	for i, nd := range f.Nodes {
		out[i] = nd.Addr
	}
	return out
}
