package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"plsh/internal/histo"

	"plsh/internal/sparse"
)

// The write-ahead journal records every acknowledged write between
// checkpoints. It is a sequence of numbered segment files (wal-NNNNNNNN.log)
// of length-prefixed, CRC-framed records:
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// A record is acknowledged-durable once its frame is written: appends go
// to the file in one write() call, so a killed process loses at most the
// un-acknowledged tail (SyncWrites additionally fsyncs each append for
// machine-crash durability). A failed append marks the live segment
// broken — its tail may hold a torn frame, and nothing further may be
// acknowledged behind one — until a rotation opens a clean segment.
// Replay reads segments in order; a torn frame ends its segment (it is
// some boot's unacknowledged tail — a crash→recover→crash history
// legitimately leaves torn tails mid-sequence) and replay continues with
// the next segment, so the records delivered are exactly the
// acknowledged history.
//
// Segments exist so checkpoints can truncate the journal without touching
// the live append file: Rotate (called with the node quiescent at a merge
// boundary) seals the current segment and opens the next one, returning
// its sequence number as a token; Checkpoint then writes the snapshot and
// deletes every segment older than the token. The caller guarantees the
// rotation invariant that makes this safe: at Rotate time, every record in
// older segments is covered by the snapshot the token's checkpoint will
// write.

// RecordKind enumerates journal record types.
type RecordKind uint8

const (
	// RecordInsert is an acknowledged batch insert at a known arena base.
	RecordInsert RecordKind = 1
	// RecordDelete is an acknowledged tombstone.
	RecordDelete RecordKind = 2
	// RecordRetire marks a node erasure (rolling-window expiration):
	// replay resets to empty before applying later records.
	RecordRetire RecordKind = 3
)

// Record is one replayed journal entry.
type Record struct {
	Kind RecordKind
	// Base is the arena row of the first document in an insert batch.
	Base int
	// Docs are an insert batch's documents.
	Docs []sparse.Vector
	// ID is a delete's target row.
	ID uint32
}

// maxRecordLen bounds a single record frame: the append side refuses
// larger records (before building them), and the replay side treats a
// larger length field as corruption rather than sizing an allocation
// from it. A var only so tests can exercise the limit without gigabyte
// allocations.
var maxRecordLen = 1 << 30

// errWALClosed is returned by appends after Close.
var errWALClosed = errors.New("persist: journal closed")

// WAL is the append side of the journal. Appends, rotation, and
// truncation serialize on an internal mutex; Checkpoint serializes on its
// own so a slow snapshot write never blocks appends.
type WAL struct {
	dir  string
	sync bool

	mu  sync.Mutex
	f   *os.File
	seq int
	buf []byte
	// broken records the first append failure on the live segment. A
	// failed write may leave a torn frame mid-segment, and replay treats
	// a tear as the end of that segment — so no further append may land
	// behind it. Appends fail until a successful Rotate opens a clean
	// segment (merges and Save rotate, so a durable node heals on its
	// next checkpoint).
	broken error

	cpMu    sync.Mutex
	cpToken int // highest token whose checkpoint has been written

	// appendHist and syncHist track per-record write and fsync latency —
	// the server-side cause behind most acknowledged-write tail latency,
	// surfaced through node.Stats for soak reports. Recording is two
	// atomic adds per append; quantile reads are lock-free.
	appendHist, syncHist histo.Histogram
}

// OpenWAL opens dir's journal for appending, creating a fresh segment
// after any existing ones (existing segments are never appended to — their
// tails may be torn). Call ReplayWAL first to recover their contents.
func OpenWAL(dir string, syncWrites bool) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	seqs, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	w := &WAL{dir: dir, sync: syncWrites, buf: make([]byte, 0, 1<<12)}
	if err := w.openSegmentLocked(next); err != nil {
		return nil, err
	}
	return w, nil
}

// Dir returns the journal's directory.
func (w *WAL) Dir() string { return w.dir }

func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", seq))
}

// walSegments lists dir's segment sequence numbers, ascending.
func walSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []int
	for _, e := range ents {
		var seq int
		if n, _ := fmt.Sscanf(e.Name(), "wal-%d.log", &seq); n == 1 && e.Name() == fmt.Sprintf("wal-%08d.log", seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

func (w *WAL) openSegmentLocked(seq int) error {
	f, err := os.OpenFile(segmentPath(w.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: open journal segment: %w", err)
	}
	w.f, w.seq = f, seq
	syncDir(w.dir)
	return nil
}

// maxRetainedBuf bounds the append buffer kept between records, so one
// huge batch does not pin its encoded size for the WAL's lifetime.
const maxRetainedBuf = 1 << 20

// appendFrame frames payload (already in w.buf[8:]) and writes it in one
// call. Callers hold mu and have built w.buf as 8 header bytes + payload.
func (w *WAL) appendFrameLocked() error {
	if w.f == nil {
		return errWALClosed
	}
	if w.broken != nil {
		return fmt.Errorf("persist: journal segment broken by earlier append failure: %w", w.broken)
	}
	payload := w.buf[8:]
	if len(payload) > maxRecordLen {
		// Replay would classify an over-limit frame as corruption; refuse
		// it up front so the write is never acknowledged.
		return fmt.Errorf("persist: journal record encodes to %d bytes, over the %d frame limit (split the batch)",
			len(payload), maxRecordLen)
	}
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:], crc32.Checksum(payload, castagnoli))
	defer func() {
		if cap(w.buf) > maxRetainedBuf {
			w.buf = make([]byte, 0, 1<<12)
		}
	}()
	t0 := time.Now()
	if _, err := w.f.Write(w.buf); err != nil {
		w.broken = err
		return fmt.Errorf("persist: journal append: %w", err)
	}
	w.appendHist.Record(time.Since(t0))
	if w.sync {
		t1 := time.Now()
		if err := w.f.Sync(); err != nil {
			w.broken = err
			return fmt.Errorf("persist: journal sync: %w", err)
		}
		w.syncHist.Record(time.Since(t1))
	}
	return nil
}

// WriteQuantile returns an upper bound for the q-quantile of per-record
// segment-write latency over the WAL's lifetime; 0 before any append.
// (Not named Append*: those are the journal-mutation methods the
// walorder analyzer holds to the fsync-reachability contract.)
func (w *WAL) WriteQuantile(q float64) time.Duration { return w.appendHist.Quantile(q) }

// SyncQuantile is WriteQuantile for the per-record fsync; always 0 on a
// WAL opened without SyncWrites.
func (w *WAL) SyncQuantile(q float64) time.Duration { return w.syncHist.Quantile(q) }

// AppendInsert journals an acknowledged insert batch landing at arena row
// base. It must complete before the insert is acknowledged to the caller.
// A batch whose encoding would exceed the frame limit is refused before
// anything is built or written — the caller must split it.
func (w *WAL) AppendInsert(base int, vs []sparse.Vector) error {
	size := 1 + 8 + 4
	for _, v := range vs {
		size += 4 + 8*v.NNZ()
	}
	if size > maxRecordLen {
		return fmt.Errorf("persist: insert batch encodes to %d bytes, over the %d journal frame limit (split the batch)",
			size, maxRecordLen)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.buf[:8]
	b = append(b, byte(RecordInsert))
	b = binary.LittleEndian.AppendUint64(b, uint64(base))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v.NNZ()))
		for _, c := range v.Idx {
			b = binary.LittleEndian.AppendUint32(b, c)
		}
		for _, x := range v.Val {
			b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
		}
	}
	w.buf = b
	return w.appendFrameLocked()
}

// AppendDelete journals an acknowledged tombstone.
func (w *WAL) AppendDelete(id uint32) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	b := w.buf[:8]
	b = append(b, byte(RecordDelete))
	b = binary.LittleEndian.AppendUint32(b, id)
	w.buf = b
	return w.appendFrameLocked()
}

// AppendRetire journals a node erasure.
func (w *WAL) AppendRetire() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = append(w.buf[:8], byte(RecordRetire))
	return w.appendFrameLocked()
}

// Rotate seals the current segment and opens the next, returning its
// sequence number as the checkpoint token. The caller must hold the
// node-level invariant: every record already journaled is covered by the
// snapshot that Checkpoint(token) will later write.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, errWALClosed
	}
	// A broken segment's close is best-effort: its handle may already be
	// unusable, and healing requires the fresh segment either way.
	if err := w.f.Close(); err != nil && w.broken == nil {
		return 0, fmt.Errorf("persist: seal journal segment: %w", err)
	}
	w.f = nil
	if err := w.openSegmentLocked(w.seq + 1); err != nil {
		return 0, err
	}
	w.broken = nil // a fresh segment has no torn frame to append behind
	return w.seq, nil
}

// Checkpoint durably writes s and then deletes every segment older than
// token (obtained from the Rotate that froze those segments' contents
// into s). Checkpoints serialize, and a stale one — racing a newer merge's
// checkpoint under merge chaining — is skipped entirely, so the snapshot
// on disk never regresses to cover fewer rows than the journal assumes.
func (w *WAL) Checkpoint(s *Snapshot, token int) error {
	w.cpMu.Lock()
	defer w.cpMu.Unlock()
	if token <= w.cpToken {
		return nil // a newer checkpoint already covers this state
	}
	if err := WriteSnapshot(w.dir, s); err != nil {
		return err
	}
	w.cpToken = token
	var first error
	seqs, err := walSegments(w.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= token {
			break
		}
		if err := os.Remove(segmentPath(w.dir, seq)); err != nil && first == nil {
			first = fmt.Errorf("persist: truncate journal: %w", err)
		}
	}
	return first
}

// Close seals the journal; further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// ReplayWAL streams dir's journaled records, oldest first, into fn. A
// torn frame (a partially written tail: short header, short payload, or
// CRC mismatch) ends its segment — nothing acknowledged ever lands
// behind a tear, because appends fail after a partial write until the
// journal rotates — but replay continues with the next segment: a torn
// mid-sequence segment is normal after a crash→recover→crash history,
// where a new boot's segment follows an older torn tail. fn returning an
// error aborts the replay with that error. A frame that passes its CRC
// but does not decode is corruption, not a tear, and is reported as an
// error.
func ReplayWAL(dir string, fn func(*Record) error) error {
	seqs, err := walSegments(dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if err := replaySegment(segmentPath(dir, seq), fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment replays one segment's complete frames; a torn frame ends
// the segment silently (it is the unacknowledged tail of some boot's
// live segment).
func replaySegment(path string, fn func(*Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer f.Close() // read-only; a close error carries no data-loss signal
	r := bufio.NewReaderSize(f, 1<<16)
	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
			return nil // clean end of segment
		} else if err != nil {
			return nil // torn header
		}
		if _, err := io.ReadFull(r, hdr[1:]); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if int(n) > maxRecordLen {
			return nil // length field from a torn/garbage frame
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("persist: %s: %w", filepath.Base(path), err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// decodeRecord parses one CRC-verified payload.
func decodeRecord(p []byte) (*Record, error) {
	errMalformed := fmt.Errorf("%w: malformed journal record", ErrCorrupt)
	if len(p) < 1 {
		return nil, errMalformed
	}
	rec := &Record{Kind: RecordKind(p[0])}
	p = p[1:]
	switch rec.Kind {
	case RecordInsert:
		if len(p) < 12 {
			return nil, errMalformed
		}
		rec.Base = int(binary.LittleEndian.Uint64(p))
		count := int(binary.LittleEndian.Uint32(p[8:]))
		p = p[12:]
		if rec.Base < 0 || count < 0 || count > maxRecordLen/4 {
			return nil, errMalformed
		}
		rec.Docs = make([]sparse.Vector, 0, count)
		for i := 0; i < count; i++ {
			if len(p) < 4 {
				return nil, errMalformed
			}
			nnz := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if nnz < 0 || len(p) < nnz*8 {
				return nil, errMalformed
			}
			v := sparse.Vector{Idx: make([]uint32, nnz), Val: make([]float32, nnz)}
			for j := 0; j < nnz; j++ {
				v.Idx[j] = binary.LittleEndian.Uint32(p[j*4:])
			}
			p = p[nnz*4:]
			for j := 0; j < nnz; j++ {
				v.Val[j] = math.Float32frombits(binary.LittleEndian.Uint32(p[j*4:]))
			}
			p = p[nnz*4:]
			rec.Docs = append(rec.Docs, v)
		}
		if len(p) != 0 {
			return nil, errMalformed
		}
	case RecordDelete:
		if len(p) != 4 {
			return nil, errMalformed
		}
		rec.ID = binary.LittleEndian.Uint32(p)
	case RecordRetire:
		if len(p) != 0 {
			return nil, errMalformed
		}
	default:
		return nil, errMalformed
	}
	return rec, nil
}
