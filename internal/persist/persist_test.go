package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

func testParams() lshhash.Params {
	return lshhash.Params{Dim: 500, K: 8, M: 4, Seed: 7}
}

// testSnapshot builds a small but fully populated snapshot: real documents,
// real static tables, and a few tombstones.
func testSnapshot(t *testing.T, n int) *Snapshot {
	t.Helper()
	p := testParams()
	fam, err := lshhash.NewFamily(p)
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.Generate(corpus.Twitter(n, p.Dim, 3))
	st, err := core.Build(fam, c.Mat, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	del := make([]uint64, (n+63)/64)
	if n > 2 {
		del[0] |= 1 << 2
	}
	return &Snapshot{
		Params:   p,
		Capacity: 4 * n,
		Rows:     n,
		Arena:    c.Mat,
		Tables:   st.Tables(),
		Deleted:  del,
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := testSnapshot(t, 100)
	if err := WriteSnapshot(dir, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params != s.Params || got.Rows != s.Rows || got.Capacity != s.Capacity {
		t.Fatalf("header mismatch: %+v vs %+v", got, s)
	}
	if got.Arena.Rows() != s.Arena.Rows() || got.Arena.NNZ() != s.Arena.NNZ() {
		t.Fatalf("arena shape mismatch")
	}
	for i := 0; i < s.Rows; i++ {
		a, b := s.Arena.Row(i), got.Arena.Row(i)
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("row %d nnz mismatch", i)
		}
		for j := range a.Idx {
			if a.Idx[j] != b.Idx[j] || a.Val[j] != b.Val[j] {
				t.Fatalf("row %d entry %d mismatch", i, j)
			}
		}
	}
	if len(got.Tables) != len(s.Tables) {
		t.Fatalf("table count %d vs %d", len(got.Tables), len(s.Tables))
	}
	for l := range s.Tables {
		a, b := &s.Tables[l], &got.Tables[l]
		if len(a.Offsets) != len(b.Offsets) || len(a.Items) != len(b.Items) {
			t.Fatalf("table %d shape mismatch", l)
		}
		for i := range a.Items {
			if a.Items[i] != b.Items[i] {
				t.Fatalf("table %d item %d mismatch", l, i)
			}
		}
	}
	if len(got.Deleted) != len(s.Deleted) || got.Deleted[0] != s.Deleted[0] {
		t.Fatalf("tombstones mismatch")
	}
	// The loaded tables must reassemble into a valid Static.
	fam, _ := lshhash.NewFamily(got.Params)
	if _, err := core.StaticFromTables(fam, got.Rows, got.Tables); err != nil {
		t.Fatalf("StaticFromTables: %v", err)
	}
}

func TestSnapshotMissing(t *testing.T) {
	if _, err := ReadSnapshot(t.TempDir()); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
}

// TestSnapshotCorruptionRejected flips each of a spread of bytes and
// asserts every corrupted file is rejected — never loaded as garbage.
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, testSnapshot(t, 60)); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(SnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/64 + 1
	for off := 0; off < len(orig); off += step {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0xA5
		if err := os.WriteFile(SnapshotPath(dir), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: want ErrCorrupt, got %v", off, err)
		}
	}
	// Truncations must be rejected too.
	for _, cut := range []int{0, 1, 7, 8, len(orig) / 2, len(orig) - 1} {
		if err := os.WriteFile(SnapshotPath(dir), orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSnapshot(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate at %d: want ErrCorrupt, got %v", cut, err)
		}
	}
}

func TestSnapshotAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, testSnapshot(t, 20)); err != nil {
		t.Fatal(err)
	}
	s2 := testSnapshot(t, 40)
	if err := WriteSnapshot(dir, s2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 40 {
		t.Fatalf("overwrite kept old snapshot: rows = %d", got.Rows)
	}
	// No temp litter.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != snapshotName {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

func walDocs(n int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, 500, seed))
	out := make([]sparse.Vector, n)
	for i := range out {
		out[i] = c.Mat.Row(i)
	}
	return out
}

// appendAll journals a deterministic op sequence and returns the records
// it should replay to.
func appendAll(t *testing.T, w *WAL) []*Record {
	t.Helper()
	var want []*Record
	base := 0
	for i := 0; i < 6; i++ {
		docs := walDocs(3+i, uint64(i+1))
		if err := w.AppendInsert(base, docs); err != nil {
			t.Fatal(err)
		}
		want = append(want, &Record{Kind: RecordInsert, Base: base, Docs: docs})
		base += len(docs)
		if i%2 == 1 {
			id := uint32(base - 1)
			if err := w.AppendDelete(id); err != nil {
				t.Fatal(err)
			}
			want = append(want, &Record{Kind: RecordDelete, ID: id})
		}
	}
	if err := w.AppendRetire(); err != nil {
		t.Fatal(err)
	}
	want = append(want, &Record{Kind: RecordRetire})
	if err := w.AppendInsert(0, walDocs(2, 99)); err != nil {
		t.Fatal(err)
	}
	want = append(want, &Record{Kind: RecordInsert, Base: 0, Docs: walDocs(2, 99)})
	return want
}

func replayAll(t *testing.T, dir string) []*Record {
	t.Helper()
	var got []*Record
	if err := ReplayWAL(dir, func(r *Record) error {
		cp := *r
		cp.Docs = append([]sparse.Vector(nil), r.Docs...)
		got = append(got, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func recordsEqual(a, b *Record) bool {
	if a.Kind != b.Kind || a.Base != b.Base || a.ID != b.ID || len(a.Docs) != len(b.Docs) {
		return false
	}
	for i := range a.Docs {
		x, y := a.Docs[i], b.Docs[i]
		if len(x.Idx) != len(y.Idx) {
			return false
		}
		for j := range x.Idx {
			if x.Idx[j] != y.Idx[j] || x.Val[j] != y.Val[j] {
				return false
			}
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want := appendAll(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestWALTornTail is the framing property test: for a truncation at every
// single byte offset of the journal, replay loads exactly the records
// whose frames are fully contained — no torn record ever loads, and no
// truncation point produces an error.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want := appendAll(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := walSegments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments %v (%v)", seqs, err)
	}
	raw, err := os.ReadFile(segmentPath(dir, seqs[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: walk the encoding.
	var bounds []int
	off := 0
	for off < len(raw) {
		n := int(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		off += 8 + n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(want) {
		t.Fatalf("%d frames, want %d", len(bounds), len(want))
	}
	for cut := 0; cut <= len(raw); cut++ {
		sub := filepath.Join(t.TempDir(), "w")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segmentPath(sub, 1), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, sub)
		complete := 0
		for _, b := range bounds {
			if b <= cut {
				complete++
			}
		}
		if len(got) != complete {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), complete)
		}
		for i := 0; i < complete; i++ {
			if !recordsEqual(got[i], want[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
	}
}

// TestWALRotateCheckpointTruncates: rotation segments the journal, and a
// checkpoint at a token removes exactly the pre-rotation segments.
func TestWALRotateCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, walDocs(4, 1)); err != nil {
		t.Fatal(err)
	}
	token, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(4, walDocs(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Checkpoint(testSnapshot(t, 4), token); err != nil {
		t.Fatal(err)
	}
	seqs, err := walSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != token {
		t.Fatalf("segments after checkpoint: %v, want [%d]", seqs, token)
	}
	// Only the post-rotation record remains.
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].Base != 4 {
		t.Fatalf("post-checkpoint replay: %+v", got)
	}
	// A stale checkpoint (lower token) must be skipped, not regress the
	// snapshot: the higher checkpoint's snapshot stays.
	if err := w.Checkpoint(testSnapshot(t, 2), token-1); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rows != 4 {
		t.Fatalf("stale checkpoint regressed snapshot to %d rows", snap.Rows)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDelete(0); !errors.Is(err, errWALClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

// TestWALReopenAppendsNewSegment: reopening never appends to an old
// (possibly torn) segment.
func TestWALReopenAppendsNewSegment(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir, false)
	if err := w.AppendInsert(0, walDocs(2, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendInsert(2, walDocs(2, 2)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	seqs, _ := walSegments(dir)
	if len(seqs) != 2 {
		t.Fatalf("segments %v, want two", seqs)
	}
	got := replayAll(t, dir)
	if len(got) != 2 || got[0].Base != 0 || got[1].Base != 2 {
		t.Fatalf("cross-segment replay: %+v", got)
	}
}

// TestWALTornMidSequenceSegment: a crash→recover→crash history leaves a
// torn tail in a non-final segment; replay must drop only the tear and
// keep every acknowledged record from the following segments.
func TestWALTornMidSequenceSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, walDocs(3, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Simulate a kill mid-append: garbage half-frame at segment 1's tail.
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The next boot opens a fresh segment and keeps acknowledging writes.
	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendInsert(3, walDocs(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendDelete(1); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	got := replayAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (1 before the tear, 2 after)", len(got))
	}
	if got[0].Base != 0 || got[1].Base != 3 || got[2].Kind != RecordDelete {
		t.Fatalf("wrong records across torn segment: %+v", got)
	}
}

// TestWALBrokenSegmentHeals: after an append failure nothing more may be
// acknowledged into the (possibly torn) segment; a rotation opens a
// clean segment and appends resume.
func TestWALBrokenSegmentHeals(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInsert(0, walDocs(2, 1)); err != nil {
		t.Fatal(err)
	}
	w.f.Close() // sabotage the live handle: the next write fails
	if err := w.AppendDelete(0); err == nil {
		t.Fatal("append on sabotaged segment succeeded")
	}
	if err := w.AppendDelete(0); err == nil {
		t.Fatal("append acknowledged behind a possible tear")
	}
	if _, err := w.Rotate(); err != nil {
		t.Fatalf("rotation did not heal broken journal: %v", err)
	}
	if err := w.AppendDelete(1); err != nil {
		t.Fatalf("append after healing rotation: %v", err)
	}
	w.Close()
	got := replayAll(t, dir)
	if len(got) != 2 || got[0].Kind != RecordInsert || got[1].ID != 1 {
		t.Fatalf("post-heal replay: %+v", got)
	}
}

// TestWALOversizedRecordRejected: a batch whose frame would exceed the
// record limit is refused outright — never acknowledged, never written
// as a frame replay would classify as corruption.
func TestWALOversizedRecordRejected(t *testing.T) {
	old := maxRecordLen
	maxRecordLen = 1 << 12
	defer func() { maxRecordLen = old }()
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendInsert(0, walDocs(200, 1)); err == nil {
		t.Fatal("oversized insert batch accepted")
	}
	if err := w.AppendInsert(0, walDocs(2, 1)); err != nil {
		t.Fatalf("normal append after oversized rejection: %v", err)
	}
	if got := replayAll(t, dir); len(got) != 1 {
		t.Fatalf("replayed %d records, want just the small batch", len(got))
	}
}
