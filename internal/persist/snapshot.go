// Package persist is the node durability subsystem: checkpointed
// snapshots plus a write-ahead journal, the two halves of the classic
// recovery contract.
//
// The paper's 100-node cluster (§8) holds everything in RAM, so a node
// restart silently loses its ~10.5M documents. This package makes a node
// durable without touching the hot read path:
//
//   - A snapshot is the serialized image of a fully merged node — the
//     document arena (CSR), the static PLSH buckets, the tombstone
//     bitvector, and the hash-family parameters — behind a versioned
//     header and a whole-file CRC. It is exactly the immutable state a
//     copy-on-write publish produces, so writing one needs no locks and
//     loading one needs no rehashing: the bucket arrays go straight back
//     into a core.Static.
//   - The WAL (wal.go) journals every acknowledged Insert/Delete between
//     checkpoints; replaying it on top of the latest snapshot recovers
//     every acknowledged write after a crash.
//
// Snapshots are written to a temporary file and atomically renamed, so a
// crash mid-checkpoint leaves the previous snapshot intact. Readers verify
// the magic, version, CRC, and structural shape (via sparse.FromRaw and
// core.StaticFromTables) and refuse to load anything that fails — a
// corrupt file is an error, never garbage in the index.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// snapshotName is the snapshot's filename within a node's data directory.
const snapshotName = "snapshot.plsh"

// snapshotMagic identifies a plsh snapshot file; the trailing byte is the
// format generation (bumped only for incompatible layout changes — the
// version field below covers compatible evolution).
var snapshotMagic = [8]byte{'P', 'L', 'S', 'H', 'S', 'N', 'P', '1'}

// snapshotVersion is the current format version.
const snapshotVersion = 1

// castagnoli is the CRC-32C table used for both snapshot and WAL framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot reports that a data directory holds no snapshot — a fresh
// node, or one that has only journaled so far.
var ErrNoSnapshot = errors.New("persist: no snapshot")

// ErrCorrupt wraps every integrity failure (bad magic, checksum mismatch,
// impossible lengths): the file exists but must not be loaded.
var ErrCorrupt = errors.New("persist: corrupt snapshot")

// Snapshot is the durable image of a fully merged node: every document is
// covered by the static index, so no delta segments need serializing.
type Snapshot struct {
	// Params is the hash family the static tables were built under; a node
	// opening the snapshot must be configured identically, or the bucket
	// contents would be meaningless.
	Params lshhash.Params
	// Capacity is the node capacity at save time (recorded for
	// diagnostics; an opening node may use a larger capacity).
	Capacity int
	// Rows is the number of documents covered: arena rows, static length,
	// and the tombstone bit range all equal it.
	Rows int
	// Arena holds the documents, rows [0, Rows).
	Arena *sparse.Matrix
	// Tables are the static PLSH buckets over the arena. Empty when
	// Rows == 0 (rebuilding an empty index is cheaper than serializing
	// 2^k offsets per table).
	Tables []core.Table
	// Deleted is the tombstone bitvector's backing words, trimmed to
	// ⌈Rows/64⌉ words with bits ≥ Rows masked off.
	Deleted []uint64
}

// SnapshotPath returns where WriteSnapshot places the snapshot within dir
// (exposed for tests and tooling that size or corrupt it).
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }

// WriteSnapshot serializes s into dir atomically: the bytes go to a
// temporary file that is fsynced and renamed over any previous snapshot,
// so a crash at any point leaves either the old image or the new one,
// never a torn mix.
func WriteSnapshot(dir string, s *Snapshot) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmp, err := os.CreateTemp(dir, snapshotName+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// CreateTemp defaults to 0600; match the journal segments' mode.
	// Best-effort: a mode mismatch is cosmetic, the bytes are what count.
	_ = tmp.Chmod(0o644)
	defer func() {
		if err != nil {
			// Cleanup of a write that already failed; the original error
			// is the one worth reporting.
			_ = tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}()
	w := newCRCWriter(tmp)
	w.bytes(snapshotMagic[:])
	w.u32(snapshotVersion)
	w.u32(uint32(s.Params.Dim))
	w.u32(uint32(s.Params.K))
	w.u32(uint32(s.Params.M))
	w.u64(s.Params.Seed)
	w.u64(uint64(s.Capacity))
	w.u64(uint64(s.Rows))

	offs, cols, vals := s.Arena.Raw()
	w.u64(uint64(len(cols)))
	w.i32s(offs)
	w.u32s(cols)
	w.f32s(vals)

	w.u32(uint32(len(s.Tables)))
	for i := range s.Tables {
		t := &s.Tables[i]
		w.u64(uint64(len(t.Offsets)))
		w.u32s(t.Offsets)
		w.u64(uint64(len(t.Items)))
		w.u32s(t.Items)
	}

	w.u64(uint64(len(s.Deleted)))
	w.u64s(s.Deleted)

	if err := w.finish(); err != nil {
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // already failing; report the sync error
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name()) // already failing; report the close error
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), SnapshotPath(dir)); err != nil {
		_ = os.Remove(tmp.Name()) // already failing; report the rename error
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadSnapshot loads and verifies dir's snapshot. It returns ErrNoSnapshot
// when none exists and an ErrCorrupt-wrapped error when the file fails any
// integrity check — magic, version, CRC, or structural shape.
func ReadSnapshot(dir string) (*Snapshot, error) {
	f, err := os.Open(SnapshotPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close() // read-only; a close error carries no data-loss signal
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	r := newCRCReader(f, fi.Size())

	var magic [8]byte
	r.bytes(magic[:])
	if r.err == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	s := &Snapshot{}
	s.Params.Dim = int(r.u32())
	s.Params.K = int(r.u32())
	s.Params.M = int(r.u32())
	s.Params.Seed = r.u64()
	s.Capacity = int(r.u64())
	s.Rows = int(r.u64())
	if r.err == nil && (s.Rows < 0 || s.Capacity < 0 || s.Rows > s.Capacity) {
		return nil, fmt.Errorf("%w: impossible row count", ErrCorrupt)
	}

	nnz := int(r.u64())
	offs := r.i32s(s.Rows + 1)
	cols := r.u32s(nnz)
	vals := r.f32s(nnz)

	nTables := int(r.u32())
	if r.err == nil && nTables > 1<<20 {
		return nil, fmt.Errorf("%w: impossible table count", ErrCorrupt)
	}
	tables := make([]core.Table, 0, max(nTables, 0))
	for i := 0; i < nTables && r.err == nil; i++ {
		t := core.Table{}
		t.Offsets = r.u32s(int(r.u64()))
		t.Items = r.u32s(int(r.u64()))
		tables = append(tables, t)
	}
	s.Tables = tables

	s.Deleted = r.u64s(int(r.u64()))

	if err := r.finish(); err != nil {
		return nil, err
	}
	arena, err := sparse.FromRaw(s.Params.Dim, offs, cols, vals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.Arena = arena
	if want := (s.Rows + 63) / 64; len(s.Deleted) != want {
		return nil, fmt.Errorf("%w: tombstone words do not cover rows", ErrCorrupt)
	}
	return s, nil
}

// syncDir fsyncs a directory so renames and segment creations survive a
// machine crash. Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		// Best-effort by design: directory fsync is a durability upgrade
		// (the rename itself is already atomic), and some filesystems
		// reject fsync on directories.
		_ = d.Sync()
		_ = d.Close()
	}
}

// crcWriter streams sections to a buffered writer while folding every byte
// into a running CRC-32C, appended as the file's final 4 bytes.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	tmp [8]byte
	buf []byte // chunk scratch for slice sections
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: bufio.NewWriterSize(w, 1<<20), buf: make([]byte, 1<<16)}
}

func (c *crcWriter) bytes(p []byte) {
	if c.err != nil {
		return
	}
	c.crc = crc32.Update(c.crc, castagnoli, p)
	_, c.err = c.w.Write(p)
}

func (c *crcWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(c.tmp[:4], v)
	c.bytes(c.tmp[:4])
}

func (c *crcWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(c.tmp[:8], v)
	c.bytes(c.tmp[:8])
}

// u32s writes a []uint32 section in 64 KiB chunks — the hot path for
// bucket arrays and the arena, where per-element Write calls would
// dominate snapshot time.
func (c *crcWriter) u32s(vs []uint32) {
	for len(vs) > 0 && c.err == nil {
		n := min(len(vs), len(c.buf)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(c.buf[i*4:], vs[i])
		}
		c.bytes(c.buf[:n*4])
		vs = vs[n:]
	}
}

func (c *crcWriter) i32s(vs []int32) {
	for len(vs) > 0 && c.err == nil {
		n := min(len(vs), len(c.buf)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(c.buf[i*4:], uint32(vs[i]))
		}
		c.bytes(c.buf[:n*4])
		vs = vs[n:]
	}
}

func (c *crcWriter) f32s(vs []float32) {
	for len(vs) > 0 && c.err == nil {
		n := min(len(vs), len(c.buf)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(c.buf[i*4:], math.Float32bits(vs[i]))
		}
		c.bytes(c.buf[:n*4])
		vs = vs[n:]
	}
}

func (c *crcWriter) u64s(vs []uint64) {
	for len(vs) > 0 && c.err == nil {
		n := min(len(vs), len(c.buf)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(c.buf[i*8:], vs[i])
		}
		c.bytes(c.buf[:n*8])
		vs = vs[n:]
	}
}

// finish appends the CRC (not folded into itself) and flushes.
func (c *crcWriter) finish() error {
	if c.err != nil {
		return c.err
	}
	binary.LittleEndian.PutUint32(c.tmp[:4], c.crc)
	if _, err := c.w.Write(c.tmp[:4]); err != nil {
		return err
	}
	return c.w.Flush()
}

// crcReader mirrors crcWriter: it streams sections while tracking the CRC
// and how many payload bytes remain before the 4-byte trailer, so a
// corrupt length field fails fast instead of attempting a huge
// allocation.
type crcReader struct {
	r         *bufio.Reader
	crc       uint32
	remaining int64 // payload bytes left (file size minus trailer)
	err       error
	tmp       [8]byte
}

func newCRCReader(r io.Reader, size int64) *crcReader {
	return &crcReader{r: bufio.NewReaderSize(r, 1<<20), remaining: size - 4}
}

func (c *crcReader) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

func (c *crcReader) bytes(p []byte) {
	if c.err != nil {
		return
	}
	if int64(len(p)) > c.remaining {
		c.fail(fmt.Errorf("%w: truncated", ErrCorrupt))
		return
	}
	if _, err := io.ReadFull(c.r, p); err != nil {
		c.fail(fmt.Errorf("%w: %v", ErrCorrupt, err))
		return
	}
	c.remaining -= int64(len(p))
	c.crc = crc32.Update(c.crc, castagnoli, p)
}

func (c *crcReader) u32() uint32 {
	c.bytes(c.tmp[:4])
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(c.tmp[:4])
}

func (c *crcReader) u64() uint64 {
	c.bytes(c.tmp[:8])
	if c.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(c.tmp[:8])
}

// checkLen validates a section length against the bytes actually left in
// the file before allocating for it.
func (c *crcReader) checkLen(n, width int) bool {
	if c.err != nil {
		return false
	}
	if n < 0 || int64(n)*int64(width) > c.remaining {
		c.fail(fmt.Errorf("%w: impossible section length %d", ErrCorrupt, n))
		return false
	}
	return true
}

func (c *crcReader) u32s(n int) []uint32 {
	if !c.checkLen(n, 4) {
		return nil
	}
	out := make([]uint32, n)
	var chunk [1 << 12]byte
	for i := 0; i < n; {
		m := min(n-i, len(chunk)/4)
		c.bytes(chunk[:m*4])
		if c.err != nil {
			return nil
		}
		for j := 0; j < m; j++ {
			out[i+j] = binary.LittleEndian.Uint32(chunk[j*4:])
		}
		i += m
	}
	return out
}

func (c *crcReader) i32s(n int) []int32 {
	us := c.u32s(n)
	if c.err != nil {
		return nil
	}
	out := make([]int32, len(us))
	for i, u := range us {
		out[i] = int32(u)
	}
	return out
}

func (c *crcReader) f32s(n int) []float32 {
	us := c.u32s(n)
	if c.err != nil {
		return nil
	}
	out := make([]float32, len(us))
	for i, u := range us {
		out[i] = math.Float32frombits(u)
	}
	return out
}

func (c *crcReader) u64s(n int) []uint64 {
	if !c.checkLen(n, 8) {
		return nil
	}
	out := make([]uint64, n)
	var chunk [1 << 12]byte
	for i := 0; i < n; {
		m := min(n-i, len(chunk)/8)
		c.bytes(chunk[:m*8])
		if c.err != nil {
			return nil
		}
		for j := 0; j < m; j++ {
			out[i+j] = binary.LittleEndian.Uint64(chunk[j*8:])
		}
		i += m
	}
	return out
}

// finish verifies the trailing CRC.
func (c *crcReader) finish() error {
	if c.err != nil {
		return c.err
	}
	if c.remaining != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, c.remaining)
	}
	want := c.crc
	if _, err := io.ReadFull(c.r, c.tmp[:4]); err != nil {
		return fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(c.tmp[:4]); got != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return nil
}
