package wireop_test

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
	"plsh/internal/analysis/wireop"
)

// fixtureLock pins the wirefix fixture package the way lock.go pins
// internal/transport.
var fixtureLock = wireop.Lock{
	Path: "wirefix",
	Consts: []wireop.ConstLock{
		{
			TypeName: "op",
			Values: []wireop.NameValue{
				{Name: "opA", Value: 1},
				{Name: "opB", Value: 2},
			},
		},
		{
			TypeName: "code",
			Values: []wireop.NameValue{
				{Name: "codeX", Value: 0},
				{Name: "codeY", Value: 1},
			},
		},
	},
	Structs: []wireop.StructLock{
		{TypeName: "frameGood", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
		{TypeName: "frameSwapped", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
		{TypeName: "frameRetyped", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}}},
		{TypeName: "frameShrunk", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
	},
}

func TestWireop(t *testing.T) {
	testutil.Run(t, "testdata", wireop.New(fixtureLock))
}
