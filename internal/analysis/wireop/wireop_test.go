package wireop_test

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
	"plsh/internal/analysis/wireop"
)

// fixtureLock pins the wirefix fixture package the way lock.go pins
// internal/transport.
var fixtureLock = wireop.Lock{
	Path: "wirefix",
	Consts: []wireop.ConstLock{
		{
			TypeName: "op",
			Values: []wireop.NameValue{
				{Name: "opA", Value: 1},
				{Name: "opB", Value: 2},
			},
		},
		{
			TypeName: "code",
			Values: []wireop.NameValue{
				{Name: "codeX", Value: 0},
				{Name: "codeY", Value: 1},
			},
		},
	},
	Structs: []wireop.StructLock{
		{TypeName: "frameGood", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
		{TypeName: "frameSwapped", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
		{TypeName: "frameRetyped", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}}},
		{TypeName: "frameShrunk", Fields: []wireop.FieldLock{{Name: "A", Type: "int"}, {Name: "B", Type: "string"}}},
	},
}

func TestWireop(t *testing.T) {
	testutil.Run(t, "testdata", wireop.New(fixtureLock))
}

// extGoodLock is a lock extended together with its opcode: opC is both
// declared in extgood and pinned here, the legal two-line workflow.
var extGoodLock = wireop.Lock{
	Path: "extgood",
	Consts: []wireop.ConstLock{
		{
			TypeName: "op",
			Values: []wireop.NameValue{
				{Name: "opA", Value: 1},
				{Name: "opB", Value: 2},
				{Name: "opC", Value: 3},
			},
		},
	},
}

// extBadLock breaks the workflow in both directions: opNoLock's tail
// constant mC has no entry here, and nC is locked for opNoOp without
// the constant existing in extbad.
var extBadLock = wireop.Lock{
	Path: "extbad",
	Consts: []wireop.ConstLock{
		{
			TypeName: "opNoLock",
			Values: []wireop.NameValue{
				{Name: "mA", Value: 1},
				{Name: "mB", Value: 2},
			},
		},
		{
			TypeName: "opNoOp",
			Values: []wireop.NameValue{
				{Name: "nA", Value: 1},
				{Name: "nB", Value: 2},
				{Name: "nC", Value: 3},
			},
		},
	},
}

// TestWireopLockExtension drives the lock-extension workflow fixtures
// through one variadic analyzer carrying both packages' locks.
func TestWireopLockExtension(t *testing.T) {
	testutil.Run(t, "testdata/ext", wireop.New(extGoodLock, extBadLock))
}
