package wireop

// TransportLock is the append-only contract of plsh/internal/transport's
// wire protocol as of protocol revision v2 (searchParams.Routing). It
// mirrors — at the source level — exactly what the golden-bytes test in
// wire_golden_test.go pins at the byte level. Extending the protocol is
// a two-line change reviewed together: append the op/field in wire.go,
// append the matching lock entry here. Anything else (insertion,
// reorder, renumber, type change, removal) fails plsh-vet.
var TransportLock = Lock{
	Path: "plsh/internal/transport",
	Consts: []ConstLock{
		{
			TypeName: "op",
			Values: []NameValue{
				{"opInsert", 1},
				{"opQueryBatch", 2},
				{"opQueryTopK", 3},
				{"opDelete", 4},
				{"opMerge", 5},
				{"opRetire", 6},
				{"opStats", 7},
				{"opCancel", 8},
				{"opFlush", 9},
				{"opSave", 10},
				{"opSearch", 11},
				{"opDoc", 12},
			},
		},
		{
			TypeName: "respCode",
			Values: []NameValue{
				{"codeOK", 0},
				{"codeFull", 1},
				{"codeError", 2},
				{"codeNotFound", 3},
			},
		},
	},
	Structs: []StructLock{
		{
			TypeName: "searchParams",
			Fields: []FieldLock{
				{"Version", "uint8"},
				{"Radius", "float64"},
				{"K", "int"},
				{"MaxCandidates", "int"},
				{"Routing", "uint8"},
			},
		},
		{
			TypeName: "request",
			Fields: []FieldLock{
				{"Seq", "uint64"},
				{"Op", "op"},
				{"Vectors", "[]plsh/internal/sparse.Vector"},
				{"ID", "uint32"},
				{"K", "int"},
				{"Search", "*searchParams"},
				{"Deadline", "int64"},
			},
		},
		{
			TypeName: "response",
			Fields: []FieldLock{
				{"Seq", "uint64"},
				{"Code", "respCode"},
				{"Err", "string"},
				{"IDs", "[]uint32"},
				{"Results", "[][]plsh/internal/core.Neighbor"},
				{"TopK", "[]plsh/internal/core.Neighbor"},
				{"Stats", "plsh/internal/node.Stats"},
				{"Doc", "plsh/internal/sparse.Vector"},
				{"Known", "bool"},
			},
		},
	},
}
