// Package extgood models the CORRECT lock-extension workflow: opC was
// appended after the locked tail AND the lock table gained the matching
// entry in the same change (see extGoodLock in wireop_test.go). The
// analyzer must stay silent.
package extgood

type op uint8

const (
	opA op = 1
	opB op = 2
	opC op = 3 // appended op, pinned by the extended lock: clean
)
