// Package extbad models both halves of the lock-extension workflow
// done wrong (see extBadLock in wireop_test.go): type opNoLock gained
// an opcode without a lock entry, and type opNoOp's lock was extended
// (nC = 3) without the opcode ever being declared.
package extbad

type opNoLock uint8

const (
	mA opNoLock = 1
	mB opNoLock = 2
	mC opNoLock = 3 // want `appends past the locked tail but has no lock entry`
)

type opNoOp uint8 // want `locked opNoOp constant nC \(= 3\) is not declared`

const (
	nA opNoOp = 1
	nB opNoOp = 2
)
