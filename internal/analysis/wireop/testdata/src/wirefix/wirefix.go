// Package wirefix seeds the wireop cases against the test's own lock
// (see wireop_test.go): renumbered constants, constants inserted into
// the locked range, appended constants missing their lock entry,
// reordered and retyped struct fields, and a lost field. Struct-field
// appends past the locked prefix stay silent (gob tolerates trailing
// fields); the full add-op-plus-extend-lock workflow lives in
// testdata/ext.
package wirefix

type op uint8

const (
	opA op = 1
	opB op = 3 // want `opB = 3, but the wire lock pins it at 2`
	opC op = 2 // want `lands inside the locked range`
	opD op = 4 // want `appends past the locked tail but has no lock entry`
)

type code uint8

const (
	codeX code = 0
	codeY code = 1
	codeZ code = 2 // want `appends past the locked tail but has no lock entry`
)

// frameGood matches its locked prefix and appends one field.
type frameGood struct {
	A int
	B string
	C []byte
}

// frameSwapped reorders the locked prefix.
type frameSwapped struct {
	B string // want `exported field 0 is B, locked as A`
	A int
}

// frameRetyped changes a locked field's encoding.
type frameRetyped struct {
	A int64 // want `field A changed type int → int64`
}

// frameShrunk lost a locked field.
type frameShrunk struct { // want `lost locked field B string`
	A int
}
