// Package wireop enforces, at compile time, that the wire protocol in
// internal/transport evolves append-only. The protocol's compatibility
// story (PRs 1–7) rests on two physical properties of wire.go: the
// opcode and response-code const blocks never renumber (a reordered
// iota silently remaps every op under version skew), and the gob frame
// structs never insert or reorder fields before the established tail
// (gob type descriptors — and therefore the golden frame bytes — follow
// declaration order). The runtime golden-bytes test catches a drift
// after the fact; this analyzer pins the source shape itself against a
// locked table (lock.go), so an insertion is a vet failure on the
// developer's machine before any frame is ever encoded.
//
// Legal protocol evolution — appending an op after the locked tail, or
// a field after a struct's locked prefix — is a two-line change
// reviewed together: the new declaration in wire.go and the matching
// lock entry here. The analyzer enforces both halves of that workflow:
// a locked-type constant missing from the lock table is a finding (the
// op shipped without its audit entry), and a lock entry with no
// matching constant is a finding (the lock was extended without the
// op, or the op was removed). See internal/analysis/README.md.
package wireop

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"plsh/internal/analysis/framework"
)

// ConstLock pins the values of a named constant block.
type ConstLock struct {
	TypeName string
	// Values lists every locked constant, in value order; the last
	// entry's value is the append floor for new constants.
	Values []NameValue
}

// NameValue is one locked constant.
type NameValue struct {
	Name  string
	Value int64
}

// FieldLock is one locked struct field: its name and its type,
// rendered relative to the locked package (types.RelativeTo).
type FieldLock struct {
	Name string
	Type string
}

// StructLock pins the ordered prefix of a struct's exported fields.
type StructLock struct {
	TypeName string
	Fields   []FieldLock
}

// Lock is the full append-only contract for one package.
type Lock struct {
	// Path is the import path the lock applies to; the analyzer is a
	// no-op on every other package.
	Path    string
	Consts  []ConstLock
	Structs []StructLock
}

// Analyzer is the package-level instance plsh-vet registers, carrying
// the real lock for plsh/internal/transport (lock.go).
var Analyzer = New(TransportLock)

// New builds the analyzer for explicit locks, one per locked package —
// fixtures use their own, and a deployment with several wire packages
// registers them all on one analyzer.
func New(locks ...Lock) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "wireop",
		Doc: "the wire protocol's opcode const blocks and frame structs are append-only: " +
			"locked values never renumber, locked field prefixes never reorder, and every " +
			"locked-type constant has a lock entry",
		Run: func(pass *framework.Pass) error {
			for _, lock := range locks {
				run(pass, lock)
			}
			return nil
		},
	}
}

func run(pass *framework.Pass, lock Lock) {
	if pass.Pkg.Path() != lock.Path {
		return
	}
	for _, cl := range lock.Consts {
		checkConsts(pass, cl)
	}
	for _, sl := range lock.Structs {
		checkStruct(pass, sl)
	}
}

// checkConsts verifies every locked constant of the named type exists
// with its locked value and that new constants append past the locked
// range.
func checkConsts(pass *framework.Pass, cl ConstLock) {
	typeObj := pass.Pkg.Scope().Lookup(cl.TypeName)
	if typeObj == nil {
		pass.Reportf(pass.Files[0].Pos(),
			"locked wire type %s no longer exists; removing a wire type breaks every older peer", cl.TypeName)
		return
	}
	// Gather the package's constants of this type with their values and
	// positions.
	got := map[string]int64{}
	pos := map[string]ast.Node{}
	for _, name := range pass.Pkg.Scope().Names() {
		obj := pass.Pkg.Scope().Lookup(name)
		c, ok := obj.(*types.Const)
		if !ok || c.Type() != typeObj.Type() {
			continue
		}
		v, ok := constant.Int64Val(c.Val())
		if !ok {
			continue
		}
		got[name] = v
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, id := range vs.Names {
				if _, tracked := got[id.Name]; tracked {
					pos[id.Name] = id
				}
			}
			return true
		})
	}
	at := func(name string) ast.Node {
		if n := pos[name]; n != nil {
			return n
		}
		return pass.Files[0]
	}
	// Missing-constant findings anchor at the type declaration so they
	// have a stable, reviewable position even though the constant has no
	// line of its own.
	typeDecl := typeSpecNode(pass, cl.TypeName)
	var floor int64
	locked := map[string]bool{}
	for _, nv := range cl.Values {
		locked[nv.Name] = true
		if nv.Value > floor {
			floor = nv.Value
		}
		v, ok := got[nv.Name]
		if !ok {
			pass.Reportf(typeDecl.Pos(),
				"locked %s constant %s (= %d) is not declared: either the op was removed (which breaks every "+
					"older peer) or the lock was extended without appending the constant in the same change",
				cl.TypeName, nv.Name, nv.Value)
			continue
		}
		if v != nv.Value {
			pass.Reportf(at(nv.Name).Pos(),
				"%s = %d, but the wire lock pins it at %d; an insertion or reorder in the iota block "+
					"renumbers every later opcode under version skew — append new values after the tail instead",
				nv.Name, v, nv.Value)
		}
	}
	for name, v := range got {
		if locked[name] {
			continue
		}
		if v <= floor {
			pass.Reportf(at(name).Pos(),
				"new %s constant %s = %d lands inside the locked range (≤ %d); append it after the tail "+
					"and extend the lock in internal/analysis/wireop/lock.go", cl.TypeName, name, v, floor)
		} else {
			pass.Reportf(at(name).Pos(),
				"new %s constant %s = %d appends past the locked tail but has no lock entry; extend the lock "+
					"in internal/analysis/wireop/lock.go in the same change so the value is pinned", cl.TypeName, name, v)
		}
	}
}

// typeSpecNode locates the TypeSpec declaring name, falling back to the
// first file when the declaration is not found.
func typeSpecNode(pass *framework.Pass, name string) ast.Node {
	for _, f := range pass.Files {
		var found ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if ts, ok := n.(*ast.TypeSpec); ok && ts.Name.Name == name {
				found = ts
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return pass.Files[0]
}

// checkStruct verifies the struct's exported fields start with the
// locked (name, type) prefix in order.
func checkStruct(pass *framework.Pass, sl StructLock) {
	var st *ast.StructType
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != sl.TypeName {
				return true
			}
			if s, ok := ts.Type.(*ast.StructType); ok {
				st = s
			}
			return false
		})
	}
	if st == nil {
		pass.Reportf(pass.Files[0].Pos(),
			"locked wire struct %s no longer exists; removing a frame struct breaks every older peer", sl.TypeName)
		return
	}
	qual := types.RelativeTo(pass.Pkg)
	type field struct {
		name string
		typ  string
		node ast.Node
	}
	var exported []field
	for _, fld := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(fld.Type)
		ts := ""
		if t != nil {
			ts = types.TypeString(t, qual)
		}
		for _, name := range fld.Names {
			if name.IsExported() {
				exported = append(exported, field{name.Name, ts, name})
			}
		}
	}
	for i, lf := range sl.Fields {
		if i >= len(exported) {
			pass.Reportf(st.Pos(),
				"wire struct %s lost locked field %s %s; gob frame layout is append-only", sl.TypeName, lf.Name, lf.Type)
			return
		}
		got := exported[i]
		if got.name != lf.Name {
			pass.Reportf(got.node.Pos(),
				"wire struct %s: exported field %d is %s, locked as %s — fields inserted or reordered before "+
					"the locked tail change the gob type descriptor and every golden frame; append new fields at the end",
				sl.TypeName, i, got.name, lf.Name)
			return
		}
		if !typeEqual(got.typ, lf.Type) {
			pass.Reportf(got.node.Pos(),
				"wire struct %s: field %s changed type %s → %s; locked wire fields keep their encoding",
				sl.TypeName, lf.Name, lf.Type, got.typ)
		}
	}
}

// typeEqual compares rendered types, tolerating package-path prefixes
// (the lock writes full paths; fixtures may shorten them).
func typeEqual(got, want string) bool {
	if got == want {
		return true
	}
	return trimPaths(got) == trimPaths(want)
}

func trimPaths(s string) string {
	var b strings.Builder
	seg := ""
	for _, r := range s {
		switch r {
		case '[', ']', '*', ' ', '(', ')', ',':
			b.WriteString(base(seg))
			seg = ""
			b.WriteRune(r)
		default:
			seg += string(r)
		}
	}
	b.WriteString(base(seg))
	return b.String()
}

func base(s string) string {
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}
