// Package ctxcheck enforces the repository's context conventions on
// library code (the class of bug PR 5's Store.Reset fix removed by
// hand):
//
//  1. Library paths never mint their own context: calls to
//     context.Background() and context.TODO() are flagged. A library
//     function that needs a context takes it from its caller; a
//     deliberate exception (a ctx-less compatibility shim, a nil-ctx
//     fallback at a public boundary) carries an auditable
//     //plshvet:ignore ctxcheck <reason> suppression.
//  2. When an exported function, method, or interface method takes a
//     context.Context at all, it takes it as the first parameter.
//
// Package main is exempt (an entry point owns its root context), as are
// the experiment/test-harness packages listed in DefaultExcluded.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"plsh/internal/analysis/framework"
)

// DefaultExcluded lists import paths the check skips: experiment
// drivers and test harnesses own their run's root context the same way
// package main does.
var DefaultExcluded = []string{
	"plsh/internal/expr",        // figure-reproduction drivers: each experiment is an entry point
	"plsh/internal/clustertest", // spawns real processes for the fault-injection suite
}

// Analyzer is the package-level instance plsh-vet registers.
var Analyzer = New(DefaultExcluded)

// New builds the analyzer with an explicit exclusion list (fixtures use
// an empty one).
func New(excluded []string) *framework.Analyzer {
	skip := map[string]bool{}
	for _, p := range excluded {
		skip[p] = true
	}
	return &framework.Analyzer{
		Name: "ctxcheck",
		Doc: "library code must thread the caller's context.Context (no context.Background/TODO) " +
			"and exported signatures take ctx as the first parameter",
		Run: func(pass *framework.Pass) error { return run(pass, skip) },
	}
}

func run(pass *framework.Pass, skip map[string]bool) error {
	if pass.Pkg.Name() == "main" || skip[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Name.IsExported() {
					checkSignature(pass, n.Name.Name, n.Type)
				}
			case *ast.TypeSpec:
				if iface, ok := n.Type.(*ast.InterfaceType); ok && n.Name.IsExported() {
					for _, m := range iface.Methods.List {
						ft, ok := m.Type.(*ast.FuncType)
						if !ok || len(m.Names) == 0 || !m.Names[0].IsExported() {
							continue
						}
						checkSignature(pass, n.Name.Name+"."+m.Names[0].Name, ft)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags context.Background() / context.TODO().
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		pass.Reportf(call.Pos(),
			"library path calls context.%s; thread the caller's ctx instead "+
				"(suppress deliberate shims with //plshvet:ignore ctxcheck <reason>)", name)
	}
}

// checkSignature flags a context.Context parameter in any position but
// the first.
func checkSignature(pass *framework.Pass, name string, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContext(t) && pos > 0 {
			pass.Reportf(field.Pos(),
				"%s takes context.Context as parameter %d; context must be the first parameter",
				name, pos+1)
		}
		pos += n
	}
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
