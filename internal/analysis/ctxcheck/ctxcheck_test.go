package ctxcheck_test

import (
	"testing"

	"plsh/internal/analysis/ctxcheck"
	"plsh/internal/analysis/framework/testutil"
)

func TestCtxcheck(t *testing.T) {
	testutil.Run(t, "testdata", ctxcheck.New(nil))
}
