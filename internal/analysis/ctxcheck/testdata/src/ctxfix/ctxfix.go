// Package ctxfix seeds the ctxcheck cases: minted contexts, misplaced
// ctx parameters, and the suppression escape hatch.
package ctxfix

import "context"

// Good threads the caller's context, first parameter.
func Good(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func mintBackground() context.Context {
	return context.Background() // want `library path calls context.Background`
}

func mintTODO() context.Context {
	return context.TODO() // want `library path calls context.TODO`
}

// BadOrder takes ctx in the wrong position.
func BadOrder(n int, ctx context.Context) error { // want `context must be the first parameter`
	_ = ctx
	return nil
}

// unexported signatures are the package's own business.
func looseOrder(n int, ctx context.Context) {}

// Store is an exported interface: its method contracts are checked too.
type Store interface {
	Get(ctx context.Context, key string) ([]byte, error)
	Put(key string, ctx context.Context) error // want `context must be the first parameter`
}

// Shim is a deliberate compatibility wrapper; the suppression keeps it.
func Shim() error {
	//plshvet:ignore ctxcheck ctx-less compatibility shim for the fixture
	return Good(context.Background(), 0)
}
