package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"plsh/internal/analysis/framework"
)

// dummy flags every function whose name starts with "trigger"; what
// survives is then purely the suppression machinery's doing.
var dummy = &framework.Analyzer{
	Name: "dummy",
	Doc:  "reports trigger* functions",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "trigger") {
					pass.Reportf(fd.Pos(), "function %s triggers", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestSuppression(t *testing.T) {
	pkgs, err := framework.LoadFixture("testdata")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{dummy})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	want := []string{
		// Suppressed sites must be absent; malformed, unknown-name, and
		// stale directives do not suppress and are reported themselves.
		"dummy: function triggerPlain triggers",
		"plshvet: malformed //plshvet:ignore: want \"//plshvet:ignore <analyzer> <reason>\"",
		"dummy: function triggerMalformed triggers",
		"plshvet: //plshvet:ignore names unknown analyzer \"nonexistent\"",
		"dummy: function triggerUnknown triggers",
		"plshvet: stale //plshvet:ignore: no dummy finding here to suppress; delete the directive",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
}
