package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load typechecks the packages matching patterns (e.g. "./...") rooted
// at dir, without any third-party loader: package metadata and compiled
// export data come from `go list -export`, and each target package's
// non-test sources are parsed and checked against go/types with the
// toolchain's gc importer reading that export data. Test files are
// excluded by construction (go list's GoFiles): the invariants the suite
// enforces are library-path conventions, and test code deliberately
// exercises their violations.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: package %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := check(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// check parses and typechecks one package's files.
func check(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", gf, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}

// LoadFixture typechecks a GOPATH-style fixture tree (root/src/<path>/)
// as analysistest does: every package under root/src is loaded, fixture
// packages may import each other by their path under src, and imports
// outside the tree resolve to the toolchain's export data via
// `go list -export`. Returns packages in dependency order.
func LoadFixture(root string) ([]*Package, error) {
	src := filepath.Join(root, "src")
	var dirs []string
	err := filepath.Walk(src, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			return nil
		}
		m, _ := filepath.Glob(filepath.Join(path, "*.go"))
		if len(m) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	type fixturePkg struct {
		path  string
		dir   string
		files []*ast.File
	}
	var fixtures []fixturePkg
	imports := map[string]bool{}
	fixturePaths := map[string]bool{}
	for _, d := range dirs {
		rel, err := filepath.Rel(src, d)
		if err != nil {
			return nil, err
		}
		importPath := filepath.ToSlash(rel)
		gofiles, _ := filepath.Glob(filepath.Join(d, "*.go"))
		var files []*ast.File
		for _, gf := range gofiles {
			f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing fixture %s: %w", gf, err)
			}
			files = append(files, f)
			for _, im := range f.Imports {
				p := im.Path.Value
				imports[p[1:len(p)-1]] = true
			}
		}
		fixtures = append(fixtures, fixturePkg{path: importPath, dir: d, files: files})
		fixturePaths[importPath] = true
	}
	// Resolve the fixture tree's external imports (stdlib, in practice)
	// to export data in one go list call.
	var external []string
	for p := range imports {
		if !fixturePaths[p] {
			external = append(external, p)
		}
	}
	sort.Strings(external)
	exports := map[string]string{}
	if len(external) > 0 {
		args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, external...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list %v: %w\n%s", external, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	// Typecheck fixture packages, resolving fixture-internal imports
	// from the already-checked set (fixtures are checked in path order;
	// dependencies must sort before dependents, which "a" < "a/b" gives
	// for nested layouts — flat sibling imports may need renaming).
	checked := map[string]*types.Package{}
	gcimp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return gcimp.Import(path)
	})
	var pkgs []*Package
	sort.Slice(fixtures, func(i, j int) bool { return fixtures[i].path < fixtures[j].path })
	for _, fx := range fixtures {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(fx.path, fset, fx.files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking fixture %s: %w", fx.path, err)
		}
		checked[fx.path] = pkg
		pkgs = append(pkgs, &Package{
			ImportPath: fx.path,
			Dir:        fx.dir,
			Fset:       fset,
			Files:      fx.files,
			Pkg:        pkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
