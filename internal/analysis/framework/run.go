package framework

import (
	"fmt"
	"go/token"
	"sort"
	"sync"
	"time"
)

// A Finding is one diagnostic bound to its analyzer and resolved
// position, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Timing records how long one analyzer took across every package of a
// run. Surfaced by plsh-vet -timing and scripts/vet.sh so a slow
// analyzer is caught when it lands, not when CI crawls.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// ignoreEntry is one well-formed //plshvet:ignore directive. used flips
// when the directive suppresses a finding; a directive that suppresses
// nothing is stale and reported itself, so suppressions cannot outlive
// the violation they excused.
type ignoreEntry struct {
	name string // analyzer name, or "all"
	pos  token.Position
	used bool
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Diagnostics carrying a matching
// //plshvet:ignore directive on their line — or the line above — are
// dropped; malformed directives (no analyzer name, or no reason),
// directives naming unknown analyzers, and stale directives that
// suppressed nothing are themselves reported under the "plshvet" name so
// suppressions stay auditable.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunTimed(pkgs, analyzers)
	return findings, err
}

// RunTimed is Run plus per-analyzer wall-clock timings. Analyzers run
// concurrently — each walks every package in its own goroutine, which is
// safe because passes only read the shared ASTs and type information —
// and the suppression/stale bookkeeping happens in a single sequential
// pass afterwards so the reported findings stay deterministic.
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Index every directive up front. Malformed and unknown-name
	// directives never suppress, so they are findings immediately;
	// well-formed ones enter the ignores table keyed by file:line.
	var findings []Finding
	ignores := map[string][]*ignoreEntry{}
	var entries []*ignoreEntry
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range ParseDirectives(f) {
				if d.Verb != "ignore" {
					continue
				}
				pos := pkg.Fset.Position(d.Pos)
				name, reason := splitArg(d.Args)
				if name == "" || reason == "" {
					findings = append(findings, Finding{
						Analyzer: "plshvet",
						Pos:      pos,
						Message:  "malformed //plshvet:ignore: want \"//plshvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				if !known[name] && name != "all" {
					findings = append(findings, Finding{
						Analyzer: "plshvet",
						Pos:      pos,
						Message:  fmt.Sprintf("//plshvet:ignore names unknown analyzer %q", name),
					})
					continue
				}
				e := &ignoreEntry{name: name, pos: pos}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				ignores[key] = append(ignores[key], e)
				entries = append(entries, e)
			}
		}
	}

	// Collect raw diagnostics, one goroutine per analyzer. token.FileSet
	// position resolution is internally locked, so resolving Positions
	// from several goroutines is fine; each goroutine appends only to its
	// own slot.
	raw := make([][]Finding, len(analyzers))
	timings := make([]Timing, len(analyzers))
	errs := make([]error, len(analyzers))
	var wg sync.WaitGroup
	for i, a := range analyzers {
		wg.Add(1)
		go func(i int, a *Analyzer) {
			defer wg.Done()
			start := time.Now()
			for _, pkg := range pkgs {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Files,
					Pkg:       pkg.Pkg,
					TypesInfo: pkg.TypesInfo,
				}
				fset := pkg.Fset
				pass.report = func(d Diagnostic) {
					raw[i] = append(raw[i], Finding{Analyzer: a.Name, Pos: fset.Position(d.Pos), Message: d.Message})
				}
				if err := a.Run(pass); err != nil {
					errs[i] = fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
					return
				}
			}
			timings[i] = Timing{Analyzer: a.Name, Elapsed: time.Since(start)}
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Sequential suppression pass: a finding is dropped when a directive
	// on its line, or the line above, names its analyzer (or "all");
	// every directive that does the dropping is marked used.
	for _, diags := range raw {
		for _, f := range diags {
			suppressed := false
			for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
				for _, e := range ignores[fmt.Sprintf("%s:%d", f.Pos.Filename, line)] {
					if e.name == f.Analyzer || e.name == "all" {
						e.used = true
						suppressed = true
					}
				}
			}
			if !suppressed {
				findings = append(findings, f)
			}
		}
	}

	// Stale pass: a well-formed directive that suppressed nothing means
	// the violation it excused is gone — delete the directive.
	for _, e := range entries {
		if !e.used {
			findings = append(findings, Finding{
				Analyzer: "plshvet",
				Pos:      e.pos,
				Message:  fmt.Sprintf("stale //plshvet:ignore: no %s finding here to suppress; delete the directive", e.name),
			})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, timings, nil
}

// splitArg splits a directive's argument into its first word and the
// rest.
func splitArg(s string) (first, rest string) {
	for i, r := range s {
		if r == ' ' || r == '\t' {
			return s[:i], trimLeftSpace(s[i:])
		}
	}
	return s, ""
}

func trimLeftSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}
