package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic bound to its analyzer and resolved
// position, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Diagnostics carrying a matching
// //plshvet:ignore directive on their line — or the line above — are
// dropped; malformed directives (no analyzer name, or no reason) are
// themselves reported under the "plshvet" name so suppressions stay
// auditable.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		// ignores maps file:line to the analyzer names suppressed there.
		ignores := map[string]map[string]bool{}
		for _, f := range pkg.Files {
			for _, d := range ParseDirectives(f) {
				if d.Verb != "ignore" {
					continue
				}
				pos := pkg.Fset.Position(d.Pos)
				name, reason := splitArg(d.Args)
				if name == "" || reason == "" {
					findings = append(findings, Finding{
						Analyzer: "plshvet",
						Pos:      pos,
						Message:  "malformed //plshvet:ignore: want \"//plshvet:ignore <analyzer> <reason>\"",
					})
					continue
				}
				if !known[name] && name != "all" {
					findings = append(findings, Finding{
						Analyzer: "plshvet",
						Pos:      pos,
						Message:  fmt.Sprintf("//plshvet:ignore names unknown analyzer %q", name),
					})
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if ignores[key] == nil {
					ignores[key] = map[string]bool{}
				}
				ignores[key][name] = true
			}
		}
		suppressed := func(name string, pos token.Position) bool {
			for _, line := range []int{pos.Line, pos.Line - 1} {
				if m := ignores[fmt.Sprintf("%s:%d", pos.Filename, line)]; m != nil && (m[name] || m["all"]) {
					return true
				}
			}
			return false
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// splitArg splits a directive's argument into its first word and the
// rest.
func splitArg(s string) (first, rest string) {
	for i, r := range s {
		if r == ' ' || r == '\t' {
			return s[:i], trimLeftSpace(s[i:])
		}
	}
	return s, ""
}

func trimLeftSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}
