// Package testutil runs an analyzer over a GOPATH-style fixture tree and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest: each line that should
// produce diagnostics carries a trailing comment
//
//	// want "regexp" "another regexp"
//
// with one quoted (double-quote or backquote) regular expression per
// expected diagnostic on that line. A diagnostic with no matching want,
// or a want with no matching diagnostic, fails the test — so a seeded
// violation in a fixture that the analyzer misses fails the suite, and
// so does a new false positive.
package testutil

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"plsh/internal/analysis/framework"
)

// Run loads the fixture tree rooted at dir (dir/src/<path>/*.go), runs
// the analyzer over every fixture package, and checks diagnostics
// against the tree's want comments.
func Run(t *testing.T, dir string, a *framework.Analyzer) {
	t.Helper()
	pkgs, err := framework.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s holds no packages", dir)
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg.Fset, f, func(pos token.Position, res []*regexp.Regexp) {
				k := wantKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			})
		}
	}

	matched := map[wantKey][]bool{}
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, f := range findings {
		k := wantKey{f.Pos.Filename, f.Pos.Line}
		ok := false
		for i, re := range wants[k] {
			if !matched[k][i] && re.MatchString(f.Message) {
				matched[k][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posString(f.Pos), f.Message)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

// collectWants extracts the want comments of one file.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, emit func(token.Position, []*regexp.Regexp)) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			res, err := parseWant(strings.TrimPrefix(text, "want "))
			if err != nil {
				t.Fatalf("%s: bad want comment: %v", posString(fset.Position(c.Pos())), err)
			}
			emit(fset.Position(c.Pos()), res)
		}
	}
}

// parseWant parses a sequence of quoted regexps.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		q := s[0]
		if q != '"' && q != '`' {
			return nil, fmt.Errorf("want pattern must be quoted: %q", s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern: %q", s)
		}
		lit := s[:end+2]
		var pat string
		if q == '`' {
			pat = lit[1 : len(lit)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(lit)
			if err != nil {
				return nil, fmt.Errorf("bad pattern %s: %v", lit, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad regexp %q: %v", pat, err)
		}
		out = append(out, re)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}

func posString(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
