// Package ignorefix exercises the suppression machinery: the dummy
// analyzer in run_test.go reports every function whose name starts with
// "trigger", and the directives below must silence exactly the right
// ones — and be reported themselves when malformed.
package ignorefix

func triggerPlain() {}

//plshvet:ignore dummy demonstrates suppression on the line above
func triggerSuppressedAbove() {}

func triggerSuppressedSame() {} //plshvet:ignore dummy same-line suppression

//plshvet:ignore dummy
func triggerMalformed() {}

//plshvet:ignore nonexistent the analyzer name is wrong
func triggerUnknown() {}

//plshvet:ignore all blanket suppression covers every analyzer
func triggerAll() {}

// quiet does not trigger the dummy analyzer, so the directive below
// suppresses nothing and must be reported as stale.
//
//plshvet:ignore dummy this suppression matches no finding
func quiet() {}
