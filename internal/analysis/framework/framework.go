// Package framework is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface, built on the
// standard library alone (go/ast, go/types, and export data produced by
// `go list -export`). The repository vendors no third-party modules, so
// the checkers under internal/analysis target this package instead of
// x/tools; the Analyzer/Pass/Diagnostic shapes are kept deliberately
// identical to go/analysis so the suite can be rebased onto the real
// framework by changing one import when a vendored x/tools becomes
// available.
//
// Suppression convention: a diagnostic is suppressed by a directive
// comment on the same line, or the line immediately above:
//
//	//plshvet:ignore <analyzer> <reason>
//
// The reason is mandatory — a directive without one is itself reported —
// so every suppression in the tree documents why the invariant does not
// apply at that site. Analyzer-specific classification directives
// (poolzero's //plshvet:frame and //plshvet:scratch) follow the same
// one-line shape; see ParseDirectives.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and requires:
// every checker in this suite is package-local and self-contained.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //plshvet:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by plsh-vet -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report receives diagnostics; installed by the driver.
	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// WalkStack walks the file like ast.Inspect but hands fn the stack of
// enclosing nodes (outermost first, not including n itself). Analyzers
// use it where a node's legality depends on its context — e.g. whether
// a selector is the receiver of a method call.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// Directive is one parsed //plshvet:... comment.
type Directive struct {
	Pos  token.Pos
	Verb string // "ignore", "frame", "scratch", ...
	Args string // remainder after the verb, space-trimmed
}

const directivePrefix = "//plshvet:"

// ParseDirectives extracts every //plshvet: directive in the file,
// including those inside doc comments. Directives must start at the
// beginning of the comment text (gofmt keeps //-comments flush).
func ParseDirectives(f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			out = append(out, Directive{
				Pos:  c.Pos(),
				Verb: strings.TrimSpace(verb),
				Args: strings.TrimSpace(args),
			})
		}
	}
	return out
}

// TypeDirective returns the directive of the given verbs attached to the
// type declaration of named — in the TypeSpec's doc comment or the
// enclosing GenDecl's — or nil. decls maps type names to their specs for
// the current package (see CollectTypeSpecs).
func TypeDirective(decls map[string]*TypeDecl, typeName string, verbs ...string) *Directive {
	td := decls[typeName]
	if td == nil {
		return nil
	}
	for _, d := range td.Directives {
		for _, v := range verbs {
			if d.Verb == v {
				return &d
			}
		}
	}
	return nil
}

// TypeDecl is a type declaration plus the //plshvet: directives in its
// doc comments.
type TypeDecl struct {
	Spec       *ast.TypeSpec
	Directives []Directive
}

// CollectTypeSpecs indexes the package's type declarations by name,
// capturing the //plshvet: directives written in the TypeSpec doc or the
// enclosing GenDecl doc.
func CollectTypeSpecs(files []*ast.File) map[string]*TypeDecl {
	out := map[string]*TypeDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				td := &TypeDecl{Spec: ts}
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					if cg == nil {
						continue
					}
					for _, c := range cg.List {
						if strings.HasPrefix(c.Text, directivePrefix) {
							rest := strings.TrimPrefix(c.Text, directivePrefix)
							verb, args, _ := strings.Cut(rest, " ")
							td.Directives = append(td.Directives, Directive{
								Pos:  c.Pos(),
								Verb: strings.TrimSpace(verb),
								Args: strings.TrimSpace(args),
							})
						}
					}
				}
				out[ts.Name.Name] = td
			}
		}
	}
	return out
}
