// Package atomicfix seeds the atomicsnap cases: atomic struct fields
// used through their method set (legal) and read, copied, or aliased
// directly (flagged).
package atomicfix

import "sync/atomic"

type snapshot struct {
	n int
}

type store struct {
	snap  atomic.Pointer[snapshot]
	gen   atomic.Uint64
	plain int
}

func good(s *store) *snapshot {
	s.gen.Add(1)
	cur := s.snap.Load()
	next := &snapshot{n: cur.n + 1}
	if s.snap.CompareAndSwap(cur, next) {
		return next
	}
	s.snap.Store(next)
	return s.snap.Load()
}

func badCopy(s *store) {
	p := s.snap // want `field snap of atomic type .* used outside its atomic method set`
	_ = p
}

func badAlias(s *store) *atomic.Pointer[snapshot] {
	return &s.snap // want `field snap of atomic type .* used outside its atomic method set`
}

func badRead(s *store) uint64 {
	g := s.gen // want `field gen of atomic type .* used outside its atomic method set`
	return g.Load()
}

func okPlain(s *store) int {
	return s.plain // non-atomic fields are untouched
}
