package atomicsnap_test

import (
	"testing"

	"plsh/internal/analysis/atomicsnap"
	"plsh/internal/analysis/framework/testutil"
)

func TestAtomicsnap(t *testing.T) {
	testutil.Run(t, "testdata", atomicsnap.Analyzer)
}
