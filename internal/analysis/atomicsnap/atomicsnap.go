// Package atomicsnap enforces the snapshot-access invariant of
// internal/node: a struct field of a sync/atomic type (atomic.Pointer,
// atomic.Value, the integer/bool flavors) may be touched only through
// its atomic method set — n.snap.Load(), n.snap.Store(s) — never read,
// copied, aliased, or assigned directly. The copy-on-write design is
// sound only if every reader goes through Load and every publisher
// through Store/Swap/CompareAndSwap; a direct field copy or a &field
// alias that escapes reintroduces the unsynchronized access the
// snapshot design exists to eliminate. (go vet's copylocks catches some
// whole-struct copies; this check also rejects aliasing and any
// non-method use of the field itself.)
package atomicsnap

import (
	"go/ast"
	"go/types"

	"plsh/internal/analysis/framework"
)

// Analyzer is the package-level instance plsh-vet registers.
var Analyzer = &framework.Analyzer{
	Name: "atomicsnap",
	Doc: "struct fields of sync/atomic types must be accessed only through their atomic methods " +
		"(Load/Store/Swap/CompareAndSwap/Add), never read, copied, or aliased directly",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		framework.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection := pass.TypesInfo.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return
			}
			fieldType := selection.Obj().Type()
			if !isAtomicType(fieldType) {
				return
			}
			// The only legal context: x.field.Method(...) — the selector
			// is the X of a method selector that is itself the Fun of a
			// call.
			if len(stack) >= 2 {
				if outer, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && outer.X == sel {
					if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == outer {
						return
					}
				}
			}
			pass.Reportf(sel.Pos(),
				"field %s of atomic type %s used outside its atomic method set; "+
					"direct reads, copies, and aliases bypass the snapshot discipline",
				selection.Obj().Name(), types.TypeString(fieldType, types.RelativeTo(pass.Pkg)))
		})
	}
	return nil
}

// isAtomicType reports whether t is a named type of package sync/atomic
// (atomic.Pointer[T], atomic.Value, atomic.Int64, ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
