package walorder

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
)

func TestWalorder(t *testing.T) {
	testutil.Run(t, "testdata", Analyzer)
}
