// Package walorder checks the durability ordering that makes the WAL a
// write-AHEAD log rather than a write-sometime log.
//
// Three checks:
//
//  1. Journal-before-ack. On a struct holding a WAL-like field (a
//     pointer to a type with a Checkpoint method and at least one
//     Append* method), every path through a method named Insert,
//     Delete, or Retire that reaches a success return — a return whose
//     final result is the literal nil — must first execute an Append*
//     call on that field. Paths guarded by `wal == nil` (the
//     non-durable configuration) are exempt, and an append inside
//     `wal != nil` counts for the code after the guard, because the
//     nil case is the exempt configuration.
//
//  2. Checkpoint-after-snapshot. Inside a WAL-like type's Checkpoint
//     method, journal segments may be removed (os.Remove/os.RemoveAll)
//     only after a WriteSnapshot call whose error is checked and
//     returned on failure — the snapshot's temp-file rename must be
//     durable before the journal that could rebuild it is destroyed.
//
//  3. Append-reaches-fsync. Every Append* method of a WAL-like type
//     must be able to reach (*os.File).Sync through same-package
//     calls; otherwise the SyncWrites contract is unimplementable.
//
// The success-return approximation is deliberate: only a literal nil
// final result counts as an acknowledgement, so `return err` paths
// stay silent. The one legal early success return in the tree —
// inserting an empty batch — carries a reasoned suppression.
package walorder

import (
	"go/ast"
	"go/types"
	"strings"

	"plsh/internal/analysis/framework"
)

// Analyzer is the walorder analyzer.
var Analyzer = &framework.Analyzer{
	Name: "walorder",
	Doc:  "journal appends happen-before success returns; checkpoints delete segments only after a durable snapshot; append paths can fsync",
	Run:  run,
}

// mutatorNames are the acknowledged-mutation methods check 1 covers.
var mutatorNames = map[string]bool{"Insert": true, "Delete": true, "Retire": true}

func run(pass *framework.Pass) error {
	reach := buildSyncReach(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := pass.TypeOf(fd.Recv.List[0].Type)
			if recv == nil {
				continue
			}
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				continue
			}
			if mutatorNames[fd.Name.Name] && returnsError(pass, fd) {
				if field := walField(named); field != "" {
					checkMutator(pass, fd, field)
				}
			}
			if isWALLike(named) {
				switch {
				case fd.Name.Name == "Checkpoint":
					checkCheckpoint(pass, fd)
				case strings.HasPrefix(fd.Name.Name, "Append"):
					if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && !reach[fn] {
						pass.Reportf(fd.Pos(), "%s cannot reach an fsync ((*os.File).Sync) through this package; the SyncWrites contract is unimplementable", fd.Name.Name)
					}
				}
			}
		}
	}
	return nil
}

// walField returns the name of named's WAL-like pointer field, or "".
func walField(named *types.Named) string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		p, ok := f.Type().(*types.Pointer)
		if !ok {
			continue
		}
		if w, ok := p.Elem().(*types.Named); ok && isWALLike(w) {
			return f.Name()
		}
	}
	return ""
}

// isWALLike reports whether w's method set holds Checkpoint and at
// least one Append* method.
func isWALLike(w *types.Named) bool {
	hasCheckpoint, hasAppend := false, false
	for i := 0; i < w.NumMethods(); i++ {
		name := w.Method(i).Name()
		if name == "Checkpoint" {
			hasCheckpoint = true
		}
		if strings.HasPrefix(name, "Append") {
			hasAppend = true
		}
	}
	return hasCheckpoint && hasAppend
}

// returnsError reports whether fd's final result type is error.
func returnsError(pass *framework.Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1]
	t := pass.TypeOf(last.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
