// Package walfix exercises walorder: journal-before-ack on mutator
// paths, checkpoint-after-snapshot ordering, and append-reaches-fsync.
package walfix

import "os"

// wal is WAL-like: Checkpoint plus Append* methods. Its append path
// reaches the fsync, so check 3 is satisfied.
type wal struct {
	f    *os.File
	dir  string
	sync bool
}

func (w *wal) AppendPut(id uint32) error {
	return w.frame(id)
}

func (w *wal) frame(id uint32) error {
	_ = id
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// Checkpoint deletes segments only after the guarded snapshot write.
func (w *wal) Checkpoint(segs []string) error {
	if err := WriteSnapshot(w.dir); err != nil {
		return err
	}
	for _, s := range segs {
		os.Remove(s)
	}
	return nil
}

// WriteSnapshot stands in for the temp-file+rename snapshot writer.
func WriteSnapshot(dir string) error {
	_ = dir
	return nil
}

// badwal's append path never fsyncs.
type badwal struct {
	f *os.File
}

func (w *badwal) AppendPut(id uint32) error { // want `AppendPut cannot reach an fsync`
	_ = id
	return nil
}

// badwal's checkpoint removes the journal before the snapshot exists.
func (w *badwal) Checkpoint(segs []string) error {
	for _, s := range segs {
		os.Remove(s) // want `journal segment removed before the snapshot write is durable`
	}
	if err := WriteSnapshot("x"); err != nil {
		return err
	}
	return nil
}

// goodStore journals before every acknowledgement.
type goodStore struct {
	wal *wal
	n   int
}

func (s *goodStore) Insert(ids []uint32) error {
	if s.wal != nil {
		if err := s.wal.AppendPut(ids[0]); err != nil {
			return err
		}
	}
	s.n += len(ids)
	return nil
}

func (s *goodStore) Delete(id uint32) error {
	if s.wal == nil {
		s.n--
		return nil
	}
	if err := s.wal.AppendPut(id); err != nil {
		return err
	}
	s.n--
	return nil
}

func (s *goodStore) Retire() error {
	if s.wal != nil {
		return s.wal.AppendPut(0)
	}
	return nil
}

// badStore acknowledges without journaling.
type badStore struct {
	wal *wal
	n   int
}

// Insert has an early success return before the append.
func (s *badStore) Insert(ids []uint32) error {
	if len(ids) == 0 {
		return nil // want `mutation acknowledged \(return nil\) without a journal append`
	}
	if err := s.wal.AppendPut(ids[0]); err != nil {
		return err
	}
	return nil
}

// Delete never journals at all.
func (s *badStore) Delete(id uint32) error {
	s.n--
	_ = id
	return nil // want `mutation acknowledged \(return nil\) without a journal append`
}

// Retire journals in one arm of a generic branch but acknowledges on
// both.
func (s *badStore) Retire() error {
	if s.n > 0 {
		if err := s.wal.AppendPut(0); err != nil {
			return err
		}
	}
	return nil // want `mutation acknowledged \(return nil\) without a journal append`
}

// search-style methods without the mutator names are not checked.
func (s *badStore) Lookup(id uint32) error {
	_ = id
	return nil
}
