package walorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"plsh/internal/analysis/framework"
)

// ---- check 1: journal append happens-before the success return ----

// mstate is the path state of the mutator walk.
type mstate struct {
	appended bool // an Append* on the WAL field has executed
	exempt   bool // inside the wal == nil (non-durable) configuration
}

func checkMutator(pass *framework.Pass, fd *ast.FuncDecl, field string) {
	w := &mutatorWalker{pass: pass, field: field}
	w.walk(fd.Body.List, mstate{})
}

type mutatorWalker struct {
	pass  *framework.Pass
	field string
}

// walk processes stmts from st, reporting unjournaled success returns.
// It returns the fall-through state, or nil when every path terminates.
func (w *mutatorWalker) walk(stmts []ast.Stmt, st mstate) *mstate {
	cur := st
	for _, stmt := range stmts {
		out := w.stmt(stmt, cur)
		if out == nil {
			return nil
		}
		cur = *out
	}
	return &cur
}

func (w *mutatorWalker) stmt(stmt ast.Stmt, st mstate) *mstate {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		if isSuccessReturn(s) && !st.appended && !st.exempt {
			w.pass.Reportf(s.Pos(), "mutation acknowledged (return nil) without a journal append on this path; journal-before-ack requires the Append* to happen first")
		}
		return nil
	case *ast.BranchStmt:
		return nil
	case *ast.BlockStmt:
		return w.walk(s.List, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			if out := w.stmt(s.Init, st); out != nil {
				st = *out
			} else {
				return nil
			}
		}
		switch w.walCond(s.Cond) {
		case token.NEQ: // if x.wal != nil { durable work }
			bodyOut := w.walk(s.Body.List, st)
			after := st
			if bodyOut == nil {
				// The durable configuration returned inside the guard;
				// everything after runs only without a WAL.
				after.exempt = true
			} else {
				// The nil case is exempt by configuration, so the
				// guarded append covers the merged path.
				after.appended = st.appended || bodyOut.appended
			}
			return &after
		case token.EQL: // if x.wal == nil { non-durable work }
			ex := st
			ex.exempt = true
			bodyOut := w.walk(s.Body.List, ex)
			after := st
			if bodyOut == nil {
				// The non-durable configuration returned; what follows
				// is durable-only.
				after.exempt = false
			}
			return &after
		}
		bodyOut := w.walk(s.Body.List, st)
		var elseOut *mstate
		hasElse := s.Else != nil
		if hasElse {
			elseOut = w.stmt(s.Else, st)
		}
		var arms []*mstate
		if bodyOut != nil {
			arms = append(arms, bodyOut)
		}
		if hasElse {
			if elseOut != nil {
				arms = append(arms, elseOut)
			}
		} else {
			skip := st
			arms = append(arms, &skip)
		}
		if len(arms) == 0 {
			return nil
		}
		after := st
		after.appended = true
		for _, a := range arms {
			after.appended = after.appended && a.appended
		}
		return &after
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.walk(s.Body.List, st)
		return &st
	case *ast.RangeStmt:
		w.walk(s.Body.List, st)
		return &st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok && isSuccessReturn(ret) && !st.appended && !st.exempt {
				w.pass.Reportf(ret.Pos(), "mutation acknowledged (return nil) without a journal append on this path; journal-before-ack requires the Append* to happen first")
			}
			return true
		})
		return &st
	default:
		if w.scanAppend(stmt) {
			st.appended = true
		}
		return &st
	}
}

// walCond classifies cond as a `field != nil` (NEQ), `field == nil`
// (EQL) guard on the WAL field, or 0.
func (w *mutatorWalker) walCond(cond ast.Expr) token.Token {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0
	}
	isWalSel := func(e ast.Expr) bool {
		sel, ok := e.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == w.field
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isWalSel(be.X) && isNil(be.Y)) || (isWalSel(be.Y) && isNil(be.X)) {
		return be.Op
	}
	return 0
}

// scanAppend reports whether the node contains an Append* call on a
// WAL-like receiver.
func (w *mutatorWalker) scanAppend(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !strings.HasPrefix(sel.Sel.Name, "Append") {
			return true
		}
		t := w.pass.TypeOf(sel.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && isWALLike(named) {
			found = true
		}
		return true
	})
	return found
}

// isSuccessReturn reports whether ret acknowledges success: a naked
// return, or a final result that is the literal nil.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	id, ok := ret.Results[len(ret.Results)-1].(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---- check 2: checkpoint removes segments only after the snapshot ----

func checkCheckpoint(pass *framework.Pass, fd *ast.FuncDecl) {
	walkCheckpoint(pass, fd.Body.List, false)
}

// walkCheckpoint walks stmts with the written flag (a guarded
// WriteSnapshot has succeeded) and returns its fall-through value.
func walkCheckpoint(pass *framework.Pass, stmts []ast.Stmt, written bool) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Init != nil && initIsSnapshotWrite(s.Init) && condIsErrCheck(s.Cond) && endsTerminal(s.Body) {
				// if err := WriteSnapshot(...); err != nil { return err }
				written = true
				continue
			}
			if !written {
				reportRemoves(pass, s, written)
			}
			// A checkpoint that writes inside a branch does not count
			// for the fall-through path; only the guarded top-level
			// pattern promotes written.
		case *ast.ForStmt:
			reportRemoves(pass, s.Body, written)
		case *ast.RangeStmt:
			reportRemoves(pass, s.Body, written)
		case *ast.BlockStmt:
			written = walkCheckpoint(pass, s.List, written)
		default:
			reportRemoves(pass, stmt, written)
		}
	}
	return written
}

// reportRemoves reports os.Remove/os.RemoveAll calls under n when the
// snapshot has not been durably written.
func reportRemoves(pass *framework.Pass, n ast.Node, written bool) {
	if written {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeName(pass, call); fn == "os.Remove" || fn == "os.RemoveAll" {
			pass.Reportf(call.Pos(), "journal segment removed before the snapshot write is durable; Checkpoint must WriteSnapshot (error-checked) first")
		}
		return true
	})
}

// initIsSnapshotWrite matches `err := WriteSnapshot(...)` inits.
func initIsSnapshotWrite(init ast.Stmt) bool {
	as, ok := init.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "WriteSnapshot"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "WriteSnapshot"
	}
	return false
}

// condIsErrCheck matches `x != nil`.
func condIsErrCheck(cond ast.Expr) bool {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	id, ok := be.Y.(*ast.Ident)
	return ok && id.Name == "nil"
}

// endsTerminal reports whether the block's last statement returns.
func endsTerminal(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// ---- check 3: Append* reaches (*os.File).Sync ----

// buildSyncReach computes, for every function in the package, whether
// it can reach an (*os.File).Sync call through same-package calls.
func buildSyncReach(pass *framework.Pass) map[*types.Func]bool {
	direct := map[*types.Func]bool{}
	callees := map[*types.Func][]*types.Func{}
	var fns []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if calleeName(pass, call) == "(*os.File).Sync" {
					direct[fn] = true
				}
				if callee := calleeObj(pass, call); callee != nil && callee.Pkg() == pass.Pkg {
					callees[fn] = append(callees[fn], callee)
				}
				return true
			})
		}
	}
	reach := map[*types.Func]bool{}
	for fn := range direct {
		reach[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if reach[fn] {
				continue
			}
			for _, c := range callees[fn] {
				if reach[c] {
					reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// calleeName resolves the called function's FullName, or "".
func calleeName(pass *framework.Pass, call *ast.CallExpr) string {
	if fn := calleeObj(pass, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

func calleeObj(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}
