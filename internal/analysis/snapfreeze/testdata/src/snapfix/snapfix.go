// Package snapfix exercises snapfreeze: write-once structs published by
// atomic pointer swap or declared //plshvet:frozen.
package snapfix

import "sync/atomic"

// view is auto-frozen: holder publishes it through an atomic.Pointer.
type view struct {
	n     int
	items []uint32
}

type holder struct {
	cur atomic.Pointer[view]
}

// newView is a constructor — its results include *view, so field writes
// here are the pre-publish build.
func newView(n int) *view {
	v := &view{}
	v.n = n
	v.items = make([]uint32, 0, n)
	return v
}

// buildViews returns a slice of the frozen type; still a builder.
func buildViews(n int) []view {
	vs := make([]view, n)
	for i := range vs {
		vs[i].n = i
	}
	return vs
}

//plshvet:prepublish runs inside the builder before the pointer swap
func fill(v *view, n int) {
	v.n = n
}

func (h *holder) mutatePublished() {
	v := h.cur.Load()
	v.n = 7       // want `write to view\.n outside a constructor`
	v.n++         // want `write to view\.n outside a constructor`
	v.items = nil // want `write to view\.items outside a constructor`
}

// element writes through a slice field are out of scope: the struct's
// own fields do not change.
func (h *holder) elementWrite() {
	v := h.cur.Load()
	if len(v.items) > 0 {
		v.items[0] = 1
	}
}

// segment is frozen by declaration: it is published indirectly, so the
// pointer-swap pattern is not visible in this package.
//
//plshvet:frozen reached through a published snapshot built elsewhere
type segment struct {
	rows int
}

func newSegment(rows int) *segment {
	s := &segment{}
	s.rows = rows
	return s
}

func corrupt(s *segment) {
	s.rows = 0 // want `write to segment\.rows outside a constructor`
}

//plshvet:frozen
type badDirective struct { // want `malformed //plshvet:frozen`
	x int
}

//plshvet:frozen not a struct so the directive is misapplied
type notStruct int // want `//plshvet:frozen applies to struct types only`

//plshvet:prepublish
func badPrepublish(v *view) { // want `malformed //plshvet:prepublish`
	v.n = 1
}

// scratch is not frozen: writes anywhere are fine.
type scratch struct {
	buf []byte
}

func (s *scratch) reset() {
	s.buf = s.buf[:0]
}
