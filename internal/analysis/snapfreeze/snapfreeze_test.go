package snapfreeze

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
)

func TestSnapfreeze(t *testing.T) {
	testutil.Run(t, "testdata", Analyzer)
}
