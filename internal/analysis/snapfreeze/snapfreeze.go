// Package snapfreeze enforces the copy-on-write publication discipline:
// a struct that readers reach through an atomic pointer swap is
// write-once. Queries run lock-free against the published value (the
// node's snapshot, the frozen delta segments, the static index tables),
// so any field assignment after publish is a data race the race
// detector only catches if a test happens to interleave it.
//
// A struct type is "frozen" when either
//
//   - some struct in the same package holds a field of type
//     sync/atomic.Pointer[T] — the publication pattern itself marks the
//     pointee, or
//   - its declaration carries a //plshvet:frozen <reason> directive,
//     for types published indirectly (e.g. reached through a snapshot
//     built in another package).
//
// Assignments to a frozen struct's fields (including op= and ++/--)
// are legal only inside functions that visibly run before publish:
//
//   - constructors and builders — same-package functions whose result
//     list includes the frozen type (T, *T, []T, ...), or
//   - functions and methods marked //plshvet:prepublish <reason>, for
//     in-place build steps that mutate and return nothing (reservoir
//     capping, tombstone compaction, pre-freeze delta writes guarded by
//     runtime checks).
//
// The check is package-local: a frozen type's fields must be unexported
// or treated as read-only by convention across packages (the analyzer
// cannot see foreign writes without cross-package facts). Element
// writes through slice fields (t.Items[i] = x) are likewise out of
// scope — the invariant enforced here is that the struct's own fields
// never change after the pointer swap.
package snapfreeze

import (
	"go/ast"
	"go/types"
	"strings"

	"plsh/internal/analysis/framework"
)

// Analyzer is the snapfreeze analyzer.
var Analyzer = &framework.Analyzer{
	Name: "snapfreeze",
	Doc:  "structs published by atomic pointer swap are write-once: field assignments outside constructors/builders or //plshvet:prepublish functions are findings",
	Run:  run,
}

// frozenType records why a named struct type is write-once, for the
// diagnostic text.
type frozenType struct {
	named  *types.Named
	reason string // "published via X.f" or "declared //plshvet:frozen"
}

func run(pass *framework.Pass) error {
	decls := framework.CollectTypeSpecs(pass.Files)
	frozen := map[*types.Named]*frozenType{}

	// Directive-frozen types. A //plshvet:frozen with no reason is
	// malformed — suppressions and classifications stay auditable.
	for name, td := range decls {
		d := framework.TypeDirective(decls, name, "frozen")
		if d == nil {
			continue
		}
		if strings.TrimSpace(d.Args) == "" {
			pass.Reportf(td.Spec.Pos(), "malformed //plshvet:frozen: want \"//plshvet:frozen <reason>\"")
			continue
		}
		obj, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			pass.Reportf(td.Spec.Pos(), "//plshvet:frozen applies to struct types only")
			continue
		}
		frozen[named] = &frozenType{named: named, reason: "declared //plshvet:frozen"}
	}

	// Auto-frozen types: T is frozen when any struct in the package has
	// a field of type sync/atomic.Pointer[T] — that field is the
	// publication point.
	for holderName, td := range decls {
		st, ok := pass.TypeOf(td.Spec.Type).(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			pointee := atomicPointee(f.Type())
			if pointee == nil || pointee.Obj().Pkg() != pass.Pkg {
				continue
			}
			if _, ok := pointee.Underlying().(*types.Struct); !ok {
				continue
			}
			if frozen[pointee] == nil {
				frozen[pointee] = &frozenType{
					named:  pointee,
					reason: "published via atomic.Pointer field " + holderName + "." + f.Name(),
				}
			}
		}
	}
	if len(frozen) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if d := funcDirective(fd, "prepublish"); d != nil {
				if strings.TrimSpace(d.Args) == "" {
					pass.Reportf(fd.Pos(), "malformed //plshvet:prepublish: want \"//plshvet:prepublish <reason>\"")
				}
				continue // mutation allowed: declared to run before publish
			}
			allowed := builderResults(pass, fd)
			check := func(lhs ast.Expr) {
				named, fieldName := frozenFieldWrite(pass, lhs, frozen)
				if named == nil || allowed[named] {
					return
				}
				ft := frozen[named]
				pass.Reportf(lhs.Pos(),
					"write to %s.%s outside a constructor: %s is write-once (%s); build it in a function returning %s or mark this one //plshvet:prepublish <reason>",
					named.Obj().Name(), fieldName, named.Obj().Name(), ft.reason, named.Obj().Name())
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range s.Lhs {
						check(lhs)
					}
				case *ast.IncDecStmt:
					check(s.X)
				}
				return true
			})
		}
	}
	return nil
}

// atomicPointee returns T when t is sync/atomic.Pointer[T] for a named
// T, else nil.
func atomicPointee(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	arg := args.At(0)
	if p, ok := arg.(*types.Pointer); ok {
		arg = p.Elem()
	}
	pointee, ok := arg.(*types.Named)
	if !ok {
		return nil
	}
	return pointee
}

// builderResults returns the frozen types appearing in fd's result list
// (as T, *T, []T, ...): fd constructs those values, so writing their
// fields is the pre-publish build step.
func builderResults(pass *framework.Pass, fd *ast.FuncDecl) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	if fd.Type.Results == nil {
		return out
	}
	for _, r := range fd.Type.Results.List {
		t := pass.TypeOf(r.Type)
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			out[named] = true
		}
	}
	return out
}

// frozenFieldWrite reports whether lhs writes a field of a frozen
// struct, returning the frozen type and field name.
func frozenFieldWrite(pass *framework.Pass, lhs ast.Expr, frozen map[*types.Named]*frozenType) (*types.Named, string) {
	for {
		p, ok := lhs.(*ast.ParenExpr)
		if !ok {
			break
		}
		lhs = p.X
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, ""
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || frozen[named] == nil {
		return nil, ""
	}
	return named, sel.Sel.Name
}

// funcDirective returns the //plshvet:<verb> directive in fd's doc
// comment, or nil.
func funcDirective(fd *ast.FuncDecl, verb string) *framework.Directive {
	if fd.Doc == nil {
		return nil
	}
	for _, c := range fd.Doc.List {
		const prefix = "//plshvet:"
		if !strings.HasPrefix(c.Text, prefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, prefix)
		v, args, _ := strings.Cut(rest, " ")
		if strings.TrimSpace(v) == verb {
			return &framework.Directive{Pos: c.Pos(), Verb: verb, Args: strings.TrimSpace(args)}
		}
	}
	return nil
}
