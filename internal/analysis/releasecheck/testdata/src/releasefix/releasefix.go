// Package releasefix seeds every releasecheck case against a miniature
// pooled-batch owner: Searcher.Search hands out [][]int batches that
// must come back through ReleaseResults or be returned whole.
package releasefix

import "errors"

// Searcher is the batch owner; the method-set shape (Search returning a
// slice-of-slices plus ReleaseResults) is what the analyzer keys on.
type Searcher struct{}

func (s *Searcher) Search(n int) ([][]int, error) { return make([][]int, n), nil }

func (s *Searcher) SearchBatch(n int) ([][]int, error) { return s.Search(n) }

func (s *Searcher) ReleaseResults(out [][]int) {}

func use(v interface{}) {}

// plain release on the success path.
func good(s *Searcher) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	use(res[0])
	s.ReleaseResults(res)
	return nil
}

// deferred release covers every later path.
func goodDefer(s *Searcher) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	defer s.ReleaseResults(res)
	use(res[0])
	if len(res) > 1 {
		return errors.New("short")
	}
	return nil
}

// returning the whole batch transfers ownership to the caller.
func goodTransfer(s *Searcher) ([][]int, error) {
	res, err := s.Search(1)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// a direct return of the call is a transfer too.
func goodDirect(s *Searcher) ([][]int, error) {
	return s.Search(1)
}

// the classic leak: an element of the batch escapes, the batch does not
// come back.
func badAliasReturn(s *Searcher) ([]int, error) {
	res, err := s.Search(1)
	if err != nil {
		return nil, err
	}
	return res[0], nil // want `return leaks pooled batch res`
}

// an early return between acquire and release leaks.
func badEarlyReturn(s *Searcher, stop bool) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	if stop {
		return nil // want `return leaks pooled batch res`
	}
	s.ReleaseResults(res)
	return nil
}

// falling off the end of a void function leaks.
func badFallThrough(s *Searcher) {
	res, _ := s.Search(1) // want `not released on the fall-through path`
	use(res)
}

// discarding the batch outright leaks.
func badDiscard(s *Searcher) {
	s.Search(1) // want `is discarded`
}

// a release on only one branch does not cover the other.
func badBranch(s *Searcher, cond bool) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	if cond {
		s.ReleaseResults(res)
	}
	return nil // want `return leaks pooled batch res`
}

// releasing in both arms covers the return.
func goodBothBranches(s *Searcher, cond bool) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	if cond {
		use(res[0])
		s.ReleaseResults(res)
	} else {
		s.ReleaseResults(res)
	}
	return nil
}

// SearchBatch sites are checked the same way.
func badBatch(s *Searcher) error {
	res, err := s.SearchBatch(2)
	if err != nil {
		return err
	}
	use(res)
	return nil // want `return leaks pooled batch res`
}

// storing the whole batch hands ownership to the sink.
func goodStore(s *Searcher, sink *[][]int) error {
	res, err := s.Search(1)
	if err != nil {
		return err
	}
	*sink = res
	return nil
}
