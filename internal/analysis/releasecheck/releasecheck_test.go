package releasecheck_test

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
	"plsh/internal/analysis/releasecheck"
)

func TestReleasecheck(t *testing.T) {
	testutil.Run(t, "testdata", releasecheck.Analyzer)
}
