// Package releasecheck enforces the pooled-results ownership contract
// of PR 6: a caller that receives a pooled batch answer — the
// [][]Neighbor returned by node.SearchBatch, cluster.Cluster.Search,
// or the getBatchOut helpers — must, on every path including error and
// early-return paths, either hand it back with the owner's
// ReleaseResults or transfer ownership wholesale (return the whole
// value, store it, send it). Returning a piece of the batch (res[0])
// or just falling off the end strands the buffers: harmless to
// correctness only as long as nobody ever releases them, and a silent
// data-aliasing bug the moment someone does — released entries are
// recycled into the next batch while the escaped alias is still read.
//
// Acquire sites are recognized structurally: a call to a method named
// Search, SearchBatch, or getBatchOut whose first result is a
// slice-of-slices and whose receiver type also has a ReleaseResults
// method. Paths inside an `if err != nil` guard on the call's own
// error are exempt — the contract is that a failed call returns no
// buffers. Releases inside defers and spawned closures count from the
// point of registration.
package releasecheck

import (
	"go/ast"
	"go/types"

	"plsh/internal/analysis/framework"
)

// acquireNames are the method names that can hand out pooled batches.
var acquireNames = map[string]bool{
	"Search":      true,
	"SearchBatch": true,
	"getBatchOut": true,
}

// Analyzer is the package-level instance plsh-vet registers.
var Analyzer = &framework.Analyzer{
	Name: "releasecheck",
	Doc: "pooled batch results (node.SearchBatch, Cluster.Search, getBatchOut) must be released " +
		"with ReleaseResults or returned whole on every path, including error and early-return paths",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isAcquire reports whether call returns a pooled batch: a method in
// acquireNames, first result [][]T, receiver type carrying a
// ReleaseResults method.
func isAcquire(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !acquireNames[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	outer, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	if _, ok := outer.Elem().Underlying().(*types.Slice); !ok {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	return ms.Lookup(named.Obj().Pkg(), "ReleaseResults") != nil
}

// acquireSite is one pooled-batch acquisition inside a function.
type acquireSite struct {
	call    *ast.CallExpr
	res     types.Object // the variable bound to the batch (nil if discarded)
	resName string
	err     types.Object // the error bound in the same assignment (may be nil)
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// Locate acquire calls and the statements that bind them.
	sites := map[ast.Stmt]*acquireSite{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAcquire(pass, call) {
			return true
		}
		stmt, bound := bindingOf(pass, fd, call)
		if stmt == nil {
			return true
		}
		sites[stmt] = bound
		return true
	})
	if len(sites) == 0 {
		return
	}
	for stmt, site := range sites {
		if site.res == nil {
			pass.Reportf(site.call.Pos(),
				"pooled batch from %s is discarded; bind it and release it with ReleaseResults",
				callName(site.call))
			continue
		}
		c := &pathChecker{pass: pass, site: site}
		path, rest := pathTo(fd.Body, stmt)
		if path == nil {
			continue
		}
		released := c.seq(rest, false, 0)
		// Walk back out: statements following the acquire's block at
		// each enclosing level run too (unless an inner level already
		// guaranteed release).
		for i := len(path) - 1; i >= 0 && !released; i-- {
			released = c.seq(path[i], released, 0)
		}
		if !released && !c.terminated {
			pass.Reportf(site.call.Pos(),
				"pooled batch %s from %s is not released on the fall-through path; call ReleaseResults or return it",
				site.resName, callName(site.call))
		}
	}
}

// bindingOf finds the statement that contains call directly and the
// variables it binds. A call whose whole result is immediately returned
// transfers ownership and needs no site.
func bindingOf(pass *framework.Pass, fd *ast.FuncDecl, call *ast.CallExpr) (ast.Stmt, *acquireSite) {
	var found ast.Stmt
	var site *acquireSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if rhs == call {
					s := &acquireSite{call: call}
					if len(n.Lhs) > 0 {
						if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							s.res = pass.ObjectOf(id)
							s.resName = id.Name
						}
					}
					// The error, if the tuple carries one, is the last
					// result.
					if len(n.Lhs) > 1 {
						if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
							if o := pass.ObjectOf(id); o != nil && o.Type() != nil && isErrorType(o.Type()) {
								s.err = o
							}
						}
					}
					found, site = n, s
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if r == call {
					return false // ownership transferred to the caller
				}
			}
		case *ast.ExprStmt:
			if n.X == call {
				found, site = n, &acquireSite{call: call}
				return false
			}
		}
		return true
	})
	return found, site
}

// pathTo locates stmt inside root and returns, per enclosing block
// level from outermost in, the statements that follow it — plus the
// remainder of its own block.
func pathTo(root *ast.BlockStmt, stmt ast.Stmt) (outer [][]ast.Stmt, rest []ast.Stmt) {
	var walk func(list []ast.Stmt, acc [][]ast.Stmt) bool
	walk = func(list []ast.Stmt, acc [][]ast.Stmt) bool {
		for i, s := range list {
			if s == stmt {
				outer = append([][]ast.Stmt{}, acc...)
				rest = list[i+1:]
				return true
			}
			for _, inner := range childBlocks(s) {
				if walk(inner, append(acc, list[i+1:])) {
					return true
				}
			}
		}
		return false
	}
	if !walk(root.List, nil) {
		return nil, nil
	}
	return outer, rest
}

// childBlocks returns the statement lists nested directly inside s.
func childBlocks(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	add := func(b *ast.BlockStmt) {
		if b != nil {
			out = append(out, b.List)
		}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		add(s)
	case *ast.IfStmt:
		add(s.Body)
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			add(eb)
		} else if ei, ok := s.Else.(*ast.IfStmt); ok {
			out = append(out, childBlocks(ei)...)
		}
	case *ast.ForStmt:
		add(s.Body)
	case *ast.RangeStmt:
		add(s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childBlocks(s.Stmt)...)
	}
	return out
}

// pathChecker walks the statements dominated by an acquire and reports
// returns that leak the batch.
type pathChecker struct {
	pass *framework.Pass
	site *acquireSite
	// terminated is set when every path through the walked statements
	// ended in a reported-or-legal return, so fall-through cannot
	// happen.
	terminated bool
}

// seq walks one statement sequence. released is the state on entry;
// exempt > 0 inside an err-guard of the acquire's own error. Returns
// the released state at fall-through.
func (c *pathChecker) seq(stmts []ast.Stmt, released bool, exempt int) bool {
	for _, s := range stmts {
		released = c.stmt(s, released, exempt)
	}
	return released
}

func (c *pathChecker) stmt(s ast.Stmt, released bool, exempt int) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		c.terminated = true
		if released || exempt > 0 {
			return released
		}
		if c.returnsWhole(s) {
			return true
		}
		c.pass.Reportf(s.Pos(),
			"return leaks pooled batch %s from %s; release it with ReleaseResults first "+
				"(or return the whole batch to transfer ownership)",
			c.site.resName, callName(c.site.call))
		return released
	case *ast.DeferStmt:
		if c.containsRelease(s) {
			return true
		}
		return released
	case *ast.IfStmt:
		guard := c.errGuard(s.Cond)
		thenExempt, elseExempt := exempt, exempt
		if guard == guardErrNonNil {
			thenExempt++
		}
		if guard == guardErrNil {
			elseExempt++
		}
		thenRel := c.seq(s.Body.List, released, thenExempt)
		if s.Else == nil {
			// The else path is fall-through with the entry state.
			if endsTerminal(s.Body.List) {
				return released
			}
			return released // branch-local release doesn't cover the else path
		}
		var elseRel bool
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseRel = c.seq(e.List, released, elseExempt)
		case *ast.IfStmt:
			elseRel = c.stmt(e, released, elseExempt)
		}
		return thenRel && elseRel
	case *ast.BlockStmt:
		return c.seq(s.List, released, exempt)
	case *ast.ForStmt:
		c.seq(s.Body.List, released, exempt)
		return released // the loop may run zero times
	case *ast.RangeStmt:
		c.seq(s.Body.List, released, exempt)
		return released
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		for _, blk := range childBlocks(s) {
			c.seq(blk, released, exempt)
		}
		return released // a case may not be taken
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, released, exempt)
	case *ast.GoStmt:
		if c.containsRelease(s) {
			return true
		}
		return released
	case *ast.ExprStmt:
		if c.containsRelease(s) {
			return true
		}
		return released
	case *ast.AssignStmt:
		// Storing the whole batch somewhere (a field, another binding)
		// transfers ownership.
		for _, rhs := range s.Rhs {
			if id, ok := rhs.(*ast.Ident); ok && c.pass.ObjectOf(id) == c.site.res {
				return true
			}
		}
		if c.containsRelease(s) {
			return true
		}
		return released
	case *ast.SendStmt:
		if id, ok := s.Value.(*ast.Ident); ok && c.pass.ObjectOf(id) == c.site.res {
			return true
		}
		return released
	default:
		if c.containsRelease(s) {
			return true
		}
		return released
	}
}

// returnsWhole reports whether ret returns the batch variable itself.
func (c *pathChecker) returnsWhole(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && c.pass.ObjectOf(id) == c.site.res {
			return true
		}
	}
	return false
}

// containsRelease reports whether n contains ReleaseResults(res) for
// this site's batch, at any nesting depth.
func (c *pathChecker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ReleaseResults" || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok && c.pass.ObjectOf(id) == c.site.res {
			found = true
			return false
		}
		return true
	})
	return found
}

type errGuardKind int

const (
	guardNone errGuardKind = iota
	guardErrNonNil
	guardErrNil
)

// errGuard classifies cond as a nil test of the acquire's own error.
func (c *pathChecker) errGuard(cond ast.Expr) errGuardKind {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || c.site.err == nil {
		return guardNone
	}
	var errSide, nilSide ast.Expr = be.X, be.Y
	if id, ok := be.Y.(*ast.Ident); ok && c.pass.ObjectOf(id) == c.site.err {
		errSide, nilSide = be.Y, be.X
	}
	id, ok := errSide.(*ast.Ident)
	if !ok || c.pass.ObjectOf(id) != c.site.err {
		return guardNone
	}
	if nid, ok := nilSide.(*ast.Ident); !ok || nid.Name != "nil" {
		return guardNone
	}
	switch be.Op.String() {
	case "!=":
		return guardErrNonNil
	case "==":
		return guardErrNil
	}
	return guardNone
}

// endsTerminal reports whether the sequence ends in a statement that
// cannot fall through (return or panic).
func endsTerminal(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders the acquire call for diagnostics.
func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "acquire"
}
