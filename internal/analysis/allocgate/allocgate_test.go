package allocgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# plsh/internal/core",
		"internal/core/query.go:33:14: make([]uint32, n) escapes to heap",
		"internal/core/query.go:40:6: moved to heap: out",
		"internal/core/query.go:51:2: inlining call to now",
		"not a diagnostic line",
		"internal/core/build.go:9:3: q does not escape",
	}, "\n")
	got := ParseEscapes("/repo", out)
	if len(got) != 2 {
		t.Fatalf("got %d escapes, want 2: %+v", len(got), got)
	}
	if got[0].File != "/repo/internal/core/query.go" || got[0].Line != 33 {
		t.Errorf("bad attribution: %+v", got[0])
	}
	if got[1].Msg != "moved to heap: out" {
		t.Errorf("bad message: %q", got[1].Msg)
	}
}

func TestReadBudgetRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"fields.txt":    "pkg.F 1 extra\n",
		"count.txt":     "pkg.F many\n",
		"negative.txt":  "pkg.F -1\n",
		"duplicate.txt": "pkg.F 1\npkg.F 2\n",
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ReadBudget(p); err == nil {
			t.Errorf("%s: ReadBudget accepted malformed input %q", name, content)
		}
	}
}

func TestBudgetKeyForms(t *testing.T) {
	budget, order, err := ReadBudget("budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 {
		t.Fatal("budget.txt is empty")
	}
	for fn := range budget {
		if !strings.HasPrefix(fn, "plsh/") {
			t.Errorf("budget entry %q is not module-qualified", fn)
		}
	}
}

// TestFixtureModuleFails proves the gate catches a new hot-path escape:
// escapemod.Hot escapes with budget 0, and escapemod.Gone is stale.
func TestFixtureModuleFails(t *testing.T) {
	res, err := Run("testdata/escapemod", "budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[string]Finding{}
	for _, f := range res.Findings {
		byFunc[f.Func] = f
	}
	hot, ok := byFunc["escapemod.Hot"]
	if !ok {
		t.Fatalf("escapemod.Hot not reported; findings: %+v", res.Findings)
	}
	if hot.Got < 1 || hot.Budget != 0 || len(hot.Escapes) == 0 {
		t.Errorf("bad Hot finding: %+v", hot)
	}
	gone, ok := byFunc["escapemod.Gone"]
	if !ok || !gone.Stale {
		t.Errorf("stale entry escapemod.Gone not reported; findings: %+v", res.Findings)
	}
	if _, bad := byFunc["escapemod.Warm"]; bad {
		t.Errorf("escapemod.Warm is within budget but was reported")
	}
	if len(res.Findings) != 2 {
		t.Errorf("got %d findings, want 2: %+v", len(res.Findings), res.Findings)
	}
}

// TestRepoWithinBudget is the tier-1 gate: the tree's hot path must
// stay within internal/analysis/allocgate/budget.txt.
func TestRepoWithinBudget(t *testing.T) {
	res, err := Run("../../..", "internal/analysis/allocgate/budget.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
}
