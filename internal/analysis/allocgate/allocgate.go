// Package allocgate turns the compiler's escape analysis into a CI
// gate for the query hot path.
//
// The zero-allocation Search path is load-bearing for the paper's
// latency numbers, but AllocsPerRun guards only catch a regression when
// a benchmark exercises the exact code path, and they flake with GC
// timing. The compiler already knows statically which expressions
// escape to the heap: `go build -gcflags=<module>/...=-m` replays one
// "escapes to heap" / "moved to heap" diagnostic per allocation site
// (from the build cache when nothing changed, so the gate is cheap).
//
// allocgate runs that build, attributes every escape site to its
// enclosing function, and compares the per-function counts against a
// checked-in budget file:
//
//	# comment
//	plsh/internal/node.(*Node).SearchBatch 4
//
// A function exceeding its budget — a NEW heap escape on the hot path —
// fails the gate at compile time, before any benchmark runs. A budget
// entry naming a function that no longer exists is also a failure, so
// the budget cannot rot after a refactor. Functions outside the budget
// are unconstrained: the file IS the definition of "hot path", and
// extending it is a reviewed diff, exactly like wireop's lock tables.
//
// Counts may also go DOWN: the gate reports an improvement (so the
// budget can be ratcheted with -update) but does not fail, keeping the
// workflow monotonic-friendly.
package allocgate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// An Escape is one heap-escape diagnostic attributed to a function.
type Escape struct {
	File string // absolute path
	Line int
	Msg  string // the compiler's message, e.g. "make([]uint32, n) escapes to heap"
}

// A Finding is one budget violation.
type Finding struct {
	Func    string // budget key, e.g. "plsh/internal/node.(*Node).SearchBatch"
	Budget  int    // allowed count; -1 for a stale entry
	Got     int
	Escapes []Escape // the sites, for over-budget findings
	Stale   bool     // entry names a function that no longer exists
}

func (f Finding) String() string {
	if f.Stale {
		return fmt.Sprintf("%s: stale budget entry: function no longer exists; delete it or fix the name", f.Func)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d heap escapes, budget %d", f.Func, f.Got, f.Budget)
	for _, e := range f.Escapes {
		fmt.Fprintf(&b, "\n\t%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return b.String()
}

// A Result is one gate run.
type Result struct {
	Findings     []Finding
	Improvements []Finding           // under-budget functions (informational)
	Counts       map[string]int      // per budgeted function
	Escapes      map[string][]Escape // per budgeted function
}

// Run executes the gate: build with escape analysis, attribute, compare
// against the budget at budgetPath (relative paths resolve from dir).
func Run(dir, budgetPath string) (*Result, error) {
	budget, order, err := ReadBudget(resolve(dir, budgetPath))
	if err != nil {
		return nil, err
	}
	index, err := indexFunctions(dir)
	if err != nil {
		return nil, err
	}
	escapes, err := collectEscapes(dir)
	if err != nil {
		return nil, err
	}
	res := &Result{Counts: map[string]int{}, Escapes: map[string][]Escape{}}
	perFunc := map[string][]Escape{}
	for _, e := range escapes {
		if fn := index.funcAt(e.File, e.Line); fn != "" {
			perFunc[fn] = append(perFunc[fn], e)
		}
	}
	for _, fn := range order {
		want := budget[fn]
		if !index.exists(fn) {
			res.Findings = append(res.Findings, Finding{Func: fn, Budget: -1, Stale: true})
			continue
		}
		got := len(perFunc[fn])
		res.Counts[fn] = got
		res.Escapes[fn] = perFunc[fn]
		switch {
		case got > want:
			res.Findings = append(res.Findings, Finding{Func: fn, Budget: want, Got: got, Escapes: perFunc[fn]})
		case got < want:
			res.Improvements = append(res.Improvements, Finding{Func: fn, Budget: want, Got: got})
		}
	}
	return res, nil
}

// Update rewrites the budget file's counts to the current measurements,
// preserving entry order and leading comments. Stale entries are
// dropped with a note in the error-free return.
func Update(dir, budgetPath string) error {
	path := resolve(dir, budgetPath)
	_, order, err := ReadBudget(path)
	if err != nil {
		return err
	}
	index, err := indexFunctions(dir)
	if err != nil {
		return err
	}
	escapes, err := collectEscapes(dir)
	if err != nil {
		return err
	}
	perFunc := map[string]int{}
	for _, e := range escapes {
		if fn := index.funcAt(e.File, e.Line); fn != "" {
			perFunc[fn]++
		}
	}
	// Preserve the comment header verbatim; regenerate the entries.
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var out bytes.Buffer
	for _, line := range strings.Split(string(raw), "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "#") {
			out.WriteString(line + "\n")
			continue
		}
		break
	}
	for _, fn := range order {
		if !index.exists(fn) {
			continue // drop stale entries on update
		}
		fmt.Fprintf(&out, "%s %d\n", fn, perFunc[fn])
	}
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// ReadBudget parses a budget file into name→count plus entry order.
func ReadBudget(path string) (map[string]int, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	budget := map[string]int{}
	var order []string
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("%s:%d: want \"<function> <count>\", got %q", path, lineno, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("%s:%d: bad count %q", path, lineno, fields[1])
		}
		if _, dup := budget[fields[0]]; dup {
			return nil, nil, fmt.Errorf("%s:%d: duplicate entry %s", path, lineno, fields[0])
		}
		budget[fields[0]] = n
		order = append(order, fields[0])
	}
	return budget, order, sc.Err()
}

func resolve(dir, path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(dir, path)
}

// funcIndex maps file positions to enclosing declared functions.
type funcIndex struct {
	names map[string]bool
	// byFile holds per absolute file path the declared functions sorted
	// by start line.
	byFile map[string][]funcSpan
}

type funcSpan struct {
	start, end int
	name       string
}

func (ix *funcIndex) exists(fn string) bool { return ix.names[fn] }

func (ix *funcIndex) funcAt(file string, line int) string {
	for _, s := range ix.byFile[file] {
		if line >= s.start && line <= s.end {
			return s.name
		}
	}
	return ""
}

// indexFunctions parses every non-test Go file of every package under
// dir and records each function declaration's budget key and line span.
func indexFunctions(dir string) (*funcIndex, error) {
	out, err := goCmd(dir, "list", "-json=ImportPath,Dir,GoFiles", "./...")
	if err != nil {
		return nil, err
	}
	type pkgJSON struct {
		ImportPath string
		Dir        string
		GoFiles    []string
	}
	ix := &funcIndex{names: map[string]bool{}, byFile: map[string][]funcSpan{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p pkgJSON
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		fset := token.NewFileSet()
		for _, gf := range p.GoFiles {
			path := filepath.Join(p.Dir, gf)
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				name := budgetKey(p.ImportPath, fd)
				start := fset.Position(fd.Pos()).Line
				end := fset.Position(fd.End()).Line
				ix.names[name] = true
				ix.byFile[path] = append(ix.byFile[path], funcSpan{start: start, end: end, name: name})
			}
		}
	}
	for _, spans := range ix.byFile {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	}
	return ix, nil
}

// budgetKey renders a function's budget-file name:
// importpath.Func, importpath.(*Recv).Method, importpath.(Recv).Method.
func budgetKey(importPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return importPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	for {
		switch rt := t.(type) {
		case *ast.ParenExpr:
			t = rt.X
			continue
		case *ast.StarExpr:
			ptr = true
			t = rt.X
			continue
		case *ast.IndexExpr: // generic receiver
			t = rt.X
			continue
		case *ast.IndexListExpr:
			t = rt.X
			continue
		}
		break
	}
	base := "?"
	if id, ok := t.(*ast.Ident); ok {
		base = id.Name
	}
	if ptr {
		return importPath + ".(*" + base + ")." + fd.Name.Name
	}
	return importPath + ".(" + base + ")." + fd.Name.Name
}

// collectEscapes builds the module with -m and parses the heap-escape
// diagnostics. The build cache replays diagnostics for unchanged
// packages, so repeat runs are cheap.
func collectEscapes(dir string) ([]Escape, error) {
	mod, err := goCmd(dir, "list", "-m")
	if err != nil {
		return nil, err
	}
	modPath := strings.TrimSpace(string(mod))
	pattern := modPath + "/...=-m"
	if modPath == "" {
		return nil, fmt.Errorf("allocgate: no module at %s", dir)
	}
	cmd := exec.Command("go", "build", "-gcflags="+pattern, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		// Compile errors surface here; escape diagnostics alone do not
		// fail the build.
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	return ParseEscapes(dir, stderr.String()), nil
}

// ParseEscapes extracts heap-escape diagnostics from -m compiler
// output, resolving file paths against dir.
func ParseEscapes(dir, output string) []Escape {
	var out []Escape
	for _, line := range strings.Split(output, "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(line, ":", 4)
		if len(parts) != 4 {
			continue
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		file := parts[0]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		abs, err := filepath.Abs(file)
		if err == nil {
			file = abs
		}
		out = append(out, Escape{File: file, Line: lineNo, Msg: strings.TrimSpace(parts[3])})
	}
	return out
}

func goCmd(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
