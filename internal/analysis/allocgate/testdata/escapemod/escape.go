// Package escapemod is allocgate's failing fixture: Hot deliberately
// escapes with a budget of zero, proving the gate catches a new
// hot-path heap allocation; Warm's single escape is budgeted.
package escapemod

// Hot returns a pointer to a local, the canonical escape. Its budget
// is 0, so the gate must report it.
func Hot(n int) *int {
	v := n * 2
	return &v
}

// Warm allocates once by design; its budget of 1 covers it.
func Warm(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// Cold is not in the budget file and may allocate freely.
func Cold(n int) map[int]int {
	m := make(map[int]int, n)
	return m
}
