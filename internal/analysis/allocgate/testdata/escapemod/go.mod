module escapemod

go 1.24
