// Package lockorder checks the repository's mutex discipline two ways.
//
// Acquisition order: every pair of mutexes must be acquired in one
// consistent order everywhere. The analyzer builds the static
// acquisition graph of a package — an edge L→M for every site that
// locks M while holding L, including acquisitions made by same-package
// callees — and reports every edge that participates in a cycle. Two
// goroutines taking the same pair of locks in opposite orders is the
// classic deadlock, and it is invisible to the race detector unless the
// schedules actually collide.
//
// Blocking under a hot-path mutex: a blocking operation — channel
// send/receive, a select with no default, a fsync, network I/O, a call
// into a function that transitively does any of those — executed while
// holding a mutex turns every other acquirer of that mutex into a
// waiter on the slow operation. The node's insert mutex is exactly such
// a hot-path lock: queries never take it, but inserts, merges, and
// retirement do, so an fsync under it is a throughput cliff the
// benchmarks only catch after the fact. The check understands the
// repository's unlock-around-blocking idiom: a helper that releases its
// caller's mutex before blocking (awaitMergeLocked, coalesceLoopLocked)
// is not a finding for callers holding that mutex.
//
// The walk is path-sensitive over each function body: Lock/RLock add to
// the held set, Unlock/RUnlock remove, defer Unlock holds to function
// end, branches merge conservatively (a mutex counts as held after a
// branch only if every falling-through arm still holds it). Function
// literals and go-statement bodies are separate goroutine scopes,
// walked with an empty held set.
//
// Deliberate violations — the journal-before-ack appends under the node
// mutex, the cluster's single-insertion-sequencer RPCs — are visible,
// reasoned //plshvet:ignore sites, which is the point: the analyzer
// makes holding a lock across a blocking call a decision someone wrote
// down, not an accident.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"plsh/internal/analysis/framework"
)

// Policy configures the blocking-call check.
type Policy struct {
	// Blocking lists callees treated as blocking, by types.Func.FullName
	// (e.g. "(*os.File).Sync", "time.Sleep"). An entry ending in ".*"
	// matches every method of the receiver type it names.
	Blocking []string
	// NonBlocking lists exact FullNames exempted from a wildcard
	// Blocking entry (flag reads on an otherwise-blocking RPC client).
	NonBlocking []string
	// ExcludeBlocking lists import paths where blocking while holding a
	// mutex is the package's job (the WAL serializes file I/O under its
	// mutex by design). Acquisition-order cycles are still checked there.
	ExcludeBlocking []string
}

// DefaultPolicy is the repository policy. Notable omissions are as
// deliberate as the entries: sched.Pool.Run is a CPU-bound fork/join
// used by design on the insert path (the paper's parallel per-table
// updates run under the single-writer insert lock), and WAL.Rotate is
// bounded metadata I/O on the merge path.
var DefaultPolicy = Policy{
	Blocking: []string{
		"time.Sleep",
		"(*sync.WaitGroup).Wait",
		"(*os.File).Sync",
		"net.Dial",
		"net.DialTimeout",
		"(*net.Dialer).DialContext",
		"(net.Conn).Read",
		"(net.Conn).Write",
		"(*bufio.Writer).Flush",
		"(*encoding/gob.Encoder).Encode",
		"(*encoding/gob.Decoder).Decode",
		"(*plsh/internal/persist.WAL).AppendInsert",
		"(*plsh/internal/persist.WAL).AppendDelete",
		"(*plsh/internal/persist.WAL).AppendRetire",
		"(*plsh/internal/persist.WAL).Checkpoint",
		"(plsh/internal/transport.NodeClient).*",
		"(*plsh/internal/transport.Client).*",
	},
	NonBlocking: []string{
		"(*plsh/internal/transport.Client).Broken", // reads a failure flag under the client's own mutex
	},
	ExcludeBlocking: []string{
		"plsh/internal/persist",
	},
}

// Analyzer is the lockorder analyzer under DefaultPolicy.
var Analyzer = New(DefaultPolicy)

// New returns a lockorder analyzer under the given policy.
func New(p Policy) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "lockorder",
		Doc:  "consistent mutex acquisition order; no blocking calls while holding a mutex",
		Run: func(pass *framework.Pass) error {
			return run(pass, p)
		},
	}
}

// A blockPoint is one blocking construct with the context it runs in.
type blockPoint struct {
	pos      token.Pos
	desc     string
	held     []heldLock      // mutexes held at the point
	released map[string]bool // ambient mutexes released before it
}

// A heldLock is one held mutex: its id and where it was acquired.
type heldLock struct {
	id  string
	pos token.Pos
}

// A calleeCall is a same-package call with the lock context at the call
// site, resolved against the callee's summary after the fixpoint.
type calleeCall struct {
	fn       *types.Func
	pos      token.Pos
	held     []heldLock
	released map[string]bool
}

// An edge is one acquisition-order observation: to was locked while
// from was held.
type edge struct {
	from, to string
	pos      token.Pos
}

// A summary is the per-function result of phase A plus the fixpoint
// fields of phase B.
type summary struct {
	fn     *types.Func
	points []blockPoint // direct blocking constructs
	calls  []calleeCall // same-package calls
	// acquiresDirect are the lock ids this function locks itself.
	acquiresDirect map[string]bool
	edges          []edge

	// Fixpoint fields: may the function block, and which ambient
	// mutexes is it guaranteed to release before every blocking point.
	blocks       bool
	releaseFirst map[string]bool
	acquires     map[string]bool
}

func run(pass *framework.Pass, policy Policy) error {
	excluded := false
	for _, p := range policy.ExcludeBlocking {
		if pass.Pkg.Path() == p {
			excluded = true
		}
	}
	w := &walker{pass: pass, policy: policy}

	// Phase A: walk every function body, collecting blocking points,
	// same-package calls, acquisitions, and order edges.
	summaries := map[*types.Func]*summary{}
	var order []*summary
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &summary{fn: fn, acquiresDirect: map[string]bool{}, releaseFirst: map[string]bool{}}
			w.cur = s
			w.funcName = fd.Name.Name
			w.walkStmts(fd.Body.List, newState())
			summaries[fn] = s
			order = append(order, s)
		}
	}

	// Phase B: fixpoint. blocks and acquires grow, releaseFirst shrinks
	// from the intersection of contributions; iterate to a fixed point.
	for _, s := range order {
		s.acquires = map[string]bool{}
		for id := range s.acquiresDirect {
			s.acquires[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range order {
			// acquires: union over callees.
			for _, c := range s.calls {
				cs := summaries[c.fn]
				if cs == nil {
					continue
				}
				for id := range cs.acquires {
					if !s.acquires[id] {
						s.acquires[id] = true
						changed = true
					}
				}
			}
			// blocks / releaseFirst: every direct point contributes its
			// released set; every blocking callee contributes the call
			// site's released set plus what the callee releases first.
			var contribs []map[string]bool
			for _, p := range s.points {
				contribs = append(contribs, p.released)
			}
			for _, c := range s.calls {
				cs := summaries[c.fn]
				if cs == nil || !cs.blocks {
					continue
				}
				m := map[string]bool{}
				for id := range c.released {
					m[id] = true
				}
				for id := range cs.releaseFirst {
					m[id] = true
				}
				contribs = append(contribs, m)
			}
			blocks := len(contribs) > 0
			rf := intersect(contribs)
			if blocks != s.blocks || !sameSet(rf, s.releaseFirst) {
				s.blocks = blocks
				s.releaseFirst = rf
				changed = true
			}
		}
	}

	// Phase C: findings. Blocking-under-mutex first.
	if !excluded {
		for _, s := range order {
			for _, p := range s.points {
				for _, h := range p.held {
					if p.released[h.id] {
						continue
					}
					pass.Reportf(p.pos, "%s while holding %s (acquired at %s); release the mutex around blocking work",
						p.desc, h.id, pass.Fset.Position(h.pos))
				}
			}
			for _, c := range s.calls {
				cs := summaries[c.fn]
				if cs == nil || !cs.blocks {
					continue
				}
				for _, h := range c.held {
					if c.released[h.id] || cs.releaseFirst[h.id] {
						continue
					}
					pass.Reportf(c.pos, "call to %s may block while holding %s (acquired at %s); release the mutex around blocking work",
						c.fn.Name(), h.id, pass.Fset.Position(h.pos))
				}
			}
		}
	}

	// Acquisition-order edges: direct edges plus call-site edges through
	// callee summaries, then report every edge inside a cycle.
	var edges []edge
	for _, s := range order {
		edges = append(edges, s.edges...)
		for _, c := range s.calls {
			cs := summaries[c.fn]
			if cs == nil {
				continue
			}
			for _, h := range c.held {
				for id := range cs.acquires {
					if id != h.id {
						edges = append(edges, edge{from: h.id, to: id, pos: c.pos})
					}
				}
			}
		}
	}
	reportCycles(pass, edges)
	return nil
}

// intersect returns the intersection of the sets; the intersection of
// nothing is the empty set.
func intersect(sets []map[string]bool) map[string]bool {
	out := map[string]bool{}
	if len(sets) == 0 {
		return out
	}
	for id := range sets[0] {
		in := true
		for _, s := range sets[1:] {
			if !s[id] {
				in = false
				break
			}
		}
		if in {
			out[id] = true
		}
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// reportCycles finds the strongly connected components of the
// acquisition graph and reports every edge that stays inside one — the
// edges whose orders can deadlock against each other.
func reportCycles(pass *framework.Pass, edges []edge) {
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	// Tarjan's SCC.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, to := range adj[v] {
			if _, seen := index[to]; !seen {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp[u] = ncomp
				if u == v {
					break
				}
			}
			ncomp++
		}
	}
	nodes := make([]string, 0, len(adj))
	for v := range adj {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	// Self-edges (L→L) cannot occur — the walker reports direct
	// re-acquisition separately and call-site edges skip the held lock —
	// so an in-component edge always means a genuine multi-lock cycle.
	type key struct{ from, to string }
	seen := map[key]bool{}
	var found []edge
	for _, e := range edges {
		cf, okf := comp[e.from]
		ct, okt := comp[e.to]
		if !okf || !okt || cf != ct || seen[key{e.from, e.to}] {
			continue
		}
		seen[key{e.from, e.to}] = true
		found = append(found, e)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, e := range found {
		pass.Reportf(e.pos, "lock order cycle: %s is acquired while holding %s, and the reverse order also occurs; pick one order",
			e.to, e.from)
	}
}
