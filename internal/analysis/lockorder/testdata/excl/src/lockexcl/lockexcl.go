// Package lockexcl is walked under a policy that excludes it from the
// blocking check: holding the mutex across file I/O is this package's
// job (the WAL pattern). Acquisition-order cycles still report.
package lockexcl

import (
	"sync"
	"time"
)

type journal struct{ mu sync.Mutex }

// appendFrame blocks under the mutex — excluded, so clean.
func (j *journal) appendFrame() {
	j.mu.Lock()
	defer j.mu.Unlock()
	time.Sleep(time.Millisecond)
}

type p struct{ mu sync.Mutex }

type q struct{ mu sync.Mutex }

// Cycles are never excluded.
func pq(x *p, y *q) {
	x.mu.Lock()
	y.mu.Lock() // want `lock order cycle: q\.mu is acquired while holding p\.mu`
	y.mu.Unlock()
	x.mu.Unlock()
}

func qp(x *p, y *q) {
	y.mu.Lock()
	x.mu.Lock() // want `lock order cycle: p\.mu is acquired while holding q\.mu`
	x.mu.Unlock()
	y.mu.Unlock()
}
