// Package lockfix exercises lockorder: acquisition-order cycles,
// blocking constructs under held mutexes, and the unlock-around-
// blocking idiom that must stay clean.
package lockfix

import (
	"os"
	"sync"
	"time"
)

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// ab and ba acquire the same pair in opposite orders: both inner
// acquisitions are edges of a cycle.
func ab(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `lock order cycle: b\.mu is acquired while holding a\.mu`
	y.mu.Unlock()
	x.mu.Unlock()
}

func ba(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock() // want `lock order cycle: a\.mu is acquired while holding b\.mu`
	x.mu.Unlock()
	y.mu.Unlock()
}

type node struct {
	mu   sync.Mutex
	wake chan struct{}
	f    *os.File
	wg   sync.WaitGroup
}

func (n *node) blockingUnderLock() {
	n.mu.Lock()
	<-n.wake                     // want `channel receive while holding node\.mu`
	time.Sleep(time.Millisecond) // want `call to time\.Sleep while holding node\.mu`
	_ = n.f.Sync()               // want `call to \(\*os\.File\)\.Sync while holding node\.mu`
	n.wg.Wait()                  // want `call to \(\*sync\.WaitGroup\)\.Wait while holding node\.mu`
	n.wake <- struct{}{}         // want `channel send while holding node\.mu`
	n.mu.Unlock()
}

func (n *node) selectUnderLock() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want `select with no default while holding node\.mu`
	case <-n.wake:
	}
}

// selectWithDefault never parks: a guarded poll under a mutex is fine.
func (n *node) selectWithDefault() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case <-n.wake:
	default:
	}
}

// unlockAround releases before blocking: clean.
func (n *node) unlockAround() {
	n.mu.Lock()
	n.mu.Unlock()
	<-n.wake
	n.mu.Lock()
	n.mu.Unlock()
}

// awaitLocked is the repository idiom: called with n.mu held, releases
// it around the wait, reacquires before returning.
func (n *node) awaitLocked() {
	n.mu.Unlock()
	<-n.wake
	n.mu.Lock()
}

// callerOfAwait holds n.mu across the call, but awaitLocked releases it
// first — clean.
func (n *node) callerOfAwait() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.awaitLocked()
}

// sleeper blocks without releasing anything.
func (n *node) sleeper() {
	time.Sleep(time.Millisecond)
}

// callerOfSleeper holds the mutex across a transitively blocking call.
func (n *node) callerOfSleeper() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sleeper() // want `call to sleeper may block while holding node\.mu`
}

// goroutineEscapes: the go body is a fresh scope, so blocking there is
// not blocking under the caller's mutex.
func (n *node) goroutineEscapes() {
	n.mu.Lock()
	defer n.mu.Unlock()
	go func() {
		<-n.wake
	}()
}

func (n *node) reacquire() {
	n.mu.Lock()
	n.mu.Lock() // want `node\.mu is acquired while already held`
	n.mu.Unlock()
}

// consistentPair always locks a then b: no cycle between themselves.
type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

func cdOne(x *c, y *d) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func cdTwo(x *c, y *d) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
