package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"plsh/internal/analysis/framework"
)

// state is the lock context at one program point: the mutexes held and
// the ambient (caller-held) mutexes released so far.
type state struct {
	held     map[string]token.Pos
	released map[string]bool
}

func newState() *state {
	return &state{held: map[string]token.Pos{}, released: map[string]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for id, pos := range s.held {
		c.held[id] = pos
	}
	for id := range s.released {
		c.released[id] = true
	}
	return c
}

func (s *state) heldLocks() []heldLock {
	out := make([]heldLock, 0, len(s.held))
	for id, pos := range s.held {
		out = append(out, heldLock{id: id, pos: pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (s *state) releasedSet() map[string]bool {
	out := map[string]bool{}
	for id := range s.released {
		out[id] = true
	}
	return out
}

// merge combines the fall-through states of sibling branches: a mutex
// is held only if every branch holds it; an ambient release survives
// only if every branch performed it. Both are the conservative choice
// for the blocking check (fewer mutexes presumed released).
func merge(states []*state) *state {
	if len(states) == 0 {
		return newState()
	}
	out := states[0].clone()
	for _, s := range states[1:] {
		for id := range out.held {
			if _, ok := s.held[id]; !ok {
				delete(out.held, id)
			}
		}
		for id := range out.released {
			if !s.released[id] {
				delete(out.released, id)
			}
		}
	}
	return out
}

// walker walks one function body, recording blocking points, calls,
// acquisitions, and order edges into w.cur.
type walker struct {
	pass     *framework.Pass
	policy   Policy
	cur      *summary
	funcName string
}

// walkStmts walks a statement list from st and returns the fall-through
// state, or nil if the list always terminates (return/branch).
func (w *walker) walkStmts(stmts []ast.Stmt, st *state) *state {
	for _, stmt := range stmts {
		st = w.walkStmt(stmt, st)
		if st == nil {
			return nil
		}
	}
	return st
}

func (w *walker) walkStmt(stmt ast.Stmt, st *state) *state {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockCall(call, st, false) {
			return st
		}
		w.scanExpr(s.X, st)
		return st
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held to function end; the
		// deferred call itself runs after the body, so it is not a
		// blocking point of this walk.
		w.deferUnlock(s.Call, st)
		return st
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
		w.block(s.Arrow, "channel send", st)
		return st
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, st)
		}
		return st
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, st)
					}
				}
			}
		}
		return st
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
		return st
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, st)
		}
		return nil
	case *ast.BranchStmt:
		// break/continue/goto leave the statement list; treating them as
		// terminal keeps the fall-through state honest for the common
		// "if cond { break }" shape.
		return nil
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		w.scanExpr(s.Cond, st)
		var arms []*state
		if out := w.walkStmts(s.Body.List, st.clone()); out != nil {
			arms = append(arms, out)
		}
		if s.Else != nil {
			if out := w.walkStmt(s.Else, st.clone()); out != nil {
				arms = append(arms, out)
			}
		} else {
			arms = append(arms, st.clone())
		}
		if len(arms) == 0 {
			return nil
		}
		return merge(arms)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		w.walkStmts(s.Body.List, st.clone())
		// The loop body's lock effects are assumed balanced per
		// iteration (the unlock/relock idiom); fall through with the
		// entry state. An infinite loop still falls through here, which
		// only errs toward checking more code.
		return st
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		w.walkStmts(s.Body.List, st.clone())
		return st
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
			if st == nil {
				return nil
			}
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, st)
				}
				w.walkStmts(cc.Body, st.clone())
			}
		}
		return st
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
		return st
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.block(s.Select, "select with no default", st)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				// The comm ops are the select's own machinery — already
				// accounted for above — so only the clause bodies walk.
				w.walkStmts(cc.Body, st.clone())
			}
		}
		return st
	case *ast.GoStmt:
		// A new goroutine starts with no locks held; its body is walked
		// as an independent scope.
		w.walkFreshScope(s.Call)
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, st)
		}
		return st
	default:
		return st
	}
}

// block records a blocking construct at pos in context st.
func (w *walker) block(pos token.Pos, desc string, st *state) {
	w.cur.points = append(w.cur.points, blockPoint{
		pos:      pos,
		desc:     desc,
		held:     st.heldLocks(),
		released: st.releasedSet(),
	})
}

// lockCall handles mu.Lock/RLock/Unlock/RUnlock statements. It reports
// direct re-acquisition and records order edges. Returns true when the
// call was a mutex operation.
func (w *walker) lockCall(call *ast.CallExpr, st *state, deferred bool) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	method := sel.Sel.Name
	if method != "Lock" && method != "RLock" && method != "Unlock" && method != "RUnlock" {
		return false
	}
	if !isMutex(w.pass.TypeOf(sel.X)) {
		return false
	}
	id := w.lockID(sel.X)
	switch method {
	case "Lock", "RLock":
		if _, held := st.held[id]; held && method == "Lock" {
			w.pass.Reportf(call.Pos(), "%s is acquired while already held; this deadlocks", id)
			return true
		}
		for h, hpos := range st.held {
			if h != id {
				w.cur.edges = append(w.cur.edges, edge{from: h, to: id, pos: call.Pos()})
				_ = hpos
			}
		}
		st.held[id] = call.Pos()
		delete(st.released, id)
		w.cur.acquiresDirect[id] = true
	case "Unlock", "RUnlock":
		if _, held := st.held[id]; held {
			delete(st.held, id)
		} else if !deferred {
			// Unlocking a mutex this function never locked: the caller
			// holds it — the unlock-around-blocking idiom.
			st.released[id] = true
		}
	}
	return true
}

// deferUnlock handles "defer mu.Unlock()" (directly or via a literal
// closure): the mutex stays held for the rest of the walk.
func (w *walker) deferUnlock(call *ast.CallExpr, st *state) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkFreshScope(nil)
		_ = lit
		return
	}
	// A deferred Lock would be bizarre; only Unlock/RUnlock matter, and
	// they keep the held entry in place (released at return).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock") && isMutex(w.pass.TypeOf(sel.X)) {
			return
		}
	}
	w.scanExpr(call, st)
}

// walkFreshScope walks a function literal (a go body or deferred
// closure) as its own goroutine scope: empty held set, findings and
// edges still collected.
func (w *walker) walkFreshScope(call *ast.CallExpr) {
	if call == nil {
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkStmts(lit.Body.List, newState())
	}
}

// scanExpr scans an expression for blocking constructs (channel
// receives, blocking callees, same-package calls) in context st.
// Function literals inside the expression are walked as fresh scopes.
func (w *walker) scanExpr(expr ast.Expr, st *state) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(e.Body.List, newState())
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				w.block(e.OpPos, "channel receive", st)
			}
		case *ast.CallExpr:
			w.classifyCall(e, st)
		}
		return true
	})
}

// classifyCall records a call as blocking (policy match) or as a
// same-package callee reference for the fixpoint.
func (w *walker) classifyCall(call *ast.CallExpr, st *state) {
	fn := calleeFunc(w.pass, call)
	if fn == nil {
		return
	}
	full := fn.FullName()
	exempt := false
	for _, nb := range w.policy.NonBlocking {
		if full == nb {
			exempt = true
		}
	}
	if !exempt {
		for _, b := range w.policy.Blocking {
			if full == b || (strings.HasSuffix(b, ".*") && strings.HasPrefix(full, strings.TrimSuffix(b, "*"))) {
				w.block(call.Pos(), "call to "+full, st)
				return
			}
		}
	}
	if fn.Pkg() == w.pass.Pkg && fn.Name() != w.funcName {
		w.cur.calls = append(w.cur.calls, calleeCall{
			fn:       fn,
			pos:      call.Pos(),
			held:     st.heldLocks(),
			released: st.releasedSet(),
		})
	}
}

// calleeFunc resolves the called function object, or nil.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.ObjectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := pass.ObjectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isMutex reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockID names a mutex expression stably: Type.field for struct-field
// mutexes, pkg.var for package-level ones, func:var for locals.
func (w *walker) lockID(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		base := w.pass.TypeOf(e.X)
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if named, ok := base.(*types.Named); ok {
			return named.Obj().Name() + "." + e.Sel.Name
		}
		return types.ExprString(expr)
	case *ast.Ident:
		if obj := w.pass.ObjectOf(e); obj != nil {
			if obj.Parent() == w.pass.Pkg.Scope() {
				return w.pass.Pkg.Name() + "." + e.Name
			}
			return w.funcName + ":" + e.Name
		}
		return e.Name
	default:
		return types.ExprString(expr)
	}
}
