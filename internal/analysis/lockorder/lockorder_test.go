package lockorder

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
)

func TestLockorder(t *testing.T) {
	testutil.Run(t, "testdata", Analyzer)
}

// TestExcludedPackage proves ExcludeBlocking switches off only the
// blocking check: the excluded fixture blocks under its mutex freely
// but still reports its acquisition-order cycle.
func TestExcludedPackage(t *testing.T) {
	a := New(Policy{
		Blocking:        DefaultPolicy.Blocking,
		ExcludeBlocking: []string{"lockexcl"},
	})
	testutil.Run(t, "testdata/excl", a)
}
