// The selfcheck is the suite's own tier-1 gate: the eight analyzers run
// over the entire repository must be silent. It is the same run
// scripts/vet.sh performs in CI, so a violation — a new pool without a
// classification, a leaked batch, a minted context, a wire-protocol
// edit that disagrees with the lock, a direct snapshot read, a write to
// a published snapshot, a blocking call under a hot-path mutex, an
// insert path that skips its journal append — fails `go test ./...`
// locally before it ever reaches a reviewer. Stale suppressions fail it
// too: an //plshvet:ignore that no longer matches a finding is itself a
// finding.
package analysis_test

import (
	"testing"

	"plsh/internal/analysis/atomicsnap"
	"plsh/internal/analysis/ctxcheck"
	"plsh/internal/analysis/framework"
	"plsh/internal/analysis/lockorder"
	"plsh/internal/analysis/poolzero"
	"plsh/internal/analysis/releasecheck"
	"plsh/internal/analysis/snapfreeze"
	"plsh/internal/analysis/walorder"
	"plsh/internal/analysis/wireop"
)

func TestRepoIsClean(t *testing.T) {
	pkgs, err := framework.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the repo sweep is not covering the tree", len(pkgs))
	}
	findings, err := framework.Run(pkgs, []*framework.Analyzer{
		atomicsnap.Analyzer,
		ctxcheck.Analyzer,
		lockorder.Analyzer,
		poolzero.Analyzer,
		releasecheck.Analyzer,
		snapfreeze.Analyzer,
		walorder.Analyzer,
		wireop.Analyzer,
	})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
