package poolzero_test

import (
	"testing"

	"plsh/internal/analysis/framework/testutil"
	"plsh/internal/analysis/poolzero"
)

func TestPoolzero(t *testing.T) {
	testutil.Run(t, "testdata", poolzero.Analyzer)
}
