// Package poolzero enforces the PR 6 pooling invariant: every pooled
// struct is classified, and structs classified as frames are zeroed
// before they return to their sync.Pool.
//
// Classification is a directive in the pooled struct's doc comment:
//
//	//plshvet:frame
//	    The struct ferries request/response or cross-request data
//	    (transport frames, broadcast scratch, merge state). Every
//	    reference-carrying field — pointer, interface, map, chan, func,
//	    or slice — must be visibly sanitized in the function that calls
//	    Put: a wholesale `*x = T{}`, a nil/zero assignment, an
//	    element-clearing loop, or a `[:0]` truncation (which asserts
//	    the retained capacity is owned scratch, not foreign memory).
//	//plshvet:scratch <reason>
//	    The struct is an owned workspace (query workspaces, router
//	    scratch): it never holds caller or peer memory past a call, so
//	    retaining its allocations is the point of pooling it. The
//	    mandatory reason documents why that is true.
//
// A sync.Pool.Put of a pointer to an unclassified struct is itself a
// finding, so every new pool must declare which contract it lives
// under. The check is a convention enforcer, not a dataflow prover: it
// demands that sanitization of each hazardous field is present in the
// putting function, which is exactly the invariant a reviewer otherwise
// checks by eye — and the invariant whose single missed field is a
// silent cross-request data-aliasing bug (gob decodes into retained
// capacity; released answer buffers get overwritten mid-read).
package poolzero

import (
	"go/ast"
	"go/types"

	"plsh/internal/analysis/framework"
)

// Analyzer is the package-level instance plsh-vet registers.
var Analyzer = &framework.Analyzer{
	Name: "poolzero",
	Doc: "pooled structs must be classified //plshvet:frame or //plshvet:scratch, and every " +
		"reference-carrying field of a frame must be zeroed in the function that calls sync.Pool.Put",
	Run: run,
}

func run(pass *framework.Pass) error {
	decls := framework.CollectTypeSpecs(pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok && isPoolPut(pass, call) && len(call.Args) == 1 {
					checkPut(pass, decls, fd, call)
				}
				return true
			})
		}
	}
	return nil
}

// isPoolPut reports whether call is (*sync.Pool).Put.
func isPoolPut(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.FullName() == "(*sync.Pool).Put"
}

// checkPut validates one Put call site.
func checkPut(pass *framework.Pass, decls map[string]*framework.TypeDecl, fd *ast.FuncDecl, call *ast.CallExpr) {
	arg := call.Args[0]
	ptr, ok := pass.TypeOf(arg).(*types.Pointer)
	if !ok {
		return // pooled channels and slice headers are out of scope
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if named.Obj().Pkg() != pass.Pkg {
		pass.Reportf(call.Pos(),
			"pooled struct %s is declared in package %s; classify it there with //plshvet:frame or //plshvet:scratch",
			named.Obj().Name(), named.Obj().Pkg().Path())
		return
	}
	name := named.Obj().Name()
	if d := framework.TypeDirective(decls, name, "scratch"); d != nil {
		if d.Args == "" {
			pass.Reportf(call.Pos(), "//plshvet:scratch on %s needs a reason: why is retaining its allocations safe?", name)
		}
		return
	}
	if framework.TypeDirective(decls, name, "frame") == nil {
		pass.Reportf(call.Pos(),
			"pooled struct %s is unclassified; add //plshvet:frame (zeroed at Put) or "+
				"//plshvet:scratch <reason> (owned workspace) to its doc comment", name)
		return
	}
	// Frame: every hazardous field needs sanitization evidence in fd.
	argIdent, ok := arg.(*ast.Ident)
	if !ok {
		pass.Reportf(call.Pos(),
			"frame Put argument must be a plain variable so zeroing is checkable; got %T", arg)
		return
	}
	obj := pass.ObjectOf(argIdent)
	ev := collectEvidence(pass, fd, obj, named)
	if ev.wholesale {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !hazardous(fld.Type()) {
			continue
		}
		if !ev.fields[fld.Name()] {
			pass.Reportf(call.Pos(),
				"frame %s returns to its pool with field %s (%s) not sanitized in %s; "+
					"nil it, clear its elements, or truncate owned scratch with [:0] before Put",
				name, fld.Name(), types.TypeString(fld.Type(), types.RelativeTo(pass.Pkg)), fd.Name.Name)
		}
	}
}

// hazardous reports whether a field of type t can carry heap references
// into the pool: pointers, interfaces, maps, chans, funcs, slices, and
// aggregates containing them. Strings are immutable and safe.
func hazardous(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature, *types.Slice:
		return true
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if hazardous(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return hazardous(t.Elem())
	}
	return false
}

// evidence records which fields of the pooled value the putting
// function sanitizes.
type evidence struct {
	wholesale bool
	fields    map[string]bool
}

// collectEvidence scans the whole enclosing function (closures
// included — Put is often inside a defer) for sanitization of obj's
// fields:
//
//	*x = T{}                      wholesale zero
//	x.F = nil / T{} / x.F[:0]     direct field zero or truncation
//	alias := x.F / x.F[:n]        then alias[i] = nil / zero / [:0]
//	clear(x.F) / clear(alias)     builtin clear
//
// Writes through an alias's elements land in the field's backing array,
// so they count; rebinding the alias itself does not.
func collectEvidence(pass *framework.Pass, fd *ast.FuncDecl, obj types.Object, named *types.Named) evidence {
	ev := evidence{fields: map[string]bool{}}
	if obj == nil {
		return ev
	}
	// aliases maps a local variable object to the field name whose
	// backing it shares.
	aliases := map[types.Object]string{}
	// fieldOf resolves an expression to the pooled field it reaches:
	// x.F, x.F[i], alias, alias[i][j], alias[:n]...
	var fieldOf func(e ast.Expr) (string, bool)
	fieldOf = func(e ast.Expr) (string, bool) {
		switch e := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				return e.Sel.Name, true
			}
		case *ast.Ident:
			if f, ok := aliases[pass.ObjectOf(e)]; ok {
				return f, true
			}
		case *ast.IndexExpr:
			return fieldOf(e.X)
		case *ast.SliceExpr:
			return fieldOf(e.X)
		case *ast.ParenExpr:
			return fieldOf(e.X)
		}
		return "", false
	}
	isZero := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			return e.Name == "nil"
		case *ast.CompositeLit:
			return len(e.Elts) == 0
		}
		return false
	}
	// isTruncation: X[:0] or append(X[:0], ...).
	var isTruncation func(e ast.Expr) bool
	isTruncation = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.SliceExpr:
			if bl, ok := e.High.(*ast.BasicLit); ok && bl.Value == "0" {
				return true
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
				return isTruncation(e.Args[0])
			}
		}
		return false
	}
	// Two passes: aliases first (they may be declared after first use
	// in source order only in pathological code; one pre-pass is
	// enough for straight-line declarations).
	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := as.Rhs[i]
			if se, ok := rhs.(*ast.SliceExpr); ok {
				rhs = se.X
			}
			if sel, ok := rhs.(*ast.SelectorExpr); ok {
				if base, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(base) == obj {
					if o := pass.ObjectOf(id); o != nil {
						aliases[o] = sel.Sel.Name
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				} else {
					continue
				}
				// Wholesale: *x = T{}.
				if star, ok := lhs.(*ast.StarExpr); ok {
					if id, ok := star.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj && isZero(rhs) {
						ev.wholesale = true
						continue
					}
				}
				// A bare alias rebind (alias = ...) touches the local,
				// not the field; field writes go through a selector or
				// an index/slice path.
				if id, ok := lhs.(*ast.Ident); ok {
					if _, isAlias := aliases[pass.ObjectOf(id)]; isAlias {
						continue
					}
				}
				if f, ok := fieldOf(lhs); ok && (isZero(rhs) || isTruncation(rhs)) {
					ev.fields[f] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "clear" && len(n.Args) == 1 {
				if f, ok := fieldOf(n.Args[0]); ok {
					ev.fields[f] = true
				}
			}
		}
		return true
	})
	return ev
}
