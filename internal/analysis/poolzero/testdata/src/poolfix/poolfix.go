// Package poolfix seeds every poolzero case: unclassified pools,
// scratch with and without a reason, frames zeroed wholesale, per
// field, through aliases, and frames that leak a field.
package poolfix

import "sync"

type unclassified struct {
	buf []byte
}

// Exported is pooled by the poolother fixture package; the
// classification must live here, with the type.
type Exported struct {
	Buf []byte
}

var unclassifiedPool = sync.Pool{New: func() any { return new(unclassified) }}

func putUnclassified(u *unclassified) {
	unclassifiedPool.Put(u) // want `pooled struct unclassified is unclassified`
}

// goodScratch is an owned workspace.
//
//plshvet:scratch per-call accumulator buffers, never hold caller memory
type goodScratch struct {
	acc []int
}

var goodScratchPool = sync.Pool{New: func() any { return new(goodScratch) }}

func putGoodScratch(s *goodScratch) {
	goodScratchPool.Put(s)
}

// badScratch claims to be a workspace but does not say why.
//
//plshvet:scratch
type badScratch struct {
	acc []int
}

var badScratchPool = sync.Pool{New: func() any { return new(badScratch) }}

func putBadScratch(s *badScratch) {
	badScratchPool.Put(s) // want `needs a reason`
}

// wholeFrame is zeroed wholesale before Put.
//
//plshvet:frame
type wholeFrame struct {
	payload []byte
	next    *wholeFrame
}

var wholeFramePool = sync.Pool{New: func() any { return new(wholeFrame) }}

func putWholeFrame(f *wholeFrame) {
	*f = wholeFrame{}
	wholeFramePool.Put(f)
}

// fieldFrame is sanitized field by field: a nil assignment, a [:0]
// truncation, an append-truncation, an element clear through an alias,
// and a builtin clear. The int field needs no evidence.
//
//plshvet:frame
type fieldFrame struct {
	next    *fieldFrame
	owned   []int
	grown   []byte
	answers [][]int
	index   map[int]int
	n       int
}

var fieldFramePool = sync.Pool{New: func() any { return new(fieldFrame) }}

func putFieldFrame(f *fieldFrame) {
	f.next = nil
	f.owned = f.owned[:0]
	f.grown = append(f.grown[:0], 0)
	answers := f.answers[:2]
	for i := range answers {
		answers[i] = nil
	}
	clear(f.index)
	f.n = 0
	fieldFramePool.Put(f)
}

// leakyFrame forgets one of its two hazardous fields.
//
//plshvet:frame
type leakyFrame struct {
	payload []byte
	refs    []*int
}

var leakyFramePool = sync.Pool{New: func() any { return new(leakyFrame) }}

func putLeakyFrame(f *leakyFrame) {
	f.payload = f.payload[:0]
	leakyFramePool.Put(f) // want `field refs \(\[\]\*int\) not sanitized`
}

// deferFrame is sanitized and pooled inside a defer; evidence in the
// enclosing function counts.
//
//plshvet:frame
type deferFrame struct {
	payload []byte
}

var deferFramePool = sync.Pool{New: func() any { return new(deferFrame) }}

func useDeferFrame() {
	f := deferFramePool.Get().(*deferFrame)
	defer func() {
		f.payload = nil
		deferFramePool.Put(f)
	}()
	_ = f.payload
}

// exprFrame is pooled through an expression, which hides the variable
// from the zeroing check.
//
//plshvet:frame
type exprFrame struct {
	payload []byte
}

type exprHolder struct{ f *exprFrame }

var exprFramePool = sync.Pool{New: func() any { return new(exprFrame) }}

func putExprFrame(h exprHolder) {
	exprFramePool.Put(h.f) // want `must be a plain variable`
}
