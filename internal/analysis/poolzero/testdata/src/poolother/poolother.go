// Package poolother pools a struct it does not own: the classification
// directive lives with the type, so the Put site is reported.
package poolother

import (
	"sync"

	"poolfix"
)

var foreignPool = sync.Pool{New: func() any { return new(poolfix.Exported) }}

func putForeign(e *poolfix.Exported) {
	foreignPool.Put(e) // want `declared in package poolfix; classify it there`
}
