package perfmodel

import (
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
)

func testWorkload(t *testing.T, nDocs int) (Workload, *corpus.Collection) {
	t.Helper()
	cfg := corpus.Twitter(nDocs, 2000, 7)
	cfg.NearDupRate = 0.2
	c := corpus.Generate(cfg)
	return SampleWorkload(c.Mat, 50, 200, 11), c
}

func TestCalibratePositive(t *testing.T) {
	c := Calibrate(2000, 7.2, 1)
	for name, v := range map[string]float64{
		"CollisionNS":   c.CollisionNS,
		"ScanNSPerWord": c.ScanNSPerWord,
		"TableProbeNS":  c.TableProbeNS,
		"UniqueNS":      c.UniqueNS,
		"HashNS":        c.HashNS,
		"PartitionNS":   c.PartitionNS,
		"GatherNS":      c.GatherNS,
	} {
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
		if v > 1e5 {
			t.Errorf("%s = %v ns, implausibly large", name, v)
		}
	}
	// Sanity ordering: a masked dot over a whole document costs more than
	// marking one bit.
	if c.UniqueNS < c.CollisionNS {
		t.Errorf("UniqueNS %v < CollisionNS %v", c.UniqueNS, c.CollisionNS)
	}
}

func TestSampleWorkloadShape(t *testing.T) {
	w, _ := testWorkload(t, 500)
	if w.N != 500 {
		t.Fatalf("N = %d", w.N)
	}
	if len(w.Dists) != 50*200 {
		t.Fatalf("samples = %d", len(w.Dists))
	}
	if w.MeanNNZ < 3 || w.MeanNNZ > 10 {
		t.Fatalf("MeanNNZ = %v", w.MeanNNZ)
	}
	for _, d := range w.Dists {
		if d < 0 || d > 3.1416 {
			t.Fatalf("distance %v out of range", d)
		}
	}
}

func TestSampleWorkloadEmpty(t *testing.T) {
	w := SampleWorkload(corpus.Generate(corpus.Twitter(1, 100, 1)).Mat, 0, 0, 1)
	if w.ExpCollisions(8, 6) != 0 || w.ExpUnique(8, 6) != 0 {
		t.Fatal("empty sample should estimate zero")
	}
}

func TestExpectationMonotonicity(t *testing.T) {
	w, _ := testWorkload(t, 800)
	// More tables (larger m) → more collisions and more unique candidates.
	if w.ExpCollisions(8, 10) <= w.ExpCollisions(8, 5) {
		t.Error("ExpCollisions not increasing in m")
	}
	if w.ExpUnique(8, 10) <= w.ExpUnique(8, 5) {
		t.Error("ExpUnique not increasing in m")
	}
	// Longer keys (larger k) → fewer collisions.
	if w.ExpCollisions(12, 8) >= w.ExpCollisions(6, 8) {
		t.Error("ExpCollisions not decreasing in k")
	}
	// Unique ≤ collisions (each unique point collides ≥ once), and unique
	// ≤ N.
	if u, c := w.ExpUnique(8, 8), w.ExpCollisions(8, 8); u > c {
		t.Errorf("E[unique] %v > E[collisions] %v", u, c)
	}
	if u := w.ExpUnique(8, 8); u > float64(w.N) {
		t.Errorf("E[unique] %v > N %d", u, w.N)
	}
}

// The headline claim of §7: predicted E[#collisions] and E[#unique] match
// the measured work counts of the real engine. Sampling error bounds are
// loose but the estimates must land within ~35% on a self-sampled corpus.
func TestModelPredictsEngineWork(t *testing.T) {
	w, c := testWorkload(t, 1500)
	p := lshhash.Params{Dim: 2000, K: 8, M: 8, Seed: 42}
	fam, err := lshhash.NewFamily(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(fam, c.Mat, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(st, c.Mat, core.QueryDefaults())
	queries := c.SampleQueries(200, 31)
	_, stats := eng.QueryBatchStats(queries)
	var collisions, unique float64
	for _, s := range stats {
		collisions += float64(s.Collisions)
		unique += float64(s.Unique)
	}
	collisions /= float64(len(stats))
	unique /= float64(len(stats))

	estColl := w.ExpCollisions(p.K, p.M)
	estUniq := w.ExpUnique(p.K, p.M)
	if e := RelativeError(estColl, collisions); e > 0.35 {
		t.Errorf("collision estimate %.1f vs measured %.1f (err %.0f%%)", estColl, collisions, e*100)
	}
	if e := RelativeError(estUniq, unique); e > 0.35 {
		t.Errorf("unique estimate %.1f vs measured %.1f (err %.0f%%)", estUniq, unique, e*100)
	}
}

func TestEstimatesScaleWithN(t *testing.T) {
	w, _ := testWorkload(t, 600)
	small := Costs{CollisionNS: 1, ScanNSPerWord: 1, UniqueNS: 10, HashNS: 1, PartitionNS: 1, GatherNS: 1}
	e1 := small.EstimateQuery(w, 8, 8)
	w.N *= 10
	e10 := small.EstimateQuery(w, 8, 8)
	if e10.TotalNS < 5*e1.TotalNS {
		t.Errorf("estimate did not scale with N: %v vs %v", e1.TotalNS, e10.TotalNS)
	}
	b1 := small.EstimateBuild(w, 8, 8)
	if b1.TotalNS != b1.HashNS+b1.I1NS+b1.I2NS+b1.I3NS {
		t.Error("build estimate total != sum of phases")
	}
}

func TestSelectRespectsConstraints(t *testing.T) {
	w, _ := testWorkload(t, 1000)
	costs := Calibrate(2000, w.MeanNNZ, 3)
	const radius, delta = 0.9, 0.1
	choice, err := Select(costs, w, radius, delta, 16, 64, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if lshhash.RetrievalProb(radius, choice.K, choice.M) < 1-delta {
		t.Fatalf("choice (%d,%d) violates recall constraint", choice.K, choice.M)
	}
	if choice.L != choice.M*(choice.M-1)/2 {
		t.Fatalf("L inconsistent: %+v", choice)
	}
	wantMem := (int64(choice.L)*int64(w.N) + int64(choice.L)<<uint(choice.K)) * 4
	if choice.MemoryBytes != wantMem {
		t.Fatalf("memory accounting: %d vs %d", choice.MemoryBytes, wantMem)
	}
}

func TestSelectMemoryBudgetBinds(t *testing.T) {
	w, _ := testWorkload(t, 1000)
	costs := Costs{CollisionNS: 1, ScanNSPerWord: 1, UniqueNS: 10, HashNS: 1, PartitionNS: 1, GatherNS: 1}
	loose, err := Select(costs, w, 0.9, 0.1, 16, 64, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Select(costs, w, 0.9, 0.1, 16, 64, loose.MemoryBytes/2)
	if err != nil {
		// A budget too tight for any choice is a legitimate outcome.
		return
	}
	if tight.MemoryBytes > loose.MemoryBytes/2 {
		t.Fatalf("budget violated: %d > %d", tight.MemoryBytes, loose.MemoryBytes/2)
	}
}

func TestSelectInfeasible(t *testing.T) {
	w, _ := testWorkload(t, 100)
	costs := Costs{CollisionNS: 1, ScanNSPerWord: 1, UniqueNS: 1, HashNS: 1, PartitionNS: 1, GatherNS: 1}
	if _, err := Select(costs, w, 0.9, 0.1, 16, 64, 1); err == nil {
		t.Fatal("1-byte budget should be infeasible")
	}
	if _, err := Select(costs, w, 0.9, 1e-9, 40, 3, 1<<40); err == nil {
		t.Fatal("impossible recall should be infeasible")
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(110, 100) != 0.1 {
		t.Fatal("RelativeError(110,100) != 0.1")
	}
	if got := RelativeError(90, 100); got < 0.0999 || got > 0.1001 {
		t.Fatalf("RelativeError(90,100) = %v", got)
	}
}
