package perfmodel

import (
	"time"

	"plsh/internal/bitvec"
	"plsh/internal/rng"
	"plsh/internal/sparse"
)

// CalibrationConfig sizes the microbenchmarks to the workload the model
// will predict. The paper derives its constants from hardware datasheets
// for its exact operating point (N=10.5M, 256 bytes of traffic per
// candidate, …); the equivalent here is measuring each primitive on
// working sets shaped like the target workload, so cache and fixed-cost
// behaviour match the real phases.
type CalibrationConfig struct {
	// Dim is the vector-space dimensionality.
	Dim int
	// MeanNNZ is the average non-zeros per document.
	MeanNNZ float64
	// N is the dataset size (sizes the dedup bitvector, the document
	// arena, and the sketch arrays the partition benchmarks walk).
	N int
	// K and M are the LSH parameters; they size the partition fan-outs,
	// the hyperplane slab, and the probe targets.
	K, M int
	// ZipfAlpha reproduces the corpus's word skew in the synthetic
	// calibration documents (hot hyperplane rows cache, §5.1.1); <= 1
	// means uniform.
	ZipfAlpha float64
	// Seed drives the synthetic inputs.
	Seed uint64
}

// DefaultCalibration fills a config from the core workload parameters.
func DefaultCalibration(dim int, meanNNZ float64, n, k, m int) CalibrationConfig {
	if n < 1024 {
		n = 1024
	}
	return CalibrationConfig{
		Dim:       dim,
		MeanNNZ:   meanNNZ,
		N:         n,
		K:         k,
		M:         m,
		ZipfAlpha: 1.07,
		Seed:      42,
	}
}

func (cc CalibrationConfig) numFuncs() int    { return cc.M * cc.K / 2 }
func (cc CalibrationConfig) halfBuckets() int { return 1 << uint(cc.K/2) }
func (cc CalibrationConfig) buckets() int     { return 1 << uint(cc.K) }

// wordDraw returns a word sampler matching the configured skew.
func (cc CalibrationConfig) wordDraw(src *rng.Source) func() uint32 {
	if cc.ZipfAlpha <= 1 {
		return func() uint32 { return uint32(src.Intn(cc.Dim)) }
	}
	z := rng.NewZipf(src.Split(), cc.ZipfAlpha, cc.Dim)
	perm := make([]int, cc.Dim)
	src.Split().Perm(perm)
	return func() uint32 { return uint32(perm[z.Next()]) }
}

func calDoc(draw func() uint32, src *rng.Source, nnz int) sparse.Vector {
	idx := make([]uint32, nnz)
	val := make([]float32, nnz)
	for i := range idx {
		idx[i] = draw()
		val[i] = float32(src.Float64() + 0.1)
	}
	v, _ := sparse.NewVector(idx, val)
	if !v.Normalize() {
		return calDoc(draw, src, nnz)
	}
	return v
}

// CalibrateFor measures the cost constants with workload-shaped
// microbenchmarks. Runtime is tens to hundreds of milliseconds depending
// on N.
func CalibrateFor(cc CalibrationConfig) Costs {
	src := rng.New(cc.Seed)
	draw := cc.wordDraw(src)
	var c Costs
	nnz := int(cc.MeanNNZ + 0.5)
	if nnz < 1 {
		nnz = 1
	}
	halfB := cc.halfBuckets()
	nFuncs := cc.numFuncs()
	L := cc.M * (cc.M - 1) / 2

	// --- Q2 variable part: mark a duplicated collision stream into an
	// N-sized bitvector (the real dedup target), then recycle it.
	{
		bv := bitvec.New(cc.N)
		hits := 1 << 13
		ids := make([]uint32, hits)
		for i := range ids {
			ids[i] = uint32(src.Intn(cc.N))
		}
		var cand []uint32
		t0 := time.Now()
		reps := 40
		for r := 0; r < reps; r++ {
			cand = cand[:0]
			for _, id := range ids {
				if bv.TestAndSet(int(id)) {
					cand = append(cand, id)
				}
			}
			bv.ResetList(cand)
		}
		c.CollisionNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*hits)
	}

	// --- Q2 fixed parts: the bitvector scan over N bits, and one bucket
	// probe per table. The probe bench allocates the real table count L of
	// 2^k-entry offset arrays and walks them in engine order (sequential
	// over tables, random key per table), so the working set and access
	// pattern match Step Q2's fixed cost.
	{
		bv := bitvec.New(cc.N)
		for i := 0; i < cc.N/512; i++ {
			bv.Set(src.Intn(cc.N))
		}
		var out []uint32
		t0 := time.Now()
		reps := 40
		for r := 0; r < reps; r++ {
			out = bv.AppendSet(out[:0])
		}
		c.ScanNSPerWord = float64(time.Since(t0).Nanoseconds()) / float64(reps*((cc.N+63)/64))

		tables := L
		if tables > 256 {
			tables = 256 // cap allocation; ≥ LLC-busting either way
		}
		offsets := make([][]uint32, tables)
		items := make([][]uint32, tables)
		for t := range offsets {
			offs := make([]uint32, cc.buckets()+1)
			var cum uint32
			for b := range offs {
				offs[b] = cum
				if (b+t)%16 == 0 {
					cum++ // sparse buckets, as at query time
				}
			}
			offsets[t] = offs
			items[t] = make([]uint32, cum+1)
		}
		queries := 64
		keys := make([]uint32, queries*tables)
		for i := range keys {
			keys[i] = uint32(src.Intn(cc.buckets()))
		}
		var sink uint32
		t0 = time.Now()
		reps = 10
		for r := 0; r < reps; r++ {
			ki := 0
			for q := 0; q < queries; q++ {
				for t := 0; t < tables; t++ {
					key := keys[ki]
					ki++
					lo, hi := offsets[t][key], offsets[t][key+1]
					for _, it := range items[t][lo:hi] {
						sink += it
					}
				}
			}
		}
		c.TableProbeNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*queries*tables)
		_ = sink
	}

	// --- Q3: masked sparse dot products over an N-row document arena, so
	// candidate loads miss caches exactly as the real Step Q3 does (the
	// paper: ~4 cache lines of traffic per candidate).
	{
		docs := cc.N
		mat := sparse.NewMatrix(cc.Dim, docs, docs*nnz)
		for i := 0; i < docs; i++ {
			mat.AppendRow(calDoc(draw, src, nnz))
		}
		q := calDoc(draw, src, nnz)
		mask := sparse.NewQueryMask(cc.Dim)
		mask.Scatter(q)
		probes := 1 << 13
		order := make([]int, probes)
		for i := range order {
			order[i] = src.Intn(docs)
		}
		var sink float64
		t0 := time.Now()
		reps := 10
		for r := 0; r < reps; r++ {
			for _, i := range order {
				idx, val := mat.Doc(i)
				sink += mask.Dot(idx, val)
			}
		}
		c.UniqueNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*probes)
		_ = sink
	}

	// --- Hashing: the slab kernel over a pool of Zipf-skewed documents
	// against the real-size plane, reproducing §5.1.1's cache behaviour
	// (hot words keep their hyperplane rows resident).
	{
		plane := make([]float32, cc.Dim*nFuncs)
		for i := range plane {
			plane[i] = float32(src.Norm())
		}
		poolSize := 4096
		pool := make([]sparse.Vector, poolSize)
		for i := range pool {
			pool[i] = calDoc(draw, src, nnz)
		}
		out := make([]float32, nFuncs)
		var totalNNZ int
		t0 := time.Now()
		reps := 3
		for r := 0; r < reps; r++ {
			for _, v := range pool {
				for j := range out {
					out[j] = 0
				}
				sparse.DotSparseDenseStride(v.Idx, v.Val, plane, nFuncs, nFuncs, out)
				totalNNZ += len(v.Idx)
			}
		}
		c.HashNS = float64(time.Since(t0).Nanoseconds()) / float64(totalNNZ*nFuncs)
	}

	// --- Construction passes, shaped like Steps I1–I3 at (N, k, m).
	{
		n := cc.N
		mW := cc.M
		sk := make([]uint32, n*mW)
		for i := range sk {
			sk[i] = uint32(src.Intn(halfB))
		}

		// I1: the histogram + prefix pass over sequential sketch reads
		// (the fused build's scatter is measured separately as I2).
		hist := make([]uint32, halfB+1)
		offs := make([]uint32, halfB+1)
		perm := make([]uint32, n)
		t0 := time.Now()
		reps := 4
		const col = 0 // both passes key on one column; skew is uniform
		for r := 0; r < reps; r++ {
			for i := range hist {
				hist[i] = 0
			}
			for i := 0; i < n; i++ {
				hist[sk[i*mW+col]]++
			}
			var cum uint32
			for b := 0; b < halfB; b++ {
				offs[b] = cum
				cc := hist[b]
				hist[b] = cum
				cum += cc
			}
			offs[halfB] = cum
		}
		c.PartitionNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*n)

		// I2: the fused first-level scatter — sequential sketch-row reads,
		// one perm write plus ~m/2 column writes per item into 2^(k/2)
		// partition streams.
		cols := make([][]uint32, mW)
		for j := range cols {
			cols[j] = make([]uint32, n)
		}
		writeCols := (mW + 1) / 2
		cursor := make([]uint32, halfB)
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			copy(cursor, offs[:halfB])
			for i := 0; i < n; i++ {
				row := sk[i*mW : i*mW+mW]
				p := row[col]
				dst := cursor[p]
				cursor[p]++
				perm[dst] = uint32(i)
				for j := 0; j < writeCols; j++ {
					cols[j][dst] = row[j]
				}
			}
		}
		c.GatherNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*n)

		// I3: the full second-level pass — per first-level partition, a
		// histogram reset, offsets fill, and scatter — so the 2^k fixed
		// costs are amortized exactly as in the real table build.
		itemsOut := make([]uint32, n)
		tblOffs := make([]uint32, cc.buckets()+1)
		keys2 := cols[0]
		// Synthetic first-level offsets: even segments.
		offs1 := make([]uint32, halfB+1)
		for p := 0; p <= halfB; p++ {
			offs1[p] = uint32(p * n / halfB)
		}
		t0 = time.Now()
		for r := 0; r < reps; r++ {
			secondLevelForCalibration(perm, keys2, offs1, hist, itemsOut, tblOffs, cc.K)
		}
		c.SecondLevelNS = float64(time.Since(t0).Nanoseconds()) / float64(reps*n)
	}
	return c
}

// secondLevelForCalibration mirrors core's second-level refinement pass,
// duplicated here so the calibration measures the same loop structure
// without exporting core internals.
func secondLevelForCalibration(perm1, keys2, offs1, hist, items, tblOffs []uint32, k int) {
	halfB := 1 << uint(k/2)
	half := uint(k / 2)
	for part := 0; part < halfB; part++ {
		segLo, segHi := offs1[part], offs1[part+1]
		seg := keys2[segLo:segHi]
		for i := range hist {
			hist[i] = 0
		}
		for _, k2 := range seg {
			hist[k2]++
		}
		cum := segLo
		base := uint32(part) << half
		for q := 0; q < halfB; q++ {
			tblOffs[base+uint32(q)] = cum
			c := hist[q]
			hist[q] = cum
			cum += c
		}
		for i, k2 := range seg {
			dst := hist[k2]
			hist[k2]++
			items[dst] = perm1[segLo+uint32(i)]
		}
	}
	tblOffs[len(tblOffs)-1] = uint32(len(perm1))
}
