package perfmodel

import (
	"testing"

	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
)

func TestFitQueryProducesSaneConstants(t *testing.T) {
	c := corpus.Generate(corpus.Twitter(4000, 3000, 7))
	base := Calibrate(3000, 7.0, 1)
	fitted, err := base.FitQuery(c.Mat, FitConfig{Queries: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fitted.TableProbeNS <= 0 || fitted.UniqueNS <= 0 {
		t.Fatalf("non-positive fitted constants: %+v", fitted)
	}
	if fitted.TableProbeNS > 1e5 || fitted.UniqueNS > 1e5 {
		t.Fatalf("implausibly large fitted constants: %+v", fitted)
	}
	// Microbench constants for the small terms must survive the fit.
	if fitted.CollisionNS != base.CollisionNS || fitted.ScanNSPerWord != base.ScanNSPerWord {
		t.Fatal("fit overwrote microbench constants it should keep")
	}
}

// The fitted model must predict the engine's *work-weighted* cost at a
// configuration it was not fitted on, within a loose noise bound.
func TestFittedModelExtrapolates(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-based")
	}
	col := corpus.Generate(corpus.Twitter(8000, 5000, 11))
	w := SampleWorkload(col.Mat, 100, 400, 13)
	base := Calibrate(5000, w.MeanNNZ, 1)
	fitted, err := base.FitQuery(col.Mat, FitConfig{Queries: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Target config (k=10, m=10) differs from the fit references (12,8)
	// and (14,12).
	const k, m = 10, 10
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: 5000, K: k, M: m, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(fam, col.Mat, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	opts := core.QueryDefaults()
	opts.Workers = 1
	opts.CollectPhases = true
	eng := core.NewEngine(st, col.Mat, opts)
	queries := col.SampleQueries(150, 19)
	eng.QueryBatch(queries[:32])
	var bestQ2, bestQ3 int64
	for r := 0; r < 3; r++ {
		eng.ResetPhases()
		eng.QueryBatch(queries)
		ph := eng.Phases()
		if r == 0 || ph.Q2NS < bestQ2 {
			bestQ2 = ph.Q2NS
		}
		if r == 0 || ph.Q3NS < bestQ3 {
			bestQ3 = ph.Q3NS
		}
	}
	actual := float64(bestQ2 + bestQ3)
	est := fitted.EstimateQuery(w, k, m).TotalNS * float64(len(queries))
	if e := RelativeError(est, actual); e > 1.0 {
		t.Fatalf("fitted model off by %.0f%% at unseen config (est %.2fms, actual %.2fms)",
			e*100, est/1e6, actual/1e6)
	}
}
