// Package perfmodel implements the paper's §7 analytical performance model
// and §7.3 parameter selection.
//
// The model decomposes query time into T_Q2·E[#collisions] + a bitvector
// scan term + T_Q3·E[#unique], and construction time into hashing, first-
// level and second-level partitioning terms. The expectations are estimated
// from the data by sampling (Eqs. 7.1–7.2): for sampled query/point pairs
// at angular distance d, a table collides with probability p(d)^k and the
// all-pairs scheme retrieves the point with probability P′(d, k, m).
//
// Where the paper derives its cost constants from hardware datasheets
// (cycles per op, bytes per cache line, achieved bandwidth on a Xeon
// E5-2670), this package calibrates them at runtime with targeted
// microbenchmarks of the same primitive operations — bitvector marking,
// bitvector scanning, masked sparse dot products, hashing kernels, and
// partition passes. The formulas are the paper's; only the constants are
// machine-specific, exactly as intended ("allows us to determine the
// optimal setting of PLSH parameters on different hardware").
package perfmodel

import (
	"errors"
	"math"

	"plsh/internal/lshhash"
	"plsh/internal/rng"
	"plsh/internal/sparse"
)

// Costs holds the calibrated per-operation costs in nanoseconds.
type Costs struct {
	// CollisionNS is T_Q2's variable part: marking one (possibly
	// duplicated) index into the dedup bitvector.
	CollisionNS float64
	// ScanNSPerWord is the fixed Q2 scan term per 64-bit bitvector word
	// (the paper's 1.75 cycles per 32 bits of N).
	ScanNSPerWord float64
	// TableProbeNS is the fixed Q2 cost of one bucket lookup (two
	// dependent loads into a table's offset and item arrays), paid L
	// times per query. The paper's regime (thousands of collisions per
	// query) hides this constant; at reduced scale it dominates Q2.
	TableProbeNS float64
	// UniqueNS is T_Q3: loading one candidate document and computing the
	// masked sparse dot product, per average-NNZ document.
	UniqueNS float64
	// HashNS is the hashing kernel cost per (non-zero × elementary hash
	// function) pair.
	HashNS float64
	// PartitionNS is one first-level partition pass per item (histogram +
	// prefix + scatter, with the key-closure indirection).
	PartitionNS float64
	// GatherNS is one Step-I2 transpose pass per item (random sketch-row
	// read plus the shared column writes).
	GatherNS float64
	// SecondLevelNS is one per-table second-level refinement per item,
	// including the 2^k fixed per-bucket costs amortized at the
	// calibration's N/2^k ratio.
	SecondLevelNS float64
	// Q3FixedNS is the per-query fixed cost of Step Q3 (query-mask
	// scatter, result allocation); fitted by FitQuery, zero from the
	// microbenchmarks.
	Q3FixedNS float64
}

// Calibrate measures the cost constants with a generic mid-size working
// set. Prefer CalibrateFor with a workload-shaped CalibrationConfig; this
// convenience form serves parameter tuning where (k, m) are not yet known.
func Calibrate(dim int, meanNNZ float64, seed uint64) Costs {
	cc := DefaultCalibration(dim, meanNNZ, 1<<16, 16, 16)
	cc.Seed = seed
	return CalibrateFor(cc)
}

// partitionForCalibration mirrors core's three-step partition (duplicated
// here to keep the calibration honest about the measured primitive without
// exporting core internals).
func partitionForCalibration(keys, hist, outPerm, outOffs []uint32) {
	for i := range hist {
		hist[i] = 0
	}
	for _, k := range keys {
		hist[k]++
	}
	nB := len(hist) - 1
	var cum uint32
	for b := 0; b < nB; b++ {
		outOffs[b] = cum
		c := hist[b]
		hist[b] = cum
		cum += c
	}
	outOffs[nB] = cum
	for i, k := range keys {
		outPerm[hist[k]] = uint32(i)
		hist[k]++
	}
}

// Workload summarizes a dataset for the model: its size, sparsity, and a
// sample of query-to-point angular distances (the input to Eqs. 7.1–7.2).
type Workload struct {
	// N is the full dataset size the estimates scale to.
	N int
	// MeanNNZ is the mean non-zeros per document.
	MeanNNZ float64
	// Dists holds sampled query→point distances (radians).
	Dists []float64
}

// SampleWorkload draws nQueries×nPoints distance samples from mat ("We use
// a random set of 1000 queries and 1000 data points for generating these
// estimates", §7.3).
func SampleWorkload(mat *sparse.Matrix, nQueries, nPoints int, seed uint64) Workload {
	src := rng.New(seed)
	w := Workload{N: mat.Rows(), MeanNNZ: float64(mat.NNZ()) / float64(max(1, mat.Rows()))}
	if mat.Rows() == 0 {
		return w
	}
	qIdx := make([]int, nQueries)
	pIdx := make([]int, nPoints)
	for i := range qIdx {
		qIdx[i] = src.Intn(mat.Rows())
	}
	for i := range pIdx {
		pIdx[i] = src.Intn(mat.Rows())
	}
	w.Dists = make([]float64, 0, nQueries*nPoints)
	for _, qi := range qIdx {
		q := mat.Row(qi)
		for _, pi := range pIdx {
			d := sparse.Dot(q, mat.Row(pi))
			w.Dists = append(w.Dists, sparse.AngularDistance(d))
		}
	}
	return w
}

// ExpCollisions estimates E[#collisions] per query (Eq. 7.1):
// L · Σ_v p(d(q,v))^k, scaled from the sample to the full dataset.
func (w Workload) ExpCollisions(k, m int) float64 {
	if len(w.Dists) == 0 {
		return 0
	}
	var s float64
	for _, d := range w.Dists {
		s += lshhash.TableCollisionProb(d, k)
	}
	L := float64(m * (m - 1) / 2)
	return L * s / float64(len(w.Dists)) * float64(w.N)
}

// ExpUnique estimates E[#unique] per query (Eq. 7.2):
// Σ_v P′(d(q,v), k, m), scaled from the sample to the full dataset.
func (w Workload) ExpUnique(k, m int) float64 {
	if len(w.Dists) == 0 {
		return 0
	}
	var s float64
	for _, d := range w.Dists {
		s += lshhash.RetrievalProb(d, k, m)
	}
	return s / float64(len(w.Dists)) * float64(w.N)
}

// QueryEstimate is a per-query time prediction split by phase.
type QueryEstimate struct {
	Collisions float64 // E[#collisions]
	Unique     float64 // E[#unique]
	Q2NS       float64 // T_Q2·E[#collisions] + scan term
	Q3NS       float64 // T_Q3·E[#unique]
	TotalNS    float64
}

// EstimateQuery predicts single-threaded per-query cost for (k, m) on w:
// T_Q2·E[#collisions] + per-table probes + the bitvector scan, plus
// T_Q3·E[#unique] (§7.2, with the probe constant added — see TableProbeNS).
func (c Costs) EstimateQuery(w Workload, k, m int) QueryEstimate {
	e := QueryEstimate{
		Collisions: w.ExpCollisions(k, m),
		Unique:     w.ExpUnique(k, m),
	}
	L := float64(m * (m - 1) / 2)
	scan := c.ScanNSPerWord * float64(w.N) / 64
	e.Q2NS = c.CollisionNS*e.Collisions + c.TableProbeNS*L + scan
	e.Q3NS = c.UniqueNS*e.Unique + c.Q3FixedNS
	e.TotalNS = e.Q2NS + e.Q3NS
	return e
}

// BuildEstimate is a construction-time prediction split by phase
// (single-threaded; divide by effective cores for wall clock).
type BuildEstimate struct {
	HashNS  float64
	I1NS    float64
	I2NS    float64
	I3NS    float64
	TotalNS float64
}

// EstimateBuild predicts construction cost for (k, m) on w with the shared
// 2-level algorithm: hashing N·NNZ·(m·k/2) kernel ops, m first-level
// partition passes, m−1 transpose passes (the shared Step I2), and L
// second-level refinements.
func (c Costs) EstimateBuild(w Workload, k, m int) BuildEstimate {
	n := float64(w.N)
	L := float64(m * (m - 1) / 2)
	e := BuildEstimate{
		HashNS: c.HashNS * n * w.MeanNNZ * float64(m*k/2),
		I1NS:   c.PartitionNS * n * float64(m),
		I2NS:   c.GatherNS * n * float64(m-1),
		I3NS:   c.SecondLevelNS * n * L,
	}
	e.TotalNS = e.HashNS + e.I1NS + e.I2NS + e.I3NS
	return e
}

// Choice is a selected parameter point.
type Choice struct {
	K, M, L     int
	Est         QueryEstimate
	MemoryBytes int64
}

// ErrNoFeasible indicates no (k, m) satisfies the recall and memory
// constraints.
var ErrNoFeasible = errors.New("perfmodel: no feasible (k, m) under the given constraints")

// Select enumerates k = 2, 4, …, kMax and, per §7.3, picks for each k the
// smallest m with P′(R, k, m) ≥ 1−δ, keeps candidates whose table memory
// (L·N + 2^k·L)·4 fits memBudget, and returns the one minimizing the
// estimated query time.
func Select(c Costs, w Workload, radius, delta float64, kMax, mMax int, memBudget int64) (Choice, error) {
	if kMax > 40 {
		kMax = 40 // p(R)^40 < 1e-6 at R=0.9; beyond is pointless (§7.3)
	}
	best := Choice{}
	found := false
	for k := 2; k <= kMax; k += 2 {
		m, ok := lshhash.MinMForRecall(radius, delta, k, mMax)
		if !ok {
			continue
		}
		L := m * (m - 1) / 2
		mem := (int64(L)*int64(w.N) + int64(L)<<uint(k)) * 4
		if memBudget > 0 && mem > memBudget {
			continue
		}
		est := c.EstimateQuery(w, k, m)
		if !found || est.TotalNS < best.Est.TotalNS {
			best = Choice{K: k, M: m, L: L, Est: est, MemoryBytes: mem}
			found = true
		}
	}
	if !found {
		return Choice{}, ErrNoFeasible
	}
	return best, nil
}

// RelativeError returns |est−actual|/actual — the Fig. 6/7 accuracy metric.
func RelativeError(est, actual float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return math.Abs(est-actual) / actual
}
