package perfmodel

import (
	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

// FitConfig describes the reference runs used by FitQuery.
type FitConfig struct {
	// RefN is the subsample size (default: all rows).
	RefN int
	// The two reference parameter points (defaults (12, 8) and (14, 12))
	// — deliberately away from typical production points so predictions
	// extrapolate across (k, m) rather than interpolate.
	RefK1, RefM1 int
	RefK2, RefM2 int
	// Queries is the per-run reference query count (default 200).
	Queries int
	// Radius is the query radius (default 0.9).
	Radius float64
	// Seed drives sampling.
	Seed uint64
}

func (fc FitConfig) withDefaults(rows int) FitConfig {
	if fc.RefN <= 0 || fc.RefN > rows {
		fc.RefN = rows
	}
	if fc.RefN < 2048 {
		fc.RefN = 2048
	}
	if fc.RefN > rows {
		fc.RefN = rows
	}
	if fc.RefK1 == 0 {
		fc.RefK1 = 12
	}
	if fc.RefM1 == 0 {
		fc.RefM1 = 8
	}
	if fc.RefK2 == 0 {
		fc.RefK2 = 14
	}
	if fc.RefM2 == 0 {
		fc.RefM2 = 12
	}
	if fc.Queries == 0 {
		fc.Queries = 200
	}
	if fc.Radius == 0 {
		fc.Radius = 0.9
	}
	if fc.Seed == 0 {
		fc.Seed = 42
	}
	return fc
}

// refRun is one instrumented engine measurement.
type refRun struct {
	q2, q3             float64 // summed phase ns
	collisions, unique float64
	queries            float64
	tables             float64
}

// FitQuery refines the query-side constants by running the instrumented
// PLSH engine at two reference parameter points and solving the §7
// decomposition for the per-operation costs:
//
//	Q2 = CollisionNS·#collisions + TableProbeNS·L·q + ScanNSPerWord·(N/64)·q
//	Q3 = UniqueNS·#unique + Q3FixedNS·q
//
// With two (k, m) points the two dominant Q2 unknowns (per-collision and
// per-table) separate, as do Q3's per-candidate and per-query terms. This
// is the regression-style calibration of Slaney et al. (cited by the
// paper, §2) in place of datasheet cycle counts; the reference points stay
// away from production parameters so Fig. 6/7 remain extrapolations.
func (c Costs) FitQuery(mat *sparse.Matrix, fc FitConfig) (Costs, error) {
	fc = fc.withDefaults(mat.Rows())

	sub := mat
	if fc.RefN < mat.Rows() {
		sub = sparse.NewMatrix(mat.Dim, fc.RefN, fc.RefN*8)
		for i := 0; i < fc.RefN; i++ {
			sub.AppendRow(mat.Row(i))
		}
	}

	points := [2]struct{ k, m int }{{fc.RefK1, fc.RefM1}, {fc.RefK2, fc.RefM2}}
	var runs [2]refRun
	for i, pt := range points {
		r, err := c.referenceRun(sub, pt.k, pt.m, fc)
		if err != nil {
			return c, err
		}
		runs[i] = r
	}

	// Q2: keep the microbenchmarked per-collision and scan constants (both
	// small, credible terms) and fit the per-table probe cost by least
	// squares over the reference runs — an exact 2×2 solve would amplify
	// measurement noise through subtractive cancellation.
	scanW := c.ScanNSPerWord * float64((fc.RefN+63)/64)
	var num, den float64
	for _, r := range runs {
		resid := r.q2 - c.CollisionNS*r.collisions - scanW*r.queries
		w := r.tables * r.queries
		num += resid * w
		den += w * w
	}
	if den > 0 {
		if probe := num / den; probe > 0 {
			c.TableProbeNS = probe
		}
	}

	// Q3: pooled per-candidate cost across the runs.
	if u := runs[0].unique + runs[1].unique; u > 0 {
		if uniq := (runs[0].q3 + runs[1].q3) / u; uniq > 0 {
			c.UniqueNS = uniq
		}
	}
	return c, nil
}

func (c Costs) referenceRun(sub *sparse.Matrix, k, m int, fc FitConfig) (refRun, error) {
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: sub.Dim, K: k, M: m, Seed: fc.Seed})
	if err != nil {
		return refRun{}, err
	}
	st, err := core.Build(fam, sub, core.Defaults())
	if err != nil {
		return refRun{}, err
	}
	opts := core.QueryDefaults()
	opts.Radius = fc.Radius
	opts.Workers = 1 // contention-free constants; parallelism is modeled separately
	opts.CollectPhases = true
	eng := core.NewEngine(st, sub, opts)

	queries := make([]sparse.Vector, fc.Queries)
	stride := max(1, sub.Rows()/fc.Queries)
	for i := range queries {
		queries[i] = sub.Row((i * stride) % sub.Rows())
	}
	eng.QueryBatch(queries[:min(32, len(queries))]) // warm up

	// Best of three: GC pauses and scheduler interference inflate
	// individual batches; the minimum is the interference-free cost.
	r := refRun{
		queries: float64(len(queries)),
		tables:  float64(m * (m - 1) / 2),
	}
	var stats []core.QueryStats
	for rep := 0; rep < 3; rep++ {
		eng.ResetPhases()
		_, stats = eng.QueryBatchStats(queries)
		ph := eng.Phases()
		if rep == 0 || float64(ph.Q2NS) < r.q2 {
			r.q2 = float64(ph.Q2NS)
		}
		if rep == 0 || float64(ph.Q3NS) < r.q3 {
			r.q3 = float64(ph.Q3NS)
		}
	}
	for _, s := range stats {
		r.collisions += float64(s.Collisions)
		r.unique += float64(s.Unique)
	}
	return r, nil
}
