// Package vocab implements the text-processing layer of PLSH: tokenization,
// vocabulary management, and IDF weighting.
//
// The paper (§8) cleans tweets by removing non-alphabet characters and stop
// words, encodes each tweet as a sparse vector over a ~500,000-word
// vocabulary with Inverse Document Frequency scores ("to give more
// importance to less common words"), and normalizes to unit length. This
// package reproduces that pipeline for real text; the synthetic corpus
// generator (internal/corpus) bypasses strings and produces word-ID vectors
// directly.
package vocab

import (
	"math"
	"strings"

	"plsh/internal/sparse"
)

// stopWords is a compact English stop list; the paper removes stop words
// before vector encoding.
var stopWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "he": true, "in": true, "is": true, "it": true, "its": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"this": true, "to": true, "was": true, "were": true, "will": true,
	"with": true, "you": true, "your": true, "i": true, "me": true,
	"my": true, "we": true, "our": true, "they": true, "their": true,
	"not": true, "no": true, "so": true, "do": true, "if": true,
}

// Tokenize lowercases s, strips every non-alphabet character, splits on the
// resulting gaps, and drops stop words and empty tokens — the §8 cleaning
// pass. It returns the surviving tokens in order.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if !stopWords[tok] {
			tokens = append(tokens, tok)
		}
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Vocabulary maps words to dense IDs and tracks document frequencies so
// IDF scores can be computed. It is not safe for concurrent mutation.
type Vocabulary struct {
	ids  map[string]uint32
	word []string
	df   []int32 // document frequency per word id
	docs int     // number of documents observed
}

// New returns an empty Vocabulary.
func New() *Vocabulary {
	return &Vocabulary{ids: make(map[string]uint32)}
}

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.word) }

// Docs returns the number of documents observed via ObserveDoc.
func (v *Vocabulary) Docs() int { return v.docs }

// Intern returns the ID for word, allocating one if needed.
func (v *Vocabulary) Intern(word string) uint32 {
	if id, ok := v.ids[word]; ok {
		return id
	}
	id := uint32(len(v.word))
	v.ids[word] = id
	v.word = append(v.word, word)
	v.df = append(v.df, 0)
	return id
}

// Lookup returns the ID for word and whether it is known.
func (v *Vocabulary) Lookup(word string) (uint32, bool) {
	id, ok := v.ids[word]
	return id, ok
}

// Word returns the word for id.
func (v *Vocabulary) Word(id uint32) string { return v.word[id] }

// ObserveDoc registers one document's tokens for DF accounting, interning
// new words. Each distinct word counts once per document.
func (v *Vocabulary) ObserveDoc(tokens []string) {
	v.docs++
	seen := make(map[uint32]bool, len(tokens))
	for _, tok := range tokens {
		id := v.Intern(tok)
		if !seen[id] {
			seen[id] = true
			v.df[id]++
		}
	}
}

// IDF returns the smoothed inverse document frequency of word id:
// log((1+docs)/(1+df)) + 1. The +1 floor (as in scikit-learn's smooth IDF)
// keeps even ubiquitous words at positive weight, so no document encodes to
// the zero vector merely because its words are common.
func (v *Vocabulary) IDF(id uint32) float64 {
	return math.Log(float64(1+v.docs)/float64(1+v.df[id])) + 1
}

// EncodeIDs builds the unit-normalized IDF-weighted sparse vector for a
// document given as word IDs, using dim as the vector dimensionality
// (allowing the vector space to be padded beyond the current vocabulary).
// Each distinct word contributes its IDF once (set-of-words model, as the
// paper's duplicate removal implies). ok is false for empty/zero documents,
// which the caller should skip (§8: "0-length queries ... are ignored").
func (v *Vocabulary) EncodeIDs(ids []uint32, dim int) (vec sparse.Vector, ok bool) {
	seen := make(map[uint32]bool, len(ids))
	var idx []uint32
	var val []float32
	for _, id := range ids {
		if int(id) >= dim || seen[id] {
			continue
		}
		seen[id] = true
		w := v.IDF(id)
		if w <= 0 {
			continue
		}
		idx = append(idx, id)
		val = append(val, float32(w))
	}
	vec, err := sparse.NewVector(idx, val)
	if err != nil || !vec.Normalize() {
		return sparse.Vector{}, false
	}
	return vec, true
}

// Encode tokenizes text against the existing vocabulary (unknown words are
// dropped, as for user queries against a built index) and encodes it.
func (v *Vocabulary) Encode(text string, dim int) (sparse.Vector, bool) {
	var ids []uint32
	for _, tok := range Tokenize(text) {
		if id, ok := v.Lookup(tok); ok {
			ids = append(ids, id)
		}
	}
	return v.EncodeIDs(ids, dim)
}
