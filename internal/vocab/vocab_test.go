package vocab

import (
	"math"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"the cat AND THE dog", []string{"cat", "dog"}},
		{"re-tweet: crazy2023 stuff", []string{"re", "tweet", "crazy", "stuff"}},
		{"", nil},
		{"123 456 !!!", nil},
		{"ünïcode stays alpha only", []string{"n", "code", "stays", "alpha", "only"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestInternLookup(t *testing.T) {
	v := New()
	a := v.Intern("apple")
	b := v.Intern("banana")
	if a == b {
		t.Fatal("distinct words share an ID")
	}
	if again := v.Intern("apple"); again != a {
		t.Fatal("Intern not idempotent")
	}
	if id, ok := v.Lookup("banana"); !ok || id != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := v.Lookup("cherry"); ok {
		t.Fatal("Lookup invented a word")
	}
	if v.Word(a) != "apple" || v.Size() != 2 {
		t.Fatal("Word/Size inconsistent")
	}
}

func TestIDFOrdering(t *testing.T) {
	v := New()
	// "common" appears in all 10 docs, "rare" in 1.
	for i := 0; i < 10; i++ {
		doc := []string{"common"}
		if i == 0 {
			doc = append(doc, "rare")
		}
		v.ObserveDoc(doc)
	}
	common, _ := v.Lookup("common")
	rare, _ := v.Lookup("rare")
	if v.IDF(rare) <= v.IDF(common) {
		t.Fatalf("IDF(rare)=%v should exceed IDF(common)=%v", v.IDF(rare), v.IDF(common))
	}
	if v.Docs() != 10 {
		t.Fatalf("Docs = %d", v.Docs())
	}
}

func TestObserveDocCountsDistinctOnce(t *testing.T) {
	v := New()
	v.ObserveDoc([]string{"x", "x", "x"})
	v.ObserveDoc([]string{"y"})
	x, _ := v.Lookup("x")
	y, _ := v.Lookup("y")
	// df(x) = 1 despite three occurrences, so IDF(x) == IDF(y).
	if math.Abs(v.IDF(x)-v.IDF(y)) > 1e-12 {
		t.Fatal("within-doc repeats inflated DF")
	}
}

func TestEncodeUnitNorm(t *testing.T) {
	v := New()
	for i := 0; i < 5; i++ {
		v.ObserveDoc([]string{"alpha", "beta", "gamma"})
	}
	vec, ok := v.Encode("alpha beta unknownword", v.Size())
	if !ok {
		t.Fatal("Encode failed")
	}
	if math.Abs(vec.Norm()-1) > 1e-6 {
		t.Fatalf("norm = %v", vec.Norm())
	}
	if vec.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (unknown word dropped)", vec.NNZ())
	}
}

func TestEncodeEmptyFails(t *testing.T) {
	v := New()
	v.ObserveDoc([]string{"word"})
	if _, ok := v.Encode("only unknown tokens here qqq", 1); ok {
		t.Fatal("Encode of all-unknown text should fail")
	}
	if _, ok := v.Encode("", 1); ok {
		t.Fatal("Encode of empty text should fail")
	}
}

func TestEncodeIDsDropsDuplicatesAndOutOfDim(t *testing.T) {
	v := New()
	v.ObserveDoc([]string{"a", "b", "c"})
	a, _ := v.Lookup("a")
	b, _ := v.Lookup("b")
	vec, ok := v.EncodeIDs([]uint32{a, a, b, 999}, 3)
	if !ok {
		t.Fatal("EncodeIDs failed")
	}
	if vec.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", vec.NNZ())
	}
}
