// Package delta implements the insert-optimized streaming LSH structure of
// §6.1.
//
// Static PLSH tables are contiguous arrays sized exactly to their content —
// superb to query, expensive to update. Delta tables invert the trade-off:
// each of the L tables keeps independently growable buckets, so a batch of
// new documents is hashed once and appended to L buckets each, with the L
// tables updated fully in parallel ("insertions can be done independently
// for each table, allowing us to exploit multiple threads", §6.1). Queries
// walk the same buckets but pay pointer-chasing and hash-lookup costs,
// which is why the paper bounds the delta fraction η and merges into the
// static structure periodically.
//
// Buckets are a hash map per table rather than the paper's dense 2^k array
// of C++ vectors: Go slice headers are 24 bytes, so a dense 2^k × L array
// at k=16, L=780 would spend tens of gigabytes on empty buckets. The map
// preserves the structure's behaviour (append-only buckets, per-table
// independence, slower-than-static queries) at memory proportional to
// content; DESIGN.md records the substitution.
package delta

import (
	"plsh/internal/bitvec"
	"plsh/internal/lshhash"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Table is a streaming LSH structure. Inserted documents get delta-local
// IDs 0..Len()-1 in arrival order. Table is not internally synchronized;
// the owning node serializes inserts. Once Freeze is called the table is
// immutable and every read-side method (Candidates, Buckets, Sketches,
// MemoryBytes) is safe for arbitrary concurrent use — frozen tables are
// the building blocks of the node's copy-on-write query snapshots.
type Table struct {
	fam     *lshhash.Family
	pool    *sched.Pool
	buckets []map[uint32][]uint32 // per table l: key → item IDs
	sk      *lshhash.Sketches     // retained so merges reuse hashing work
	n       int
	frozen  bool
}

// New returns an empty delta table over the family.
func New(fam *lshhash.Family, workers int) *Table {
	p := fam.Params()
	d := &Table{
		fam:     fam,
		pool:    sched.NewPool(workers),
		buckets: make([]map[uint32][]uint32, p.L()),
		sk:      &lshhash.Sketches{M: p.M},
	}
	for l := range d.buckets {
		d.buckets[l] = make(map[uint32][]uint32)
	}
	return d
}

// Len returns the number of inserted documents.
func (d *Table) Len() int { return d.n }

// Sketches exposes the accumulated half-hashes (one row per inserted
// document) for the merge path.
func (d *Table) Sketches() *lshhash.Sketches { return d.sk }

// Freeze marks the table immutable. Further Insert calls panic; reads need
// no synchronization. Freezing is idempotent.
func (d *Table) Freeze() { d.frozen = true }

// IsFrozen reports whether Freeze has been called.
func (d *Table) IsFrozen() bool { return d.frozen }

// Insert hashes the batch once and appends every document to its bucket in
// all L tables, parallelized over tables (each worker owns a disjoint set
// of tables, so no locks are needed). It returns the delta-local ID of the
// first inserted document. Insert panics on a frozen table.
func (d *Table) Insert(vs []sparse.Vector) int {
	if d.frozen {
		panic("delta: Insert on frozen table")
	}
	first := d.n
	d.sk = d.fam.AppendSketches(d.sk, vs)
	p := d.fam.Params()
	d.pool.Run(p.L(), func(l, _ int) {
		a, b := lshhash.PairForTable(l, p.M)
		m := d.buckets[l]
		for i := range vs {
			id := first + i
			key := d.sk.TableKey(id, a, b, p.K)
			m[key] = append(m[key], uint32(id))
		}
	})
	d.n += len(vs)
	return first
}

// Candidates gathers the deduplicated delta-local candidate IDs for a query
// sketch into cand, using seen (capacity ≥ Len()) for duplicate
// elimination, and returns the extended slice plus the raw collision count.
// The caller owns resetting seen; Candidates leaves exactly the returned
// IDs set, so seen.ResetList(new portion) restores it.
func (d *Table) Candidates(sketch []uint32, seen *bitvec.Vector, cand []uint32) ([]uint32, int) {
	p := d.fam.Params()
	half := uint(p.K / 2)
	collisions := 0
	for l := range d.buckets {
		a, b := lshhash.PairForTable(l, p.M)
		key := sketch[a]<<half | sketch[b]
		bucket := d.buckets[l][key]
		collisions += len(bucket)
		for _, id := range bucket {
			if seen.TestAndSet(int(id)) {
				cand = append(cand, id)
			}
		}
	}
	return cand, collisions
}

// FromSketches builds a frozen table over precomputed sketches: row i of sk
// becomes delta-local ID i. Rows for which skip reports true are omitted
// from every bucket (tombstone compaction) but still count toward Len, so
// local IDs stay aligned with sketch rows and with the owning arena. The
// caller transfers ownership of sk; it must not be mutated afterwards.
//
// This is the segment-coalescing path: rebucketing reuses the hashing work
// retained in the source tables' sketches instead of rehashing documents.
func FromSketches(fam *lshhash.Family, sk *lshhash.Sketches, workers int, skip func(localID int) bool) *Table {
	d := New(fam, workers)
	d.sk = sk
	d.n = sk.N()
	p := fam.Params()
	d.pool.Run(p.L(), func(l, _ int) {
		a, b := lshhash.PairForTable(l, p.M)
		m := d.buckets[l]
		for i := 0; i < d.n; i++ {
			if skip != nil && skip(i) {
				continue
			}
			key := sk.TableKey(i, a, b, p.K)
			m[key] = append(m[key], uint32(i))
		}
	})
	d.Freeze()
	return d
}

// Coalesce builds one frozen table spanning a's rows followed by b's rows
// (local IDs 0..a.Len()-1 then a.Len()..a.Len()+b.Len()-1), dropping rows
// for which skip reports true. Both inputs must be frozen; they are read,
// never mutated, so in-flight snapshot readers of a and b are unaffected.
func Coalesce(fam *lshhash.Family, a, b *Table, workers int, skip func(localID int) bool) *Table {
	if !a.frozen || !b.frozen {
		panic("delta: Coalesce of unfrozen table")
	}
	m := fam.Params().M
	data := make([]uint32, 0, len(a.sk.Data)+len(b.sk.Data))
	data = append(data, a.sk.Data...)
	data = append(data, b.sk.Data...)
	return FromSketches(fam, &lshhash.Sketches{M: m, Data: data}, workers, skip)
}

// Buckets iterates table l's buckets (key, delta-local IDs) in unspecified
// order, stopping early if fn returns false — the read-only walk used by
// tests and diagnostics over frozen tables. The callback must not retain or
// modify ids.
func (d *Table) Buckets(l int, fn func(key uint32, ids []uint32) bool) {
	for key, ids := range d.buckets[l] {
		if !fn(key, ids) {
			return
		}
	}
}

// Reset empties the table (after a merge), retaining the allocated maps and
// clearing any freeze.
func (d *Table) Reset() {
	for l := range d.buckets {
		clear(d.buckets[l])
	}
	d.sk = &lshhash.Sketches{M: d.fam.Params().M}
	d.n = 0
	d.frozen = false
}

// MemoryBytes approximates the structure's footprint: bucket contents plus
// map bookkeeping plus retained sketches.
func (d *Table) MemoryBytes() int64 {
	var b int64
	for l := range d.buckets {
		for _, items := range d.buckets[l] {
			b += int64(cap(items))*4 + 48 // slice payload + map entry overhead
		}
	}
	b += int64(len(d.sk.Data)) * 4
	return b
}
