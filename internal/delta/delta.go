// Package delta implements the insert-optimized streaming LSH structure of
// §6.1.
//
// Static PLSH tables are contiguous arrays sized exactly to their content —
// superb to query, expensive to update. Delta tables invert the trade-off:
// each of the L tables keeps independently growable buckets, so a batch of
// new documents is hashed once and appended to L buckets each, with the L
// tables updated fully in parallel ("insertions can be done independently
// for each table, allowing us to exploit multiple threads", §6.1). Queries
// walk the same buckets but pay pointer-chasing and hash-lookup costs,
// which is why the paper bounds the delta fraction η and merges into the
// static structure periodically.
//
// Buckets are a hash map per table rather than the paper's dense 2^k array
// of C++ vectors: Go slice headers are 24 bytes, so a dense 2^k × L array
// at k=16, L=780 would spend tens of gigabytes on empty buckets. The map
// preserves the structure's behaviour (append-only buckets, per-table
// independence, slower-than-static queries) at memory proportional to
// content; DESIGN.md records the substitution.
package delta

import (
	"plsh/internal/bitvec"
	"plsh/internal/lshhash"
	"plsh/internal/rng"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Table is a streaming LSH structure. Inserted documents get delta-local
// IDs 0..Len()-1 in arrival order. Table is not internally synchronized;
// the owning node serializes inserts. Once Freeze is called the table is
// immutable and every read-side method (Candidates, Buckets, Sketches,
// MemoryBytes) is safe for arbitrary concurrent use — frozen tables are
// the building blocks of the node's copy-on-write query snapshots.
//
//plshvet:frozen frozen segments are published inside node snapshots; the mutators below carry //plshvet:prepublish and are runtime-gated by the frozen flag
type Table struct {
	fam     *lshhash.Family
	pool    *sched.Pool
	buckets []map[uint32][]uint32 // per table l: key → item IDs
	sk      *lshhash.Sketches     // retained so merges reuse hashing work
	n       int
	frozen  bool

	// Reservoir bucket bound (SLASH-style): when resCap > 0, every bucket
	// holds at most resCap items, the survivors chosen by streaming
	// reservoir sampling so each offered item is retained with equal
	// probability regardless of skew. offers[l][key] counts items ever
	// offered to a bucket once it is full; rngs[l] is the table's private
	// deterministic sampling stream.
	resCap  int
	resSeed uint64
	offers  []map[uint32]int
	rngs    []*rng.Source
}

// New returns an empty delta table over the family.
func New(fam *lshhash.Family, workers int) *Table {
	p := fam.Params()
	d := &Table{
		fam:     fam,
		pool:    sched.NewPool(workers),
		buckets: make([]map[uint32][]uint32, p.L()),
		sk:      &lshhash.Sketches{M: p.M},
	}
	for l := range d.buckets {
		d.buckets[l] = make(map[uint32][]uint32)
	}
	return d
}

// SetReservoir bounds every bucket to at most r items via reservoir
// sampling (r <= 0 disables the bound, the default). Sampling is
// deterministic in (seed, table index). Must be called before the first
// Insert; panics on a non-empty or frozen table so a bound can never be
// applied retroactively to half of a stream.
//
//plshvet:prepublish configuration step; panics on a non-empty or frozen table
func (d *Table) SetReservoir(r int, seed uint64) {
	if d.n > 0 || d.frozen {
		panic("delta: SetReservoir on non-empty table")
	}
	d.resCap = r
	d.resSeed = seed
	if r <= 0 {
		d.offers = nil
		d.rngs = nil
		return
	}
	L := d.fam.Params().L()
	d.offers = make([]map[uint32]int, L)
	d.rngs = make([]*rng.Source, L)
	for l := 0; l < L; l++ {
		d.offers[l] = make(map[uint32]int)
		d.rngs[l] = rng.New(seed + uint64(l)*0x9e3779b97f4a7c15)
	}
}

// offer appends id to table l's bucket under the reservoir discipline:
// plain append while the bucket is under resCap, then replacement with
// probability resCap/t for the t-th offered item. With no bound set it is
// a plain append.
//
//plshvet:prepublish insert-path helper; reached only from Insert, which panics on a frozen table
func (d *Table) offer(l int, m map[uint32][]uint32, key uint32, id uint32) {
	ids := m[key]
	if d.resCap <= 0 || len(ids) < d.resCap {
		m[key] = append(ids, id)
		return
	}
	t := d.offers[l][key]
	if t == 0 {
		t = d.resCap // first overflow: resCap items offered so far
	}
	t++
	if j := d.rngs[l].Intn(t); j < d.resCap {
		ids[j] = id
	}
	d.offers[l][key] = t
}

// Len returns the number of inserted documents.
func (d *Table) Len() int { return d.n }

// Sketches exposes the accumulated half-hashes (one row per inserted
// document) for the merge path.
func (d *Table) Sketches() *lshhash.Sketches { return d.sk }

// Freeze marks the table immutable. Further Insert calls panic; reads need
// no synchronization. Freezing is idempotent.
//
//plshvet:prepublish the freeze itself is the publish barrier: it runs under the node mutex before the snapshot swap
func (d *Table) Freeze() { d.frozen = true }

// IsFrozen reports whether Freeze has been called.
func (d *Table) IsFrozen() bool { return d.frozen }

// Insert hashes the batch once and appends every document to its bucket in
// all L tables, parallelized over tables (each worker owns a disjoint set
// of tables, so no locks are needed). It returns the delta-local ID of the
// first inserted document. Insert panics on a frozen table.
//
//plshvet:prepublish single-writer insert path; runtime-gated by the frozen flag
func (d *Table) Insert(vs []sparse.Vector) int {
	if d.frozen {
		panic("delta: Insert on frozen table")
	}
	first := d.n
	d.sk = d.fam.AppendSketches(d.sk, vs)
	p := d.fam.Params()
	d.pool.Run(p.L(), func(l, _ int) {
		a, b := lshhash.PairForTable(l, p.M)
		m := d.buckets[l]
		for i := range vs {
			id := first + i
			key := d.sk.TableKey(id, a, b, p.K)
			d.offer(l, m, key, uint32(id))
		}
	})
	d.n += len(vs)
	return first
}

// Candidates gathers the deduplicated delta-local candidate IDs for a query
// sketch into cand, using seen (capacity ≥ Len()) for duplicate
// elimination, and returns the extended slice plus the raw collision count.
// The caller owns resetting seen; Candidates leaves exactly the returned
// IDs set, so seen.ResetList(new portion) restores it.
func (d *Table) Candidates(sketch []uint32, seen *bitvec.Vector, cand []uint32) ([]uint32, int) {
	p := d.fam.Params()
	half := uint(p.K / 2)
	collisions := 0
	for l := range d.buckets {
		a, b := lshhash.PairForTable(l, p.M)
		key := sketch[a]<<half | sketch[b]
		bucket := d.buckets[l][key]
		collisions += len(bucket)
		for _, id := range bucket {
			if seen.TestAndSet(int(id)) {
				cand = append(cand, id)
			}
		}
	}
	return cand, collisions
}

// FromSketches builds a frozen table over precomputed sketches: row i of sk
// becomes delta-local ID i. Rows for which skip reports true are omitted
// from every bucket (tombstone compaction) but still count toward Len, so
// local IDs stay aligned with sketch rows and with the owning arena. The
// caller transfers ownership of sk; it must not be mutated afterwards.
//
// This is the segment-coalescing path: rebucketing reuses the hashing work
// retained in the source tables' sketches instead of rehashing documents.
func FromSketches(fam *lshhash.Family, sk *lshhash.Sketches, workers int, skip func(localID int) bool) *Table {
	return fromSketches(fam, sk, workers, skip, 0, 0)
}

// fromSketches is FromSketches with an optional reservoir bound, applied
// per bucket over the rows' ID order — the rebucketing analogue of the
// streaming bound, so a coalesced segment obeys the same cap as the
// segments it replaces.
func fromSketches(fam *lshhash.Family, sk *lshhash.Sketches, workers int, skip func(localID int) bool, resCap int, resSeed uint64) *Table {
	d := New(fam, workers)
	if resCap > 0 {
		d.SetReservoir(resCap, resSeed)
	}
	d.sk = sk
	d.n = sk.N()
	p := fam.Params()
	d.pool.Run(p.L(), func(l, _ int) {
		a, b := lshhash.PairForTable(l, p.M)
		m := d.buckets[l]
		for i := 0; i < d.n; i++ {
			if skip != nil && skip(i) {
				continue
			}
			key := sk.TableKey(i, a, b, p.K)
			d.offer(l, m, key, uint32(i))
		}
	})
	d.Freeze()
	return d
}

// Coalesce builds one frozen table spanning a's rows followed by b's rows
// (local IDs 0..a.Len()-1 then a.Len()..a.Len()+b.Len()-1), dropping rows
// for which skip reports true. Both inputs must be frozen; they are read,
// never mutated, so in-flight snapshot readers of a and b are unaffected.
func Coalesce(fam *lshhash.Family, a, b *Table, workers int, skip func(localID int) bool) *Table {
	if !a.frozen || !b.frozen {
		panic("delta: Coalesce of unfrozen table")
	}
	m := fam.Params().M
	data := make([]uint32, 0, len(a.sk.Data)+len(b.sk.Data))
	data = append(data, a.sk.Data...)
	data = append(data, b.sk.Data...)
	// The merged segment inherits a's reservoir bound (segments under one
	// node always share a configuration), reseeded by the combined length
	// so repeated coalesces don't replay one sampling stream.
	return fromSketches(fam, &lshhash.Sketches{M: m, Data: data}, workers, skip,
		a.resCap, a.resSeed+uint64(a.n+b.n))
}

// Buckets iterates table l's buckets (key, delta-local IDs) in unspecified
// order, stopping early if fn returns false — the read-only walk used by
// tests and diagnostics over frozen tables. The callback must not retain or
// modify ids.
func (d *Table) Buckets(l int, fn func(key uint32, ids []uint32) bool) {
	for key, ids := range d.buckets[l] {
		if !fn(key, ids) {
			return
		}
	}
}

// Reset empties the table (after a merge), retaining the allocated maps and
// clearing any freeze.
//
//plshvet:prepublish recycles a retired segment under the node mutex after readers have moved to the new snapshot
func (d *Table) Reset() {
	for l := range d.buckets {
		clear(d.buckets[l])
	}
	for l := range d.offers {
		clear(d.offers[l])
		d.rngs[l] = rng.New(d.resSeed + uint64(l)*0x9e3779b97f4a7c15)
	}
	d.sk = &lshhash.Sketches{M: d.fam.Params().M}
	d.n = 0
	d.frozen = false
}

// MemoryBytes approximates the structure's footprint: bucket contents plus
// map bookkeeping plus retained sketches.
func (d *Table) MemoryBytes() int64 {
	var b int64
	for l := range d.buckets {
		for _, items := range d.buckets[l] {
			b += int64(cap(items))*4 + 48 // slice payload + map entry overhead
		}
	}
	b += int64(len(d.sk.Data)) * 4
	return b
}
