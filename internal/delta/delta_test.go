package delta

import (
	"reflect"
	"testing"

	"plsh/internal/bitvec"
	"plsh/internal/corpus"
	"plsh/internal/lshhash"
	"plsh/internal/sparse"
)

func testFamily(t *testing.T) *lshhash.Family {
	t.Helper()
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return fam
}

func docs(n int, dim int, seed uint64) []sparse.Vector {
	c := corpus.Generate(corpus.Twitter(n, dim, seed))
	out := make([]sparse.Vector, n)
	for i := 0; i < n; i++ {
		out[i] = c.Mat.Row(i)
	}
	return out
}

func TestInsertAssignsSequentialIDs(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	vs := docs(50, 2000, 1)
	if first := d.Insert(vs[:20]); first != 0 {
		t.Fatalf("first batch ID = %d", first)
	}
	if first := d.Insert(vs[20:]); first != 20 {
		t.Fatalf("second batch ID = %d", first)
	}
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Sketches().N() != 50 {
		t.Fatalf("sketches N = %d", d.Sketches().N())
	}
}

// Candidates must return exactly the documents sharing ≥1 bucket with the
// query — the same candidate-set law the static engine obeys.
func TestCandidatesMatchBruteForce(t *testing.T) {
	fam := testFamily(t)
	p := fam.Params()
	d := New(fam, 4)
	vs := docs(200, 2000, 3)
	d.Insert(vs)
	seen := bitvec.New(d.Len())
	queries := docs(20, 2000, 9)
	for qi, q := range queries {
		qsk := fam.Sketch(q)
		cand, collisions := d.Candidates(qsk, seen, nil)
		seen.ResetList(cand)

		want := map[uint32]bool{}
		wantCollisions := 0
		for i, v := range vs {
			dsk := fam.Sketch(v)
			matches := 0
			for j := 0; j < p.M; j++ {
				if qsk[j] == dsk[j] {
					matches++
				}
			}
			if matches >= 2 {
				want[uint32(i)] = true
				wantCollisions += matches * (matches - 1) / 2
			}
		}
		if len(cand) != len(want) {
			t.Fatalf("query %d: %d candidates, want %d", qi, len(cand), len(want))
		}
		for _, id := range cand {
			if !want[id] {
				t.Fatalf("query %d: unexpected candidate %d", qi, id)
			}
		}
		if collisions != wantCollisions {
			t.Fatalf("query %d: collisions %d, want %d", qi, collisions, wantCollisions)
		}
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 1)
	vs := docs(100, 2000, 5)
	d.Insert(vs)
	seen := bitvec.New(d.Len())
	// Query with an indexed document: it collides in all L tables but must
	// appear once.
	qsk := fam.Sketch(vs[7])
	cand, collisions := d.Candidates(qsk, seen, nil)
	if collisions < fam.Params().L() {
		t.Fatalf("self query should collide in all %d tables, got %d", fam.Params().L(), collisions)
	}
	counts := map[uint32]int{}
	for _, id := range cand {
		counts[id]++
	}
	if counts[7] != 1 {
		t.Fatalf("self appears %d times", counts[7])
	}
	seen.ResetList(cand)
	if seen.Count() != 0 {
		t.Fatal("ResetList contract violated")
	}
}

func TestInsertParallelMatchesSerial(t *testing.T) {
	fam := testFamily(t)
	vs := docs(300, 2000, 7)
	d1 := New(fam, 1)
	d8 := New(fam, 8)
	d1.Insert(vs)
	d8.Insert(vs)
	seen1 := bitvec.New(300)
	seen8 := bitvec.New(300)
	for _, q := range docs(10, 2000, 11) {
		qsk := fam.Sketch(q)
		c1, n1 := d1.Candidates(qsk, seen1, nil)
		c8, n8 := d8.Candidates(qsk, seen8, nil)
		seen1.ResetList(c1)
		seen8.ResetList(c8)
		if n1 != n8 || len(c1) != len(c8) {
			t.Fatalf("parallel insert diverged: %d/%d vs %d/%d", n1, len(c1), n8, len(c8))
		}
	}
}

func TestReset(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	vs := docs(50, 2000, 13)
	d.Insert(vs)
	d.Reset()
	if d.Len() != 0 || d.Sketches().N() != 0 {
		t.Fatal("Reset did not empty table")
	}
	seen := bitvec.New(64)
	cand, collisions := d.Candidates(fam.Sketch(vs[0]), seen, nil)
	if len(cand) != 0 || collisions != 0 {
		t.Fatal("candidates survive Reset")
	}
	// Table must be reusable.
	d.Insert(vs[:10])
	if d.Len() != 10 {
		t.Fatal("table unusable after Reset")
	}
}

func TestSketchesMatchFamily(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	vs := docs(40, 2000, 17)
	d.Insert(vs[:15])
	d.Insert(vs[15:])
	for i, v := range vs {
		want := fam.Sketch(v)
		for j := range want {
			if d.Sketches().At(i, j) != want[j] {
				t.Fatalf("sketch %d fn %d differs", i, j)
			}
		}
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 1)
	before := d.MemoryBytes()
	d.Insert(docs(100, 2000, 19))
	if d.MemoryBytes() <= before {
		t.Fatal("MemoryBytes did not grow after insert")
	}
}

func TestEmptyInsert(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	if first := d.Insert(nil); first != 0 {
		t.Fatalf("empty insert returned %d", first)
	}
	if d.Len() != 0 {
		t.Fatal("empty insert changed Len")
	}
}

func TestFreezeMakesTableImmutable(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	vs := docs(60, 2000, 21)
	d.Insert(vs[:40])
	d.Freeze()
	if !d.IsFrozen() {
		t.Fatal("IsFrozen false after Freeze")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Insert on frozen table did not panic")
			}
		}()
		d.Insert(vs[40:])
	}()
	// Reads still work on a frozen table.
	seen := bitvec.New(d.Len())
	cand, _ := d.Candidates(fam.Sketch(vs[3]), seen, nil)
	found := false
	for _, id := range cand {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("frozen table lost a document")
	}
	// Reset clears the freeze.
	d.Reset()
	if d.IsFrozen() {
		t.Fatal("Reset kept the freeze")
	}
	d.Insert(vs[:5])
}

// Coalesce(a, b) must answer candidate queries exactly like a table built
// by inserting a's rows then b's rows, minus skipped rows.
func TestCoalesceMatchesSequentialInsert(t *testing.T) {
	fam := testFamily(t)
	vs := docs(300, 2000, 23)
	a := New(fam, 2)
	a.Insert(vs[:100])
	a.Freeze()
	b := New(fam, 2)
	b.Insert(vs[100:])
	b.Freeze()

	ref := New(fam, 2)
	ref.Insert(vs)

	skip := func(i int) bool { return i%11 == 4 }
	merged := Coalesce(fam, a, b, 2, skip)
	if !merged.IsFrozen() {
		t.Fatal("Coalesce returned unfrozen table")
	}
	if merged.Len() != 300 {
		t.Fatalf("merged Len = %d, want 300 (skipped rows still count)", merged.Len())
	}

	seenM := bitvec.New(300)
	seenR := bitvec.New(300)
	for qi, q := range docs(25, 2000, 25) {
		qsk := fam.Sketch(q)
		cm, _ := merged.Candidates(qsk, seenM, nil)
		cr, _ := ref.Candidates(qsk, seenR, nil)
		seenM.ResetList(cm)
		seenR.ResetList(cr)
		want := map[uint32]bool{}
		for _, id := range cr {
			if !skip(int(id)) {
				want[id] = true
			}
		}
		if len(cm) != len(want) {
			t.Fatalf("query %d: %d candidates, want %d", qi, len(cm), len(want))
		}
		for _, id := range cm {
			if !want[id] {
				t.Fatalf("query %d: unexpected candidate %d", qi, id)
			}
		}
	}
}

func TestFromSketchesReusesHashes(t *testing.T) {
	fam := testFamily(t)
	vs := docs(80, 2000, 27)
	src := New(fam, 2)
	src.Insert(vs)
	src.Freeze()
	rebuilt := FromSketches(fam, src.Sketches(), 2, nil)
	if rebuilt.Len() != 80 {
		t.Fatalf("Len = %d", rebuilt.Len())
	}
	// Buckets iteration sees every (frozen) bucket; total bucket entries
	// across tables must match the source exactly.
	count := func(d *Table) int {
		total := 0
		for l := 0; l < fam.Params().L(); l++ {
			d.Buckets(l, func(_ uint32, ids []uint32) bool {
				total += len(ids)
				return true
			})
		}
		return total
	}
	if got, want := count(rebuilt), count(src); got != want {
		t.Fatalf("bucket entries %d, want %d", got, want)
	}
}

// sameDocCopies returns n copies of one document — every copy lands in
// the same bucket of every table, the worst-case skew the reservoir
// bound exists for.
func sameDocCopies(n int) []sparse.Vector {
	v := docs(1, 2000, 5)[0]
	out := make([]sparse.Vector, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestReservoirBoundsBuckets: under maximal skew no bucket exceeds the
// reservoir capacity, survivors are genuine inserted IDs, and queries
// still surface survivors.
func TestReservoirBoundsBuckets(t *testing.T) {
	fam := testFamily(t)
	const R = 4
	d := New(fam, 2)
	d.SetReservoir(R, 99)
	vs := sameDocCopies(64)
	d.Insert(vs)
	for l, m := range d.buckets {
		for key, ids := range m {
			if len(ids) > R {
				t.Fatalf("table %d bucket %d holds %d items, reservoir bound %d", l, key, len(ids), R)
			}
			for _, id := range ids {
				if id >= 64 {
					t.Fatalf("table %d bucket %d: invented id %d", l, key, id)
				}
			}
		}
	}
	seen := bitvec.New(d.Len())
	cand, _ := d.Candidates(fam.Sketch(vs[0]), seen, nil)
	if len(cand) == 0 {
		t.Fatal("reservoir-bounded table answers nothing for its own documents")
	}
	if max := R * len(d.buckets); len(cand) > max {
		t.Fatalf("%d candidates from buckets bounded to %d each across %d tables", len(cand), R, len(d.buckets))
	}
}

// TestReservoirDeterministic: the sampling stream is seeded per table, so
// identical inserts under different worker counts produce identical
// buckets — reservoir capping never makes a node nondeterministic.
func TestReservoirDeterministic(t *testing.T) {
	fam := testFamily(t)
	vs := docs(200, 2000, 3)
	build := func(workers int) *Table {
		d := New(fam, workers)
		d.SetReservoir(3, 7)
		d.Insert(vs[:120])
		d.Insert(vs[120:])
		return d
	}
	a, b := build(1), build(4)
	if !reflect.DeepEqual(a.buckets, b.buckets) {
		t.Fatal("reservoir sampling differs across worker counts")
	}
}

// TestReservoirSurvivesCoalesce: the Bentley–Saxe merge re-samples under
// the inherited bound, so coalesced segments stay bounded too.
func TestReservoirSurvivesCoalesce(t *testing.T) {
	fam := testFamily(t)
	const R = 3
	vs := sameDocCopies(80)
	a := New(fam, 2)
	a.SetReservoir(R, 7)
	a.Insert(vs[:40])
	a.Freeze()
	b := New(fam, 2)
	b.SetReservoir(R, 8)
	b.Insert(vs[40:])
	b.Freeze()
	m := Coalesce(fam, a, b, 2, func(int) bool { return false })
	for l, tm := range m.buckets {
		for key, ids := range tm {
			if len(ids) > R {
				t.Fatalf("coalesced table %d bucket %d holds %d items, bound %d", l, key, len(ids), R)
			}
		}
	}
}

// TestSetReservoirRejectsLateArming: the bound must be set before any
// insert — arming it afterwards would leave earlier buckets uncapped.
func TestSetReservoirRejectsLateArming(t *testing.T) {
	fam := testFamily(t)
	d := New(fam, 2)
	d.Insert(docs(1, 2000, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("SetReservoir on a non-empty table did not panic")
		}
	}()
	d.SetReservoir(2, 1)
}
