package plsh

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/persist"
	"plsh/internal/sparse"
	"plsh/internal/transport"
)

// serveBackend serves any NodeClient over TCP on an ephemeral port.
func serveBackend(t *testing.T, backend transport.NodeClient) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go transport.Serve(ctx, l, backend, nil)
	return l.Addr().String()
}

// startTestNode serves a fresh node over TCP on an ephemeral port.
func startTestNode(t *testing.T, capacity int) string {
	t.Helper()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return serveBackend(t, transport.NewLocal(n))
}

// TestTCPClusterEndToEnd drives the full public pipeline — encode, insert,
// query, delete, expire — against real TCP node servers, verifying the
// distributed deployment path works exactly like the in-process one.
func TestTCPClusterEndToEnd(t *testing.T) {
	addrs := []string{
		startTestNode(t, 150),
		startTestNode(t, 150),
		startTestNode(t, 150),
	}
	remote, err := DialCluster(bg, addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Seed must match the TCP nodes' hash families: LSH answers are only
	// comparable across stores drawing identical hyperplanes.
	local, err := NewCluster(3, 2, Config{Dim: 2000, K: 8, M: 6, Capacity: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	docs := SyntheticTweets(400, 2000, 7) // 400 > 3×150·(2/3): forces a wrap
	idsR, err := remote.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	idsL, err := local.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsR) != len(idsL) {
		t.Fatalf("id counts differ: %d vs %d", len(idsR), len(idsL))
	}

	// Identical seeds and routing → identical answers.
	queries := docs[len(docs)-20:]
	resR, err := remote.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	resL, err := local.QueryBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(resR[qi]) != len(resL[qi]) {
			t.Fatalf("query %d: TCP %d results, local %d", qi, len(resR[qi]), len(resL[qi]))
		}
	}

	// Top-K answers agree across transports too (identical merge input).
	for qi, q := range queries[:5] {
		topR, err := remote.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		topL, err := local.QueryTopK(bg, q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(topR) != len(topL) {
			t.Fatalf("top-k query %d: TCP %d results, local %d", qi, len(topR), len(topL))
		}
		for i := range topR {
			if topR[i] != topL[i] {
				t.Fatalf("top-k query %d entry %d: TCP %+v, local %+v", qi, i, topR[i], topL[i])
			}
		}
	}

	// Newest doc findable over TCP; delete removes it.
	last := len(docs) - 1
	found := func() bool {
		res, err := remote.Query(bg, docs[last])
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range res {
			if GlobalID(nb.Node, nb.ID) == idsR[last] {
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("newest doc not found over TCP")
	}
	if err := remote.Delete(bg, idsR[last]); err != nil {
		t.Fatal(err)
	}
	if found() {
		t.Fatal("deleted doc still returned over TCP")
	}

	// Stats reach across the wire.
	stats, err := remote.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += st.StaticLen + st.DeltaLen
	}
	if total == 0 || total > 450 {
		t.Fatalf("implausible cluster total %d", total)
	}
}

// slowBackend is a NodeClient whose query path never answers (it blocks
// until the server shuts down), standing in for a stalled node.
type slowBackend struct{}

func (slowBackend) Insert(ctx context.Context, vs []sparse.Vector) ([]uint32, error) {
	return make([]uint32, len(vs)), nil
}
func (slowBackend) QueryBatch(ctx context.Context, qs []sparse.Vector) ([][]core.Neighbor, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (slowBackend) QueryTopK(ctx context.Context, q sparse.Vector, k int) ([]core.Neighbor, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (slowBackend) Search(ctx context.Context, qs []sparse.Vector, p node.SearchParams) ([][]core.Neighbor, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}
func (slowBackend) Doc(ctx context.Context, id uint32) (sparse.Vector, bool, error) {
	return sparse.Vector{}, false, nil
}
func (slowBackend) Delete(ctx context.Context, id uint32) error { return nil }
func (slowBackend) MergeNow(ctx context.Context) error          { return nil }
func (slowBackend) Flush(ctx context.Context) error             { return nil }
func (slowBackend) Retire(ctx context.Context) error            { return nil }
func (slowBackend) Save(ctx context.Context) error              { return nil }
func (slowBackend) Stats(ctx context.Context) (node.Stats, error) {
	return node.Stats{Capacity: 1000}, nil
}
func (slowBackend) Close() error { return nil }

// TestDialClusterBroadcastHonorsCancellation: over real TCP, a canceled
// context aborts a DialCluster broadcast with ctx.Err() even while one
// node never answers — the coordinator must not wait out the straggler.
func TestDialClusterBroadcastHonorsCancellation(t *testing.T) {
	addrs := []string{
		startTestNode(t, 1000),
		serveBackend(t, slowBackend{}), // this node will never answer a query
	}
	cl, err := DialCluster(bg, addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	docs := SyntheticTweets(50, 2000, 21)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	_, err = cl.QueryBatch(ctx, docs[:5])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("broadcast took %v despite cancellation", elapsed)
	}

	// A deadline works the same way.
	dctx, dcancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer dcancel()
	if _, err := cl.QueryBatch(dctx, docs[:5]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}

	// The same cluster answers fine when given room — but only partially,
	// since the slow node still never replies: the partial-results policy
	// returns the healthy node's answers and reports the straggler.
	res, report, err := cl.QueryBatchTimed(bg, docs[:5], BatchOptions{
		PerNodeTimeout: 100 * time.Millisecond,
		Partial:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("partial results: %d answer lists", len(res))
	}
	if s := report.Stragglers(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("stragglers = %v, want [1]", s)
	}
}

// TestStoreStreamsPastDeltaThreshold verifies the public Store merges
// automatically and stays correct across the static/delta boundary.
func TestStoreStreamsPastDeltaThreshold(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 8, M: 6, Capacity: 3000, DeltaFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(1200, 2000, 9)
	for off := 0; off < len(docs); off += 100 {
		if _, err := s.Insert(bg, docs[off:off+100]); err != nil {
			t.Fatal(err)
		}
	}
	// Merges are asynchronous now: wait for any in-flight one before
	// reading settled stats.
	if err := s.Flush(bg); err != nil {
		t.Fatal(err)
	}
	st := s.StatsNow()
	if st.Merges == 0 {
		t.Fatal("no automatic merges despite exceeding η·C repeatedly")
	}
	for i := 0; i < len(docs); i += 113 {
		res, err := s.Search(bg, docs[i])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range res.Matches {
			if m.ID == uint64(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d lost across merges", i)
		}
	}
}

// dialRetry dials addr until the server is up (it may still be replaying
// its journal when the test reconnects after a restart).
func dialRetry(t *testing.T, addr string) *transport.Client {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := transport.Dial(bg, addr)
		if err == nil {
			// The listener may accept before Serve is wired; verify with a
			// real RPC.
			if _, serr := c.Stats(bg); serr == nil {
				return c
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("node at %s not reachable: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKillNineRecovery is the durability acceptance test from the issue:
// kill -9 a plsh-node mid-ingest, restart it with the same -data
// directory, and every insert that was acknowledged before the kill must
// be returned by Query. A clean SIGTERM restart is then verified to
// checkpoint (snapshot present, journal emptied) and recover identically.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain unavailable")
	}
	bin := filepath.Join(t.TempDir(), "plsh-node")
	if out, err := exec.Command(goBin, "build", "-o", bin, "./cmd/plsh-node").CombinedOutput(); err != nil {
		t.Fatalf("build plsh-node: %v\n%s", err, out)
	}

	dataDir := t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	start := func() *exec.Cmd {
		cmd := exec.Command(bin,
			"-addr", addr, "-dim", "2000", "-k", "8", "-m", "6",
			"-capacity", "100000", "-seed", "42", "-data", dataDir)
		cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
		if err := cmd.Start(); err != nil {
			t.Fatalf("start plsh-node: %v", err)
		}
		return cmd
	}

	proc := start()
	client := dialRetry(t, addr)
	docs := SyntheticTweets(2000, 2000, 77)
	const batch = 25
	acked := 0
	for ; acked < 750; acked += batch {
		if _, err := client.Insert(bg, docs[acked:acked+batch]); err != nil {
			t.Fatalf("insert at %d: %v", acked, err)
		}
	}
	// Keep ingesting from a goroutine and SIGKILL mid-stream, so the kill
	// lands with inserts genuinely in flight.
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := acked; off+batch <= len(docs); off += batch {
			if _, err := client.Insert(bg, docs[off:off+batch]); err != nil {
				return // the kill landed; this batch was never acknowledged
			}
			mu.Lock()
			acked = off + batch
			mu.Unlock()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	proc.Process.Kill() // SIGKILL: no shutdown path runs
	proc.Wait()
	wg.Wait()
	client.Close()
	mu.Lock()
	ackedTotal := acked
	mu.Unlock()

	proc2 := start()
	client2 := dialRetry(t, addr)
	st, err := client2.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if total := st.StaticLen + st.DeltaLen; total < ackedTotal {
		t.Fatalf("recovered %d documents, %d were acknowledged before kill -9", total, ackedTotal)
	}
	// Every acknowledged insert is returned by Query (ids are sequential:
	// one node, one ordered client).
	step := 1
	if ackedTotal > 400 {
		step = ackedTotal / 400 // bound the wall time, still hundreds of probes
	}
	for i := 0; i < ackedTotal; i += step {
		res, err := client2.QueryBatch(bg, []Vector{docs[i]})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nb := range res[0] {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d acknowledged before kill -9 but lost", i)
		}
	}
	client2.Close()

	// Clean shutdown checkpoints: SIGTERM, then verify the snapshot holds
	// everything and the journal was truncated to an empty live segment.
	if err := proc2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	proc2.Wait()
	snap, err := persist.ReadSnapshot(dataDir)
	if err != nil {
		t.Fatalf("no valid snapshot after SIGTERM: %v", err)
	}
	if snap.Rows < ackedTotal {
		t.Fatalf("shutdown snapshot covers %d rows, want >= %d", snap.Rows, ackedTotal)
	}
	segs, err := filepath.Glob(filepath.Join(dataDir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		if fi, err := os.Stat(seg); err != nil || fi.Size() != 0 {
			t.Fatalf("journal %s not truncated after shutdown checkpoint", seg)
		}
	}

	proc3 := start()
	defer func() {
		proc3.Process.Signal(syscall.SIGTERM)
		proc3.Wait()
	}()
	client3 := dialRetry(t, addr)
	defer client3.Close()
	st3, err := client3.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st3.StaticLen != snap.Rows {
		t.Fatalf("snapshot boot: %d static rows, snapshot has %d", st3.StaticLen, snap.Rows)
	}
}
