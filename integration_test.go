package plsh

import (
	"net"
	"testing"

	"plsh/internal/core"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/transport"
)

// startTestNode serves a fresh node over TCP on an ephemeral port.
func startTestNode(t *testing.T, capacity int) string {
	t.Helper()
	n, err := node.New(node.Config{
		Params:   lshhash.Params{Dim: 2000, K: 8, M: 6, Seed: 42},
		Capacity: capacity,
		Build:    core.Defaults(),
		Query:    core.QueryDefaults(),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go transport.Serve(l, n, done)
	return l.Addr().String()
}

// TestTCPClusterEndToEnd drives the full public pipeline — encode, insert,
// query, delete, expire — against real TCP node servers, verifying the
// distributed deployment path works exactly like the in-process one.
func TestTCPClusterEndToEnd(t *testing.T) {
	addrs := []string{
		startTestNode(t, 150),
		startTestNode(t, 150),
		startTestNode(t, 150),
	}
	remote, err := DialCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// Seed must match the TCP nodes' hash families: LSH answers are only
	// comparable across stores drawing identical hyperplanes.
	local, err := NewCluster(3, 2, Config{Dim: 2000, K: 8, M: 6, Capacity: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	docs := SyntheticTweets(400, 2000, 7) // 400 > 3×150·(2/3): forces a wrap
	idsR, err := remote.Insert(docs)
	if err != nil {
		t.Fatal(err)
	}
	idsL, err := local.Insert(docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsR) != len(idsL) {
		t.Fatalf("id counts differ: %d vs %d", len(idsR), len(idsL))
	}

	// Identical seeds and routing → identical answers.
	queries := docs[len(docs)-20:]
	resR, err := remote.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	resL, err := local.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range queries {
		if len(resR[qi]) != len(resL[qi]) {
			t.Fatalf("query %d: TCP %d results, local %d", qi, len(resR[qi]), len(resL[qi]))
		}
	}

	// Newest doc findable over TCP; delete removes it.
	last := len(docs) - 1
	found := func() bool {
		res, err := remote.Query(docs[last])
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range res {
			if GlobalID(nb.Node, nb.ID) == idsR[last] {
				return true
			}
		}
		return false
	}
	if !found() {
		t.Fatal("newest doc not found over TCP")
	}
	if err := remote.Delete(idsR[last]); err != nil {
		t.Fatal(err)
	}
	if found() {
		t.Fatal("deleted doc still returned over TCP")
	}

	// Stats reach across the wire.
	stats, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, st := range stats {
		total += st.StaticLen + st.DeltaLen
	}
	if total == 0 || total > 450 {
		t.Fatalf("implausible cluster total %d", total)
	}
}

// TestStoreStreamsPastDeltaThreshold verifies the public Store merges
// automatically and stays correct across the static/delta boundary.
func TestStoreStreamsPastDeltaThreshold(t *testing.T) {
	s, err := NewStore(Config{Dim: 2000, K: 8, M: 6, Capacity: 3000, DeltaFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	docs := SyntheticTweets(1200, 2000, 9)
	for off := 0; off < len(docs); off += 100 {
		if _, err := s.Insert(docs[off : off+100]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Merges == 0 {
		t.Fatal("no automatic merges despite exceeding η·C repeatedly")
	}
	for i := 0; i < len(docs); i += 113 {
		found := false
		for _, nb := range s.Query(docs[i]) {
			if nb.ID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("doc %d lost across merges", i)
		}
	}
}
