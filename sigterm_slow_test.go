//go:build slow

package plsh

import (
	"testing"
	"time"

	"plsh/internal/clustertest"
	"plsh/internal/persist"
)

// TestFaultInjectionSigtermDrainsAndCheckpoints pins the graceful-drain
// shutdown path: a SIGTERM delivered mid-ingest must let in-flight RPCs
// finish (no acknowledged write torn by its own server's shutdown), exit
// cleanly, and checkpoint the quiescent node — so the journal holds zero
// post-checkpoint records and the next boot is a pure snapshot load that
// still serves every acknowledged document.
func TestFaultInjectionSigtermDrainsAndCheckpoints(t *testing.T) {
	fleet := clustertest.Start(t, 1, faultNodeArgs...)
	cl, err := DialCluster(bg, fleet.Addrs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := SyntheticTweets(900, 2000, 7)
	acked := 0
	stopErr := make(chan error, 1)
	fired := false
	// Stream small batches; once enough are acknowledged, deliver SIGTERM
	// concurrently and keep inserting until the shutdown refuses us — so
	// the signal genuinely races in-flight ingest.
	for i := 0; i+3 <= len(docs); i += 3 {
		if _, err := cl.Insert(bg, docs[i:i+3]); err != nil {
			break
		}
		acked += 3
		if !fired && acked >= 150 {
			fired = true
			go func() { stopErr <- fleet.Nodes[0].Stop(20 * time.Second) }()
		}
	}
	if !fired {
		t.Fatalf("stream ended after %d acknowledged documents without firing SIGTERM", acked)
	}
	if err := <-stopErr; err != nil {
		t.Fatalf("graceful stop: %v", err)
	}

	// The shutdown checkpoint ran over a quiescent node, so nothing may
	// remain to replay: a record here means the drain raced the
	// checkpoint and an acknowledged write landed after it.
	records := 0
	err = persist.ReplayWAL(fleet.Nodes[0].Dir, func(*persist.Record) error {
		records++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != 0 {
		t.Fatalf("journal holds %d records after graceful shutdown, want 0 (checkpoint must cover everything)", records)
	}

	// Recovery is a pure snapshot load and must hold at least every
	// acknowledged insert (a batch acknowledged as the connection died
	// may add a few more — durable-but-unconfirmed is allowed, the
	// reverse is not).
	if err := fleet.Nodes[0].Start(); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	rows := st[0].StaticLen + st[0].DeltaLen
	if rows < acked {
		t.Fatalf("recovered %d rows, want >= %d acknowledged before SIGTERM", rows, acked)
	}
	// And the recovered state answers: every acknowledged document finds
	// itself at distance ~0.
	queries := docs[:16]
	res, report, err := cl.SearchBatch(bg, queries)
	if err != nil || !report.Complete() {
		t.Fatalf("post-recovery search: err=%v complete=%v", err, report.Complete())
	}
	for qi := range queries {
		self := false
		for _, m := range res[qi].Matches {
			if m.Node() == 0 && m.Local() == uint32(qi) {
				self = true
				break
			}
		}
		if !self {
			t.Fatalf("query %d: acknowledged document missing after graceful shutdown + recovery", qi)
		}
	}
}
