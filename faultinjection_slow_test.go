//go:build slow

// The kill/restart fault-injection suite: real plsh-node processes,
// SIGKILLed at chosen points. Gated behind the `slow` build tag and run
// by CI's integration job:
//
//	go test -tags slow -run '^TestFaultInjection' -timeout 20m .
//
// The fast in-process TCP versions of these properties live in
// replication_test.go; this file proves them against genuine process
// death (kernel-torn sockets, no Go cleanup, journal-only survival).
package plsh

import (
	"reflect"
	"testing"
	"time"

	"plsh/internal/clustertest"
)

// faultNodeArgs are the node parameters every fault-injection fleet
// shares. K=4 over M=16 (L=120 tables) drives per-neighbor retrieval
// probability to ~1 and one seed makes every node — and every replica
// pair — a deterministic mirror, so answers are comparable exactly.
var faultNodeArgs = []string{
	"-dim", "2000", "-k", "4", "-m", "16", "-capacity", "1000", "-seed", "42",
}

// TestFaultInjectionKillAnyReplicaKeepsSearchComplete is the acceptance
// criterion: with Replicas=2 on a 6-node TCP cluster, SIGKILL of any
// single node during SearchBatch produces a Complete report whose
// answers are identical to the no-failure oracle.
func TestFaultInjectionKillAnyReplicaKeepsSearchComplete(t *testing.T) {
	fleet := clustertest.Start(t, 6, faultNodeArgs...)
	cl, err := DialCluster(bg, fleet.Addrs(), 3, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := SyntheticTweets(600, 2000, 81)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	queries := docs[:24]
	oracle, oracleReport, err := cl.SearchBatch(bg, queries)
	if err != nil || !oracleReport.Complete() {
		t.Fatalf("pre-kill oracle: err=%v complete=%v", err, oracleReport.Complete())
	}

	for victim, nd := range fleet.Nodes {
		type outcome struct {
			res    []Result
			report Report
			err    error
		}
		outcomes := make(chan outcome, 6)
		go func() {
			for j := 0; j < 6; j++ {
				res, report, err := cl.SearchBatch(bg, queries)
				outcomes <- outcome{res, report, err}
			}
		}()
		time.Sleep(5 * time.Millisecond) // land the kill with searches in flight
		nd.Kill()
		for j := 0; j < 6; j++ {
			o := <-outcomes
			if o.err != nil {
				t.Fatalf("victim %d search %d failed: %v", victim, j, o.err)
			}
			if !o.report.Complete() {
				t.Fatalf("victim %d search %d: incomplete, stragglers %v",
					victim, j, o.report.Stragglers())
			}
			if !reflect.DeepEqual(o.res, oracle) {
				t.Fatalf("victim %d search %d: answers diverge from the pre-kill oracle", victim, j)
			}
		}
		// Restart before the next victim so exactly one node is ever down;
		// Start waits out the journal replay.
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFaultInjectionWholeGroupDegradesToPartial: SIGKILLing both members
// of one group is unsurvivable for that shard — all-or-nothing fails,
// and AllowPartial returns the documented partial answer with the dead
// group named in the report.
func TestFaultInjectionWholeGroupDegradesToPartial(t *testing.T) {
	fleet := clustertest.Start(t, 6, faultNodeArgs...)
	cl, err := DialCluster(bg, fleet.Addrs(), 3, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := SyntheticTweets(600, 2000, 83)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	queries := docs[:24]
	oracle, _, err := cl.SearchBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}

	// Group 1 is nodes 2 and 3 (group-major placement).
	fleet.Nodes[2].Kill()
	fleet.Nodes[3].Kill()

	if _, _, err := cl.SearchBatch(bg, queries); err == nil {
		t.Fatal("all-or-nothing SearchBatch succeeded with a whole group dead")
	}
	res, report, err := cl.SearchBatch(bg, queries, AllowPartial())
	if err != nil {
		t.Fatalf("partial SearchBatch with a dead group: %v", err)
	}
	if report.Complete() {
		t.Fatal("report claims completeness with a dead group")
	}
	if s := report.Stragglers(); len(s) != 1 || s[0] != 1 {
		t.Fatalf("stragglers = %v, want [1] (the dead group)", s)
	}
	for qi := range queries {
		var want []Match
		for _, m := range oracle[qi].Matches {
			if m.Node() != 1 {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(res[qi].Matches, want) {
			t.Fatalf("query %d: partial answer is not oracle-minus-group-1", qi)
		}
	}
}

// TestFaultInjectionRoutedGroupFailover: partitioned placement against
// genuine process death. SIGKILLing one member of a group the router
// actually probes leaves routed searches Complete and identical to the
// pre-kill baseline — failover runs inside the routed set, never by
// widening it. SIGKILLing the whole routed-to group fails all-or-nothing
// and AllowPartial names exactly that group.
func TestFaultInjectionRoutedGroupFailover(t *testing.T) {
	fleet := clustertest.Start(t, 8, faultNodeArgs...)
	cl, err := DialCluster(bg, fleet.Addrs(), 0, WithReplicas(2),
		WithPartitioned(Config{Dim: 2000, K: 4, M: 16, Seed: 42, RoutingRecall: 0.7}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := SyntheticTweets(600, 2000, 87)
	if _, err := cl.Insert(bg, docs); err != nil {
		t.Fatal(err)
	}
	queries := docs[:24]
	oracle, report, err := cl.SearchBatch(bg, queries, WithTrace())
	if err != nil || !report.Complete() {
		t.Fatalf("pre-kill routed baseline: err=%v complete=%v", err, report.Complete())
	}
	if report.RoutedGroups == 0 {
		t.Fatal("routing never engaged; the trace recorded no probes")
	}

	// Kill the member that just won for a routed-to group: routing is
	// deterministic, so every rerun probes that group again and must now
	// fail over to the sibling.
	victim, dead := -1, -1
	for _, a := range report.Attempts {
		if a.Won {
			victim, dead = a.Group, a.Node
			break
		}
	}
	if victim < 0 {
		t.Fatal("trace recorded no winning attempt")
	}
	fleet.Nodes[dead].Kill()
	sawFailover := false
	for j := 0; j < 50; j++ {
		res, rep, err := cl.SearchBatch(bg, queries, WithTrace())
		if err != nil {
			t.Fatalf("routed search %d with a dead member: %v", j, err)
		}
		if !rep.Complete() {
			t.Fatalf("routed search %d: incomplete, stragglers %v", j, rep.Stragglers())
		}
		if !reflect.DeepEqual(res, oracle) {
			t.Fatalf("routed search %d: answers diverge from the pre-kill baseline", j)
		}
		for _, a := range rep.Attempts {
			if a.Won && a.Node == dead {
				t.Fatalf("routed search %d: dead member recorded as winner", j)
			}
		}
		if sawFailover = rep.Failovers() > 0; sawFailover {
			break
		}
	}
	if !sawFailover {
		t.Fatal("no failover recorded across 50 routed searches with a dead member")
	}

	// Whole routed-to group down (contiguous pairs: sibling is dead^1):
	// the routed search cannot satisfy its probe set, so all-or-nothing
	// fails and AllowPartial degrades to baseline minus that group.
	fleet.Nodes[dead^1].Kill()
	if _, _, err := cl.SearchBatch(bg, queries); err == nil {
		t.Fatal("all-or-nothing routed SearchBatch succeeded with a whole routed-to group dead")
	}
	pres, preport, err := cl.SearchBatch(bg, queries, AllowPartial())
	if err != nil {
		t.Fatalf("partial routed SearchBatch with a dead group: %v", err)
	}
	if s := preport.Stragglers(); len(s) != 1 || s[0] != victim {
		t.Fatalf("stragglers = %v, want [%d] (the dead routed-to group)", s, victim)
	}
	for qi := range queries {
		var want []Match
		for _, m := range oracle[qi].Matches {
			if m.Node() != victim {
				want = append(want, m)
			}
		}
		if !reflect.DeepEqual(pres[qi].Matches, want) {
			t.Fatalf("query %d: partial routed answer is not baseline-minus-group-%d", qi, victim)
		}
	}
}

// TestFaultInjectionReplicaRestartsFromWALAndRejoins: a SIGKILLed
// replica that restarts recovers every acknowledged write from its
// journal and rejoins the running cluster — proven by killing its
// sibling afterwards, leaving the recovered node to serve the group
// alone with answers identical to the pre-kill oracle.
func TestFaultInjectionReplicaRestartsFromWALAndRejoins(t *testing.T) {
	fleet := clustertest.Start(t, 2, faultNodeArgs...)
	cl, err := DialCluster(bg, fleet.Addrs(), 1, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	docs := SyntheticTweets(400, 2000, 85)
	ids, err := cl.Insert(bg, docs)
	if err != nil {
		t.Fatal(err)
	}
	// A delete before the kill must also survive the journal replay.
	if err := cl.Delete(bg, ids[3]); err != nil {
		t.Fatal(err)
	}
	queries := docs[:24]
	oracle, _, err := cl.SearchBatch(bg, queries)
	if err != nil {
		t.Fatal(err)
	}

	// Kill replica 0; the group keeps answering through replica 1.
	fleet.Nodes[0].Kill()
	masked, report, err := cl.SearchBatch(bg, queries)
	if err != nil || !report.Complete() {
		t.Fatalf("search with one replica dead: err=%v complete=%v", err, report.Complete())
	}
	if !reflect.DeepEqual(masked, oracle) {
		t.Fatal("sibling-served answers diverge from the oracle")
	}

	// Restart replica 0 (journal replay), then kill replica 1: the
	// recovered node now serves alone and must answer identically —
	// including the pre-kill delete staying deleted.
	if err := fleet.Nodes[0].Start(); err != nil {
		t.Fatal(err)
	}
	fleet.Nodes[1].Kill()
	alone, report, err := cl.SearchBatch(bg, queries)
	if err != nil || !report.Complete() {
		t.Fatalf("search served by the recovered replica: err=%v complete=%v", err, report.Complete())
	}
	if !reflect.DeepEqual(alone, oracle) {
		t.Fatal("recovered replica's answers diverge from the pre-kill oracle")
	}
	for _, m := range alone[3].Matches {
		if m.ID == ids[3] {
			t.Fatal("pre-kill delete resurrected by journal replay")
		}
	}
}
