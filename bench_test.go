// Benchmarks regenerating the paper's tables and figures as testing.B
// targets. Each BenchmarkTableN/BenchmarkFigN corresponds to a row/series
// of the evaluation (§8); cmd/plsh-bench prints the full formatted
// counterparts. Fixtures are cached across b.N re-runs, so setup cost is
// paid once per configuration.
package plsh

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plsh/internal/baseline"
	"plsh/internal/core"
	"plsh/internal/corpus"
	"plsh/internal/delta"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/sched"
	"plsh/internal/sparse"
)

// Bench scale: large enough that candidate sets behave realistically,
// small enough that the full suite finishes in minutes.
const (
	benchN    = 20000
	benchDim  = 20000
	benchQ    = 200
	benchSeed = 42
)

type fixture struct {
	col     *corpus.Collection
	queries []sparse.Vector
	fams    map[[2]int]*lshhash.Family
	statics map[[2]int]*core.Static
	mu      sync.Mutex
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		col := corpus.Generate(corpus.Twitter(benchN, benchDim, benchSeed))
		fix = &fixture{
			col:     col,
			queries: col.SampleQueries(benchQ, benchSeed+1),
			fams:    map[[2]int]*lshhash.Family{},
			statics: map[[2]int]*core.Static{},
		}
	})
	return fix
}

func (f *fixture) family(b *testing.B, k, m int) *lshhash.Family {
	b.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]int{k, m}
	if fam, ok := f.fams[key]; ok {
		return fam
	}
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: benchDim, K: k, M: m, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	f.fams[key] = fam
	return fam
}

func (f *fixture) static(b *testing.B, k, m int) *core.Static {
	b.Helper()
	fam := f.family(b, k, m)
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]int{k, m}
	if st, ok := f.statics[key]; ok {
		return st
	}
	st, err := core.Build(fam, f.col.Mat, core.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	f.statics[key] = st
	return st
}

// reportPerQuery converts total batch nanoseconds into a per-query metric.
func reportPerQuery(b *testing.B, queries int) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*queries), "ns/query")
}

// --- Table 2: PLSH vs inverted index vs exhaustive search ---------------

func BenchmarkTable2PLSH(b *testing.B) {
	f := benchFixture(b)
	st := f.static(b, 12, 10)
	eng := core.NewEngine(st, f.col.Mat, core.QueryDefaults())
	eng.QueryBatch(f.queries[:32])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.QueryBatch(f.queries)
	}
	reportPerQuery(b, len(f.queries))
}

func BenchmarkTable2InvertedIndex(b *testing.B) {
	f := benchFixture(b)
	inv := baseline.NewInverted(f.col.Mat, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.QueryBatch(f.queries)
	}
	reportPerQuery(b, len(f.queries))
}

func BenchmarkTable2Exhaustive(b *testing.B) {
	f := benchFixture(b)
	ex := baseline.NewExhaustive(f.col.Mat, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.QueryBatch(f.queries)
	}
	reportPerQuery(b, len(f.queries))
}

func BenchmarkTable2ChainedLSH(b *testing.B) {
	f := benchFixture(b)
	ch := baseline.NewChained(f.family(b, 12, 10), f.col.Mat, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.QueryBatch(f.queries)
	}
	reportPerQuery(b, len(f.queries))
}

// --- Figure 4: construction optimization breakdown -----------------------

func BenchmarkFig4Construction(b *testing.B) {
	f := benchFixture(b)
	fam := f.family(b, 12, 10)
	for _, cfg := range []struct {
		name string
		opts core.BuildOptions
	}{
		{"NoOpt", core.BuildOptions{}},
		{"TwoLevel", core.BuildOptions{TwoLevel: true}},
		{"SharedTables", core.BuildOptions{TwoLevel: true, ShareFirstLevel: true}},
		{"Vectorized", core.BuildOptions{TwoLevel: true, ShareFirstLevel: true, Vectorized: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(fam, f.col.Mat, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5: query optimization breakdown ------------------------------

func BenchmarkFig5Query(b *testing.B) {
	f := benchFixture(b)
	st := f.static(b, 12, 10)
	scattered := sparse.NewScatteredStore(f.col.Mat)
	for _, cfg := range []struct {
		name  string
		store sparse.Store
		opts  core.QueryOptions
	}{
		{"NoOpt", scattered, core.QueryOptions{}},
		{"Bitvector", scattered, core.QueryOptions{UseBitvector: true}},
		{"OptSparseDP", scattered, core.QueryOptions{UseBitvector: true, OptimizedDP: true}},
		{"Extract", scattered, core.QueryOptions{UseBitvector: true, OptimizedDP: true, ExtractCandidates: true}},
		{"Arena", f.col.Mat, core.QueryOptions{UseBitvector: true, OptimizedDP: true, ExtractCandidates: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			cfg.opts.Radius = 0.9
			eng := core.NewEngine(st, cfg.store, cfg.opts)
			// Steady-state measurement via the append API: one dst held
			// across batches, so after the warm-up pass each iteration
			// reuses every per-query answer buffer and the engine's
			// pooled workspaces — the B/op and allocs/op columns price
			// the hot path, not per-call result storage.
			var dst [][]core.Neighbor
			dst = eng.SearchBatchAppend(dst, f.queries, core.SearchParams{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = eng.SearchBatchAppend(dst, f.queries, core.SearchParams{})
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

// --- Figure 7: query time across (k, m) ----------------------------------

func BenchmarkFig7Params(b *testing.B) {
	f := benchFixture(b)
	for _, pt := range []struct{ k, m int }{{12, 21}, {14, 29}, {16, 40}} {
		b.Run(fmt.Sprintf("k%dm%d", pt.k, pt.m), func(b *testing.B) {
			st := f.static(b, pt.k, pt.m)
			eng := core.NewEngine(st, f.col.Mat, core.QueryDefaults())
			eng.QueryBatch(f.queries[:32])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.QueryBatch(f.queries)
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

// --- Figure 8: thread scaling --------------------------------------------

func BenchmarkFig8InitThreads(b *testing.B) {
	f := benchFixture(b)
	fam := f.family(b, 12, 10)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			opts := core.Defaults()
			opts.Workers = threads
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(fam, f.col.Mat, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8QueryThreads(b *testing.B) {
	f := benchFixture(b)
	st := f.static(b, 12, 10)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("t%d", threads), func(b *testing.B) {
			opts := core.QueryDefaults()
			opts.Workers = threads
			eng := core.NewEngine(st, f.col.Mat, opts)
			eng.QueryBatch(f.queries[:32])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.QueryBatch(f.queries)
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

// --- Figure 9: node scaling ----------------------------------------------

func BenchmarkFig9Nodes(b *testing.B) {
	f := benchFixture(b)
	perNode := 4000
	for _, nodes := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("n%d", nodes), func(b *testing.B) {
			cl, err := NewCluster(nodes, nodes, Config{
				Dim: benchDim, K: 12, M: 10, Capacity: perNode + 1, Seed: benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			docs := docsSlice(f.col, nodes*perNode)
			if _, err := cl.Insert(bg, docs); err != nil {
				b.Fatal(err)
			}
			if err := cl.Merge(bg); err != nil {
				b.Fatal(err)
			}
			if _, err := cl.QueryBatch(bg, f.queries[:32]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.QueryBatch(bg, f.queries); err != nil {
					b.Fatal(err)
				}
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

// Top-K broadcast: per-node pruning + bounded-heap coordinator merge.
func BenchmarkClusterQueryTopK(b *testing.B) {
	f := benchFixture(b)
	perNode := 4000
	const nodes = 4
	cl, err := NewCluster(nodes, nodes, Config{
		Dim: benchDim, K: 12, M: 10, Capacity: perNode + 1, Seed: benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(bg, docsSlice(f.col, nodes*perNode)); err != nil {
		b.Fatal(err)
	}
	if err := cl.Merge(bg); err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{10, 100} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range f.queries[:32] {
					if _, err := cl.QueryTopK(bg, q, k); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportPerQuery(b, 32)
		})
	}
}

// BenchmarkSearchTopK measures the unified Search path's bounded query
// shape and prices the request-scoped radius: the "construction" arm
// searches at the store's own radius, the "override" arm forces the same
// effective radius onto a store built with a different one via
// WithRadius. The two arms do identical candidate work — the per-request
// parameter costs one struct copy, not a rebuild — so their ns/search-topk
// metrics should track each other.
func BenchmarkSearchTopK(b *testing.B) {
	f := benchFixture(b)
	const radius = 0.9
	mkStore := func(consRadius float64) *Store {
		s, err := NewStore(Config{
			Dim: benchDim, K: 12, M: 10, Radius: consRadius,
			Capacity: benchN, Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Insert(bg, docsSlice(f.col, benchN)); err != nil {
			b.Fatal(err)
		}
		if err := s.Merge(bg); err != nil {
			b.Fatal(err)
		}
		return s
	}
	arms := []struct {
		name       string
		consRadius float64
		opts       []SearchOption
	}{
		// Radius fixed at construction — the pre-redesign operating point.
		{"construction", radius, []SearchOption{WithK(10)}},
		// Same effective radius, but request-scoped onto a store whose
		// construction radius differs.
		{"override", 1.3, []SearchOption{WithK(10), WithRadius(radius)}},
	}
	queries := f.queries[:64]
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			s := mkStore(arm.consRadius)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := s.Search(bg, q, arm.opts...); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/search-topk")
		})
	}
}

// BenchmarkSearchReplicated prices the replica layer on the broadcast
// path: the same corpus and bounded batch searched through a single-copy
// cluster (replicas=1), an R=2 cluster (one member answers per group —
// the mirroring costs inserts, not searches), and an R=2 cluster with
// the tail hedge armed (on a healthy cluster the hedge timer virtually
// never fires, so its cost should be noise). Surfaced in
// benchmarks/latest.json as search_replicated_*_ns via plsh-bench2json.
func BenchmarkSearchReplicated(b *testing.B) {
	f := benchFixture(b)
	const endpoints = 4
	const docsN = 8000
	queries := f.queries[:64]
	arms := []struct {
		name     string
		replicas int
		opts     []SearchOption
	}{
		{"replicas=1", 1, []SearchOption{WithK(10)}},
		{"replicas=2", 2, []SearchOption{WithK(10)}},
		{"replicas=2-hedged", 2, []SearchOption{WithK(10), WithHedge(50 * time.Millisecond)}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cl, err := NewCluster(endpoints, 0, Config{
				Dim: benchDim, K: 12, M: 10, Capacity: docsN,
				Replicas: arm.replicas, Seed: benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Insert(bg, docsSlice(f.col, docsN)); err != nil {
				b.Fatal(err)
			}
			if err := cl.Merge(bg); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.SearchBatch(bg, queries, arm.opts...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/replicated-search")
		})
	}
}

// BenchmarkSearchRouted prices data-aware query routing against the
// scatter broadcast on the same fleet shapes: 4 and 16 single-copy
// groups, same corpus, same top-10 queries. The partitioned arms place
// by LSH signature and probe only the groups the router proves can hold
// in-radius candidates (RoutingRecall 0.7 at the default radius), so
// they should beat their scatter twins on both ns and B/op — the win
// grows with the group count, since scatter pays every group on every
// query. Tracked in benchmarks/latest.json as search_routed_*.
func BenchmarkSearchRouted(b *testing.B) {
	f := benchFixture(b)
	const docsN = 8000
	queries := f.queries[:64]
	arms := []struct {
		name   string
		groups int
		part   bool
	}{
		{"scatter-g4", 4, false},
		{"part-g4", 4, true},
		{"scatter-g16", 16, false},
		{"part-g16", 16, true},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			cfg := Config{
				Dim: benchDim, K: 12, M: 10, Capacity: docsN, Seed: benchSeed,
			}
			if arm.part {
				cfg.Placement = PlacementPartitioned
				cfg.RoutingRecall = 0.7
			}
			// windowM = groups: the scatter arms spread the corpus over the
			// whole fleet (the default 4-group window would leave most groups
			// empty and make the broadcast artificially cheap); partitioned
			// placement ignores the window.
			cl, err := NewCluster(arm.groups, arm.groups, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.Insert(bg, docsSlice(f.col, docsN)); err != nil {
				b.Fatal(err)
			}
			if err := cl.Merge(bg); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cl.SearchBatch(bg, queries, WithK(10)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/routed-search")
		})
	}
}

func docsSlice(c *corpus.Collection, n int) []sparse.Vector {
	out := make([]sparse.Vector, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.Mat.Row(i%c.Mat.Rows()))
	}
	return out
}

// --- Figure 10: latency vs throughput across batch sizes -----------------

func BenchmarkFig10BatchSize(b *testing.B) {
	f := benchFixture(b)
	st := f.static(b, 12, 10)
	eng := core.NewEngine(st, f.col.Mat, core.QueryDefaults())
	all := f.col.SampleQueries(1000, benchSeed+5)
	eng.QueryBatch(all[:64])
	for _, bs := range []int{1, 10, 30, 100, 1000} {
		b.Run(fmt.Sprintf("b%d", bs), func(b *testing.B) {
			batch := all[:bs]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.QueryBatch(batch)
			}
			reportPerQuery(b, bs)
		})
	}
}

// --- Figure 11: streaming delta overhead ---------------------------------

func BenchmarkFig11DeltaFill(b *testing.B) {
	f := benchFixture(b)
	for _, cfg := range []struct {
		name            string
		staticN, deltaN int
	}{
		{"AllStatic", benchN, 0},
		{"Static90Delta5", benchN * 9 / 10, benchN / 20},
		{"Static90Delta10", benchN * 9 / 10, benchN / 10},
		{"Static50Delta10", benchN / 2, benchN / 10},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			n := benchNode(b, cfg.staticN, cfg.deltaN)
			n.QueryBatch(bg, f.queries[:32])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.QueryBatch(bg, f.queries)
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

func benchNode(b *testing.B, staticN, deltaN int) *node.Node {
	b.Helper()
	f := benchFixture(b)
	cfg := node.Config{
		Params:    lshhash.Params{Dim: benchDim, K: 12, M: 10, Seed: benchSeed},
		Capacity:  staticN + deltaN + 1,
		AutoMerge: false,
		Build:     core.Defaults(),
		Query:     core.QueryDefaults(),
	}
	n, err := node.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	docs := docsSlice(f.col, staticN+deltaN)
	if staticN > 0 {
		if _, err := n.Insert(bg, docs[:staticN]); err != nil {
			b.Fatal(err)
		}
		if err := n.MergeNow(bg); err != nil {
			b.Fatal(err)
		}
	}
	if deltaN > 0 {
		if _, err := n.Insert(bg, docs[staticN:]); err != nil {
			b.Fatal(err)
		}
	}
	return n
}

// --- Non-blocking merges: query latency while rebuilds run ---------------

// BenchmarkQueryDuringMerge measures single-query latency with static
// rebuilds continuously in flight: a churn goroutine cycles delta fills
// and forced merges for the whole measurement, so most samples land while
// a background merge is running. Under the paper's buffer-queries-during-
// merge design this number would approach the merge duration; under the
// snapshot model it should stay near the no-merge query time (compare
// BenchmarkFig10BatchSize/b1).
func BenchmarkQueryDuringMerge(b *testing.B) {
	f := benchFixture(b)
	cfg := node.Config{
		Params:    lshhash.Params{Dim: benchDim, K: 12, M: 10, Seed: benchSeed},
		Capacity:  benchN * 4,
		AutoMerge: false,
		Build:     core.Defaults(),
		Query:     core.QueryDefaults(),
	}
	n, err := node.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := docsSlice(f.col, benchN)
	if _, err := n.Insert(bg, base); err != nil {
		b.Fatal(err)
	}
	if err := n.MergeNow(bg); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		chunk := docsSlice(f.col, benchN/10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n.Len()+len(chunk) > cfg.Capacity {
				n.Retire(bg)
				if _, err := n.Insert(bg, base); err != nil {
					b.Error(err)
					return
				}
			}
			if _, err := n.Insert(bg, chunk); err != nil {
				b.Error(err)
				return
			}
			if err := n.MergeNow(bg); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Query(bg, f.queries[i%len(f.queries)]); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	close(stop)
	<-churnDone
	b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N), "ns/query-during-merge")
}

// --- §8.6: streaming insert and merge costs ------------------------------

func BenchmarkStreamingInsertChunk(b *testing.B) {
	f := benchFixture(b)
	fam := f.family(b, 12, 10)
	chunk := docsSlice(f.col, benchN/100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dt := delta.New(fam, 0)
		b.StartTimer()
		dt.Insert(chunk)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(chunk)), "ns/doc")
}

func BenchmarkStreamingMerge(b *testing.B) {
	f := benchFixture(b)
	fam := f.family(b, 12, 10)
	for i := 0; i < b.N; i++ {
		// Merge = rebuild over all rows (§6.2); this is the dominant cost.
		if _, err := core.Build(fam, f.col.Mat, core.Defaults()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations beyond the figures ----------------------------------------

// Hashing kernels: the Fig. 4 "+vectorization" arm in isolation.
func BenchmarkHashingKernel(b *testing.B) {
	f := benchFixture(b)
	fam := f.family(b, 16, 16)
	pool := sched.NewPool(0)
	b.Run("Vectorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fam.SketchAll(f.col.Mat, pool, true)
		}
	})
	b.Run("Scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fam.SketchAll(f.col.Mat, pool, false)
		}
	})
}

// Dedup strategies: bitvector-and-extract vs mark-and-append vs map set.
func BenchmarkDedupStrategy(b *testing.B) {
	f := benchFixture(b)
	st := f.static(b, 12, 10)
	for _, cfg := range []struct {
		name string
		opts core.QueryOptions
	}{
		{"MapSet", core.QueryOptions{Radius: 0.9, OptimizedDP: true}},
		{"BitvecAppend", core.QueryOptions{Radius: 0.9, UseBitvector: true, OptimizedDP: true}},
		{"BitvecExtract", core.QueryOptions{Radius: 0.9, UseBitvector: true, ExtractCandidates: true, OptimizedDP: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			eng := core.NewEngine(st, f.col.Mat, cfg.opts)
			eng.QueryBatch(f.queries[:32])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.QueryBatch(f.queries)
			}
			reportPerQuery(b, len(f.queries))
		})
	}
}

// Sparse dot-product kernels (§5.2.3).
func BenchmarkSparseDotKernels(b *testing.B) {
	f := benchFixture(b)
	q := f.queries[0]
	mask := sparse.NewQueryMask(benchDim)
	mask.Scatter(q)
	docs := make([]sparse.Vector, 256)
	for i := range docs {
		docs[i] = f.col.Mat.Row(i)
	}
	b.Run("MergeIntersect", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				sink += sparse.Dot(q, d)
			}
		}
		_ = sink
	})
	b.Run("BinarySearch", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				sink += sparse.DotBinary(q, d)
			}
		}
		_ = sink
	})
	b.Run("QueryMask", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			for _, d := range docs {
				sink += mask.Dot(d.Idx, d.Val)
			}
		}
		_ = sink
	})
}

// Parameter auto-tuning end to end (§7.3).
func BenchmarkTune(b *testing.B) {
	f := benchFixture(b)
	sample := docsSlice(f.col, 1000)
	for i := 0; i < b.N; i++ {
		if _, err := Tune(sample, TuneOptions{TargetN: benchN}); err != nil {
			b.Fatal(err)
		}
	}
}
