package plsh

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"plsh/internal/cluster"
	"plsh/internal/lshhash"
	"plsh/internal/node"
	"plsh/internal/transport"
)

// Placement selects how a Cluster places documents onto replica groups
// and which groups a search contacts — see Config.Placement.
type Placement = cluster.Placement

const (
	// PlacementScatter is the default: inserts round-robin over the
	// rolling window, searches broadcast to every group (the paper's
	// layout, bit-stable with pre-placement clusters).
	PlacementScatter = cluster.PlacementScatter
	// PlacementPartitioned routes inserts by LSH bucket signature and
	// searches to the recall-bounded probe set of groups that can hold
	// each query's in-radius neighbors.
	PlacementPartitioned = cluster.PlacementPartitioned
)

// clusterOptions translates a normalized Config into coordinator
// options, building the signature router when placement is partitioned —
// one shared construction so OpenCluster and DialCluster cannot drift.
func clusterOptions(cfg Config, windowM, groups int) (cluster.Options, error) {
	opts := cluster.Options{
		WindowM:   windowM,
		Replicas:  cfg.Replicas,
		Placement: cfg.Placement,
	}
	if cfg.Placement != PlacementPartitioned {
		return opts, nil
	}
	fam, err := lshhash.NewFamily(lshhash.Params{Dim: cfg.Dim, K: cfg.K, M: cfg.M, Seed: cfg.Seed})
	if err != nil {
		return opts, fmt.Errorf("plsh: %w", err)
	}
	opts.Router, err = cluster.NewRouter(fam, cluster.RouterConfig{
		Groups: groups,
		Radius: cfg.Radius,
		Recall: cfg.RoutingRecall,
	})
	if err != nil {
		return opts, fmt.Errorf("plsh: %w", err)
	}
	return opts, nil
}

// ClusterNeighbor is a legacy cluster query answer: the replica-group
// index (the node index when Replicas is 1), the group-local document ID,
// and the angular distance. GlobalID packs the first two into one
// identifier usable with Cluster.Delete.
//
// Deprecated: the unified Search surface answers with Match, which
// carries the packed uint64 global ID directly. ClusterNeighbor remains
// for the deprecated Query/QueryBatch/QueryBatchTimed/QueryTopK wrappers.
type ClusterNeighbor = cluster.Neighbor

// BatchOptions is the failure policy for a cluster broadcast: an optional
// per-attempt timeout, whether partial results are acceptable, and the
// replica hedge delay.
type BatchOptions = cluster.BatchOptions

// BatchReport describes how a broadcast went: per-group wall times and
// errors plus the per-replica attempt trace, with Complete/Stragglers/
// Failovers/HedgesWon helpers.
type BatchReport = cluster.BatchReport

// Attempt is one replica RPC of a broadcast: which group and member it
// went to, whether it was a hedge, and how it ended. See Report.
type Attempt = cluster.Attempt

// InsertError reports a cluster Insert that failed midway: Placed[i] is
// true exactly when docs[i] was durably accepted by every member of its
// replica group before the failure, and IDs[i] is then its global ID.
// Unwrap exposes the cause, so errors.Is keeps working.
type InsertError = cluster.InsertError

// GlobalID packs (group, local ID) into one opaque document identifier.
// With Replicas = 1 the group index is exactly the node index, so
// single-copy IDs are unchanged from the pre-replication layout.
func GlobalID(group int, local uint32) uint64 { return cluster.GlobalID(group, local) }

// SplitGlobalID inverts GlobalID.
func SplitGlobalID(g uint64) (group int, local uint32) { return cluster.SplitGlobalID(g) }

// Cluster coordinates many PLSH nodes arranged into replica groups:
// queries broadcast to every group — one member each, with failover to
// sibling replicas and an optional latency hedge (WithHedge) — and merge;
// inserts mirror each batch onto every member of a rolling window of
// WindowM groups, and when the window wraps, the groups holding the
// oldest data are erased — giving the stream well-defined expiration
// (the paper runs 100 single-copy nodes with a window of 4 to absorb
// 400M tweets/day; Config.Replicas = 1 reproduces that layout exactly).
//
// Every operation takes a context.Context; deadlines and cancellation
// abort a broadcast early instead of waiting on the slowest node.
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster builds an in-process cluster of identical nodes, each with
// cfg's parameters and capacity, arranged into nodes/cfg.Replicas groups,
// with an insert window of windowM groups (0 → min(4, groups)). It is the
// context-less convenience shim over OpenCluster and runs recovery under
// context.Background() — unbounded, uncancelable; use OpenCluster to
// bound it.
func NewCluster(nodes int, windowM int, cfg Config) (*Cluster, error) {
	//plshvet:ignore ctxcheck ctx-less compatibility shim; OpenCluster is the ctx-aware form
	return OpenCluster(context.Background(), nodes, windowM, cfg)
}

// OpenCluster builds an in-process cluster of identical nodes under one
// caller-supplied context that consistently bounds every node's recovery
// and the initial capacity exchange — canceling it aborts construction
// mid-fleet instead of leaving some nodes replaying journals under a
// context nobody holds.
//
// nodes counts endpoints; cfg.Replicas arranges them into nodes/Replicas
// mirrored groups (nodes must divide evenly), and windowM counts groups.
//
// With cfg.Dir set the cluster is durable: node i lives in
// cfg.Dir/node-NNN (nodes must never share a data directory, replicas
// included), each is recovered on construction, and Save checkpoints
// them all.
func OpenCluster(ctx context.Context, nodes int, windowM int, cfg Config) (*Cluster, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	if nodes%cfg.Replicas != 0 {
		return nil, fmt.Errorf("plsh: %d nodes cannot form groups of %d replicas", nodes, cfg.Replicas)
	}
	clients := make([]transport.NodeClient, nodes)
	// On any failure, release the nodes already opened: durable nodes
	// hold journal file handles that would otherwise leak for the
	// process lifetime (mid-fleet cancellation is an advertised use).
	closeAll := func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}
	for i := range clients {
		ncfg := cfg.nodeConfig()
		if cfg.Dir != "" {
			ncfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("node-%03d", i))
		}
		n, err := node.Open(ctx, ncfg)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("plsh: node %d: %w", i, err)
		}
		clients[i] = transport.NewLocal(n)
	}
	copts, err := clusterOptions(cfg, windowM, nodes/cfg.Replicas)
	if err != nil {
		closeAll()
		return nil, err
	}
	c, err := cluster.NewWithOptions(ctx, clients, copts)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Cluster{c: c}, nil
}

// DialOption configures DialCluster.
type DialOption func(*dialSpec)

type dialSpec struct {
	replicas    int
	partitioned bool
	routeCfg    Config
	err         error
}

// WithReplicas arranges the dialed endpoints into groups of r mirrored
// replicas (len(addrs) must divide evenly; members of one group are
// adjacent in addrs). The node servers of one group must be launched
// with identical parameters — same -seed above all — so they answer as
// true mirrors. Default 1, the single-copy layout.
func WithReplicas(r int) DialOption {
	return func(s *dialSpec) {
		if r <= 0 {
			s.err = fmt.Errorf("plsh: WithReplicas(%d): replicas must be positive", r)
			return
		}
		s.replicas = r
	}
}

// WithPartitioned switches the dialed cluster to partitioned placement
// (see Config.Placement): the coordinator routes inserts and searches by
// LSH bucket signature instead of broadcasting. Remote node stats do not
// carry hash parameters, so cfg must restate the fleet's LSH geometry —
// Dim, K, M, and above all Seed exactly as the plsh-node servers were
// launched with (mismatched parameters break placement silently), plus
// optional Radius and RoutingRecall for the probe-set construction.
// cfg.Replicas is ignored here; grouping stays with WithReplicas.
func WithPartitioned(cfg Config) DialOption {
	return func(s *dialSpec) {
		cfg, err := cfg.normalize()
		if err != nil {
			s.err = err
			return
		}
		cfg.Placement = PlacementPartitioned
		s.partitioned = true
		s.routeCfg = cfg
	}
}

// DialCluster connects to remote plsh-node servers (see cmd/plsh-node) and
// coordinates them exactly like an in-process cluster. All nodes are
// dialed in parallel; ctx bounds the dials and the initial capacity
// exchange. On any failure every established connection is closed.
//
// Connections self-heal: a node that dies mid-run fails its in-flight
// calls (replica failover masks that when WithReplicas(r>1) is set), and
// once the process is back — recovered from its journal — the next call
// re-dials it, so a restarted replica rejoins without rebuilding the
// coordinator. windowM counts replica groups.
func DialCluster(ctx context.Context, addrs []string, windowM int, opts ...DialOption) (*Cluster, error) {
	spec := dialSpec{replicas: 1}
	for _, o := range opts {
		o(&spec)
	}
	if spec.err != nil {
		return nil, spec.err
	}
	clients := make([]transport.NodeClient, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			c, err := transport.NewRedial(ctx, addr)
			if err != nil {
				errs[i] = fmt.Errorf("plsh: dial %s: %w", addr, err)
				return
			}
			clients[i] = c
		}(i, addr)
	}
	wg.Wait()
	closeAll := func() {
		for _, done := range clients {
			if done != nil {
				done.Close()
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			closeAll()
			return nil, err
		}
	}
	copts := cluster.Options{WindowM: windowM, Replicas: spec.replicas}
	if spec.partitioned {
		if len(addrs)%spec.replicas != 0 {
			closeAll()
			return nil, fmt.Errorf("plsh: %d nodes cannot form groups of %d replicas", len(addrs), spec.replicas)
		}
		rcfg := spec.routeCfg
		rcfg.Replicas = spec.replicas
		o, cerr := clusterOptions(rcfg, windowM, len(addrs)/spec.replicas)
		if cerr != nil {
			closeAll()
			return nil, cerr
		}
		copts = o
	}
	c, err := cluster.NewWithOptions(ctx, clients, copts)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Cluster{c: c}, nil
}

// Insert distributes documents over the insert window, expiring the
// oldest groups' contents as the window wraps. Each document is written
// to every member of its target group — journal-before-ack on each
// durable member — before its global ID is assigned. Returned global IDs
// parallel docs. Documents should be unit-normalized; Insert rejects
// empty vectors, exactly like a Store.
//
// A mid-batch failure returns an *InsertError reporting exactly which
// documents were durably placed (with their IDs) before the error.
func (cl *Cluster) Insert(ctx context.Context, docs []Vector) ([]uint64, error) {
	if err := validateDocs(docs); err != nil {
		return nil, err
	}
	return cl.c.Insert(ctx, docs)
}

// Search answers one query under request-scoped options, broadcast to
// every replica group: one member answers for its group — failing over
// to sibling replicas on error, racing one with WithHedge — applying the
// effective radius (WithRadius, or the construction Config.Radius) and
// candidate budget locally, pruned to the k best with WithK, and the
// coordinator merges the bounded sorted partial lists. Matches come back
// ascending by (distance, ID) and are replica-agnostic. WithNodeTimeout
// and AllowPartial trade completeness for bounded latency; use
// SearchBatch to also observe the per-group, per-attempt Report.
func (cl *Cluster) Search(ctx context.Context, q Vector, opts ...SearchOption) (Result, error) {
	res, _, err := cl.SearchBatch(ctx, []Vector{q}, opts...)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// SearchBatch answers many queries in one broadcast under one set of
// request-scoped options and reports per-group wall times, outcomes, and
// the per-replica attempt trace (who answered, which attempts failed
// over, which hedges won) — the production path when a bounded-latency,
// possibly-partial answer beats waiting out a straggler (AllowPartial),
// and the load-balance measure of Fig. 9 either way.
func (cl *Cluster) SearchBatch(ctx context.Context, qs []Vector, opts ...SearchOption) ([]Result, Report, error) {
	spec, err := resolveSearch(opts)
	if err != nil {
		return nil, Report{}, err
	}
	res, report, err := cl.c.Search(ctx, qs, spec.params, spec.policy)
	if err != nil {
		return nil, report, err
	}
	out := resultsFromCluster(res)
	cl.c.ReleaseResults(res) // results fully copied into out's Match arena
	return out, report, nil
}

// Query broadcasts one query to all groups and merges the answers.
//
// Deprecated: use Search, which takes request-scoped options and answers
// with global-ID Matches.
func (cl *Cluster) Query(ctx context.Context, q Vector) ([]ClusterNeighbor, error) {
	return cl.c.Query(ctx, q)
}

// QueryBatch broadcasts a batch, all-or-nothing: any group failure fails
// the call (and cancels the rest of the broadcast).
//
// Deprecated: use SearchBatch.
func (cl *Cluster) QueryBatch(ctx context.Context, qs []Vector) ([][]ClusterNeighbor, error) {
	return cl.c.QueryBatch(ctx, qs)
}

// QueryBatchTimed broadcasts a batch under opts' failure policy and
// reports per-group wall times and outcomes.
//
// Deprecated: use SearchBatch with WithNodeTimeout/AllowPartial.
func (cl *Cluster) QueryBatchTimed(ctx context.Context, qs []Vector, opts BatchOptions) ([][]ClusterNeighbor, BatchReport, error) {
	return cl.c.QueryBatchTimed(ctx, qs, opts)
}

// QueryTopK returns the k nearest of q's R-near neighbors cluster-wide.
//
// Deprecated: use Search with WithK.
func (cl *Cluster) QueryTopK(ctx context.Context, q Vector, k int) ([]ClusterNeighbor, error) {
	return cl.c.QueryTopK(ctx, q, k)
}

// Delete removes a document by its global ID from every member of its
// replica group (a tombstone reaching only some mirrors would resurrect
// the document on failover). An ID naming a nonexistent group or a
// never-inserted document returns an error wrapping ErrNotFound. A
// member failure fails the call with the tombstone possibly applied on
// some members only; retry until nil to restore mirror agreement.
func (cl *Cluster) Delete(ctx context.Context, g uint64) error { return cl.c.Delete(ctx, g) }

// Doc fetches the stored vector for a global ID (shared storage on
// in-process clusters; do not modify) from any live member of the group
// that holds it — failing over to sibling replicas on transport errors —
// with that member's authoritative answer to whether the local ID was
// ever inserted. IDs naming a nonexistent group are simply unknown;
// failure of every member is an error.
func (cl *Cluster) Doc(ctx context.Context, id uint64) (Vector, bool, error) {
	if err := ctx.Err(); err != nil {
		return Vector{}, false, err
	}
	v, known, err := cl.c.Doc(ctx, id)
	if err != nil {
		return Vector{}, false, fmt.Errorf("plsh: %w", err)
	}
	return v, known, nil
}

// Save checkpoints every node's data directory in parallel (see
// Store.Save): when it returns nil, a restart of any node — or the whole
// cluster — recovers exactly the acknowledged contents. Nodes launched
// without a data directory (plsh-node without -data) fail the call with
// ErrNotDurable (possibly wrapped).
func (cl *Cluster) Save(ctx context.Context) error { return cl.c.SaveAll(ctx) }

// SaveAll checkpoints every node's data directory in parallel.
//
// Deprecated: renamed to Save, the uniform Index spelling.
func (cl *Cluster) SaveAll(ctx context.Context) error { return cl.c.SaveAll(ctx) }

// Merge drives every node to a fully static state, in parallel. Each
// node's rebuild runs in the background on that node, so queries broadcast
// while Merge is in flight keep being answered from pre-merge snapshots;
// only the Merge caller waits for quiescence.
func (cl *Cluster) Merge(ctx context.Context) error { return cl.c.MergeAll(ctx) }

// Flush waits for every node's in-flight background merge (if any) to
// finish without forcing new ones.
func (cl *Cluster) Flush(ctx context.Context) error { return cl.c.FlushAll(ctx) }

// Stats returns per-node snapshots, gathered in parallel — one entry per
// endpoint, group-major: the members of group g are entries
// [g·Replicas, (g+1)·Replicas).
func (cl *Cluster) Stats(ctx context.Context) ([]Stats, error) { return cl.c.Stats(ctx) }

// CoordStats is the coordinator's own always-on telemetry: lifetime
// counters of batches answered, failovers, and hedges launched/won,
// maintained with cheap atomics on the search path regardless of
// WithTrace. Unlike Stats it describes the coordinator (client side),
// not the nodes, so it needs no RPC.
type CoordStats = cluster.CoordStats

// CoordStats returns the coordinator's accumulated telemetry.
func (cl *Cluster) CoordStats() CoordStats { return cl.c.CoordStats() }

// NumNodes returns the endpoint count (groups × replicas).
func (cl *Cluster) NumNodes() int { return cl.c.NumNodes() }

// NumGroups returns the replica-group count — the unit of data placement,
// global IDs, and broadcast reports.
func (cl *Cluster) NumGroups() int { return cl.c.NumGroups() }

// Replicas returns R, the mirrored members per group.
func (cl *Cluster) Replicas() int { return cl.c.Replicas() }

// Close releases node connections; durable in-process nodes also release
// their journals (draining in-flight merges so final checkpoints land).
func (cl *Cluster) Close() error { return cl.c.Close() }
