package plsh

import (
	"fmt"

	"plsh/internal/cluster"
	"plsh/internal/node"
	"plsh/internal/transport"
)

// ClusterNeighbor is a cluster query answer: the node index, the node-
// local document ID, and the angular distance. GlobalID packs the first
// two into one identifier usable with Cluster.Delete.
type ClusterNeighbor = cluster.Neighbor

// GlobalID packs (node, local ID) into one opaque document identifier.
func GlobalID(nodeIdx int, local uint32) uint64 { return cluster.GlobalID(nodeIdx, local) }

// SplitGlobalID inverts GlobalID.
func SplitGlobalID(g uint64) (nodeIdx int, local uint32) { return cluster.SplitGlobalID(g) }

// Cluster coordinates many PLSH nodes: queries broadcast to every node and
// concatenate; inserts go round-robin to a rolling window of WindowM nodes,
// and when the window wraps, the nodes holding the oldest data are erased —
// giving the stream well-defined expiration (the paper runs 100 nodes with
// a window of 4 to absorb 400M tweets/day).
type Cluster struct {
	c *cluster.Cluster
}

// NewCluster builds an in-process cluster of nodes identical nodes, each
// with cfg's parameters and capacity, and an insert window of windowM
// nodes (0 → min(4, nodes)).
func NewCluster(nodes int, windowM int, cfg Config) (*Cluster, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	clients := make([]transport.NodeClient, nodes)
	for i := range clients {
		n, err := node.New(cfg.nodeConfig())
		if err != nil {
			return nil, fmt.Errorf("plsh: node %d: %w", i, err)
		}
		clients[i] = transport.NewLocal(n)
	}
	c, err := cluster.New(clients, windowM)
	if err != nil {
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Cluster{c: c}, nil
}

// DialCluster connects to remote plsh-node servers (see cmd/plsh-node) and
// coordinates them exactly like an in-process cluster.
func DialCluster(addrs []string, windowM int) (*Cluster, error) {
	clients := make([]transport.NodeClient, len(addrs))
	for i, addr := range addrs {
		c, err := transport.Dial(addr)
		if err != nil {
			for _, done := range clients[:i] {
				done.Close()
			}
			return nil, fmt.Errorf("plsh: dial %s: %w", addr, err)
		}
		clients[i] = c
	}
	c, err := cluster.New(clients, windowM)
	if err != nil {
		return nil, fmt.Errorf("plsh: %w", err)
	}
	return &Cluster{c: c}, nil
}

// Insert distributes documents over the insert window, expiring the oldest
// nodes' contents as the window wraps. Returned IDs parallel docs.
func (cl *Cluster) Insert(docs []Vector) ([]uint64, error) { return cl.c.Insert(docs) }

// Query broadcasts one query to all nodes and concatenates the answers.
func (cl *Cluster) Query(q Vector) ([]ClusterNeighbor, error) { return cl.c.Query(q) }

// QueryBatch broadcasts a batch.
func (cl *Cluster) QueryBatch(qs []Vector) ([][]ClusterNeighbor, error) { return cl.c.QueryBatch(qs) }

// Delete removes a document by its global ID.
func (cl *Cluster) Delete(g uint64) error { return cl.c.Delete(g) }

// Merge forces every node's delta into its static structure.
func (cl *Cluster) Merge() error { return cl.c.MergeAll() }

// Stats returns per-node snapshots.
func (cl *Cluster) Stats() ([]Stats, error) { return cl.c.Stats() }

// NumNodes returns the node count.
func (cl *Cluster) NumNodes() int { return cl.c.NumNodes() }

// Close releases node connections (a no-op for in-process clusters).
func (cl *Cluster) Close() error { return cl.c.Close() }
