module plsh

go 1.24
